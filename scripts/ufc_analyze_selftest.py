#!/usr/bin/env python3
"""Self-tests for scripts/ufc_analyze.py, on synthetic trees.

Each case materializes a tiny repository in a tempdir (the same src/<layer>/
shape as the real tree), runs the analyzer's rule functions on it and asserts
the pass or fail fixture produces exactly the expected findings. Run via
`scripts/ufc_analyze.py --self-test` (registered in ctest as
ufc_analyze_selftest).
"""

from __future__ import annotations

import tempfile
import unittest
from pathlib import Path

import ufc_analyze as ua
from ufc_findings import validate_findings_json


def make_tree(tmp: str, files: dict[str, str]) -> ua.Tree:
    for rel, text in files.items():
        path = Path(tmp) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return ua.build_tree(Path(tmp))


def rules_of(findings) -> list[str]:
    return sorted({f.rule for f in findings})


class LayeringTests(unittest.TestCase):
    def _layering(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            return ua.check_layering(make_tree(tmp, files))

    def test_declared_edge_passes(self):
        findings = self._layering({
            "src/admm/solver.hpp": '#include "math/vec.hpp"\n',
            "src/math/vec.hpp": "#pragma once\n",
        })
        self.assertEqual(findings, [])

    def test_back_edge_fails(self):
        findings = self._layering({
            "src/math/vec.hpp": '#include "admm/solver.hpp"\n',
            "src/admm/solver.hpp": "#pragma once\n",
        })
        self.assertEqual(rules_of(findings), ["include-layering"])
        self.assertIn("back-edge", findings[0].message)

    def test_undeclared_edge_fails(self):
        # model -> opt is not in the manifest even though opt is lower.
        findings = self._layering({
            "src/model/problem.hpp": '#include "opt/bisect.hpp"\n',
            "src/opt/bisect.hpp": "#pragma once\n",
        })
        self.assertEqual(rules_of(findings), ["include-layering"])
        self.assertIn("undeclared layer edge", findings[0].message)

    def test_src_must_not_include_umbrella(self):
        findings = self._layering({
            "src/admm/solver.cpp": '#include "ufc.hpp"\n',
            "src/ufc.hpp": "#pragma once\n",
        })
        self.assertEqual(rules_of(findings), ["include-layering"])
        self.assertIn("umbrella", findings[0].message)

    def test_tests_may_include_umbrella(self):
        findings = self._layering({
            "tests/test_all.cpp": '#include "ufc.hpp"\n',
            "src/ufc.hpp": "#pragma once\n",
        })
        self.assertEqual(findings, [])

    def test_obs_seam_header_passes(self):
        findings = self._layering({
            "src/obs/metrics.cpp": '#include "admm/solve_core.hpp"\n',
            "src/admm/solve_core.hpp": "#pragma once\n",
        })
        self.assertEqual(findings, [])

    def test_obs_nonseam_admm_include_fails(self):
        findings = self._layering({
            "src/obs/metrics.cpp": '#include "admm/engine.hpp"\n',
            "src/admm/engine.hpp": "#pragma once\n",
        })
        self.assertEqual(rules_of(findings), ["include-layering"])
        self.assertIn("seam", findings[0].message)

    def test_ctrl_may_include_sim_and_admm(self):
        findings = self._layering({
            "src/ctrl/controller.hpp": '#include "admm/admg.hpp"\n'
                                       '#include "sim/session.hpp"\n',
            "src/admm/admg.hpp": "#pragma once\n",
            "src/sim/session.hpp": "#pragma once\n",
        })
        self.assertEqual(findings, [])

    def test_sim_must_not_include_ctrl(self):
        findings = self._layering({
            "src/sim/session.cpp": '#include "ctrl/controller.hpp"\n',
            "src/ctrl/controller.hpp": "#pragma once\n",
        })
        self.assertEqual(rules_of(findings), ["include-layering"])
        self.assertIn("back-edge", findings[0].message)

    def test_undeclared_directory_fails(self):
        findings = self._layering({
            "src/magic/widget.hpp": "#pragma once\n",
            "src/admm/solver.cpp": '#include "magic/widget.hpp"\n',
        })
        self.assertEqual(rules_of(findings), ["include-layering"])
        self.assertIn("not a declared layer", findings[0].message)

    def test_dangling_include_fails(self):
        findings = self._layering({
            "src/admm/solver.cpp": '#include "math/gone.hpp"\n',
        })
        self.assertEqual(rules_of(findings), ["dangling-include"])

    def test_dangling_include_suppressed(self):
        findings = self._layering({
            "src/admm/solver.cpp":
                '// ufc-analyze: allow(dangling-include)\n'
                '#include "math/gone.hpp"\n',
        })
        self.assertEqual(findings, [])

    def test_include_cycle_fails(self):
        findings = self._layering({
            "src/util/a.hpp": '#include "util/b.hpp"\n',
            "src/util/b.hpp": '#include "util/a.hpp"\n',
        })
        self.assertEqual(rules_of(findings), ["include-cycle"])

    def test_acyclic_chain_passes(self):
        findings = self._layering({
            "src/util/a.hpp": '#include "util/b.hpp"\n',
            "src/util/b.hpp": '#include "util/c.hpp"\n',
            "src/util/c.hpp": "#pragma once\n",
        })
        self.assertEqual(findings, [])


class ConstructBanTests(unittest.TestCase):
    CHRONO = "auto t = std::chrono::steady_clock::now();\n"

    def test_wall_clock_in_solver_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {"src/admm/engine.cpp": self.CHRONO})
            self.assertEqual(rules_of(ua.check_wall_clock(tree)),
                             ["wall-clock"])

    def test_wall_clock_in_obs_and_seam_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {"src/obs/timer.hpp": self.CHRONO,
                                   "src/util/clock.hpp": self.CHRONO})
            self.assertEqual(ua.check_wall_clock(tree), [])

    def test_wall_clock_suppression(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/admm/engine.cpp":
                    "auto t = std::chrono::steady_clock::now();"
                    "  // ufc-analyze: allow(wall-clock)\n"})
            self.assertEqual(ua.check_wall_clock(tree), [])

    def test_ctrl_chrono_caught_by_generic_wall_clock(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {"src/ctrl/controller.cpp": self.CHRONO})
            self.assertEqual(rules_of(ua.check_wall_clock(tree)),
                             ["wall-clock"])

    def test_ctrl_clock_seam_include_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/ctrl/controller.cpp": '#include "util/clock.hpp"\n',
                "src/util/clock.hpp": "#pragma once\n"})
            self.assertEqual(rules_of(ua.check_ctrl_wall_clock(tree)),
                             ["no-wall-clock-in-ctrl-tick"])

    def test_ctrl_timer_identifier_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/ctrl/scheduler.cpp":
                    "const double t0 = util::monotonic_now();\n"})
            self.assertEqual(rules_of(ua.check_ctrl_wall_clock(tree)),
                             ["no-wall-clock-in-ctrl-tick"])

    def test_ctrl_timer_name_in_comment_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/ctrl/controller.hpp":
                    "#pragma once\n// never call monotonic_now() here\n"})
            self.assertEqual(ua.check_ctrl_wall_clock(tree), [])

    def test_clock_seam_outside_ctrl_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/sim/sweep.cpp":
                    '#include "util/clock.hpp"\n'
                    "const double t0 = util::monotonic_now();\n",
                "src/util/clock.hpp": "#pragma once\n"})
            self.assertEqual(ua.check_ctrl_wall_clock(tree), [])

    def test_ctrl_clock_suppression(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/ctrl/scheduler.cpp":
                    "// ufc-analyze: allow(no-wall-clock-in-ctrl-tick)\n"
                    "const double t0 = util::monotonic_now();\n"})
            self.assertEqual(ua.check_ctrl_wall_clock(tree), [])

    def test_unordered_container_in_net_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/net/bus.hpp": "std::unordered_map<int, int> queues_;\n"})
            self.assertEqual(rules_of(ua.check_ordered_containers(tree)),
                             ["ordered-containers"])

    def test_unordered_container_outside_solver_layers_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/model/cache.hpp": "std::unordered_map<int, int> c_;\n"})
            self.assertEqual(ua.check_ordered_containers(tree), [])

    def test_std_rng_outside_rng_home_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {"src/admm/x.cpp": "std::mt19937 gen_;\n"})
            self.assertEqual(rules_of(ua.check_rng_discipline(tree)),
                             ["rng-discipline"])

    def test_std_rng_inside_rng_home_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/util/rng.cpp": "std::mt19937_64 engine_;\n"})
            self.assertEqual(ua.check_rng_discipline(tree), [])

    def test_mutable_global_in_solver_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/admm/state.cpp":
                    "namespace ufc::admm {\nint call_count = 0;\n}\n"})
            findings = ua.check_global_state(tree)
            self.assertEqual(rules_of(findings), ["global-state"])
            self.assertIn("call_count", findings[0].message)

    def test_const_global_and_locals_pass(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/admm/state.cpp":
                    "namespace ufc::admm {\n"
                    "constexpr int kLimit = 3;\n"
                    "const double kScale = 2.0;\n"
                    "int bump(int v) {\n  int local = v;\n  return local;\n}\n"
                    "}\n"})
            self.assertEqual(ua.check_global_state(tree), [])

    def test_throw_in_hot_loop_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/admm/engine.cpp":
                    "namespace ufc::admm {\n"
                    "void InProcessExecutor::step(int iteration) {\n"
                    "  if (iteration < 0) throw 1;\n"
                    "}\n}\n"})
            self.assertEqual(rules_of(ua.check_step_exceptions(tree)),
                             ["step-exceptions"])

    def test_throw_outside_hot_loop_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/admm/engine.cpp":
                    "namespace ufc::admm {\n"
                    "void InProcessExecutor::reset() { throw 1; }\n"
                    "void InProcessExecutor::step(int iteration) {\n"
                    "  counter_ += iteration;\n"
                    "}\n}\n"})
            self.assertEqual(ua.check_step_exceptions(tree), [])


HEADER = """#pragma once
class Widget {
 public:
  void poke(int value);
};
"""


class ExpectsReachTests(unittest.TestCase):
    def _reach(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            return ua.check_expects_reach(make_tree(tmp, files))

    def test_missing_guard_fails(self):
        findings = self._reach({
            "src/admm/widget.hpp": HEADER,
            "src/admm/widget.cpp":
                "void Widget::poke(int value) { state_ += value; }\n",
        })
        self.assertEqual(rules_of(findings), ["expects-reach"])
        self.assertIn("Widget::poke", findings[0].message)

    def test_direct_guard_passes(self):
        findings = self._reach({
            "src/admm/widget.hpp": HEADER,
            "src/admm/widget.cpp":
                "void Widget::poke(int value) {\n"
                "  UFC_EXPECTS(value >= 0);\n  state_ += value;\n}\n",
        })
        self.assertEqual(findings, [])

    def test_guard_through_callee_passes(self):
        findings = self._reach({
            "src/admm/widget.hpp": HEADER,
            "src/admm/widget.cpp":
                "void Widget::poke(int value) { check_input(value); }\n"
                "void check_input(int value) { UFC_EXPECTS(value >= 0); }\n",
        })
        self.assertEqual(findings, [])

    def test_callee_without_parameter_does_not_count(self):
        # The callee is guarded, but none of poke's parameters flow into it,
        # so its guard says nothing about poke's inputs.
        findings = self._reach({
            "src/admm/widget.hpp": HEADER,
            "src/admm/widget.cpp":
                "void Widget::poke(int value) {\n"
                "  refresh();\n  state_ += value;\n}\n"
                "void refresh() { UFC_EXPECTS(limit_ >= 0); }\n",
        })
        self.assertEqual(rules_of(findings), ["expects-reach"])

    def test_delegating_constructor_reaches_guard(self):
        findings = self._reach({
            "src/net/widget.hpp":
                "#pragma once\n"
                "class Widget {\n public:\n"
                "  explicit Widget(int limit);\n"
                "  explicit Widget(Config config);\n};\n",
            "src/net/widget.cpp":
                "Widget::Widget(int limit) : Widget(make_config(limit)) {}\n"
                "Widget::Widget(Config config) {\n"
                "  UFC_EXPECTS(config.limit >= 0);\n}\n"
                "Config make_config(int limit) { return Config{limit}; }\n",
        })
        self.assertEqual(findings, [])

    def test_unnamed_parameter_noop_is_skipped(self):
        findings = self._reach({
            "src/admm/widget.hpp":
                "#pragma once\nclass Widget {\n public:\n"
                "  void on_event(const State& state);\n};\n",
            "src/admm/widget.cpp":
                "void Widget::on_event(const State& /*state*/) {}\n",
        })
        self.assertEqual(findings, [])

    def test_suppression_at_definition(self):
        findings = self._reach({
            "src/admm/widget.hpp": HEADER,
            "src/admm/widget.cpp":
                "// ufc-analyze: allow(expects-reach)\n"
                "void Widget::poke(int value) { state_ += value; }\n",
        })
        self.assertEqual(findings, [])

    def test_layers_outside_admm_net_not_audited(self):
        findings = self._reach({
            "src/model/widget.hpp": HEADER,
            "src/model/widget.cpp":
                "void Widget::poke(int value) { state_ += value; }\n",
        })
        self.assertEqual(findings, [])


class NetIoConfinementTests(unittest.TestCase):
    def _confine(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            return ua.check_net_io_confinement(make_tree(tmp, files))

    def test_os_call_outside_confined_files_fails(self):
        findings = self._confine({
            "src/net/bus.cpp": "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n",
        })
        self.assertEqual(rules_of(findings), ["net-io-confinement"])
        self.assertIn("socket", findings[0].message)

    def test_fork_in_runtime_fails(self):
        findings = self._confine({
            "src/net/runtime.cpp": "const pid_t pid = fork();\n",
        })
        self.assertEqual(rules_of(findings), ["net-io-confinement"])

    def test_os_call_in_confined_file_passes(self):
        findings = self._confine({
            "src/net/socket_bus.cpp":
                "int make(int deadline_ms) {\n"
                "  return ::socket(AF_UNIX, SOCK_STREAM, 0);\n}\n",
        })
        self.assertEqual(findings, [])

    def test_lookalike_identifiers_pass(self):
        # poll_pending / connect_to_hub / std::bind are not OS calls.
        findings = self._confine({
            "src/net/runtime.cpp":
                "auto n = bus.poll_pending(node, deadline_ms);\n"
                "bool up = socket_->connect_to_hub(timeout);\n"
                "auto f = std::bind(&Runtime::round, this);\n",
        })
        self.assertEqual(findings, [])

    def test_blocking_call_without_deadline_parameter_fails(self):
        findings = self._confine({
            "src/net/socket_bus.cpp":
                "void SocketBus::spin() {\n"
                "  ::poll(fds.data(), fds.size(), 50);\n}\n",
        })
        self.assertEqual(rules_of(findings), ["net-io-confinement"])
        self.assertIn("deadline", findings[0].message)

    def test_blocking_call_with_deadline_parameter_passes(self):
        findings = self._confine({
            "src/net/socket_bus.cpp":
                "bool SocketBus::pump(int deadline_ms) {\n"
                "  return ::poll(fds.data(), fds.size(), deadline_ms) > 0;\n"
                "}\n",
            "src/net/supervisor.cpp":
                "int reap(pid_t pid, int deadline_ms) {\n"
                "  int status = 0;\n"
                "  return ::waitpid(pid, &status, WNOHANG);\n}\n",
        })
        self.assertEqual(findings, [])

    def test_infinite_poll_timeout_fails_even_with_deadline_param(self):
        findings = self._confine({
            "src/net/socket_bus.cpp":
                "bool SocketBus::pump(int deadline_ms) {\n"
                "  return ::poll(fds.data(), fds.size(), -1) > 0;\n}\n",
        })
        self.assertEqual(rules_of(findings), ["net-io-confinement"])
        self.assertIn("infinite", findings[0].message)

    def test_tests_and_bench_not_audited(self):
        findings = self._confine({
            "tests/net/test_socket_bus.cpp": "int fd = ::socket(1, 2, 3);\n",
            "bench/bench_socket_bus.cpp": "pid_t pid = fork();\n",
        })
        self.assertEqual(findings, [])

    def test_suppression(self):
        findings = self._confine({
            "src/net/bus.cpp":
                "// ufc-analyze: allow(net-io-confinement)\n"
                "int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n",
        })
        self.assertEqual(findings, [])


class RegistryConfinementTests(unittest.TestCase):
    def _confine(self, files):
        with tempfile.TemporaryDirectory() as tmp:
            return ua.check_registry_confinement(make_tree(tmp, files))

    def test_construction_outside_homes_fails(self):
        findings = self._confine({
            "src/admm/strategy.cpp":
                "auto p = std::make_unique<ResidualBalancePenalty>(knobs);\n",
        })
        self.assertEqual(rules_of(findings), ["registry-confinement"])
        self.assertIn("ResidualBalancePenalty", findings[0].message)

    def test_raw_new_outside_homes_fails(self):
        findings = self._confine({
            "src/admm/engine.cpp":
                "acceleration_ = new AndersonAcceleration(knobs);\n",
        })
        self.assertEqual(rules_of(findings), ["registry-confinement"])

    def test_centralized_method_outside_homes_fails(self):
        findings = self._confine({
            "src/admm/admg.cpp":
                "auto oracle = std::make_unique<NewtonMethod>(options);\n",
        })
        self.assertEqual(rules_of(findings), ["registry-confinement"])

    def test_construction_in_registry_homes_passes(self):
        findings = self._confine({
            "src/admm/ingredients.cpp":
                "return std::make_unique<FixedPenalty>();\n",
            "src/admm/centralized.cpp":
                "return std::make_unique<SubgradientMethod>(options);\n",
        })
        self.assertEqual(findings, [])

    def test_lookalike_identifiers_pass(self):
        # InnerMethod is an enum and registry lookups are not constructions.
        findings = self._confine({
            "src/admm/options.cpp":
                "options.inner.method = InnerMethod::Exact;\n"
                "auto p = penalty_registry().create(name, options);\n",
        })
        self.assertEqual(findings, [])

    def test_tests_and_bench_not_audited(self):
        findings = self._confine({
            "tests/admm/test_ingredients.cpp":
                "auto p = std::make_unique<FixedPenalty>();\n",
            "bench/bench_ingredients.cpp":
                "auto a = std::make_unique<AndersonAcceleration>(knobs);\n",
        })
        self.assertEqual(findings, [])

    def test_suppression(self):
        findings = self._confine({
            "src/admm/strategy.cpp":
                "// ufc-analyze: allow(registry-confinement)\n"
                "auto p = std::make_unique<FixedPenalty>();\n",
        })
        self.assertEqual(findings, [])


class GraphAndReportTests(unittest.TestCase):
    FILES = {
        "src/admm/solver.hpp": '#include "math/vec.hpp"\n',
        "src/math/vec.hpp": '#include "util/span.hpp"\n',
        "src/util/span.hpp": "#pragma once\n",
    }

    def test_dot_contains_observed_edges(self):
        with tempfile.TemporaryDirectory() as tmp:
            dot = ua.layer_graph_dot(make_tree(tmp, self.FILES))
            self.assertIn('"admm" -> "math" [label="1"];', dot)
            self.assertIn('"math" -> "util" [label="1"];', dot)

    def test_fresh_dot_passes_and_stale_dot_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, self.FILES)
            dot_path = Path(tmp) / "layers.dot"
            dot_path.write_text(ua.layer_graph_dot(tree))
            self.assertEqual(ua.check_dot_fresh(tree, dot_path), [])
            dot_path.write_text("digraph stale {}\n")
            self.assertEqual(rules_of(ua.check_dot_fresh(tree, dot_path)),
                             ["dot-stale"])

    def test_missing_dot_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, self.FILES)
            findings = ua.check_dot_fresh(tree, Path(tmp) / "missing.dot")
            self.assertEqual(rules_of(findings), ["dot-stale"])

    def test_findings_serialize_to_valid_schema(self):
        from ufc_findings import findings_to_json
        with tempfile.TemporaryDirectory() as tmp:
            tree = make_tree(tmp, {
                "src/math/vec.hpp": '#include "admm/solver.hpp"\n',
                "src/admm/solver.hpp": "#pragma once\n",
            })
            doc = findings_to_json("ufc_analyze", ua.check_layering(tree))
            self.assertEqual(validate_findings_json(doc), [])
            self.assertEqual(doc["counts"]["error"], 1)

    def test_every_rule_is_documented(self):
        for rule in ("include-layering", "include-cycle", "dangling-include",
                     "wall-clock", "ordered-containers", "rng-discipline",
                     "global-state", "step-exceptions", "expects-reach",
                     "net-io-confinement", "registry-confinement", "dot-stale"):
            self.assertIn(rule, ua.RULES)
            self.assertTrue(ua.RULES[rule][1])


def run() -> int:
    loader = unittest.defaultTestLoader
    suite = unittest.TestSuite([
        loader.loadTestsFromTestCase(LayeringTests),
        loader.loadTestsFromTestCase(ConstructBanTests),
        loader.loadTestsFromTestCase(ExpectsReachTests),
        loader.loadTestsFromTestCase(NetIoConfinementTests),
        loader.loadTestsFromTestCase(RegistryConfinementTests),
        loader.loadTestsFromTestCase(GraphAndReportTests),
    ])
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


if __name__ == "__main__":
    import sys
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    sys.exit(run())
