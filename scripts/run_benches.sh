#!/usr/bin/env bash
# Builds the project and regenerates every table/figure of the paper plus
# the ablation/extension benches. CSVs land in the directory this script is
# run from; pass a directory argument to collect them elsewhere.
#
# Builds happen in a dedicated build-bench/ directory so this script never
# fights over the generator with a build/ tree configured by another flow
# (e.g. the tier-1 Makefile run). Generator: Ninja when available, otherwise
# whatever CMake picks as its default.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-$PWD}"
build_dir="$repo_root/build-bench"

generator_args=()
if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  # Fresh configure: prefer Ninja, fall back to the default generator.
  if command -v ninja > /dev/null 2>&1; then
    generator_args=(-G Ninja)
  else
    echo "run_benches: ninja not found; using CMake's default generator" >&2
  fi
fi
# An already-configured build dir keeps its generator; forcing -G onto it
# would fail with a generator mismatch.

cmake -B "$build_dir" -S "$repo_root" "${generator_args[@]}" \
      -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j

mkdir -p "$out_dir"
cd "$out_dir"
shopt -s nullglob
benches=("$build_dir"/bench/*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "run_benches: no bench binaries found under $build_dir/bench" >&2
  exit 1
fi
for bench in "${benches[@]}"; do
  if [[ -f "$bench" && -x "$bench" ]]; then
    echo "### $(basename "$bench")"
    "$bench"
    echo
  fi
done

echo "CSV series written to $out_dir:"
ls -1 "$out_dir"/ufc_*.csv
