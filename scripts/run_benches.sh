#!/usr/bin/env bash
# Builds the project and regenerates every table/figure of the paper plus
# the ablation/extension benches. CSVs land in the directory this script is
# run from; pass a directory argument to collect them elsewhere.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-$PWD}"

cmake -B "$repo_root/build" -G Ninja -S "$repo_root"
cmake --build "$repo_root/build"

mkdir -p "$out_dir"
cd "$out_dir"
for bench in "$repo_root"/build/bench/*; do
  if [[ -f "$bench" && -x "$bench" ]]; then
    echo "### $(basename "$bench")"
    "$bench"
    echo
  fi
done

echo "CSV series written to $out_dir:"
ls -1 "$out_dir"/ufc_*.csv
