#!/usr/bin/env python3
"""UFC architecture & determinism analyzer.

Where scripts/ufc_lint.py checks per-line repo invariants, this tool builds a
parsed model of the whole tree (files, layers, the #include graph, function
definitions and an approximate call graph) and checks the properties the
bit-identity guarantee of the ADM-G engine actually rests on (see
docs/ARCHITECTURE.md "Layer DAG" and docs/STATIC_ANALYSIS.md):

  include-layering  The #include graph of src/ must match the declared layer
                    DAG (LAYER_DEPS below): no back-edges, no undeclared
                    cross-layer edges, no src file including the ufc.hpp
                    umbrella. src/obs may reach admm/net only through the
                    frozen seam headers (OBS_SEAM_HEADERS).
  include-cycle     The file-level include graph must be acyclic.
  dangling-include  Every project-form include ("...") must resolve to a file
                    in the tree (catches renames that leave stale includes).
  wall-clock        No raw clock reads (std::chrono, clock_gettime, time(),
                    ...) outside src/obs, the sanctioned monotonic seam
                    src/util/clock.hpp, and src/util/thread_pool.*. Solver
                    code that needs timing goes through util::monotonic_now()
                    so every clock dependency is reviewable in one place and
                    can never leak into iterate arithmetic.
  no-wall-clock-in-ctrl-tick
                    src/ctrl (the receding-horizon controller) may not read
                    any clock at all — not even the sanctioned
                    util/clock.hpp / obs/timer.hpp monotonic seam. Tick
                    deadlines are iteration budgets by design, which is what
                    keeps N-tick controller runs bit-reproducible and makes
                    the budget-resume identity testable exactly.
  ordered-containers
                    No std::unordered_{map,set,multimap,multiset} in src/admm
                    or src/net: iteration order is implementation-defined and
                    one range-for away from making iterate-producing paths
                    depend on the hash seed. Use std::map / sorted vectors
                    (the coordinator's health table is a std::map for exactly
                    this reason).
  rng-discipline    No std:: random engines or std::random_device outside
                    src/util/rng.*: all randomness flows through ufc::Rng so
                    seeds are explicit and runs reproducible.
  global-state      No mutable namespace-scope state in the solver layers
                    (src/math, src/opt, src/admm, src/net): hidden globals
                    break the "same inputs, same iterates" contract across
                    runs and across concurrently-running solves.
  step-exceptions   No try/catch/throw inside the engine iteration hot path
                    (InProcessExecutor::step, AdmgSolver::step,
                    AdmgEngine::solve): contract guards belong at entry
                    points, recovery belongs to the SolverWatchdog; an
                    exception escaping mid-iterate leaves the workspace
                    half-written.
  expects-reach     Every public entry point declared in src/admm and src/net
                    headers (free functions and out-of-line public methods
                    with parameters) must reach a UFC_EXPECTS/UFC_ENSURES/
                    validate() guard — either directly in its body, or
                    through a callee that its parameters are passed into
                    (call-graph-aware version of ufc_lint's per-file
                    expects-guard).
  net-io-confinement
                    Raw OS networking/process calls (socket, connect, bind,
                    accept, poll, fork, kill, waitpid, recv*, ...) may appear
                    only in src/net/socket_bus.cpp and src/net/supervisor.cpp
                    — everything else talks through the Transport/Supervisor
                    APIs, so the entire OS surface stays reviewable in two
                    files. Within those two files the genuinely blocking
                    calls (poll, waitpid — every fd is O_NONBLOCK, so the
                    rest cannot block) must sit inside a function that takes
                    an explicit deadline parameter, and poll's literal
                    infinite timeout (-1) is banned outright: no socket path
                    may wait forever (docs/DISTRIBUTION.md).
  registry-confinement
                    Concrete solver-ingredient classes (*Penalty,
                    *Acceleration, *Method) may be constructed directly only
                    in src/admm/ingredients.cpp and src/admm/centralized.cpp
                    — the files that implement and register them. All other
                    src code composes through the admm::Registry factories
                    by name (docs/SOLVER_INGREDIENTS.md), so every
                    composition the solver can run is introspectable and an
                    unknown name fails listing the registered alternatives.

Suppressing a finding: append `// ufc-analyze: allow(<rule>)` (with a
reason!) to the offending line, or place it alone on a comment line above.

Usage:
  scripts/ufc_analyze.py                analyze the repository, exit 1 on
                                        error findings
  scripts/ufc_analyze.py --json PATH    also write the ufc-findings-v1 report
  scripts/ufc_analyze.py --dot PATH     write the observed layer graph as
                                        Graphviz dot (docs/include_layers.dot
                                        is the committed copy)
  scripts/ufc_analyze.py --check-dot PATH
                                        fail if PATH is stale vs the tree
  scripts/ufc_analyze.py --self-test    run the analyzer's own test suite
  scripts/ufc_analyze.py --list-rules   print rule names and summaries
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from ufc_findings import (EXIT_USAGE, Finding, report,  # noqa: E402
                          validate_findings_json)

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOTS = ("src", "tests", "bench", "examples")

# ---------------------------------------------------------------------------
# The layer manifest: the architecture, as a machine-checkable contract.
#
# A layer may include itself and exactly the layers listed here (its direct
# dependencies; transitive closure is intentional repetition — an edge is
# only legal if it is declared, whether or not it is reachable). Bottom to
# top: util -> math -> {opt, model} -> traces -> admm -> net -> obs -> sim
# -> ctrl, with src/ufc.hpp as the umbrella only examples/tests may include.
# ---------------------------------------------------------------------------
LAYER_ORDER = ["util", "math", "opt", "model", "traces", "admm", "net", "obs",
               "sim", "ctrl"]
LAYER_DEPS: dict[str, set[str]] = {
    "util": set(),
    "math": {"util"},
    "opt": {"math", "util"},
    "model": {"math", "util"},
    "traces": {"model", "math", "util"},
    "admm": {"opt", "model", "math", "util"},
    "net": {"admm", "opt", "model", "math", "util"},
    # src/obs consumes solver *results* only; its reach into admm/net is
    # restricted to the seam headers below (same contract as ufc_lint's
    # obs-layering rule, here enforced graph-wide).
    "obs": {"model", "util"},
    "sim": {"obs", "admm", "traces", "model", "math", "opt", "util"},
    # The receding-horizon controller service sits on top of everything it
    # orchestrates; nothing may include it back (it is the top layer).
    "ctrl": {"sim", "obs", "admm", "traces", "model", "util"},
}
OBS_SEAM_HEADERS = {
    "src/admm/solve_core.hpp",   # driver-independent result types
    "src/admm/telemetry.hpp",    # IterationObserver / IterationSample seam
    "src/admm/watchdog.hpp",     # WatchdogVerdict named in SolveCore
    "src/net/link_stats.hpp",    # traffic counters, no bus machinery
}
UMBRELLA = "src/ufc.hpp"

SOLVER_LAYERS = ("math", "opt", "admm", "net")
CLOCK_ALLOWED = ("src/obs/", "src/util/clock.hpp", "src/util/thread_pool")
RNG_HOME = ("src/util/rng.hpp", "src/util/rng.cpp")
HOT_PATH_FUNCTIONS = ("InProcessExecutor::step", "AdmgSolver::step",
                      "AdmgEngine::solve")
EXPECTS_LAYERS = ("admm", "net")

ALLOW_RE = re.compile(r"ufc-analyze:\s*allow\(([a-z0-9-]+)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


# ---------------------------------------------------------------------------
# Tree model
# ---------------------------------------------------------------------------
@dataclass
class SourceFile:
    rel: str                 # repo-relative posix path
    layer: str               # LAYER_ORDER entry, "umbrella", "top" or "?"
    lines: list[str]
    text: str
    # (0-based line, include text as written, resolved rel path or None)
    includes: list[tuple[int, str, str | None]] = field(default_factory=list)


@dataclass
class Tree:
    root: Path
    files: dict[str, SourceFile]


def layer_of(rel: str) -> str:
    if rel == UMBRELLA:
        return "umbrella"
    if rel.startswith("src/"):
        parts = rel.split("/")
        return parts[1] if len(parts) > 2 else "?"
    return "top"  # tests/, bench/, examples/


def _strip_comments_and_strings(line: str) -> str:
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def _suppressed(lines: list[str], index: int, rule: str) -> bool:
    def carries(line: str) -> bool:
        m = ALLOW_RE.search(line)
        return bool(m) and m.group(1) == rule

    if 0 <= index < len(lines) and carries(lines[index]):
        return True
    probe = index - 1
    while probe >= 0 and lines[probe].strip().startswith("//"):
        if carries(lines[probe]):
            return True
        probe -= 1
    return False


def _resolve_include(tree_files: set[str], includer: str, header: str) -> str | None:
    # Project includes are rooted at src/ (the ufc library's include dir);
    # tests/bench also include siblings relative to their own directory.
    for candidate in (f"src/{header}",
                      str(Path(includer).parent / header),
                      f"tests/{header}"):
        candidate = Path(candidate).as_posix()
        if candidate in tree_files:
            return candidate
    return None


def build_tree(root: Path) -> Tree:
    files: dict[str, SourceFile] = {}
    for source_root in SOURCE_ROOTS:
        base = root / source_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".hpp", ".cpp"):
                continue
            rel = path.relative_to(root).as_posix()
            text = path.read_text(errors="replace")
            files[rel] = SourceFile(rel=rel, layer=layer_of(rel),
                                    lines=text.splitlines(), text=text)
    names = set(files)
    for source in files.values():
        for i, line in enumerate(source.lines):
            m = INCLUDE_RE.match(line)
            if m:
                source.includes.append(
                    (i, m.group(1), _resolve_include(names, source.rel,
                                                     m.group(1))))
    return Tree(root=root, files=files)


# ---------------------------------------------------------------------------
# Rule: include-layering / dangling-include / include-cycle
# ---------------------------------------------------------------------------
def _layer_edge_allowed(includer: SourceFile, target_rel: str) -> str | None:
    """Returns None if the edge is legal, else the finding message."""
    target_layer = layer_of(target_rel)
    source_layer = includer.layer
    if source_layer == "top":
        return None
    if target_rel == UMBRELLA or target_layer == "umbrella":
        return (f'"{target_rel}" is the umbrella header; only examples and '
                "tests may include it — src files include the specific "
                "headers they use")
    if source_layer == "umbrella":
        return None  # the umbrella deliberately includes everything
    if source_layer == "?" or source_layer not in LAYER_DEPS:
        return (f"src/{source_layer}/ is not a declared layer; add it to the "
                "LAYER_DEPS manifest in scripts/ufc_analyze.py")
    if target_layer == source_layer:
        return None
    if target_layer == "?" or target_layer not in LAYER_DEPS:
        return (f"src/{target_layer}/ is not a declared layer; add it to the "
                "LAYER_DEPS manifest in scripts/ufc_analyze.py")
    if source_layer == "obs" and target_layer in ("admm", "net"):
        if target_rel in OBS_SEAM_HEADERS:
            return None
        return (f'src/obs may reach {target_layer} only through the seam '
                f'headers {sorted(Path(h).name for h in OBS_SEAM_HEADERS)}; '
                f'"{target_rel}" is driver machinery — adapters belong in '
                "src/sim/manifest.cpp")
    if target_layer in LAYER_DEPS.get(source_layer, set()):
        return None
    if target_layer in LAYER_ORDER and source_layer in LAYER_ORDER and \
            LAYER_ORDER.index(target_layer) > LAYER_ORDER.index(source_layer):
        return (f"layering back-edge: {source_layer} (lower) must not include "
                f'"{target_rel}" ({target_layer} is a higher layer)')
    return (f"undeclared layer edge {source_layer} -> {target_layer}: not in "
            "the LAYER_DEPS manifest (declare it deliberately or remove the "
            "include)")


def check_layering(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        for index, header, resolved in source.includes:
            if resolved is None:
                if source.layer == "top" and not _suppressed(
                        source.lines, index, "dangling-include"):
                    # tests/bench may include generated or external headers;
                    # report unresolved project-style includes there too —
                    # they name files, so a miss is a rename gone stale.
                    findings.append(Finding(
                        source.rel, index + 1, "dangling-include",
                        f'include "{header}" does not resolve to a file in '
                        "the tree"))
                elif source.layer != "top" and not _suppressed(
                        source.lines, index, "dangling-include"):
                    findings.append(Finding(
                        source.rel, index + 1, "dangling-include",
                        f'include "{header}" does not resolve to a file in '
                        "the tree"))
                continue
            message = _layer_edge_allowed(source, resolved)
            if message and not _suppressed(source.lines, index,
                                           "include-layering"):
                findings.append(Finding(source.rel, index + 1,
                                        "include-layering", message))
    findings.extend(_check_cycles(tree))
    return findings


def _check_cycles(tree: Tree) -> list[Finding]:
    graph = {rel: [resolved for _, _, resolved in source.includes
                   if resolved is not None and resolved in tree.files]
             for rel, source in tree.files.items() if rel.startswith("src/")}
    index_counter = [0]
    stack: list[str] = []
    on_stack: set[str] = set()
    indices: dict[str, int] = {}
    low: dict[str, int] = {}
    sccs: list[list[str]] = []

    def strongconnect(start: str) -> None:
        work = [(start, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                indices[node] = low[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            children = [c for c in graph.get(node, []) if c in graph]
            for i in range(child_index, len(children)):
                child = children[i]
                if child not in indices:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], indices[child])
            if recurse:
                continue
            if low[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    sccs.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in sorted(graph):
        if node not in indices:
            strongconnect(node)

    findings = []
    for component in sorted(sccs):
        findings.append(Finding(
            component[0], 1, "include-cycle",
            "include cycle between " + ", ".join(component)))
    for rel, targets in sorted(graph.items()):
        if rel in targets:
            findings.append(Finding(rel, 1, "include-cycle",
                                    f"{rel} includes itself"))
    return findings


# ---------------------------------------------------------------------------
# Rule: wall-clock
# ---------------------------------------------------------------------------
CLOCK_RE = re.compile(
    r"std\s*::\s*chrono|steady_clock|system_clock|high_resolution_clock|"
    r"\bclock_gettime\b|\bgettimeofday\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)")


def check_wall_clock(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if not source.rel.startswith("src/"):
            continue
        if source.rel.startswith(CLOCK_ALLOWED):
            continue
        for i, line in enumerate(source.lines):
            code = _strip_comments_and_strings(line)
            if CLOCK_RE.search(code) and not _suppressed(source.lines, i,
                                                         "wall-clock"):
                findings.append(Finding(
                    source.rel, i + 1, "wall-clock",
                    "raw clock read outside src/obs and the util/clock.hpp "
                    "seam; use util::monotonic_now()/MonotonicTimer so every "
                    "clock dependency stays reviewable in one place"))
    return findings


# ---------------------------------------------------------------------------
# Rule: no-wall-clock-in-ctrl-tick
# ---------------------------------------------------------------------------
# The generic wall-clock rule already keeps raw std::chrono out of src/ctrl;
# this rule goes one step further: the controller layer may not consume even
# the sanctioned monotonic seam (util/clock.hpp, obs/timer.hpp). Tick
# deadlines in ctrl are iteration budgets by design — a clock read anywhere
# in the tick path would make N-tick runs irreproducible and break the
# budget-resume bit-identity the controller tests pin (docs/CONTROLLER.md).
CTRL_CLOCK_HEADERS = ("util/clock.hpp", "obs/timer.hpp")
CTRL_CLOCK_IDENT_RE = re.compile(
    r"\b(?:monotonic_now|MonotonicTimer|ScopedTimer|MonotonicTick)\b")


def check_ctrl_wall_clock(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if not source.rel.startswith("src/ctrl/"):
            continue
        banned_includes = {index for index, header, _ in source.includes
                           if header in CTRL_CLOCK_HEADERS}
        for i, line in enumerate(source.lines):
            code = _strip_comments_and_strings(line)
            if i not in banned_includes and not CTRL_CLOCK_IDENT_RE.search(code):
                continue
            if _suppressed(source.lines, i, "no-wall-clock-in-ctrl-tick"):
                continue
            findings.append(Finding(
                source.rel, i + 1, "no-wall-clock-in-ctrl-tick",
                "the controller layer must not read any clock — not even the "
                "util/clock.hpp monotonic seam: tick deadlines are iteration "
                "budgets, which is what keeps N-tick controller runs "
                "bit-reproducible"))
    return findings


# ---------------------------------------------------------------------------
# Rule: ordered-containers
# ---------------------------------------------------------------------------
UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\b")


def check_ordered_containers(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if layer_of(source.rel) not in ("admm", "net"):
            continue
        for i, line in enumerate(source.lines):
            code = _strip_comments_and_strings(line)
            if UNORDERED_RE.search(code) and not _suppressed(
                    source.lines, i, "ordered-containers"):
                findings.append(Finding(
                    source.rel, i + 1, "ordered-containers",
                    "unordered container on an iterate-producing layer: "
                    "iteration order is implementation-defined and would make "
                    "iterates depend on the hash seed — use std::map or a "
                    "sorted vector"))
    return findings


# ---------------------------------------------------------------------------
# Rule: rng-discipline
# ---------------------------------------------------------------------------
RNG_RE = re.compile(
    r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"random_device|ranlux\w+|knuth_b|subtract_with_carry_engine|"
    r"linear_congruential_engine|mersenne_twister_engine)\b")


def check_rng_discipline(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if not source.rel.startswith("src/") or source.rel in RNG_HOME:
            continue
        for i, line in enumerate(source.lines):
            code = _strip_comments_and_strings(line)
            if RNG_RE.search(code) and not _suppressed(source.lines, i,
                                                       "rng-discipline"):
                findings.append(Finding(
                    source.rel, i + 1, "rng-discipline",
                    "std:: random engine outside src/util/rng: all "
                    "randomness flows through ufc::Rng with an explicit seed "
                    "so runs are reproducible"))
    return findings


# ---------------------------------------------------------------------------
# Rule: global-state
# ---------------------------------------------------------------------------
# Keep only the characters at namespace scope (brace depth contributed by
# anything that is not a `namespace ... {` block drops the text), then look
# for variable declarations that are not const/constexpr.
_NS_OPEN_RE = re.compile(r"namespace\s+[\w:]*\s*(?:::\s*)?$|namespace\s*$")
_GLOBAL_DECL_RE = re.compile(
    r"^\s*(?:static\s+|inline\s+)*"
    r"(?!(?:const|constexpr|constinit|using|typedef|template|class|struct|"
    r"enum|namespace|friend|extern|static_assert|return|if|for|while|switch|"
    r"public|private|protected)\b)"
    r"[A-Za-z_][\w:<>,*&\s]*?[\s&*]([A-Za-z_]\w*)\s*(?:=[^=]|;|\{)")
_KEEP_QUALIFIERS_RE = re.compile(r"\b(?:const|constexpr|constinit)\b")


def _namespace_scope_lines(text: str) -> list[tuple[int, str]]:
    """Returns (0-based line, code) pairs for code at namespace scope."""
    out: list[tuple[int, str]] = []
    depth_stack: list[str] = []  # "ns" or "other" per open brace
    pending = ""  # code since the last ; { or } — classifies the next '{'
    for lineno, raw in enumerate(text.splitlines()):
        code = _strip_comments_and_strings(raw)
        at_ns_scope = all(kind == "ns" for kind in depth_stack)
        emitted = False
        for ch in code:
            if ch == "{":
                kind = "ns" if _NS_OPEN_RE.search(pending.strip()) else "other"
                depth_stack.append(kind)
                pending = ""
            elif ch == "}":
                if depth_stack:
                    depth_stack.pop()
                pending = ""
            elif ch == ";":
                if at_ns_scope and not emitted and pending.strip():
                    out.append((lineno, pending + ";"))
                    emitted = True
                pending = ""
            else:
                pending += ch
        # A declaration with an initializer brace list ends on the same line
        # in this codebase; multi-line namespace-scope statements are rare
        # enough that per-line classification is accurate.
        if at_ns_scope and not emitted and code.strip() and \
                all(kind == "ns" for kind in depth_stack) and \
                code.strip().endswith(";"):
            pass  # already handled through the ';' branch above
    return out


def check_global_state(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if layer_of(source.rel) not in SOLVER_LAYERS:
            continue
        for lineno, statement in _namespace_scope_lines(source.text):
            if _KEEP_QUALIFIERS_RE.search(statement):
                continue
            m = _GLOBAL_DECL_RE.match(statement)
            if not m:
                continue
            # A '(' before the declared name means a function declaration,
            # not a variable.
            if "(" in statement[:m.start(1)]:
                continue
            if _suppressed(source.lines, lineno, "global-state"):
                continue
            findings.append(Finding(
                source.rel, lineno + 1, "global-state",
                f"mutable namespace-scope state `{m.group(1)}` in a solver "
                "layer: hidden globals break the same-inputs-same-iterates "
                "contract (and race under the thread-pool passes) — make it "
                "const/constexpr, or thread it through explicit state"))
    return findings


# ---------------------------------------------------------------------------
# Rule: step-exceptions
# ---------------------------------------------------------------------------
EXCEPTION_RE = re.compile(r"\b(?:throw|try|catch)\b")


def _match_brace(text: str, start: int) -> int | None:
    """Index one past the `}` matching the `{` at `start`, or None."""
    depth, k = 0, start
    while k < len(text):
        if text[k] == "{":
            depth += 1
        elif text[k] == "}":
            depth -= 1
            if depth == 0:
                return k + 1
        k += 1
    return None


def _body_span(text: str, open_paren: int) -> tuple[int, int] | None:
    """(start, end) of the function body brace block for a definition whose
    parameter list opens at `open_paren`. Skips braces that belong to
    constructor member-initializer lists: braces inside parentheses
    (`csv_(std::vector<T>{...})`) and brace-initializers glued to a member
    name (`a_{1}`)."""
    depth, j = 0, open_paren
    while j < len(text):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                break
        j += 1
    if j >= len(text):
        return None
    k, paren_depth = j + 1, 0
    while k < len(text):
        ch = text[k]
        if ch == "(":
            paren_depth += 1
        elif ch == ")":
            paren_depth -= 1
        elif paren_depth == 0:
            if ch == ";":
                return None  # a declaration, not a definition
            if ch == "{":
                if k > 0 and (text[k - 1].isalnum() or text[k - 1] == "_"):
                    end = _match_brace(text, k)  # member brace-init `a_{...}`
                    if end is None:
                        return None
                    k = end
                    continue
                end = _match_brace(text, k)
                return None if end is None else (k, end)
        k += 1
    return None


def check_step_exceptions(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if layer_of(source.rel) != "admm" or not source.rel.endswith(".cpp"):
            continue
        for qualified in HOT_PATH_FUNCTIONS:
            cls, method = qualified.split("::")
            for m in re.finditer(
                    rf"\b{cls}\s*::\s*{method}\s*\(", source.text):
                span = _body_span(source.text, m.end() - 1)
                if span is None:
                    continue
                first = source.text.count("\n", 0, span[0])
                last = source.text.count("\n", 0, span[1])
                for i in range(first, min(last + 1, len(source.lines))):
                    code = _strip_comments_and_strings(source.lines[i])
                    if EXCEPTION_RE.search(code) and not _suppressed(
                            source.lines, i, "step-exceptions"):
                        findings.append(Finding(
                            source.rel, i + 1, "step-exceptions",
                            f"exception machinery inside {qualified}: the "
                            "iteration hot loop must stay exception-free — "
                            "guard at entry points, recover through the "
                            "SolverWatchdog"))
    return findings


# ---------------------------------------------------------------------------
# Rule: expects-reach (call-graph-aware contract audit)
# ---------------------------------------------------------------------------
GUARD_RE = re.compile(r"\bUFC_EXPECTS\b|\bUFC_ENSURES\b|[.>]\s*validate\s*\(")
CALL_RE = re.compile(r"(?:\b([A-Za-z_]\w*)\s*::\s*)?([A-Za-z_]\w*)\s*\(")
FREE_DECL_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?\b([a-z_]\w*)\s*\(")
_CALL_KEYWORDS = {"if", "for", "while", "switch", "return", "sizeof",
                  "static_cast", "const_cast", "reinterpret_cast", "catch",
                  "assert", "defined"}


@dataclass
class Definition:
    rel: str
    name: str            # "method" or bare function name
    qualifier: str       # "Class" or "" for free functions
    start_line: int      # 1-based
    params: list[str]    # parameter names
    body: str


_TYPE_TOKENS = ("void", "const", "int", "double", "float", "bool", "auto",
                "char", "size_t", "uint64_t", "int64_t", "uint32_t",
                "int32_t", "byte")


def _parameter_names(signature: str) -> list[str]:
    """Parameter names of a definition's signature. Unnamed parameters
    (`const SolveCore& /*core*/`) yield nothing: their last token is either a
    comment (stripped) or a CamelCase/builtin type name."""
    signature = re.sub(r"/\*.*?\*/", " ", signature, flags=re.S)
    open_paren = signature.find("(")
    close_paren = _body_span_args(signature, open_paren)
    if open_paren < 0 or close_paren is None:
        return []
    inner = signature[open_paren + 1:close_paren]
    names = []
    depth = 0
    part = ""
    parts = []
    for ch in inner:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(part)
            part = ""
        else:
            part += ch
    if part.strip():
        parts.append(part)
    for part in parts:
        part = part.split("=")[0].strip()
        tokens = re.findall(r"[A-Za-z_]\w*", part)
        if not tokens:
            continue
        last = tokens[-1]
        if last in _TYPE_TOKENS or last[0].isupper():
            continue  # a type name, not a parameter name (unnamed parameter)
        names.append(last)
    return names


DEF_RE = re.compile(
    r"^(?!\s)(?:[\w:<>,*&\s]+?[\s&*])?"
    r"(?:([A-Za-z_]\w*)\s*::\s*)?(~?[A-Za-z_]\w*)\s*\(",
    re.MULTILINE)


def _definitions_in(source: SourceFile) -> list[Definition]:
    defs = []
    for m in DEF_RE.finditer(source.text):
        prefix = source.text[m.start():m.end()]
        if prefix.lstrip().startswith(("if", "for", "while", "switch",
                                       "return", "else")):
            continue
        span = _body_span(source.text, m.end() - 1)
        if span is None:
            continue
        signature = source.text[m.start():span[0]]
        if re.search(r"=\s*(?:default|delete|0)\s*[;,]", signature):
            continue
        # The searched "body" starts after the parameter list so that
        # constructor member-initializer lists (delegating constructors,
        # member construction from parameters) participate in the call scan.
        params_close = _body_span_args(source.text, m.end() - 1)
        body_from = span[0] if params_close is None else params_close + 1
        defs.append(Definition(
            rel=source.rel,
            name=m.group(2),
            qualifier=m.group(1) or "",
            start_line=source.text.count("\n", 0, m.start()) + 1,
            params=_parameter_names(source.text[m.start():span[0]]),
            body=source.text[body_from:span[1]]))
    return defs


def _build_def_index(tree: Tree) -> dict[str, list[Definition]]:
    """Indexes every function definition in src/ by "Class::name" and by the
    bare name (bare-name lookups are only trusted when unambiguous)."""
    index: dict[str, list[Definition]] = {}
    for source in tree.files.values():
        if not source.rel.startswith("src/") or not source.rel.endswith(".cpp"):
            continue
        for definition in _definitions_in(source):
            if definition.qualifier:
                index.setdefault(
                    f"{definition.qualifier}::{definition.name}",
                    []).append(definition)
            index.setdefault(definition.name, []).append(definition)
    return index


def _guard_reachable(definition: Definition,
                     index: dict[str, list[Definition]],
                     depth: int, visited: set[str]) -> bool:
    if GUARD_RE.search(definition.body):
        return True
    if depth == 0:
        return False
    key = f"{definition.rel}:{definition.qualifier}::{definition.name}:{definition.start_line}"
    if key in visited:
        return False
    visited.add(key)
    params = set(definition.params)
    for m in CALL_RE.finditer(definition.body):
        qualifier, callee = m.group(1), m.group(2)
        if callee in _CALL_KEYWORDS or callee.isupper():
            continue  # keywords and macro invocations are not calls to follow
        # The call's argument list must mention one of this function's
        # parameters — otherwise the callee's guards say nothing about OUR
        # inputs. A member call on a parameter object also counts.
        span = _body_span_args(definition.body, m.end() - 1)
        args = definition.body[m.end():span] if span else ""
        receiver = definition.body[max(0, m.start() - 40):m.start()]
        mentions = any(re.search(rf"\b{re.escape(p)}\b", args) for p in params)
        receiver_is_param = bool(re.search(
            r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$", receiver)) and \
            (re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$", receiver).group(1)
             in params)
        if not mentions and not receiver_is_param:
            continue
        candidates = None
        if qualifier:
            candidates = index.get(f"{qualifier}::{callee}")
        elif callee[0].isupper():
            # An unqualified CamelCase call is a constructor — delegating
            # constructors and members built from parameters resolve to
            # Class::Class.
            candidates = index.get(f"{callee}::{callee}")
        if not candidates:
            candidates = index.get(callee, [])
            # Bare-name resolution is only trusted when every definition of
            # that name agrees (same body scanned, or unique).
            if len({(c.rel, c.start_line) for c in candidates}) > 1 and \
                    len({_guard_direct(c) for c in candidates}) > 1:
                continue
        for candidate in candidates or []:
            if _guard_reachable(candidate, index, depth - 1, visited):
                return True
    return False


def _guard_direct(definition: Definition) -> bool:
    return bool(GUARD_RE.search(definition.body))


def _body_span_args(text: str, open_paren: int) -> int | None:
    depth, j = 0, open_paren
    while j < len(text):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return None


def _public_entry_points(source: SourceFile) -> list[tuple[int, str, str]]:
    """Yields (0-based decl line, qualifier, name) for the public entry
    points a header declares: free functions at column 0 and public
    out-of-line member functions with at least one parameter."""
    entries: list[tuple[int, str, str]] = []
    class_stack: list[tuple[str, int, bool]] = []  # (name, depth, public)
    depth = 0
    for i, raw in enumerate(source.lines):
        code = _strip_comments_and_strings(raw)
        stripped = code.strip()
        m_class = re.match(r"(?:class|struct)\s+([A-Za-z_]\w*)[^;]*$", stripped)
        if m_class and "{" in code:
            class_stack.append((m_class.group(1), depth,
                                stripped.startswith("struct")))
        elif m_class:
            # brace on the next line; treat as opening now (depth catches up)
            class_stack.append((m_class.group(1), depth,
                                stripped.startswith("struct")))
        if stripped.startswith("public:"):
            if class_stack:
                name, d, _ = class_stack[-1]
                class_stack[-1] = (name, d, True)
        elif stripped.startswith(("private:", "protected:")):
            if class_stack:
                name, d, _ = class_stack[-1]
                class_stack[-1] = (name, d, False)
        if not class_stack and depth == 0 and not raw.startswith(
                (" ", "\t", "//", "#", "}", "using ", "class ", "struct ",
                 "enum ", "namespace ", "template", "typedef")):
            m = FREE_DECL_RE.match(raw)
            if m and code.rstrip().endswith(";") and "=" not in code and \
                    not re.search(rf"\b{m.group(1)}\s*\(\s*\)", code):
                entries.append((i, "", m.group(1)))
        elif class_stack and class_stack[-1][2]:
            cls = class_stack[-1][0]
            m = re.match(r"\s+(?:virtual\s+|static\s+|explicit\s+)*"
                         r"[\w:<>,*&\s]*?\b(~?[A-Za-z_]\w*)\s*\(", raw)
            if m and code.rstrip().endswith(";") and \
                    "= default" not in code and "= delete" not in code and \
                    "= 0" not in code and "{" not in code and \
                    not m.group(1).startswith("~") and \
                    not re.search(rf"\b{re.escape(m.group(1))}\s*\(\s*\)",
                                  code) and \
                    not stripped.startswith(("return", "if", "for", "while")):
                entries.append((i, cls, m.group(1)))
        depth += code.count("{") - code.count("}")
        while class_stack and depth <= class_stack[-1][1]:
            class_stack.pop()
    return entries


def check_expects_reach(tree: Tree) -> list[Finding]:
    index = _build_def_index(tree)
    findings = []
    for source in tree.files.values():
        if layer_of(source.rel) not in EXPECTS_LAYERS or \
                not source.rel.endswith(".hpp"):
            continue
        for decl_line, qualifier, name in _public_entry_points(source):
            key = f"{qualifier}::{name}" if qualifier else name
            candidates = index.get(key, [])
            if not qualifier:
                candidates = [c for c in index.get(name, [])
                              if not c.qualifier]
            if not candidates:
                continue  # declared but not defined out-of-line in src/
            definition = candidates[0]
            if not definition.params:
                continue
            if _guard_reachable(definition, index, depth=3, visited=set()):
                continue
            if _suppressed(source.lines, decl_line, "expects-reach") or \
                    _suppressed(tree.files[definition.rel].lines,
                                definition.start_line - 1, "expects-reach"):
                continue
            label = f"{qualifier}::{name}" if qualifier else name
            findings.append(Finding(
                definition.rel, definition.start_line, "expects-reach",
                f"public entry point `{label}` (declared in {source.rel}:"
                f"{decl_line + 1}) never reaches a UFC_EXPECTS/validate() "
                "guard through any call its parameters are passed into"))
    return findings


# ---------------------------------------------------------------------------
# Rule: net-io-confinement
# ---------------------------------------------------------------------------
# The two files allowed to touch the OS: the socket transport and the process
# supervisor. Everything else in src/ goes through their APIs.
NET_IO_HOME = ("src/net/socket_bus.cpp", "src/net/supervisor.cpp")
# Call-form matches only: `::poll(` / `poll(`, never `poll_pending(` (the \b
# plus the following `(` excludes identifiers that merely embed a name) and
# never `std::bind(` (the lookbehind rejects a qualified scope).
_OS_CALL_NAMES = (
    r"socketpair|socket|connect|bind|listen|accept4|accept|poll|fork|"
    r"exec[lv]p?e?|kill|waitpid|recvfrom|recvmsg|recv|sendto|sendmsg|"
    r"setsockopt|getsockopt|getsockname|getpeername|inet_pton|inet_ntop|"
    r"select|epoll_wait|epoll_create1?|sigaction")
OS_CALL_RE = re.compile(
    rf"(?<![\w.>:])(?:::\s*)?\b({_OS_CALL_NAMES})\s*\(")
# With every fd O_NONBLOCK, these are the only two calls that can park the
# process; each call site must live in a deadline-scoped function.
BLOCKING_CALL_RE = re.compile(r"(?<![\w.>:])(?:::\s*)?\b(poll|waitpid)\s*\(")
POLL_FOREVER_RE = re.compile(r"\bpoll\s*\([^;()]*(?:\([^()]*\)[^;()]*)*,\s*-1\s*\)")
# Tokens that may legally precede a genuine call expression. Any OTHER
# identifier before the name means a return type — i.e. the line declares a
# same-named function (Rng::fork, Widget::connect, ...), which is not an OS
# call.
_CALL_CONTEXT_KEYWORDS = {"return", "case", "throw", "else", "do", "goto",
                          "co_return", "co_await", "co_yield"}


def _declares_not_calls(code: str, match_start: int) -> bool:
    before = code[:match_start].rstrip()
    m = re.search(r"([A-Za-z_]\w*)$", before)
    return bool(m) and m.group(1) not in _CALL_CONTEXT_KEYWORDS


def _enclosing_params(source: SourceFile, offset: int) -> list[str] | None:
    """Parameter names of the function definition whose body contains text
    offset `offset`, or None when the offset is outside every definition."""
    for m in DEF_RE.finditer(source.text):
        span = _body_span(source.text, m.end() - 1)
        if span is not None and span[0] <= offset < span[1]:
            return _parameter_names(source.text[m.start():span[0]])
    return None


def check_net_io_confinement(tree: Tree) -> list[Finding]:
    findings = []
    for source in tree.files.values():
        if not source.rel.startswith("src/"):
            continue
        confined = source.rel in NET_IO_HOME
        offset = 0
        for i, line in enumerate(source.lines):
            code = _strip_comments_and_strings(line)
            line_offset = offset
            offset += len(source.lines[i]) + 1
            if not confined:
                m = OS_CALL_RE.search(code)
                if m and _declares_not_calls(code, m.start()):
                    m = None
                if m and not _suppressed(source.lines, i,
                                         "net-io-confinement"):
                    findings.append(Finding(
                        source.rel, i + 1, "net-io-confinement",
                        f"raw OS call `{m.group(1)}` outside the confined "
                        f"files {list(NET_IO_HOME)}: all socket and process "
                        "machinery flows through SocketBus/Supervisor so the "
                        "OS surface stays reviewable in one place"))
                continue
            if POLL_FOREVER_RE.search(code) and not _suppressed(
                    source.lines, i, "net-io-confinement"):
                findings.append(Finding(
                    source.rel, i + 1, "net-io-confinement",
                    "poll with an infinite timeout (-1): every socket wait "
                    "must be bounded by an explicit deadline — use "
                    "IoDeadline::remaining_ms()"))
                continue
            m = BLOCKING_CALL_RE.search(code)
            if m and not _suppressed(source.lines, i, "net-io-confinement"):
                params = _enclosing_params(
                    source, line_offset + code.find(m.group(1)))
                if params is None or not any("deadline" in p for p in params):
                    findings.append(Finding(
                        source.rel, i + 1, "net-io-confinement",
                        f"blocking call `{m.group(1)}` in a function without "
                        "a deadline parameter: the no-call-blocks-forever "
                        "contract requires every potentially blocking wait "
                        "to be scoped by a caller-supplied deadline"))
    return findings


# ---------------------------------------------------------------------------
# registry-confinement
# ---------------------------------------------------------------------------
INGREDIENT_HOMES = ("src/admm/ingredients.cpp", "src/admm/centralized.cpp")
INGREDIENT_CTOR_RE = re.compile(
    r"\b(?:new\s+|std\s*::\s*make_unique\s*<\s*)"
    r"([A-Z]\w*(?:Penalty|Acceleration|Method))\b")


def check_registry_confinement(tree: Tree) -> list[Finding]:
    """Concrete solver-ingredient classes (the *Penalty / *Acceleration /
    *Method policies behind the factory seam) may be constructed directly
    only in the files that implement and register them. Everything else
    composes through admm::Registry by name, so every composition the solver
    can run stays introspectable and an unknown name fails with the
    registered alternatives listed."""
    findings = []
    for source in tree.files.values():
        if not source.rel.startswith("src/"):
            continue
        if source.rel in INGREDIENT_HOMES:
            continue
        for i, line in enumerate(source.lines):
            code = _strip_comments_and_strings(line)
            m = INGREDIENT_CTOR_RE.search(code)
            if m and not _suppressed(source.lines, i, "registry-confinement"):
                findings.append(Finding(
                    source.rel, i + 1, "registry-confinement",
                    f"direct construction of `{m.group(1)}` outside "
                    f"{list(INGREDIENT_HOMES)}: solver ingredients are "
                    "composed through the registry factories "
                    "(penalty_registry / acceleration_registry / "
                    "centralized_registry), so every composition is "
                    "name-addressable and unknown names fail listing the "
                    "alternatives"))
    return findings


# ---------------------------------------------------------------------------
# Layer graph emission
# ---------------------------------------------------------------------------
def layer_graph_dot(tree: Tree) -> str:
    edges: dict[tuple[str, str], int] = {}
    for source in tree.files.values():
        if not source.rel.startswith("src/") or source.layer == "umbrella":
            continue
        for _, _, resolved in source.includes:
            if resolved is None:
                continue
            target = layer_of(resolved)
            if target == source.layer or target in ("top", "umbrella"):
                continue
            edges[(source.layer, target)] = edges.get(
                (source.layer, target), 0) + 1
    lines = [
        "// Observed src/ layer graph. Generated by scripts/ufc_analyze.py "
        "--dot;",
        "// regenerate after layering changes (the check-dot ctest entry "
        "keeps it fresh).",
        "digraph ufc_layers {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    present = sorted({layer for pair in edges for layer in pair},
                     key=LAYER_ORDER.index)
    for layer in present:
        lines.append(f'  "{layer}";')
    for (source_layer, target), count in sorted(edges.items()):
        lines.append(f'  "{source_layer}" -> "{target}" [label="{count}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def check_dot_fresh(tree: Tree, dot_path: Path) -> list[Finding]:
    expected = layer_graph_dot(tree)
    try:
        actual = dot_path.read_text()
    except OSError:
        return [Finding(str(dot_path), 1, "dot-stale",
                        "committed layer graph missing; regenerate with "
                        "scripts/ufc_analyze.py --dot " + str(dot_path))]
    if actual != expected:
        return [Finding(str(dot_path), 1, "dot-stale",
                        "committed layer graph is stale; regenerate with "
                        "scripts/ufc_analyze.py --dot " + str(dot_path))]
    return []


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
RULES = {
    "include-layering": (None, "src #include graph matches the declared layer DAG"),
    "include-cycle": (None, "file-level include graph is acyclic"),
    "dangling-include": (None, "every project include resolves to a file"),
    "wall-clock": (check_wall_clock, "no raw clock reads outside obs + util/clock seam"),
    "no-wall-clock-in-ctrl-tick": (check_ctrl_wall_clock,
                                   "src/ctrl never reads a clock, not even "
                                   "the monotonic seam"),
    "ordered-containers": (check_ordered_containers, "no unordered containers in admm/net"),
    "rng-discipline": (check_rng_discipline, "std:: random engines only inside util/rng"),
    "global-state": (check_global_state, "no mutable namespace-scope state in solver layers"),
    "step-exceptions": (check_step_exceptions, "no try/catch/throw in the iteration hot path"),
    "expects-reach": (check_expects_reach, "admm/net entry points reach a UFC_EXPECTS guard"),
    "net-io-confinement": (check_net_io_confinement,
                           "raw OS calls only in socket_bus/supervisor; "
                           "blocking waits deadline-scoped"),
    "registry-confinement": (check_registry_confinement,
                             "solver ingredients constructed only in their "
                             "registry homes"),
    "dot-stale": (None, "committed docs layer graph matches the tree"),
}


def analyze_tree(root: Path) -> list[Finding]:
    tree = build_tree(root)
    findings = check_layering(tree)
    for rule, (fn, _) in RULES.items():
        if fn is not None:
            findings.extend(fn(tree))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="tree to analyze (default: the repository)")
    parser.add_argument("--json", type=Path, metavar="PATH",
                        help="write the ufc-findings-v1 JSON report")
    parser.add_argument("--dot", type=Path, metavar="PATH",
                        help="write the observed layer graph as Graphviz dot")
    parser.add_argument("--check-dot", type=Path, metavar="PATH",
                        help="fail when PATH is stale w.r.t. the tree")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer's test suite")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rules and exit")
    args = parser.parse_args()

    if args.self_test:
        from ufc_analyze_selftest import run  # noqa: PLC0415
        return run()
    if args.list_rules:
        for rule, (_, summary) in RULES.items():
            print(f"{rule:20s} {summary}")
        return 0
    if not args.root.is_dir():
        print(f"ufc_analyze: no such directory: {args.root}", file=sys.stderr)
        return EXIT_USAGE

    tree = build_tree(args.root)
    findings = check_layering(tree)
    for rule, (fn, _) in RULES.items():
        if fn is not None:
            findings.extend(fn(tree))
    if args.check_dot is not None:
        findings.extend(check_dot_fresh(tree, args.check_dot))
    if args.dot is not None:
        args.dot.write_text(layer_graph_dot(tree))
    return report("ufc_analyze", findings, checked=len(tree.files),
                  json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
