#!/usr/bin/env python3
"""Validate the machine-readable run artifacts the C++ side emits.

Two schemas are checked (see docs/OBSERVABILITY.md):

  ufc-bench-v1   BENCH_ufc.json — written by the bench binaries through
                 obs::update_bench_artifact(). A document with a "benchmarks"
                 list of {"name", "metrics"} entries; names must be unique
                 non-empty snake_case identifiers and metrics a JSON object.
  ufc-run-v1     ufc_cli --metrics manifests — written by obs::RunManifest.
                 Must carry "command" and, when present, a well-formed
                 "metrics" registry snapshot (counters are non-negative
                 integers, histogram bucket_counts have exactly
                 len(boundaries) + 1 entries summing to "count").

Non-finite doubles are serialized as the pinned strings "nan"/"inf"/"-inf"
(shared with the CSV layer); the validator accepts those wherever a number is
expected, and rejects bare NaN/Infinity tokens, which are not JSON.

Usage:
  scripts/check_bench_json.py FILE...     validate artifacts, exit 1 on errors
  scripts/check_bench_json.py --self-test run the validator's own test suite
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"[a-z][a-z0-9_]*$")
NONFINITE_STRINGS = {"nan", "inf", "-inf"}


class Errors:
    def __init__(self, path: str):
        self.path = path
        self.messages: list[str] = []

    def add(self, where: str, message: str) -> None:
        self.messages.append(f"{self.path}: {where}: {message}")


def is_number(value) -> bool:
    """A JSON number, or the pinned non-finite string encoding."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    return isinstance(value, str) and value in NONFINITE_STRINGS


def load(path: Path, errors: Errors):
    try:
        text = path.read_text()
    except OSError as error:
        errors.add("file", f"unreadable: {error}")
        return None
    try:
        # parse_constant rejects the bare NaN/Infinity tokens Python's json
        # otherwise tolerates; the C++ emitter never writes them.
        return json.loads(text, parse_constant=lambda token: (_ for _ in ()).throw(
            ValueError(f"non-standard JSON token {token!r}")))
    except ValueError as error:
        errors.add("file", f"not valid JSON: {error}")
        return None


# --------------------------------------------------------------------------
# Metrics registry snapshot (shared by both schemas).
# --------------------------------------------------------------------------
def check_metrics(metrics, errors: Errors, where: str) -> None:
    if not isinstance(metrics, dict):
        errors.add(where, "metrics must be an object")
        return
    for section in metrics:
        if section not in ("counters", "gauges", "histograms"):
            errors.add(where, f"unknown metrics section {section!r}")
    for name, value in metrics.get("counters", {}).items():
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.add(where, f"counter {name!r} must be a non-negative integer")
    for name, value in metrics.get("gauges", {}).items():
        if not is_number(value):
            errors.add(where, f"gauge {name!r} must be a number")
    for name, histogram in metrics.get("histograms", {}).items():
        if not isinstance(histogram, dict):
            errors.add(where, f"histogram {name!r} must be an object")
            continue
        boundaries = histogram.get("boundaries")
        counts = histogram.get("bucket_counts")
        if not isinstance(boundaries, list) or not boundaries or \
                not all(is_number(b) for b in boundaries):
            errors.add(where, f"histogram {name!r}: boundaries must be a "
                              "non-empty number list")
            continue
        finite = [b for b in boundaries if isinstance(b, (int, float))]
        if finite != sorted(finite) or len(set(finite)) != len(finite):
            errors.add(where, f"histogram {name!r}: boundaries must be "
                              "strictly increasing")
        if not isinstance(counts, list) or \
                not all(isinstance(c, int) and not isinstance(c, bool) and c >= 0
                        for c in counts):
            errors.add(where, f"histogram {name!r}: bucket_counts must be "
                              "non-negative integers")
            continue
        if len(counts) != len(boundaries) + 1:
            errors.add(where, f"histogram {name!r}: expected "
                              f"{len(boundaries) + 1} buckets, got {len(counts)}")
        total = histogram.get("count")
        if isinstance(total, int) and sum(counts) != total:
            errors.add(where, f"histogram {name!r}: bucket_counts sum "
                              f"{sum(counts)} != count {total}")
        if not is_number(histogram.get("sum")):
            errors.add(where, f"histogram {name!r}: sum must be a number")


# --------------------------------------------------------------------------
# ufc-bench-v1
# --------------------------------------------------------------------------
def check_bench_document(doc, errors: Errors) -> None:
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list):
        errors.add("document", '"benchmarks" must be a list')
        return
    if not benchmarks:
        errors.add("document", '"benchmarks" is empty — no bench has run')
        return
    seen: set[str] = set()
    for index, entry in enumerate(benchmarks):
        where = f"benchmarks[{index}]"
        if not isinstance(entry, dict):
            errors.add(where, "entry must be an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not NAME_RE.match(name):
            errors.add(where, f"name {name!r} must match [a-z][a-z0-9_]*")
        elif name in seen:
            errors.add(where, f"duplicate bench name {name!r}")
        else:
            seen.add(name)
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            errors.add(where, '"metrics" must be a non-empty object')
            continue
        if "solver" in metrics and isinstance(metrics["solver"], dict):
            check_metrics(metrics["solver"], errors, f"{where}.metrics.solver")
        if "transport_overhead" in metrics:
            check_transport_overhead(metrics["transport_overhead"], errors,
                                     f"{where}.metrics.transport_overhead")
        if "iteration_frontier" in metrics:
            check_iteration_frontier(metrics["iteration_frontier"], errors,
                                     f"{where}.metrics.iteration_frontier")
        if "controller" in metrics:
            check_controller(metrics["controller"], errors,
                             f"{where}.metrics.controller")


TRANSPORTS = {"in_process", "unix", "tcp"}


def check_transport_overhead(section, errors: Errors, where: str) -> None:
    """The socket_bus bench's section: rows of {transport, m, n,
    rounds_per_sec, bytes_per_round} comparing in-process, Unix-domain and
    TCP-loopback transports at a few protocol sizes."""
    if not isinstance(section, list) or not section:
        errors.add(where, "must be a non-empty list of rows")
        return
    for index, row in enumerate(section):
        here = f"{where}[{index}]"
        if not isinstance(row, dict):
            errors.add(here, "row must be an object")
            continue
        if row.get("transport") not in TRANSPORTS:
            errors.add(here, f"transport {row.get('transport')!r} must be one "
                             f"of {sorted(TRANSPORTS)}")
        for key in ("m", "n"):
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or \
                    value <= 0:
                errors.add(here, f"{key!r} must be a positive integer")
        for key in ("rounds_per_sec", "bytes_per_round"):
            value = row.get(key)
            if not is_number(value) or \
                    (isinstance(value, (int, float)) and value <= 0):
                errors.add(here, f"{key!r} must be a positive number")


PENALTIES = {"fixed", "residual-balance"}
ACCELERATIONS = {"none", "over-relaxation", "anderson"}


def check_iteration_frontier(section, errors: Errors, where: str) -> None:
    """The bench_ingredients section: rows of {m, n, penalty, acceleration,
    iterations, converged, wall_seconds, speedup_vs_fixed} comparing solver-
    ingredient compositions against the fixed+none baseline per size. Every
    (m, n) size must carry that baseline row, or the speedup column has no
    denominator."""
    if not isinstance(section, list) or not section:
        errors.add(where, "must be a non-empty list of rows")
        return
    sizes: set[tuple] = set()
    baselines: set[tuple] = set()
    for index, row in enumerate(section):
        here = f"{where}[{index}]"
        if not isinstance(row, dict):
            errors.add(here, "row must be an object")
            continue
        for key in ("m", "n", "iterations"):
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or \
                    value <= 0:
                errors.add(here, f"{key!r} must be a positive integer")
        penalty = row.get("penalty")
        if penalty not in PENALTIES:
            errors.add(here, f"penalty {penalty!r} must be one of "
                             f"{sorted(PENALTIES)}")
        acceleration = row.get("acceleration")
        if acceleration not in ACCELERATIONS:
            errors.add(here, f"acceleration {acceleration!r} must be one of "
                             f"{sorted(ACCELERATIONS)}")
        if not isinstance(row.get("converged"), bool):
            errors.add(here, '"converged" must be a boolean')
        for key in ("wall_seconds", "speedup_vs_fixed"):
            value = row.get(key)
            if not is_number(value) or \
                    (isinstance(value, (int, float)) and value < 0):
                errors.add(here, f"{key!r} must be a non-negative number")
        if isinstance(row.get("m"), int) and isinstance(row.get("n"), int):
            size = (row["m"], row["n"])
            sizes.add(size)
            if penalty == "fixed" and acceleration == "none":
                baselines.add(size)
    for size in sorted(sizes - baselines):
        errors.add(where, f"size {size[0]}x{size[1]} has no fixed+none "
                          "baseline row")


def check_controller(section, errors: Errors, where: str) -> None:
    """The bench_controller section: warm-vs-cold receding-horizon totals
    {ticks, budget_per_tick, warm_iterations, cold_iterations,
    warm_budget_exhausted, cold_budget_exhausted, savings_ratio}. The
    savings ratio must agree with the iteration totals it summarizes."""
    if not isinstance(section, dict):
        errors.add(where, "must be an object")
        return
    for key in ("ticks", "budget_per_tick"):
        value = section.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            errors.add(where, f"{key!r} must be a positive integer")
    for key in ("warm_iterations", "cold_iterations",
                "warm_budget_exhausted", "cold_budget_exhausted"):
        value = section.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.add(where, f"{key!r} must be a non-negative integer")
    savings = section.get("savings_ratio")
    if not is_number(savings) or isinstance(savings, str):
        errors.add(where, '"savings_ratio" must be a finite number')
        return
    warm = section.get("warm_iterations")
    cold = section.get("cold_iterations")
    if isinstance(warm, int) and isinstance(cold, int) and cold > 0:
        expected = 1.0 - warm / cold
        if abs(savings - expected) > 1e-6:
            errors.add(where, f'"savings_ratio" {savings} does not match '
                              f"1 - warm/cold = {expected}")


# --------------------------------------------------------------------------
# ufc-run-v1
# --------------------------------------------------------------------------
RUN_COMMANDS = {"solve", "simulate", "sweep-price", "sweep-tax", "traces",
                "distributed_demo", "controller_demo"}


def check_run_document(doc, errors: Errors) -> None:
    command = doc.get("command")
    if command not in RUN_COMMANDS:
        errors.add("document", f'"command" {command!r} must be one of '
                               f"{sorted(RUN_COMMANDS)}")
    if "metrics" in doc:
        check_metrics(doc["metrics"], errors, "metrics")
    strategies = doc.get("strategies")
    if strategies is not None:
        if not isinstance(strategies, dict) or not strategies:
            errors.add("strategies", "must be a non-empty object")
        else:
            for name, core in strategies.items():
                if not isinstance(core, dict):
                    errors.add(f"strategies.{name}", "must be an object")
                    continue
                for key in ("iterations", "converged", "breakdown"):
                    if key not in core:
                        errors.add(f"strategies.{name}", f"missing {key!r}")


def check_file(path: Path) -> list[str]:
    errors = Errors(str(path))
    doc = load(path, errors)
    if doc is None:
        return errors.messages
    if not isinstance(doc, dict):
        errors.add("document", "top level must be an object")
        return errors.messages
    schema = doc.get("schema")
    if schema == "ufc-bench-v1":
        check_bench_document(doc, errors)
    elif schema == "ufc-run-v1":
        check_run_document(doc, errors)
    else:
        errors.add("document", f'unknown "schema" {schema!r} (expected '
                               '"ufc-bench-v1" or "ufc-run-v1")')
    return errors.messages


# --------------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------------
def self_test() -> int:
    import tempfile
    import unittest

    def messages_for(document) -> list[str]:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "artifact.json"
            if isinstance(document, str):
                path.write_text(document)
            else:
                path.write_text(json.dumps(document))
            return check_file(path)

    GOOD_BENCH = {
        "schema": "ufc-bench-v1",
        "benchmarks": [
            {"name": "fig11_convergence_cdf",
             "metrics": {
                 "runs": 168,
                 "solver": {
                     "counters": {"solver.iterations": 100},
                     "histograms": {"t": {"boundaries": [1.0, 2.0],
                                          "bucket_counts": [1, 2, 0],
                                          "count": 3, "sum": 4.5}}}}},
            {"name": "parallel_scaling", "metrics": {"rows": []}},
        ],
    }
    GOOD_RUN = {
        "schema": "ufc-run-v1",
        "command": "solve",
        "strategies": {"Hybrid": {"iterations": 109, "converged": True,
                                  "breakdown": {"ufc": -1355.0}}},
        "metrics": {"counters": {"solver.solves": 3},
                    "gauges": {"solver.last.objective": -1355.0}},
    }

    class CheckTests(unittest.TestCase):
        def test_good_bench_document_passes(self):
            self.assertEqual(messages_for(GOOD_BENCH), [])

        def test_good_run_document_passes(self):
            self.assertEqual(messages_for(GOOD_RUN), [])

        def test_invalid_json_fails(self):
            self.assertTrue(messages_for("{not json"))

        def test_bare_nan_token_rejected(self):
            self.assertTrue(messages_for('{"schema": "ufc-run-v1", "x": NaN}'))

        def test_pinned_nonfinite_strings_accepted(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"gauges": {"g": "inf"}}
            self.assertEqual(messages_for(doc), [])

        def test_unknown_schema_fails(self):
            self.assertTrue(messages_for({"schema": "something-else"}))

        def test_missing_schema_fails(self):
            self.assertTrue(messages_for({"benchmarks": []}))

        def test_empty_benchmarks_fails(self):
            self.assertTrue(messages_for({"schema": "ufc-bench-v1",
                                          "benchmarks": []}))

        def test_duplicate_bench_names_fail(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "a", "metrics": {"x": 1}},
                                  {"name": "a", "metrics": {"x": 2}}]}
            self.assertTrue(messages_for(doc))

        def test_bad_bench_name_fails(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "Fig 11!", "metrics": {"x": 1}}]}
            self.assertTrue(messages_for(doc))

        def test_empty_metrics_fails(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "a", "metrics": {}}]}
            self.assertTrue(messages_for(doc))

        def test_good_transport_overhead_passes(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "socket_bus", "metrics": {
                       "transport_overhead": [
                           {"transport": "in_process", "m": 4, "n": 3,
                            "rounds": 200, "rounds_per_sec": 120000.0,
                            "bytes_per_round": 1224.0},
                           {"transport": "unix", "m": 4, "n": 3,
                            "rounds": 200, "rounds_per_sec": 9000.0,
                            "bytes_per_round": 1416.0}]}}]}
            self.assertEqual(messages_for(doc), [])

        def test_transport_overhead_unknown_transport_fails(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "socket_bus", "metrics": {
                       "transport_overhead": [
                           {"transport": "carrier_pigeon", "m": 4, "n": 3,
                            "rounds_per_sec": 1.0,
                            "bytes_per_round": 1.0}]}}]}
            self.assertTrue(messages_for(doc))

        def test_transport_overhead_nonpositive_rate_fails(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "socket_bus", "metrics": {
                       "transport_overhead": [
                           {"transport": "tcp", "m": 4, "n": 3,
                            "rounds_per_sec": 0.0,
                            "bytes_per_round": 100.0}]}}]}
            self.assertTrue(messages_for(doc))

        def test_transport_overhead_empty_list_fails(self):
            doc = {"schema": "ufc-bench-v1",
                   "benchmarks": [{"name": "socket_bus", "metrics": {
                       "transport_overhead": []}}]}
            self.assertTrue(messages_for(doc))

        def _frontier_doc(self, rows):
            return {"schema": "ufc-bench-v1",
                    "benchmarks": [{"name": "ingredients", "metrics": {
                        "iteration_frontier": rows}}]}

        def test_good_iteration_frontier_passes(self):
            doc = self._frontier_doc([
                {"m": 64, "n": 16, "penalty": "fixed", "acceleration": "none",
                 "iterations": 500, "converged": True, "wall_seconds": 1.5,
                 "speedup_vs_fixed": 1.0},
                {"m": 64, "n": 16, "penalty": "fixed",
                 "acceleration": "anderson", "iterations": 200,
                 "converged": True, "wall_seconds": 0.7,
                 "speedup_vs_fixed": 2.5}])
            self.assertEqual(messages_for(doc), [])

        def test_iteration_frontier_unknown_penalty_fails(self):
            doc = self._frontier_doc([
                {"m": 64, "n": 16, "penalty": "warm-start",
                 "acceleration": "none", "iterations": 1, "converged": True,
                 "wall_seconds": 0.1, "speedup_vs_fixed": 1.0}])
            self.assertTrue(messages_for(doc))

        def test_iteration_frontier_unknown_acceleration_fails(self):
            doc = self._frontier_doc([
                {"m": 64, "n": 16, "penalty": "fixed",
                 "acceleration": "nesterov", "iterations": 1,
                 "converged": True, "wall_seconds": 0.1,
                 "speedup_vs_fixed": 1.0}])
            self.assertTrue(messages_for(doc))

        def test_iteration_frontier_missing_baseline_fails(self):
            doc = self._frontier_doc([
                {"m": 64, "n": 16, "penalty": "fixed",
                 "acceleration": "anderson", "iterations": 200,
                 "converged": True, "wall_seconds": 0.7,
                 "speedup_vs_fixed": 2.5}])
            self.assertTrue(messages_for(doc))

        def test_iteration_frontier_nonboolean_converged_fails(self):
            doc = self._frontier_doc([
                {"m": 64, "n": 16, "penalty": "fixed", "acceleration": "none",
                 "iterations": 1, "converged": 1, "wall_seconds": 0.1,
                 "speedup_vs_fixed": 1.0}])
            self.assertTrue(messages_for(doc))

        def test_iteration_frontier_negative_speedup_fails(self):
            doc = self._frontier_doc([
                {"m": 64, "n": 16, "penalty": "fixed", "acceleration": "none",
                 "iterations": 1, "converged": True, "wall_seconds": 0.1,
                 "speedup_vs_fixed": -2.0}])
            self.assertTrue(messages_for(doc))

        def test_iteration_frontier_empty_list_fails(self):
            self.assertTrue(messages_for(self._frontier_doc([])))

        def _controller_doc(self, section):
            return {"schema": "ufc-bench-v1",
                    "benchmarks": [{"name": "controller", "metrics": {
                        "controller": section}}]}

        def test_good_controller_section_passes(self):
            doc = self._controller_doc(
                {"ticks": 24, "budget_per_tick": 400,
                 "warm_iterations": 470, "cold_iterations": 678,
                 "warm_budget_exhausted": 0, "cold_budget_exhausted": 0,
                 "savings_ratio": 1.0 - 470 / 678})
            self.assertEqual(messages_for(doc), [])

        def test_controller_nonpositive_ticks_fails(self):
            doc = self._controller_doc(
                {"ticks": 0, "budget_per_tick": 400,
                 "warm_iterations": 1, "cold_iterations": 1,
                 "warm_budget_exhausted": 0, "cold_budget_exhausted": 0,
                 "savings_ratio": 0.0})
            self.assertTrue(messages_for(doc))

        def test_controller_negative_iterations_fails(self):
            doc = self._controller_doc(
                {"ticks": 24, "budget_per_tick": 400,
                 "warm_iterations": -1, "cold_iterations": 1,
                 "warm_budget_exhausted": 0, "cold_budget_exhausted": 0,
                 "savings_ratio": 0.0})
            self.assertTrue(messages_for(doc))

        def test_controller_inconsistent_savings_ratio_fails(self):
            doc = self._controller_doc(
                {"ticks": 24, "budget_per_tick": 400,
                 "warm_iterations": 470, "cold_iterations": 678,
                 "warm_budget_exhausted": 0, "cold_budget_exhausted": 0,
                 "savings_ratio": 0.9})
            self.assertTrue(messages_for(doc))

        def test_controller_nonfinite_savings_ratio_fails(self):
            doc = self._controller_doc(
                {"ticks": 24, "budget_per_tick": 400,
                 "warm_iterations": 470, "cold_iterations": 678,
                 "warm_budget_exhausted": 0, "cold_budget_exhausted": 0,
                 "savings_ratio": "nan"})
            self.assertTrue(messages_for(doc))

        def test_controller_demo_run_command_accepted(self):
            doc = dict(GOOD_RUN)
            doc["command"] = "controller_demo"
            del doc["strategies"]
            self.assertEqual(messages_for(doc), [])

        def test_negative_counter_fails(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"counters": {"c": -1}}
            self.assertTrue(messages_for(doc))

        def test_boolean_counter_fails(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"counters": {"c": True}}
            self.assertTrue(messages_for(doc))

        def test_histogram_bucket_count_mismatch_fails(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"histograms": {
                "h": {"boundaries": [1.0], "bucket_counts": [1],
                      "count": 1, "sum": 0.5}}}
            self.assertTrue(messages_for(doc))

        def test_histogram_sum_mismatch_fails(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"histograms": {
                "h": {"boundaries": [1.0], "bucket_counts": [1, 1],
                      "count": 3, "sum": 0.5}}}
            self.assertTrue(messages_for(doc))

        def test_unsorted_histogram_boundaries_fail(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"histograms": {
                "h": {"boundaries": [2.0, 1.0], "bucket_counts": [0, 0, 0],
                      "count": 0, "sum": 0.0}}}
            self.assertTrue(messages_for(doc))

        def test_unknown_metrics_section_fails(self):
            doc = dict(GOOD_RUN)
            doc["metrics"] = {"timers": {}}
            self.assertTrue(messages_for(doc))

        def test_unknown_run_command_fails(self):
            doc = dict(GOOD_RUN)
            doc["command"] = "frobnicate"
            self.assertTrue(messages_for(doc))

        def test_strategy_missing_breakdown_fails(self):
            doc = dict(GOOD_RUN)
            doc["strategies"] = {"Hybrid": {"iterations": 1, "converged": True}}
            self.assertTrue(messages_for(doc))

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(CheckTests)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", type=Path,
                        help="artifact files to validate")
    parser.add_argument("--self-test", action="store_true",
                        help="run the validator's test suite")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.paths:
        parser.error("no artifact files given (or use --self-test)")

    failures = 0
    for path in args.paths:
        messages = check_file(path)
        for message in messages:
            print(message, file=sys.stderr)
        if messages:
            failures += 1
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
