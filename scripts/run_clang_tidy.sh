#!/usr/bin/env bash
# Run clang-tidy over the UFC sources using the repo-root .clang-tidy.
#
# Usage: scripts/run_clang_tidy.sh [build-dir] [extra clang-tidy args...]
#
# Needs a build dir with compile_commands.json (any CMakePresets.json preset
# exports one). Degrades gracefully: exits 0 with a notice when clang-tidy is
# not installed, so lint aggregators can call it unconditionally; CI installs
# the tool and therefore gets the real check.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

tidy_bin=""
for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    tidy_bin="$cand"
    break
  fi
done
if [[ -z "$tidy_bin" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (install LLVM to enable)" >&2
  exit 0
fi

build_dir="${1:-}"
if [[ $# -gt 0 ]]; then shift; fi
if [[ -z "$build_dir" ]]; then
  for cand in "$repo_root"/build-tidy "$repo_root"/build-release "$repo_root"/build; do
    if [[ -f "$cand/compile_commands.json" ]]; then
      build_dir="$cand"
      break
    fi
  done
fi
if [[ -z "$build_dir" || ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: no compile_commands.json found." >&2
  echo "  Configure first, e.g.: cmake --preset release" >&2
  exit 2
fi

mapfile -t sources < <(
  find "$repo_root/src" "$repo_root/examples" -name '*.cpp' | sort
)

echo "run_clang_tidy: $tidy_bin over ${#sources[@]} files (db: $build_dir)"
if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$tidy_bin" -p "$build_dir" -quiet "$@" \
    "^$repo_root/(src|examples)/"
else
  "$tidy_bin" -p "$build_dir" --quiet "$@" "${sources[@]}"
fi
echo "run_clang_tidy: clean"
