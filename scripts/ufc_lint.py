#!/usr/bin/env python3
"""UFC repository lint: project invariants clang-tidy cannot express.

Rules (each documented in docs/STATIC_ANALYSIS.md):

  expects-guard     Public solver entry points (free functions declared in
                    src/math, src/opt, src/admm headers) must validate their
                    inputs with UFC_EXPECTS / UFC_ENSURES in the definition.
  float-equal       No ==/!= against floating-point literals outside the
                    tolerance helpers in src/util/stats.*; use approx_equal()
                    or annotate an intentional exact-zero guard.
  no-c-rand         No rand()/srand()/random_shuffle; use ufc::Rng so runs
                    are reproducible and seeds flow through one place.
  pragma-once       Every header starts with #pragma once.
  using-namespace-header
                    No `using namespace` at any scope in headers.
  bench-csv-name    Benchmark binaries may only write ufc_*.csv files, so
                    .gitignore and scripts/plot_figures.gp can rely on the
                    prefix.
  no-alloc-in-step  No Mat/Vec construction inside the ADM-G step hot path
                    (InProcessExecutor::step / the legacy AdmgSolver::step) —
                    it works entirely out of workspaces allocated in reset(),
                    so steady-state iterations are allocation-free.
  finite-iterate-guard
                    The one solver iteration loop (AdmgEngine::solve) must
                    route iterations through SolverWatchdog::observe so
                    non-finite iterates and stalls are caught instead of
                    corrupting reports or spinning.
  engine-single-loop
                    The GBS correction-step arithmetic (`x += eps * (...)`)
                    may appear only in src/admm/engine.cpp; every other file
                    must call the shared correct_* helpers, so all four
                    drivers provably run the same prediction/correction loop.
  no-sort-in-hot-path
                    No std::sort / std::stable_sort / std::partial_sort in the
                    ADM-G hot path (src/admm/** and the projection fast paths
                    in src/math/projections.*): the O(n) Condat projection
                    exists precisely so the per-iteration cost has no n log n
                    term. The bit-pinned sort-based reference implementation
                    lives in src/math/projections_reference.cpp, the one file
                    exempt by name.
  obs-layering      The observability layer (src/obs) consumes solver results,
                    never drives solves: it may include only obs/, util/,
                    model/ headers and the dedicated result/telemetry seams
                    (admm/solve_core.hpp, admm/telemetry.hpp,
                    admm/watchdog.hpp, net/link_stats.hpp). Including a
                    solver-driver header (admm/engine.hpp, admm/admg.hpp,
                    net/bus.hpp, sim/...) from src/obs inverts the layering;
                    domain adapters belong in src/sim/manifest.cpp.

Suppressing a finding: append `// ufc-lint: allow(<rule>)` (with a reason!)
to the offending line, or place it alone on the line above.

Findings, severities, exit codes and the --json report are shared with
scripts/ufc_analyze.py through scripts/ufc_findings.py, so the two tools
report identically.

Usage:
  scripts/ufc_lint.py              lint the repository, exit 1 on findings
  scripts/ufc_lint.py PATH...      lint specific files or directories
  scripts/ufc_lint.py --json PATH  also write the ufc-findings-v1 report
  scripts/ufc_lint.py --self-test  run the linter's own test suite
  scripts/ufc_lint.py --list-rules print rule names and one-line summaries
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from ufc_findings import Finding, report  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_ROOTS = ("src", "tests", "bench", "examples")
SOLVER_DIRS = ("src/math", "src/opt", "src/admm")
TOLERANCE_HELPER_FILES = {"src/util/stats.hpp", "src/util/stats.cpp"}

ALLOW_RE = re.compile(r"ufc-lint:\s*allow\(([a-z0-9-]+)\)")


def _suppressed(lines: list[str], index: int, rule: str) -> bool:
    """True if line `index` (0-based) carries an allow() marker, either on the
    line itself or anywhere in the contiguous comment block above it."""
    def carries(line: str) -> bool:
        m = ALLOW_RE.search(line)
        return bool(m) and m.group(1) == rule

    if 0 <= index < len(lines) and carries(lines[index]):
        return True
    probe = index - 1
    while probe >= 0 and lines[probe].strip().startswith("//"):
        if carries(lines[probe]):
            return True
        probe -= 1
    return False


def _strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and "..." contents for matching."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//", 1)[0]


# --------------------------------------------------------------------------
# Rule: pragma-once
# --------------------------------------------------------------------------
def check_pragma_once(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.endswith(".hpp"):
        return []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped.startswith("#pragma once"):
            return []
        if stripped and not stripped.startswith("//") and not stripped.startswith("/*") and not stripped.startswith("*"):
            break  # first real code line reached without the pragma
    return [Finding(rel, 1, "pragma-once", "header does not start with #pragma once")]


# --------------------------------------------------------------------------
# Rule: using-namespace-header
# --------------------------------------------------------------------------
def check_using_namespace_header(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.endswith(".hpp"):
        return []
    findings = []
    for i, line in enumerate(lines):
        code = _strip_comments_and_strings(line)
        if re.search(r"\busing\s+namespace\b", code) and not _suppressed(lines, i, "using-namespace-header"):
            findings.append(Finding(rel, i + 1, "using-namespace-header",
                                    "`using namespace` in a header leaks into every includer"))
    return findings


# --------------------------------------------------------------------------
# Rule: no-c-rand
# --------------------------------------------------------------------------
def check_no_c_rand(rel: str, lines: list[str]) -> list[Finding]:
    findings = []
    pattern = re.compile(r"(?<![\w:])(s?rand|random_shuffle)\s*\(")
    for i, line in enumerate(lines):
        code = _strip_comments_and_strings(line)
        if pattern.search(code) and not _suppressed(lines, i, "no-c-rand"):
            findings.append(Finding(rel, i + 1, "no-c-rand",
                                    "use ufc::Rng instead of C rand()/srand()"))
    return findings


# --------------------------------------------------------------------------
# Rule: float-equal
# --------------------------------------------------------------------------
FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+[eE][-+]?\d+|\d+\.\d*[eE][-+]?\d+)[fFlL]?"
FLOAT_EQ_RE = re.compile(
    rf"(?:{FLOAT_LITERAL}\s*[!=]=|[!=]=\s*{FLOAT_LITERAL})")


def check_float_equal(rel: str, lines: list[str]) -> list[Finding]:
    if rel in TOLERANCE_HELPER_FILES:
        return []
    findings = []
    for i, line in enumerate(lines):
        code = _strip_comments_and_strings(line)
        if FLOAT_EQ_RE.search(code) and not _suppressed(lines, i, "float-equal"):
            findings.append(Finding(
                rel, i + 1, "float-equal",
                "==/!= on a floating-point literal; use ufc::approx_equal or "
                "annotate an intentional exact-zero guard"))
    return findings


# --------------------------------------------------------------------------
# Rule: bench-csv-name
# --------------------------------------------------------------------------
CSV_LITERAL_RE = re.compile(r'"([^"]*\.csv)"')


def check_bench_csv_name(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("bench/"):
        return []
    findings = []
    for i, line in enumerate(lines):
        for m in CSV_LITERAL_RE.finditer(line.split("//", 1)[0]):
            name = m.group(1).rsplit("/", 1)[-1]
            if not re.fullmatch(r"ufc_[a-z0-9_]+\.csv", name) and not _suppressed(lines, i, "bench-csv-name"):
                findings.append(Finding(
                    rel, i + 1, "bench-csv-name",
                    f'bench output "{name}" must match ufc_*.csv'))
    return findings


# --------------------------------------------------------------------------
# Rule: no-alloc-in-step
# --------------------------------------------------------------------------
# InProcessExecutor::step() (and the legacy AdmgSolver::step facade) is the
# per-iteration hot path; PR 2 moved every Mat/Vec it needs into workspaces
# sized once in reset(). Constructing a Mat or Vec inside the step body
# reintroduces per-iteration heap traffic, so any `Mat(...)` / `Vec(...)`
# construction (temporary or named local) is flagged. References and pointers
# (`const Vec&`, `Vec*`) do not allocate and pass.
ALLOC_RE = re.compile(r"\b(Mat|Vec)\s*(?:[A-Za-z_]\w*\s*)?[({]")
# The per-iteration hot path: step() plus the pass helpers it dispatches to
# (full/screened lambda and datacenter passes extracted from the step body).
STEP_DEF_RE = re.compile(
    r"\b(?:AdmgSolver|InProcessExecutor)\s*::\s*"
    r"(?:step|run_full_datacenter_pass|run_screened_lambda_pass|"
    r"run_screened_datacenter_pass)\s*\(")


def _body_span(text: str, open_paren: int) -> tuple[int, int] | None:
    """Given the index of a '(' opening a parameter list, return the character
    range [start, end) of the brace-delimited body that follows, or None if
    this is a declaration/call rather than a definition."""
    depth, j = 0, open_paren
    while j < len(text):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                break
        j += 1
    rest = text[j + 1:]
    brace_rel = rest.find("{")
    if brace_rel < 0 or ";" in rest[:brace_rel]:
        return None
    start = j + 1 + brace_rel
    depth, k = 0, start
    while k < len(text):
        if text[k] == "{":
            depth += 1
        elif text[k] == "}":
            depth -= 1
            if depth == 0:
                return start, k + 1
        k += 1
    return None


def check_no_alloc_in_step(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.endswith(".cpp"):
        return []
    text = "\n".join(lines)
    findings = []
    for m in STEP_DEF_RE.finditer(text):
        span = _body_span(text, m.end() - 1)
        if span is None:
            continue
        first = text.count("\n", 0, span[0])  # 0-based line of the '{'
        last = text.count("\n", 0, span[1])
        for i in range(first, min(last + 1, len(lines))):
            code = _strip_comments_and_strings(lines[i])
            if ALLOC_RE.search(code) and not _suppressed(lines, i, "no-alloc-in-step"):
                findings.append(Finding(
                    rel, i + 1, "no-alloc-in-step",
                    "Mat/Vec constructed inside the ADM-G step hot path; "
                    "allocate it once in reset() and reuse the workspace"))
    return findings


# --------------------------------------------------------------------------
# Rule: no-sort-in-hot-path
# --------------------------------------------------------------------------
# The ADM-G step's per-iteration cost must stay O(n) per projection: the
# Condat algorithm (src/math/projections.cpp) replaced the sort-and-threshold
# method in the hot path, and the n log n reference survives only as the
# bit-pinned cross-validation baseline in src/math/projections_reference.cpp.
# A std::sort reappearing under src/admm or in the projection fast paths
# silently reintroduces the scaling term the frontier bench exists to keep
# out.
SORT_HOT_PATH_PREFIXES = ("src/admm/",)
SORT_HOT_PATH_FILES = {"src/math/projections.hpp", "src/math/projections.cpp"}
SORT_REFERENCE_FILE = "src/math/projections_reference.cpp"
SORT_CALL_RE = re.compile(r"\bstd\s*::\s*(?:stable_sort|partial_sort|sort)\s*\(")


def check_no_sort_in_hot_path(rel: str, lines: list[str]) -> list[Finding]:
    if rel == SORT_REFERENCE_FILE:
        return []
    if not (rel.startswith(SORT_HOT_PATH_PREFIXES) or rel in SORT_HOT_PATH_FILES):
        return []
    findings = []
    for i, line in enumerate(lines):
        code = _strip_comments_and_strings(line)
        if SORT_CALL_RE.search(code) and not _suppressed(lines, i, "no-sort-in-hot-path"):
            findings.append(Finding(
                rel, i + 1, "no-sort-in-hot-path",
                "std::sort in the ADM-G hot path; use the O(n) Condat "
                "projection — the sort-based reference lives only in "
                "src/math/projections_reference.cpp"))
    return findings


# --------------------------------------------------------------------------
# Rule: finite-iterate-guard
# --------------------------------------------------------------------------
# The engine's iteration loop is the only place a non-finite iterate or a
# residual stall can be caught before it corrupts a report or spins to
# max_iterations: it must consult the shared SolverWatchdog
# (`watchdog.observe(...)`) — see docs/ROBUSTNESS.md. Every driver
# (AdmgSolver, solve_async_admg, DistributedAdmgRuntime::run) delegates its
# loop to AdmgEngine::solve, so guarding that one definition covers them all;
# a solve definition without an observe call has silently lost the
# degradation path.
GUARDED_DRIVER_RES = [
    re.compile(r"\bAdmgEngine\s*::\s*solve\s*\("),
]


def check_finite_iterate_guard(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.endswith(".cpp"):
        return []
    text = "\n".join(lines)
    findings = []
    for pattern in GUARDED_DRIVER_RES:
        for m in pattern.finditer(text):
            span = _body_span(text, m.end() - 1)
            if span is None:
                continue  # declaration or call, not a definition
            start_line = text.count("\n", 0, m.start()) + 1
            if ".observe(" in text[span[0]:span[1]]:
                continue
            if _suppressed(lines, start_line - 1, "finite-iterate-guard"):
                continue
            name = re.sub(r"\s+", "", m.group(0))[:-1]
            findings.append(Finding(
                rel, start_line, "finite-iterate-guard",
                f"solver driver `{name}` never calls SolverWatchdog::observe; "
                "non-finite iterates and stalls would go undetected"))
    return findings


# --------------------------------------------------------------------------
# Rule: engine-single-loop
# --------------------------------------------------------------------------
# The bit-identity guarantee across the four drivers (monolithic, async,
# message-passing agents, legacy facade) rests on all of them executing the
# same Gaussian-back-substitution correction arithmetic. That arithmetic —
# recognizable as `x += eps * (...)` relaxation updates — lives in the
# correct_* helpers in src/admm/engine.cpp and nowhere else; a copy anywhere
# else will drift and break the equivalence tests one rounding mode at a time.
ENGINE_LOOP_FILE = "src/admm/engine.cpp"
ENGINE_LOOP_RE = re.compile(r"\+=\s*eps\w*\s*\*\s*\(")


def check_engine_single_loop(rel: str, lines: list[str]) -> list[Finding]:
    if rel == ENGINE_LOOP_FILE:
        return []
    findings = []
    for i, line in enumerate(lines):
        code = _strip_comments_and_strings(line)
        if ENGINE_LOOP_RE.search(code) and not _suppressed(lines, i, "engine-single-loop"):
            findings.append(Finding(
                rel, i + 1, "engine-single-loop",
                "GBS correction arithmetic outside admm/engine.cpp; call the "
                "shared admm::correct_* helpers so every driver runs the same "
                "loop"))
    return findings


# --------------------------------------------------------------------------
# Rule: obs-layering
# --------------------------------------------------------------------------
# src/obs holds generic observability primitives (JSON, metrics, manifests).
# It consumes solver *results* through deliberately small seam headers and
# must never see driver machinery — otherwise metrics code can reach into a
# solve and the bit-neutrality guarantee ("attaching observers changes
# nothing") stops being checkable by layering alone. Adapters that need
# AdmgOptions / Scenario / engine types live in src/sim/manifest.cpp.
OBS_ALLOWED_PREFIXES = ("obs/", "util/", "model/")
OBS_ALLOWED_HEADERS = {
    "admm/solve_core.hpp",   # driver-independent result types
    "admm/telemetry.hpp",    # IterationObserver / IterationSample seam
    "admm/watchdog.hpp",     # WatchdogVerdict named in SolveCore
    "net/link_stats.hpp",    # traffic counters, no bus machinery
}
PROJECT_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def check_obs_layering(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/obs/"):
        return []
    findings = []
    for i, line in enumerate(lines):
        m = PROJECT_INCLUDE_RE.match(line)
        if not m:
            continue
        header = m.group(1)
        if header.startswith(OBS_ALLOWED_PREFIXES) or header in OBS_ALLOWED_HEADERS:
            continue
        if _suppressed(lines, i, "obs-layering"):
            continue
        findings.append(Finding(
            rel, i + 1, "obs-layering",
            f'src/obs must not include "{header}"; the observability layer '
            "reads results through the seam headers only — put domain "
            "adapters in src/sim/manifest.cpp"))
    return findings


# --------------------------------------------------------------------------
# Rule: expects-guard
# --------------------------------------------------------------------------
# A public solver entry point is a free function declared at column 0 in a
# header under SOLVER_DIRS. Its definition (in the sibling .cpp) must contain
# UFC_EXPECTS/UFC_ENSURES: solver inputs are exactly where silent numerical
# misuse (wrong sizes, negative caps, non-finite data) enters the system.
DECL_NAME_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*?\b([a-z_][a-z0-9_]*)\s*\(")


def _public_solver_names(header_text: str) -> set[str]:
    names = set()
    for line in header_text.splitlines():
        if line.startswith((" ", "\t", "//", "#", "}", "using ", "class ", "struct ", "enum ", "namespace ", "template")):
            continue
        m = DECL_NAME_RE.match(line)
        if m:
            names.add(m.group(1))
    return names


def _function_bodies(text: str, names: set[str]):
    """Yield (name, start_line, body) for definitions of `names` in `text`."""
    for name in sorted(names):
        for m in re.finditer(rf"\b{re.escape(name)}\s*\(", text):
            # Find the matching ')' then require an opening '{' (definition,
            # not a call or declaration).
            depth, j = 0, m.end() - 1
            while j < len(text):
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            rest = text[j + 1:]
            brace_rel = rest.find("{")
            between = rest[:brace_rel] if brace_rel >= 0 else ""
            if brace_rel < 0 or ";" in between or "=" in between:
                continue
            body_start = j + 1 + brace_rel
            depth, k = 0, body_start
            while k < len(text):
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            start_line = text.count("\n", 0, m.start()) + 1
            yield name, start_line, text[body_start:k + 1]
            break  # first definition is enough


def check_expects_guard(rel: str, lines: list[str], repo_root: Path = REPO_ROOT) -> list[Finding]:
    if not rel.endswith(".cpp") or not any(rel.startswith(d + "/") for d in SOLVER_DIRS):
        return []
    header = repo_root / rel.replace(".cpp", ".hpp")
    if not header.exists():
        return []
    names = _public_solver_names(header.read_text())
    if not names:
        return []
    text = "\n".join(lines)
    findings = []
    for name, start_line, body in _function_bodies(text, names):
        # Zero-argument entry points have no inputs to guard.
        sig = text.splitlines()[start_line - 1]
        if re.search(rf"\b{re.escape(name)}\s*\(\s*\)", sig):
            continue
        # A problem.validate() call counts: it is the canonical aggregated
        # UFC_EXPECTS bundle for whole-problem inputs.
        if "UFC_EXPECTS" in body or "UFC_ENSURES" in body or re.search(r"\bvalidate\s*\(", body):
            continue
        if _suppressed(lines, start_line - 1, "expects-guard"):
            continue
        findings.append(Finding(
            rel, start_line, "expects-guard",
            f"public solver entry point `{name}` does not guard its inputs "
            "with UFC_EXPECTS"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------
RULES = {
    "pragma-once": (check_pragma_once, "headers must start with #pragma once"),
    "using-namespace-header": (check_using_namespace_header, "no `using namespace` in headers"),
    "no-c-rand": (check_no_c_rand, "use ufc::Rng, not rand()/srand()"),
    "float-equal": (check_float_equal, "no ==/!= on float literals outside tolerance helpers"),
    "bench-csv-name": (check_bench_csv_name, "bench binaries write only ufc_*.csv"),
    "no-alloc-in-step": (check_no_alloc_in_step, "no Mat/Vec construction inside the ADM-G step hot path"),
    "no-sort-in-hot-path": (check_no_sort_in_hot_path, "no std::sort in src/admm or the projection fast paths"),
    "finite-iterate-guard": (check_finite_iterate_guard, "the engine iteration loop must consult SolverWatchdog::observe"),
    "engine-single-loop": (check_engine_single_loop, "GBS correction arithmetic only in src/admm/engine.cpp"),
    "obs-layering": (check_obs_layering, "src/obs includes only seam headers, never solver drivers"),
    "expects-guard": (check_expects_guard, "solver entry points must use UFC_EXPECTS"),
}


def lint_file(path: Path, repo_root: Path = REPO_ROOT) -> list[Finding]:
    rel = path.resolve().relative_to(repo_root).as_posix()
    lines = path.read_text(errors="replace").splitlines()
    findings = []
    for rule, (fn, _) in RULES.items():
        if rule == "expects-guard":
            findings.extend(fn(rel, lines, repo_root))
        else:
            findings.extend(fn(rel, lines))
    return findings


def collect_files(paths: list[Path]) -> list[Path]:
    files = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.hpp")) + sorted(p.rglob("*.cpp")))
        elif p.suffix in (".hpp", ".cpp"):
            if not p.exists():
                raise SystemExit(f"ufc_lint: no such file: {p}")
            if not p.resolve().is_relative_to(REPO_ROOT):
                raise SystemExit(
                    f"ufc_lint: {p} is outside the repository ({REPO_ROOT}); "
                    "rules are defined on repo-relative paths")
            files.append(p)
        elif not p.exists():
            raise SystemExit(f"ufc_lint: no such file or directory: {p}")
    return files


def run_lint(paths: list[Path], json_path: Path | None = None) -> int:
    files = collect_files(paths)
    findings = []
    for f in files:
        findings.extend(lint_file(f))
    return report("ufc_lint", findings, checked=len(files),
                  json_path=json_path)


# --------------------------------------------------------------------------
# Self-test
# --------------------------------------------------------------------------
def self_test() -> int:
    import tempfile
    import unittest

    class LintTests(unittest.TestCase):
        def lint_source(self, rel: str, content: str, root_files: dict | None = None):
            with tempfile.TemporaryDirectory() as tmp:
                root = Path(tmp)
                for extra_rel, extra_content in (root_files or {}).items():
                    target = root / extra_rel
                    target.parent.mkdir(parents=True, exist_ok=True)
                    target.write_text(extra_content)
                target = root / rel
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(content)
                lines = content.splitlines()
                findings = []
                for rule, (fn, _) in RULES.items():
                    if rule == "expects-guard":
                        findings.extend(fn(rel, lines, root))
                    else:
                        findings.extend(fn(rel, lines))
                return findings

        def rules_of(self, findings):
            return {f.rule for f in findings}

        def test_pragma_once_missing(self):
            findings = self.lint_source("src/x/a.hpp", "#include <vector>\nint f();\n")
            self.assertIn("pragma-once", self.rules_of(findings))

        def test_pragma_once_present_after_comment(self):
            findings = self.lint_source("src/x/a.hpp", "// doc\n#pragma once\nint f();\n")
            self.assertNotIn("pragma-once", self.rules_of(findings))

        def test_pragma_once_ignores_cpp(self):
            findings = self.lint_source("src/x/a.cpp", "int f() { return 1; }\n")
            self.assertNotIn("pragma-once", self.rules_of(findings))

        def test_using_namespace_in_header(self):
            findings = self.lint_source("src/x/a.hpp", "#pragma once\nusing namespace std;\n")
            self.assertIn("using-namespace-header", self.rules_of(findings))

        def test_using_namespace_in_cpp_ok(self):
            findings = self.lint_source("src/x/a.cpp", "using namespace std;\n")
            self.assertNotIn("using-namespace-header", self.rules_of(findings))

        def test_using_namespace_suppressed(self):
            findings = self.lint_source(
                "src/x/a.hpp",
                "#pragma once\nusing namespace std;  // ufc-lint: allow(using-namespace-header)\n")
            self.assertNotIn("using-namespace-header", self.rules_of(findings))

        def test_c_rand_flagged(self):
            findings = self.lint_source("src/x/a.cpp", "int f() { return rand(); }\n")
            self.assertIn("no-c-rand", self.rules_of(findings))

        def test_srand_flagged(self):
            findings = self.lint_source("src/x/a.cpp", "void f() { srand(42); }\n")
            self.assertIn("no-c-rand", self.rules_of(findings))

        def test_rng_uniform_not_flagged(self):
            findings = self.lint_source("src/x/a.cpp", "double f(Rng& r) { return r.grand(); }\n")
            self.assertNotIn("no-c-rand", self.rules_of(findings))

        def test_rand_in_comment_ignored(self):
            findings = self.lint_source("src/x/a.cpp", "// calls rand() internally\n")
            self.assertNotIn("no-c-rand", self.rules_of(findings))

        def test_float_equal_flagged(self):
            findings = self.lint_source("src/x/a.cpp", "bool f(double x) { return x == 1.5; }\n")
            self.assertIn("float-equal", self.rules_of(findings))

        def test_float_equal_zero_flagged(self):
            findings = self.lint_source("src/x/a.cpp", "bool f(double x) { return x != 0.0; }\n")
            self.assertIn("float-equal", self.rules_of(findings))

        def test_float_equal_suppressed_line_above(self):
            findings = self.lint_source(
                "src/x/a.cpp",
                "// ufc-lint: allow(float-equal)\nbool f(double x) { return x == 0.0; }\n")
            self.assertNotIn("float-equal", self.rules_of(findings))

        def test_float_equal_suppressed_multiline_comment(self):
            findings = self.lint_source(
                "src/x/a.cpp",
                "// ufc-lint: allow(float-equal) — exact-zero guard,\n"
                "// explained over two comment lines.\n"
                "bool f(double x) { return x == 0.0; }\n")
            self.assertNotIn("float-equal", self.rules_of(findings))

        def test_float_equal_tolerance_helper_exempt(self):
            findings = self.lint_source("src/util/stats.hpp", "#pragma once\nbool eq(double a) { return a == 0.0; }\n")
            self.assertNotIn("float-equal", self.rules_of(findings))

        def test_int_equal_not_flagged(self):
            findings = self.lint_source("src/x/a.cpp", "bool f(int x) { return x == 15; }\n")
            self.assertNotIn("float-equal", self.rules_of(findings))

        def test_bench_csv_bad_name(self):
            findings = self.lint_source("bench/bench_x.cpp", 'const char* out = "results.csv";\n')
            self.assertIn("bench-csv-name", self.rules_of(findings))

        def test_bench_csv_good_name(self):
            findings = self.lint_source("bench/bench_x.cpp", 'const char* out = "ufc_fig1.csv";\n')
            self.assertNotIn("bench-csv-name", self.rules_of(findings))

        def test_bench_csv_rule_only_in_bench(self):
            findings = self.lint_source("src/x/a.cpp", 'const char* out = "results.csv";\n')
            self.assertNotIn("bench-csv-name", self.rules_of(findings))

        def test_no_alloc_in_step_named_local_flagged(self):
            cpp = ("void AdmgSolver::step() {\n"
                   "  Vec scratch(n_);\n"
                   "  use(scratch);\n"
                   "}\n")
            findings = self.lint_source("src/admm/admg.cpp", cpp)
            self.assertIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_alloc_in_step_executor_flagged(self):
            cpp = ("void InProcessExecutor::step(int iteration) {\n"
                   "  Vec scratch(n_);\n"
                   "  use(scratch, iteration);\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_alloc_in_step_temporary_flagged(self):
            cpp = ("void AdmgSolver::step() {\n"
                   "  a_ = Mat(m_, n_);\n"
                   "}\n")
            findings = self.lint_source("src/admm/admg.cpp", cpp)
            self.assertIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_alloc_outside_step_ok(self):
            cpp = ("void AdmgSolver::reset() {\n"
                   "  Vec scratch(n_);\n"
                   "  use(scratch);\n"
                   "}\n"
                   "void AdmgSolver::step() {\n"
                   "  scratch_.fill(0.0);\n"
                   "}\n")
            findings = self.lint_source("src/admm/admg.cpp", cpp)
            self.assertNotIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_alloc_in_step_reference_param_ok(self):
            cpp = ("void AdmgSolver::step() {\n"
                   "  pool_.parallel_for(0, m_, [&](const Vec& row) {\n"
                   "    consume(row);\n"
                   "  });\n"
                   "}\n")
            findings = self.lint_source("src/admm/admg.cpp", cpp)
            self.assertNotIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_alloc_in_step_declaration_not_matched(self):
            cpp = "void AdmgSolver::step();\n"
            findings = self.lint_source("src/admm/admg.cpp", cpp)
            self.assertNotIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_alloc_in_step_suppressed(self):
            cpp = ("void AdmgSolver::step() {\n"
                   "  // ufc-lint: allow(no-alloc-in-step)\n"
                   "  Vec scratch(n_);\n"
                   "  use(scratch);\n"
                   "}\n")
            findings = self.lint_source("src/admm/admg.cpp", cpp)
            self.assertNotIn("no-alloc-in-step", self.rules_of(findings))

        def test_no_sort_in_hot_path_admm_flagged(self):
            cpp = "void f(double* a, double* b) { std::sort(a, b); }\n"
            findings = self.lint_source("src/admm/blocks.cpp", cpp)
            self.assertIn("no-sort-in-hot-path", self.rules_of(findings))

        def test_no_sort_in_hot_path_projection_fast_path_flagged(self):
            cpp = "void p(std::vector<double>& s) { std::stable_sort(s.begin(), s.end()); }\n"
            findings = self.lint_source("src/math/projections.cpp", cpp)
            self.assertIn("no-sort-in-hot-path", self.rules_of(findings))

        def test_no_sort_in_hot_path_reference_file_exempt(self):
            cpp = "void p(std::vector<double>& s) { std::sort(s.begin(), s.end()); }\n"
            findings = self.lint_source("src/math/projections_reference.cpp", cpp)
            self.assertNotIn("no-sort-in-hot-path", self.rules_of(findings))

        def test_no_sort_in_hot_path_other_layers_exempt(self):
            cpp = "void f(std::vector<double>& s) { std::sort(s.begin(), s.end()); }\n"
            findings = self.lint_source("src/opt/quantiles.cpp", cpp)
            self.assertNotIn("no-sort-in-hot-path", self.rules_of(findings))

        def test_no_sort_in_hot_path_comment_ignored(self):
            cpp = "// the reference uses std::sort(v.begin(), v.end())\nint f();\n"
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertNotIn("no-sort-in-hot-path", self.rules_of(findings))

        def test_no_sort_in_hot_path_suppressed(self):
            cpp = ("void f(double* a, double* b) {\n"
                   "  // ufc-lint: allow(no-sort-in-hot-path)\n"
                   "  std::sort(a, b);\n"
                   "}\n")
            findings = self.lint_source("src/admm/blocks.cpp", cpp)
            self.assertNotIn("no-sort-in-hot-path", self.rules_of(findings))

        def test_no_alloc_in_step_pass_helper_flagged(self):
            cpp = ("void InProcessExecutor::run_screened_datacenter_pass() {\n"
                   "  Vec scratch(n_);\n"
                   "  use(scratch);\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertIn("no-alloc-in-step", self.rules_of(findings))

        def test_finite_iterate_guard_missing_observe_flagged(self):
            cpp = ("SolveCore AdmgEngine::solve(BlockExecutor& executor, int first) {\n"
                   "  for (int k = first; k < max; ++k) executor.step(k);\n"
                   "  return core;\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertIn("finite-iterate-guard", self.rules_of(findings))

        def test_finite_iterate_guard_observe_present_ok(self):
            cpp = ("SolveCore AdmgEngine::solve(BlockExecutor& executor, int first) {\n"
                   "  SolverWatchdog watchdog(options_.watchdog);\n"
                   "  for (int k = first; k < max; ++k) {\n"
                   "    executor.step(k);\n"
                   "    watchdog.observe(r, s, finite);\n"
                   "  }\n"
                   "  return core;\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertNotIn("finite-iterate-guard", self.rules_of(findings))

        def test_finite_iterate_guard_declaration_not_matched(self):
            cpp = "SolveCore AdmgEngine::solve(BlockExecutor& executor, int first);\n"
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertNotIn("finite-iterate-guard", self.rules_of(findings))

        def test_finite_iterate_guard_other_functions_exempt(self):
            cpp = ("void InProcessExecutor::reset() {\n"
                   "  for (int k = 0; k < max; ++k) clear(k);\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertNotIn("finite-iterate-guard", self.rules_of(findings))

        def test_finite_iterate_guard_suppressed(self):
            cpp = ("// ufc-lint: allow(finite-iterate-guard)\n"
                   "SolveCore AdmgEngine::solve(BlockExecutor& executor, int first) {\n"
                   "  return core;\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertNotIn("finite-iterate-guard", self.rules_of(findings))

        def test_engine_single_loop_copy_flagged(self):
            cpp = ("void DatacenterAgent::correct() {\n"
                   "  phi_ += eps * (phi_tilde - phi_);\n"
                   "}\n")
            findings = self.lint_source("src/net/agents.cpp", cpp)
            self.assertIn("engine-single-loop", self.rules_of(findings))

        def test_engine_single_loop_epsilon_variable_flagged(self):
            cpp = "void f() { x += epsilon * (y - x); }\n"
            findings = self.lint_source("src/admm/other.cpp", cpp)
            self.assertIn("engine-single-loop", self.rules_of(findings))

        def test_engine_single_loop_engine_file_exempt(self):
            cpp = ("void correct_varphi_block() {\n"
                   "  varphi[i] += eps * (varphi_tilde - varphi[i]);\n"
                   "}\n")
            findings = self.lint_source("src/admm/engine.cpp", cpp)
            self.assertNotIn("engine-single-loop", self.rules_of(findings))

        def test_engine_single_loop_other_updates_ok(self):
            cpp = "void f() { total += weight * (hi - lo); }\n"
            findings = self.lint_source("src/sim/x.cpp", cpp)
            self.assertNotIn("engine-single-loop", self.rules_of(findings))

        def test_engine_single_loop_comment_ignored(self):
            cpp = "// the engine applies x += eps * (tilde - x) here\nint f();\n"
            findings = self.lint_source("src/net/agents.cpp", cpp)
            self.assertNotIn("engine-single-loop", self.rules_of(findings))

        def test_engine_single_loop_suppressed(self):
            cpp = ("void f() {\n"
                   "  // ufc-lint: allow(engine-single-loop)\n"
                   "  x += eps * (y - x);\n"
                   "}\n")
            findings = self.lint_source("src/net/agents.cpp", cpp)
            self.assertNotIn("engine-single-loop", self.rules_of(findings))

        def test_obs_layering_driver_header_flagged(self):
            cpp = '#include "admm/engine.hpp"\nint f();\n'
            findings = self.lint_source("src/obs/manifest.cpp", cpp)
            self.assertIn("obs-layering", self.rules_of(findings))

        def test_obs_layering_sim_header_flagged(self):
            cpp = '#include "sim/simulator.hpp"\nint f();\n'
            findings = self.lint_source("src/obs/metrics.cpp", cpp)
            self.assertIn("obs-layering", self.rules_of(findings))

        def test_obs_layering_seam_headers_ok(self):
            cpp = ('#include "admm/solve_core.hpp"\n'
                   '#include "admm/telemetry.hpp"\n'
                   '#include "net/link_stats.hpp"\n'
                   '#include "obs/json.hpp"\n'
                   '#include "util/contract.hpp"\n')
            findings = self.lint_source("src/obs/manifest.cpp", cpp)
            self.assertNotIn("obs-layering", self.rules_of(findings))

        def test_obs_layering_system_includes_ignored(self):
            cpp = "#include <vector>\n#include <string>\n"
            findings = self.lint_source("src/obs/json.cpp", cpp)
            self.assertNotIn("obs-layering", self.rules_of(findings))

        def test_obs_layering_rule_scoped_to_obs(self):
            cpp = '#include "admm/engine.hpp"\nint f();\n'
            findings = self.lint_source("src/sim/manifest.cpp", cpp)
            self.assertNotIn("obs-layering", self.rules_of(findings))

        def test_obs_layering_suppressed(self):
            cpp = ('// ufc-lint: allow(obs-layering)\n'
                   '#include "net/bus.hpp"\nint f();\n')
            findings = self.lint_source("src/obs/manifest.cpp", cpp)
            self.assertNotIn("obs-layering", self.rules_of(findings))

        def test_expects_guard_missing(self):
            header = "#pragma once\nVec project_simplex(const Vec& v, double total);\n"
            cpp = "Vec project_simplex(const Vec& v, double total) {\n  return v;\n}\n"
            findings = self.lint_source("src/math/p.cpp", cpp, {"src/math/p.hpp": header})
            self.assertIn("expects-guard", self.rules_of(findings))

        def test_expects_guard_present(self):
            header = "#pragma once\nVec project_simplex(const Vec& v, double total);\n"
            cpp = ("Vec project_simplex(const Vec& v, double total) {\n"
                   "  UFC_EXPECTS(total >= 0.0);\n  return v;\n}\n")
            findings = self.lint_source("src/math/p.cpp", cpp, {"src/math/p.hpp": header})
            self.assertNotIn("expects-guard", self.rules_of(findings))

        def test_expects_guard_validate_call_counts(self):
            header = "#pragma once\nVec entry(const Problem& p);\n"
            cpp = "Vec entry(const Problem& p) {\n  p.validate();\n  return Vec();\n}\n"
            findings = self.lint_source("src/admm/p.cpp", cpp, {"src/admm/p.hpp": header})
            self.assertNotIn("expects-guard", self.rules_of(findings))

        def test_expects_guard_private_helper_exempt(self):
            header = "#pragma once\nVec entry(const Vec& v);\n"
            cpp = ("static Vec helper(const Vec& v) { return v; }\n"
                   "Vec entry(const Vec& v) {\n  UFC_EXPECTS(!v.empty());\n  return helper(v);\n}\n")
            findings = self.lint_source("src/opt/p.cpp", cpp, {"src/opt/p.hpp": header})
            self.assertNotIn("expects-guard", self.rules_of(findings))

        def test_expects_guard_outside_solver_dirs_exempt(self):
            header = "#pragma once\nvoid log_line(const char* msg);\n"
            cpp = "void log_line(const char* msg) { (void)msg; }\n"
            findings = self.lint_source("src/util/l.cpp", cpp, {"src/util/l.hpp": header})
            self.assertNotIn("expects-guard", self.rules_of(findings))

        def test_expects_guard_suppressed(self):
            header = "#pragma once\nVec entry(const Vec& v);\n"
            cpp = ("// ufc-lint: allow(expects-guard)\n"
                   "Vec entry(const Vec& v) {\n  return v;\n}\n")
            findings = self.lint_source("src/math/p.cpp", cpp, {"src/math/p.hpp": header})
            self.assertNotIn("expects-guard", self.rules_of(findings))

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(LintTests)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: repo source roots)")
    parser.add_argument("--json", type=Path, metavar="PATH",
                        help="write the ufc-findings-v1 JSON report")
    parser.add_argument("--self-test", action="store_true", help="run the linter's test suite")
    parser.add_argument("--list-rules", action="store_true", help="list rules and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.list_rules:
        for rule, (_, summary) in RULES.items():
            print(f"{rule:24s} {summary}")
        return 0

    paths = args.paths or [REPO_ROOT / root for root in SOURCE_ROOTS]
    return run_lint(paths, json_path=args.json)


if __name__ == "__main__":
    sys.exit(main())
