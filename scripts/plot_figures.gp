# gnuplot script: renders the paper-style figures from the bench CSVs.
# Run after scripts/run_benches.sh, from the directory holding the CSVs:
#   gnuplot -c scripts/plot_figures.gp
set datafile separator ','
set terminal pngcairo size 900,540 font ',11'
set key top left
set grid

set output 'fig4_ufc_improvement.png'
set title 'Fig. 4 - UFC improvement under various strategies'
set xlabel 'hour'; set ylabel 'improvement (%)'
plot 'ufc_fig4.csv' using 1:2 with lines title 'I_{hg}', \
     '' using 1:3 with lines title 'I_{hf}', \
     '' using 1:4 with lines title 'I_{fg}'

set output 'fig5_latency.png'
set title 'Fig. 5 - average propagation latency'
set xlabel 'hour'; set ylabel 'latency (ms)'
plot 'ufc_fig5.csv' using 1:2 with lines title 'Grid', \
     '' using 1:3 with lines title 'FuelCell', \
     '' using 1:4 with lines title 'Hybrid'

set output 'fig6_energy.png'
set title 'Fig. 6 - energy cost'
set xlabel 'hour'; set ylabel 'cost ($/h)'
plot 'ufc_fig6.csv' using 1:2 with lines title 'Grid', \
     '' using 1:3 with lines title 'FuelCell', \
     '' using 1:4 with lines title 'Hybrid'

set output 'fig7_carbon.png'
set title 'Fig. 7 - carbon emission cost'
set xlabel 'hour'; set ylabel 'cost ($/h)'
plot 'ufc_fig7.csv' using 1:2 with lines title 'Grid', \
     '' using 1:3 with lines title 'FuelCell', \
     '' using 1:4 with lines title 'Hybrid'

set output 'fig8_utilization.png'
set title 'Fig. 8 - fuel cell utilization'
set xlabel 'hour'; set ylabel 'utilization'
plot 'ufc_fig8.csv' using 1:2 with lines notitle

set output 'fig9_price_sweep.png'
set title 'Fig. 9 - sweep of the fuel-cell price p0'
set xlabel 'p0 ($/MWh)'; set ylabel '%'
plot 'ufc_fig9.csv' using 1:2 with linespoints title 'avg UFC improvement', \
     '' using 1:3 with linespoints title 'avg utilization'

set output 'fig10_tax_sweep.png'
set title 'Fig. 10 - sweep of the carbon tax'
set xlabel 'tax ($/ton)'; set ylabel '%'
plot 'ufc_fig10.csv' using 1:2 with linespoints title 'avg UFC improvement', \
     '' using 1:3 with linespoints title 'avg utilization'

set output 'fig11_convergence_cdf.png'
set title 'Fig. 11 - CDF of iterations to convergence'
set xlabel 'iterations'; set ylabel 'CDF'
plot 'ufc_fig11.csv' using 1:2 with steps notitle
