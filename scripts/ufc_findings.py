#!/usr/bin/env python3
"""Shared findings model for the UFC static-analysis tools.

scripts/ufc_lint.py (per-line repo invariants) and scripts/ufc_analyze.py
(tree-level architecture/determinism analysis) report through this one
module so their output, JSON artifacts, severities and exit codes are
identical — CI and humans parse one format, not two.

A finding is `path:line: [rule] message` with a severity of "error" (gates
the build) or "warning" (reported, never gates). Exit codes:

  0  clean (or warnings only)
  1  at least one error finding
  2  usage / environment problem (missing file, bad arguments)

The machine-readable report (``--json`` in both tools) is the
``ufc-findings-v1`` schema:

  {"schema": "ufc-findings-v1", "tool": "<name>",
   "counts": {"error": N, "warning": M},
   "findings": [{"path", "line", "rule", "severity", "message"}, ...]}

validate_findings_json() checks a parsed document against that schema and is
what the tools' self-tests (and CI) run against their own output.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

SEVERITIES = ("error", "warning")

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        tag = "" if self.severity == "error" else f" {self.severity}:"
        return f"{self.path}:{self.line}:{tag} [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"path": self.path, "line": self.line, "rule": self.rule,
                "severity": self.severity, "message": self.message}


def severity_counts(findings: list[Finding]) -> dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def findings_to_json(tool: str, findings: list[Finding]) -> dict:
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    return {
        "schema": "ufc-findings-v1",
        "tool": tool,
        "counts": severity_counts(ordered),
        "findings": [finding.to_json() for finding in ordered],
    }


def write_json_report(tool: str, findings: list[Finding], path: Path) -> None:
    path.write_text(json.dumps(findings_to_json(tool, findings), indent=2)
                    + "\n")


def report(tool: str, findings: list[Finding], *, checked: int | None = None,
           json_path: Path | None = None, out=None, err=None) -> int:
    """Print findings (and optionally the JSON artifact); return the exit
    code.  The summary goes to stderr like a compiler's, so `tool | wc -l`
    counts findings only."""
    out = sys.stdout if out is None else out
    err = sys.stderr if err is None else err
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding, file=out)
    if json_path is not None:
        write_json_report(tool, findings, json_path)
    counts = severity_counts(findings)
    if findings:
        print(f"{tool}: {counts['error']} error(s), "
              f"{counts['warning']} warning(s)", file=err)
    else:
        suffix = f" ({checked} files)" if checked is not None else ""
        print(f"{tool}: clean{suffix}", file=out)
    return EXIT_FINDINGS if counts["error"] else EXIT_CLEAN


def validate_findings_json(doc) -> list[str]:
    """Returns schema violations of a parsed ufc-findings-v1 document."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document: top level must be an object"]
    if doc.get("schema") != "ufc-findings-v1":
        errors.append(f'document: "schema" {doc.get("schema")!r} must be '
                      '"ufc-findings-v1"')
    if not isinstance(doc.get("tool"), str) or not doc.get("tool"):
        errors.append('document: "tool" must be a non-empty string')
    counts = doc.get("counts")
    if not isinstance(counts, dict) or set(counts) != set(SEVERITIES) or \
            not all(isinstance(v, int) and not isinstance(v, bool) and v >= 0
                    for v in counts.values()):
        errors.append('document: "counts" must map exactly '
                      f"{sorted(SEVERITIES)} to non-negative integers")
        counts = None
    findings = doc.get("findings")
    if not isinstance(findings, list):
        errors.append('document: "findings" must be a list')
        return errors
    seen = {severity: 0 for severity in SEVERITIES}
    for index, entry in enumerate(findings):
        where = f"findings[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key, kind in (("path", str), ("rule", str), ("message", str)):
            if not isinstance(entry.get(key), kind) or not entry.get(key):
                errors.append(f"{where}: {key!r} must be a non-empty string")
        line = entry.get("line")
        if not isinstance(line, int) or isinstance(line, bool) or line < 1:
            errors.append(f"{where}: 'line' must be a positive integer")
        severity = entry.get("severity")
        if severity not in SEVERITIES:
            errors.append(f"{where}: 'severity' {severity!r} must be one of "
                          f"{sorted(SEVERITIES)}")
        else:
            seen[severity] += 1
        if set(entry) - {"path", "line", "rule", "message", "severity"}:
            errors.append(f"{where}: unknown keys "
                          f"{sorted(set(entry) - {'path', 'line', 'rule', 'message', 'severity'})}")
    if counts is not None and counts != seen:
        errors.append(f'document: "counts" {counts} do not match the findings '
                      f"list {seen}")
    return errors


def self_test() -> int:
    import io
    import tempfile
    import unittest

    class FindingsTests(unittest.TestCase):
        def test_error_format(self):
            f = Finding("src/a.cpp", 3, "rule-x", "msg")
            self.assertEqual(str(f), "src/a.cpp:3: [rule-x] msg")

        def test_warning_format_carries_severity(self):
            f = Finding("src/a.cpp", 3, "rule-x", "msg", severity="warning")
            self.assertIn("warning:", str(f))

        def test_unknown_severity_rejected(self):
            with self.assertRaises(ValueError):
                Finding("a", 1, "r", "m", severity="fatal")

        def test_exit_code_clean(self):
            code = report("t", [], out=io.StringIO(), err=io.StringIO())
            self.assertEqual(code, EXIT_CLEAN)

        def test_exit_code_error(self):
            code = report("t", [Finding("a", 1, "r", "m")],
                          out=io.StringIO(), err=io.StringIO())
            self.assertEqual(code, EXIT_FINDINGS)

        def test_warnings_do_not_gate(self):
            code = report("t", [Finding("a", 1, "r", "m", severity="warning")],
                          out=io.StringIO(), err=io.StringIO())
            self.assertEqual(code, EXIT_CLEAN)

        def test_findings_sorted_by_path_line(self):
            out = io.StringIO()
            report("t", [Finding("b.cpp", 2, "r", "m"),
                         Finding("a.cpp", 9, "r", "m")],
                   out=out, err=io.StringIO())
            lines = out.getvalue().splitlines()
            self.assertTrue(lines[0].startswith("a.cpp:9"))

        def test_json_round_trip_validates(self):
            doc = findings_to_json("t", [Finding("a", 1, "r", "m"),
                                         Finding("b", 2, "r", "m",
                                                 severity="warning")])
            self.assertEqual(validate_findings_json(doc), [])
            self.assertEqual(doc["counts"], {"error": 1, "warning": 1})

        def test_json_written_to_disk(self):
            with tempfile.TemporaryDirectory() as tmp:
                path = Path(tmp) / "report.json"
                write_json_report("t", [Finding("a", 1, "r", "m")], path)
                doc = json.loads(path.read_text())
                self.assertEqual(validate_findings_json(doc), [])

        def test_validator_rejects_bad_schema(self):
            self.assertTrue(validate_findings_json({"schema": "nope"}))

        def test_validator_rejects_count_mismatch(self):
            doc = findings_to_json("t", [Finding("a", 1, "r", "m")])
            doc["counts"]["error"] = 7
            self.assertTrue(validate_findings_json(doc))

        def test_validator_rejects_bad_line(self):
            doc = findings_to_json("t", [Finding("a", 1, "r", "m")])
            doc["findings"][0]["line"] = 0
            self.assertTrue(validate_findings_json(doc))

        def test_validator_rejects_unknown_keys(self):
            doc = findings_to_json("t", [Finding("a", 1, "r", "m")])
            doc["findings"][0]["extra"] = True
            self.assertTrue(validate_findings_json(doc))

    suite = unittest.defaultTestLoader.loadTestsFromTestCase(FindingsTests)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


if __name__ == "__main__":
    sys.exit(self_test())
