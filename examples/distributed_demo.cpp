// Distributed execution demo: runs the same UFC slot through (a) the
// monolithic ADM-G solver and (b) the message-passing runtime — ten
// front-end agents and four datacenter agents exchanging only the paper's
// Fig. 2 messages over a lossy bus — and shows that the iterates are
// identical while reporting the WAN traffic the protocol costs.
//
//   $ ./example_distributed_demo [loss_rate] [--metrics <path>]
//       [--processes N] [--transport unix|tcp] [--kill-round R]
//       [--kill-worker W] [--checkpoint-round C]
//
// --metrics writes a ufc-run-v1 manifest holding both solve reports and the
// bus traffic counters (net.* metrics via obs::record_link_stats).
//
// --processes switches the datacenter agents from in-process message passing
// to a real forked fleet over the socket bus (docs/DISTRIBUTION.md): the
// coordinator and front-ends stay in the parent, N worker processes host the
// datacenters. --kill-round SIGKILLs a worker mid-solve to demonstrate
// graceful degradation; --checkpoint-round captures a UFCR image and
// crash-restarts a brand-new fleet from it. loss_rate simulates the
// in-process bus only and is ignored by the socket fleet (real sockets lose
// real messages instead).
#include <charconv>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "net/runtime.hpp"
#include "net/supervisor.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_observer.hpp"
#include "traces/scenario.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: example_distributed_demo [loss_rate] [--metrics <path>]\n"
         "         [--processes N] [--transport unix|tcp] [--kill-round R]\n"
         "         [--kill-worker W] [--checkpoint-round C]\n"
         "  loss_rate    per-attempt message-loss probability in [0, 1)\n"
         "               (default 0.15; in-process bus only)\n"
         "  --metrics    write a ufc-run-v1 manifest with both reports\n"
         "               and the bus traffic counters\n"
         "  --processes  fork N worker processes hosting the datacenter\n"
         "               agents over the socket bus (default: in-process)\n"
         "  --transport  socket flavour for the fleet: unix (default) or\n"
         "               tcp loopback\n"
         "  --kill-round SIGKILL a worker after this engine iteration to\n"
         "               demonstrate graceful degradation\n"
         "  --kill-worker  which worker index --kill-round targets\n"
         "               (default 0)\n"
         "  --checkpoint-round  capture a UFCR checkpoint after this\n"
         "               iteration and crash-restart a fresh fleet from it\n";
  return 2;
}

bool parse_int_flag(const std::string& flag, const std::string& value,
                    long& out) {
  const auto result =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (result.ec != std::errc() || result.ptr != value.data() + value.size()) {
    std::cerr << "error: " << flag << " '" << value
              << "' is not an integer\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ufc;

  std::vector<std::string> positional;
  std::string metrics_path;
  std::string transport = "unix";
  long processes = 0;
  long kill_round = -1;
  long kill_worker = 0;
  long checkpoint_round = -1;
  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    if (token == "--metrics") {
      if (arg + 1 >= argc) {
        std::cerr << "error: --metrics requires a path argument\n";
        return usage();
      }
      metrics_path = argv[++arg];
    } else if (token == "--transport") {
      if (arg + 1 >= argc) {
        std::cerr << "error: --transport requires unix or tcp\n";
        return usage();
      }
      transport = argv[++arg];
      if (transport != "unix" && transport != "tcp") {
        std::cerr << "error: unknown transport '" << transport << "'\n";
        return usage();
      }
    } else if (token == "--processes" || token == "--kill-round" ||
               token == "--kill-worker" || token == "--checkpoint-round") {
      if (arg + 1 >= argc) {
        std::cerr << "error: " << token << " requires an integer argument\n";
        return usage();
      }
      long value = 0;
      if (!parse_int_flag(token, argv[++arg], value)) return usage();
      if (token == "--processes") {
        if (value < 1) {
          std::cerr << "error: --processes must be >= 1\n";
          return usage();
        }
        processes = value;
      } else if (token == "--kill-round") {
        kill_round = value;
      } else if (token == "--kill-worker") {
        if (value < 0) {
          std::cerr << "error: --kill-worker must be >= 0\n";
          return usage();
        }
        kill_worker = value;
      } else {
        checkpoint_round = value;
      }
    } else {
      positional.push_back(token);
    }
  }
  if (processes == 0 && (kill_round >= 0 || kill_worker != 0 ||
                         checkpoint_round >= 0 || transport == "tcp")) {
    std::cerr << "error: --kill-round/--kill-worker/--checkpoint-round/"
                 "--transport need --processes\n";
    return usage();
  }
  if (kill_worker >= processes && kill_round >= 0) {
    std::cerr << "error: --kill-worker " << kill_worker
              << " out of range for " << processes << " processes\n";
    return usage();
  }

  // atof-style parsing would turn garbage into a silent 0.0 and let an
  // out-of-range rate (e.g. 1.5) reach the fault plan unvalidated; parse
  // checked and keep the bus's [0, 1) domain at the boundary instead.
  double loss_rate = 0.15;
  if (!positional.empty()) {
    const std::string& arg = positional.front();
    const auto result =
        std::from_chars(arg.data(), arg.data() + arg.size(), loss_rate);
    if (result.ec != std::errc() || result.ptr != arg.data() + arg.size()) {
      std::cerr << "error: loss_rate '" << arg << "' is not a number\n";
      return usage();
    }
    if (!(loss_rate >= 0.0 && loss_rate < 1.0)) {
      std::cerr << "error: loss_rate " << arg << " outside [0, 1)\n";
      return usage();
    }
  }
  const auto scenario = traces::Scenario::generate({});
  // In-process demo: a Wednesday peak hour. The fleet demo uses a night
  // slot instead — at the peak, losing any one datacenter leaves capacity
  // below load, so the feasibility guard would veto every removal and a
  // --kill-round run could never show a membership rebuild.
  const int slot = processes > 0 ? 52 : 64;
  const auto problem = scenario.problem_at(slot);

  admm::AdmgOptions options;
  options.tolerance = 3e-3;
  options.max_iterations = 800;
  options.record_trace = false;

  std::cout << "Solving one " << (processes > 0 ? "night" : "peak")
            << " slot (M = " << problem.num_front_ends()
            << " front-ends, N = " << problem.num_datacenters()
            << " datacenters)...\n\n";

  const auto mono = admm::solve_admg(problem, options);

  if (processes > 0) {
    net::SupervisorOptions sup;
    sup.distributed.admg = options;
    sup.distributed.degraded = true;  // a real fleet can lose workers
    sup.processes = static_cast<std::size_t>(processes);
    sup.use_tcp = transport == "tcp";
    sup.kill_at_round = static_cast<int>(kill_round);
    sup.kill_worker = static_cast<std::size_t>(kill_worker);
    sup.checkpoint_at_round = static_cast<int>(checkpoint_round);

    std::cout << "Forking " << processes << " worker processes over "
              << transport << " sockets...\n";
    net::Supervisor supervisor(problem, sup);
    net::SupervisedReport fleet;
    try {
      fleet = supervisor.run();
    } catch (const std::runtime_error& error) {
      std::cerr << "error: socket fleet unavailable: " << error.what()
                << "\n";
      return 1;
    }

    // Graceful degradation shrinks lambda to the surviving datacenters, so
    // the element-wise diff against the monolithic solution only exists for
    // a zero-fault fleet.
    const bool same_shape =
        fleet.solution.lambda.rows() == mono.solution.lambda.rows() &&
        fleet.solution.lambda.cols() == mono.solution.lambda.cols();
    const double lambda_diff =
        same_shape ? max_abs_diff(fleet.solution.lambda, mono.solution.lambda)
                   : std::numeric_limits<double>::quiet_NaN();
    TablePrinter table({"Solver", "iterations", "UFC $", "max |lambda diff|"});
    table.add_row(
        "monolithic ADM-G",
        {static_cast<double>(mono.iterations), mono.breakdown.ufc, 0.0}, 3);
    table.add_row("socket fleet (" + std::to_string(processes) + " procs)",
                  {static_cast<double>(fleet.iterations), fleet.breakdown.ufc,
                   lambda_diff},
                  3);
    table.print();
    if (!same_shape)
      std::cout << "(lambda shapes differ after degradation — the fleet "
                   "solved the reduced problem)\n";

    std::cout << "\nFleet outcomes:\n";
    std::cout << "  workers spawned    : " << fleet.workers_spawned << "\n";
    std::cout << "  workers exited     : " << fleet.workers_exited << "\n";
    std::cout << "  workers killed     : " << fleet.workers_killed << "\n";
    std::cout << "  datacenters removed: " << fleet.removed_datacenters.size();
    for (const std::size_t j : fleet.removed_datacenters)
      std::cout << " #" << j;
    std::cout << "\n  bytes on the wire  : " << fleet.network.bytes << "\n";
    if (!fleet.removed_datacenters.empty())
      std::cout << "  (graceful degradation: the coordinator rebuilt "
                   "membership around the killed worker's datacenters and "
                   "re-solved the reduced problem)\n";

    net::SupervisedReport resumed;
    bool resumed_ran = false;
    if (!fleet.checkpoint_image.empty()) {
      std::cout << "\nCrash-restart: resuming a brand-new fleet from the "
                   "UFCR checkpoint captured after iteration "
                << checkpoint_round << "...\n";
      net::SupervisorOptions restart = sup;
      restart.kill_at_round = -1;
      restart.checkpoint_at_round = -1;
      try {
        resumed = net::Supervisor(problem, restart)
                      .run(std::span<const std::byte>(fleet.checkpoint_image));
        resumed_ran = true;
        std::cout << "  resumed fleet finished in " << resumed.iterations
                  << " iterations (vs " << fleet.iterations
                  << " from cold), UFC $" << fixed(resumed.breakdown.ufc, 3)
                  << "\n";
      } catch (const std::runtime_error& error) {
        std::cerr << "  crash-restart failed: " << error.what() << "\n";
      }
    }

    if (!metrics_path.empty()) {
      obs::MetricsRegistry registry;
      obs::record_link_stats(registry, fleet.network);
      // worker_metrics is sorted by worker index, so the merged registry is
      // deterministic run-to-run (modulo timing gauges).
      for (const auto& wm : fleet.worker_metrics) {
        const std::string prefix =
            "worker." + std::to_string(wm.worker_index);
        obs::record_counter_table(registry, wm.tables.counters, prefix);
        obs::record_gauge_table(registry, wm.tables.gauges, prefix);
      }
      obs::RunManifest manifest;
      manifest.set("command", obs::JsonValue("distributed_demo"));
      manifest.set("processes", obs::JsonValue(static_cast<std::int64_t>(
                                    fleet.workers_spawned)));
      manifest.set("transport", obs::JsonValue(transport));
      manifest.set("monolithic", obs::solve_core_json(mono));
      manifest.set("distributed", obs::solve_core_json(fleet));
      manifest.set("network", obs::link_stats_json(fleet.network));
      obs::JsonValue outcomes = obs::JsonValue::object();
      outcomes.set("workers_spawned", obs::JsonValue(static_cast<std::int64_t>(
                                          fleet.workers_spawned)));
      outcomes.set("workers_exited", obs::JsonValue(static_cast<std::int64_t>(
                                         fleet.workers_exited)));
      outcomes.set("workers_killed", obs::JsonValue(static_cast<std::int64_t>(
                                         fleet.workers_killed)));
      obs::JsonValue removed = obs::JsonValue::array();
      for (const std::size_t j : fleet.removed_datacenters)
        removed.push_back(obs::JsonValue(static_cast<std::int64_t>(j)));
      outcomes.set("removed_datacenters", std::move(removed));
      manifest.set("fleet", std::move(outcomes));
      if (resumed_ran)
        manifest.set("resumed", obs::solve_core_json(resumed));
      manifest.set_metrics(registry);
      manifest.write(metrics_path);
      std::cout << "\nRun manifest written to " << metrics_path << "\n";
    }
    return 0;
  }

  net::DistributedOptions dist;
  dist.admg = options;
  dist.loss_rate = loss_rate;
  net::DistributedAdmgRuntime runtime(problem, dist);
  const auto report = runtime.run();

  TablePrinter table({"Solver", "iterations", "UFC $", "max |lambda diff|"});
  table.add_row("monolithic ADM-G",
                {static_cast<double>(mono.iterations), mono.breakdown.ufc, 0.0},
                3);
  table.add_row("message-passing agents",
                {static_cast<double>(report.iterations), report.breakdown.ufc,
                 max_abs_diff(report.solution.lambda, mono.solution.lambda)},
                3);
  table.print();

  const auto& net_stats = report.network;
  std::cout << "\nNetwork totals at " << fixed(100.0 * loss_rate, 0)
            << "% simulated per-attempt loss:\n";
  std::cout << "  messages delivered : " << net_stats.messages << "\n";
  std::cout << "  retransmissions    : " << net_stats.retransmissions << "\n";
  std::cout << "  bytes on the wire  : " << net_stats.bytes << " ("
            << fixed(static_cast<double>(net_stats.bytes) / 1024.0, 1)
            << " KiB)\n";
  std::cout << "  per iteration      : "
            << net_stats.messages / static_cast<std::uint64_t>(report.iterations)
            << " messages\n";

  std::cout << "\nEach front-end only ever saw its own (A_i, L_i., a_i., "
               "varphi_i.); each datacenter only its own (alpha, beta, S_j, "
               "p_j, C_j, mu_max) plus the messages above —\nthe "
               "decomposition of paper Fig. 2.\n";

  if (!metrics_path.empty()) {
    obs::MetricsRegistry registry;
    obs::record_link_stats(registry, net_stats);
    obs::RunManifest manifest;
    manifest.set("command", obs::JsonValue("distributed_demo"));
    manifest.set("loss_rate", obs::JsonValue(loss_rate));
    manifest.set("monolithic", obs::solve_core_json(mono));
    manifest.set("distributed", obs::solve_core_json(report));
    manifest.set("network", obs::link_stats_json(net_stats));
    manifest.set_metrics(registry);
    manifest.write(metrics_path);
    std::cout << "\nRun manifest written to " << metrics_path << "\n";
  }
  return 0;
}
