// Distributed execution demo: runs the same UFC slot through (a) the
// monolithic ADM-G solver and (b) the message-passing runtime — ten
// front-end agents and four datacenter agents exchanging only the paper's
// Fig. 2 messages over a lossy bus — and shows that the iterates are
// identical while reporting the WAN traffic the protocol costs.
//
//   $ ./example_distributed_demo [loss_rate]
#include <cstdlib>
#include <iostream>

#include "admm/admg.hpp"
#include "net/runtime.hpp"
#include "traces/scenario.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ufc;

  const double loss_rate = argc > 1 ? std::atof(argv[1]) : 0.15;
  const auto scenario = traces::Scenario::generate({});
  const auto problem = scenario.problem_at(64);  // a Wednesday peak hour

  admm::AdmgOptions options;
  options.tolerance = 3e-3;
  options.max_iterations = 800;
  options.record_trace = false;

  std::cout << "Solving one peak slot (M = " << problem.num_front_ends()
            << " front-ends, N = " << problem.num_datacenters()
            << " datacenters)...\n\n";

  const auto mono = admm::solve_admg(problem, options);

  net::DistributedOptions dist;
  dist.admg = options;
  dist.loss_rate = loss_rate;
  net::DistributedAdmgRuntime runtime(problem, dist);
  const auto report = runtime.run();

  TablePrinter table({"Solver", "iterations", "UFC $", "max |lambda diff|"});
  table.add_row("monolithic ADM-G",
                {static_cast<double>(mono.iterations), mono.breakdown.ufc, 0.0},
                3);
  table.add_row("message-passing agents",
                {static_cast<double>(report.iterations), report.breakdown.ufc,
                 max_abs_diff(report.solution.lambda, mono.solution.lambda)},
                3);
  table.print();

  const auto& net_stats = report.network;
  std::cout << "\nNetwork totals at " << fixed(100.0 * loss_rate, 0)
            << "% simulated per-attempt loss:\n";
  std::cout << "  messages delivered : " << net_stats.messages << "\n";
  std::cout << "  retransmissions    : " << net_stats.retransmissions << "\n";
  std::cout << "  bytes on the wire  : " << net_stats.bytes << " ("
            << fixed(static_cast<double>(net_stats.bytes) / 1024.0, 1)
            << " KiB)\n";
  std::cout << "  per iteration      : "
            << net_stats.messages / static_cast<std::uint64_t>(report.iterations)
            << " messages\n";

  std::cout << "\nEach front-end only ever saw its own (A_i, L_i., a_i., "
               "varphi_i.); each datacenter only its own (alpha, beta, S_j, "
               "p_j, C_j, mu_max) plus the messages above —\nthe "
               "decomposition of paper Fig. 2.\n";
  return 0;
}
