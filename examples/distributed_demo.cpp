// Distributed execution demo: runs the same UFC slot through (a) the
// monolithic ADM-G solver and (b) the message-passing runtime — ten
// front-end agents and four datacenter agents exchanging only the paper's
// Fig. 2 messages over a lossy bus — and shows that the iterates are
// identical while reporting the WAN traffic the protocol costs.
//
//   $ ./example_distributed_demo [loss_rate] [--metrics <path>]
//
// --metrics writes a ufc-run-v1 manifest holding both solve reports and the
// bus traffic counters (net.* metrics via obs::record_link_stats).
#include <charconv>
#include <iostream>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "net/runtime.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_observer.hpp"
#include "traces/scenario.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr << "usage: example_distributed_demo [loss_rate] "
               "[--metrics <path>]\n"
               "  loss_rate  per-attempt message-loss probability in [0, 1)\n"
               "             (default 0.15)\n"
               "  --metrics  write a ufc-run-v1 manifest with both reports\n"
               "             and the bus traffic counters\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ufc;

  std::vector<std::string> positional;
  std::string metrics_path;
  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    if (token == "--metrics") {
      if (arg + 1 >= argc) {
        std::cerr << "error: --metrics requires a path argument\n";
        return usage();
      }
      metrics_path = argv[++arg];
    } else {
      positional.push_back(token);
    }
  }

  // atof-style parsing would turn garbage into a silent 0.0 and let an
  // out-of-range rate (e.g. 1.5) reach the fault plan unvalidated; parse
  // checked and keep the bus's [0, 1) domain at the boundary instead.
  double loss_rate = 0.15;
  if (!positional.empty()) {
    const std::string& arg = positional.front();
    const auto result =
        std::from_chars(arg.data(), arg.data() + arg.size(), loss_rate);
    if (result.ec != std::errc() || result.ptr != arg.data() + arg.size()) {
      std::cerr << "error: loss_rate '" << arg << "' is not a number\n";
      return usage();
    }
    if (!(loss_rate >= 0.0 && loss_rate < 1.0)) {
      std::cerr << "error: loss_rate " << arg << " outside [0, 1)\n";
      return usage();
    }
  }
  const auto scenario = traces::Scenario::generate({});
  const auto problem = scenario.problem_at(64);  // a Wednesday peak hour

  admm::AdmgOptions options;
  options.tolerance = 3e-3;
  options.max_iterations = 800;
  options.record_trace = false;

  std::cout << "Solving one peak slot (M = " << problem.num_front_ends()
            << " front-ends, N = " << problem.num_datacenters()
            << " datacenters)...\n\n";

  const auto mono = admm::solve_admg(problem, options);

  net::DistributedOptions dist;
  dist.admg = options;
  dist.loss_rate = loss_rate;
  net::DistributedAdmgRuntime runtime(problem, dist);
  const auto report = runtime.run();

  TablePrinter table({"Solver", "iterations", "UFC $", "max |lambda diff|"});
  table.add_row("monolithic ADM-G",
                {static_cast<double>(mono.iterations), mono.breakdown.ufc, 0.0},
                3);
  table.add_row("message-passing agents",
                {static_cast<double>(report.iterations), report.breakdown.ufc,
                 max_abs_diff(report.solution.lambda, mono.solution.lambda)},
                3);
  table.print();

  const auto& net_stats = report.network;
  std::cout << "\nNetwork totals at " << fixed(100.0 * loss_rate, 0)
            << "% simulated per-attempt loss:\n";
  std::cout << "  messages delivered : " << net_stats.messages << "\n";
  std::cout << "  retransmissions    : " << net_stats.retransmissions << "\n";
  std::cout << "  bytes on the wire  : " << net_stats.bytes << " ("
            << fixed(static_cast<double>(net_stats.bytes) / 1024.0, 1)
            << " KiB)\n";
  std::cout << "  per iteration      : "
            << net_stats.messages / static_cast<std::uint64_t>(report.iterations)
            << " messages\n";

  std::cout << "\nEach front-end only ever saw its own (A_i, L_i., a_i., "
               "varphi_i.); each datacenter only its own (alpha, beta, S_j, "
               "p_j, C_j, mu_max) plus the messages above —\nthe "
               "decomposition of paper Fig. 2.\n";

  if (!metrics_path.empty()) {
    obs::MetricsRegistry registry;
    obs::record_link_stats(registry, net_stats);
    obs::RunManifest manifest;
    manifest.set("command", obs::JsonValue("distributed_demo"));
    manifest.set("loss_rate", obs::JsonValue(loss_rate));
    manifest.set("monolithic", obs::solve_core_json(mono));
    manifest.set("distributed", obs::solve_core_json(report));
    manifest.set("network", obs::link_stats_json(net_stats));
    manifest.set_metrics(registry);
    manifest.write(metrics_path);
    std::cout << "\nRun manifest written to " << metrics_path << "\n";
  }
  return 0;
}
