// Quickstart: build a two-datacenter UFC problem by hand, solve it with the
// distributed 4-block ADM-G solver, and inspect the operating point.
//
//   $ ./example_quickstart
#include <iostream>
#include <memory>

#include "admm/strategy.hpp"
#include "util/table.hpp"

int main() {
  using namespace ufc;

  // --- Describe one time slot of a small geo-distributed cloud. ----------
  UfcProblem problem;
  problem.power = ServerPowerModel{100.0, 200.0};  // watts idle / peak
  problem.fuel_cell_price = 80.0;                  // p0, $/MWh
  problem.latency_weight = 10.0;                   // w, $/s^2
  problem.utility = std::make_shared<QuadraticUtility>();  // paper eq. (2)

  DatacenterSpec cheap_dirty;
  cheap_dirty.name = "coal-town";
  cheap_dirty.servers = 1000;
  cheap_dirty.pue = 1.2;
  cheap_dirty.grid_price = 30.0;    // $/MWh
  cheap_dirty.carbon_rate = 800.0;  // kg CO2 / MWh
  cheap_dirty.fuel_cell_capacity_mw = 0.24;  // covers peak demand
  cheap_dirty.emission_cost = std::make_shared<AffineCarbonTax>(25.0);

  DatacenterSpec pricey_clean = cheap_dirty;
  pricey_clean.name = "hydro-bay";
  pricey_clean.servers = 800;
  pricey_clean.grid_price = 95.0;
  pricey_clean.carbon_rate = 200.0;
  pricey_clean.fuel_cell_capacity_mw = 0.20;

  problem.datacenters = {cheap_dirty, pricey_clean};
  problem.arrivals = {600.0, 400.0};  // servers' worth of requests per proxy
  problem.latency_s = Mat(2, 2);
  problem.latency_s(0, 0) = 0.010;  // proxy 0 is near coal-town
  problem.latency_s(0, 1) = 0.030;
  problem.latency_s(1, 0) = 0.040;  // proxy 1 is near hydro-bay
  problem.latency_s(1, 1) = 0.015;

  // --- Solve all three strategies. ----------------------------------------
  TablePrinter table({"Strategy", "UFC $", "energy $", "carbon $",
                      "latency ms", "fuel cell %"});
  for (const auto strategy : admm::kAllStrategies) {
    const auto report = admm::solve_strategy(problem, strategy);
    const auto& b = report.breakdown;
    table.add_row(admm::to_string(strategy),
                  {b.ufc, b.energy_cost, b.carbon_cost, b.avg_latency_ms,
                   100.0 * b.utilization},
                  2);
  }
  table.print();

  // --- Inspect the hybrid routing. -----------------------------------------
  const auto hybrid = admm::solve_strategy(problem, admm::Strategy::Hybrid);
  std::cout << "\nHybrid routing (requests from proxy i to datacenter j):\n";
  for (std::size_t i = 0; i < 2; ++i) {
    std::cout << "  proxy " << i << ":";
    for (std::size_t j = 0; j < 2; ++j)
      std::cout << "  " << problem.datacenters[j].name << " = "
                << fixed(hybrid.solution.lambda(i, j), 1);
    std::cout << "\n";
  }
  std::cout << "Fuel cell dispatch (MW):";
  for (std::size_t j = 0; j < 2; ++j)
    std::cout << "  " << problem.datacenters[j].name << " = "
              << fixed(hybrid.solution.mu[j], 4);
  std::cout << "\nConverged in " << hybrid.iterations << " iterations\n";
  return 0;
}
