// Tour of the library's extensions beyond the paper's core model:
// server right-sizing, battery storage, forecast-based planning, async
// participation and the complementary PUE/CUE/ERP indexes — all on one
// scenario.
//
//   $ ./example_extensions_tour
#include <iostream>

#include "ufc.hpp"
#include "util/table.hpp"

int main() {
  using namespace ufc;

  traces::ScenarioConfig config;
  config.hours = 72;
  const auto scenario = traces::Scenario::generate(config);
  sim::SimulatorOptions options;
  const auto problem = scenario.problem_at(40);  // an afternoon slot

  std::cout << "1) Server right-sizing (paper SS II-C Remark)\n";
  const auto always_on =
      admm::solve_strategy(problem, admm::Strategy::Hybrid, options.admg);
  const auto sized =
      admm::solve_right_sized(problem, admm::Strategy::Hybrid, options.admg);
  std::cout << "   always-on UFC " << fixed(always_on.breakdown.ufc, 1)
            << " $ -> right-sized " << fixed(sized.final_report.breakdown.ufc, 1)
            << " $ in " << sized.rounds << " rounds\n\n";

  std::cout << "2) Complementary indexes (PUE / CUE / ERP)\n";
  TablePrinter indexes({"Strategy", "PUE", "CUE kg/kWh", "ERP kWs"});
  for (const auto strategy : admm::kAllStrategies) {
    const auto report = admm::solve_strategy(problem, strategy, options.admg);
    const auto idx = complementary_indexes(problem, report.solution.lambda,
                                           report.solution.mu);
    indexes.add_row(admm::to_string(strategy),
                    {idx.pue, idx.cue_kg_per_kwh, idx.erp_kws}, 3);
  }
  indexes.print();
  std::cout << "   (PUE cannot tell the strategies apart; CUE can.)\n\n";

  std::cout << "3) Battery storage (temporal peak shaving)\n";
  sim::OptimalStorageOptions storage;
  storage.battery.capacity_mwh = 8.0;
  storage.battery.max_charge_mw = 2.0;
  storage.battery.max_discharge_mw = 2.0;
  const auto stored = sim::run_storage_week_optimal(scenario, storage, options);
  std::cout << "   8 MWh / 2 MW per site saves "
            << fixed(stored.total_saving, 0) << " $ ("
            << fixed(stored.saving_pct, 2) << "% of energy cost) over "
            << config.hours << " h\n\n";

  std::cout << "4) Planning on forecasted arrivals (paper SS II-A premise)\n";
  sim::ForecastStudyOptions forecast;
  forecast.skip_slots = 48;
  const auto study = sim::run_forecast_study(scenario, forecast);
  std::cout << "   Holt-Winters MAPE " << fixed(100.0 * study.workload_mape, 1)
            << "% -> UFC gap " << fixed(study.avg_ufc_gap_pct, 2)
            << "% vs clairvoyant\n\n";

  std::cout << "5) Straggling front-ends (async participation)\n";
  admm::AsyncOptions async;
  async.admg = options.admg;
  async.participation = 0.5;
  const auto lazy = admm::solve_async_admg(problem, async);
  std::cout << "   at 50% participation: " << lazy.iterations
            << " iterations (vs " << always_on.iterations
            << " synchronous), UFC " << fixed(lazy.breakdown.ufc, 1)
            << " $ (same optimum), " << lazy.skipped_updates
            << " skipped updates\n";
  return 0;
}
