// ufc_cli — configuration-driven driver for the UFC library.
//
//   ./example_ufc_cli <command> [config.ini] [--metrics <path>]
//
// Commands:
//   solve       solve one slot and print the full breakdown per strategy
//   simulate    run the whole scenario horizon and print the comparison
//   sweep-price reproduce the Fig. 9 style p0 sweep
//   sweep-tax   reproduce the Fig. 10 style carbon-tax sweep
//   traces      dump the generated traces to CSV
//
// --metrics <path> writes a machine-readable run manifest (schema
// ufc-run-v1, see docs/OBSERVABILITY.md): the scenario/solver configuration,
// per-command results and the aggregated metrics registry. Attaching the
// instrumentation never changes solver results — observers are read-only.
//
// All parameters default to the paper's setup and can be overridden from an
// INI file, e.g.:
//
//   [scenario]
//   seed = 7
//   hours = 72
//   fuel_cell_price = 60   ; $/MWh
//   carbon_tax = 40        ; $/ton
//   [solver]
//   rho = 10
//   tolerance = 3e-3
//   [simulate]
//   slot = 64
//   stride = 2
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "admm/options.hpp"
#include "model/metrics.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics_observer.hpp"
#include "sim/manifest.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/paths.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace ufc;

/// The --metrics capture: commands record into the registry (through the
/// observer seam) and add manifest sections; main() writes the file.
struct MetricsCapture {
  obs::MetricsRegistry registry;
  obs::RunManifest manifest;
};

traces::ScenarioConfig scenario_from(const Config& config) {
  return traces::scenario_config_from(config);
}

sim::SimulatorOptions simulator_from(const Config& config) {
  return sim::simulator_options_from(config);
}

int cmd_solve(const Config& config, MetricsCapture* capture) {
  const auto scenario = traces::Scenario::generate(scenario_from(config));
  const int slot = config.get_int("simulate.slot", 64);
  const auto problem = scenario.problem_at(slot);
  // One slot, no simulation loop: bind the [solver] keys straight to
  // AdmgOptions, starting from the simulator's paper-scale defaults.
  auto admg = admm::options_from_config(config, sim::SimulatorOptions{}.admg);
  std::optional<obs::MetricsObserver> observer;
  if (capture != nullptr) {
    observer.emplace(capture->registry);
    admg.observer = &*observer;
    admg.profile_phases = true;
  }

  std::cout << "Slot " << slot << " (" << problem.num_front_ends()
            << " front-ends, " << problem.num_datacenters()
            << " datacenters, total arrivals "
            << fixed(problem.total_arrivals(), 0) << " servers)\n\n";

  obs::JsonValue strategies = obs::JsonValue::object();
  TablePrinter table({"Strategy", "UFC $", "energy $", "carbon $",
                      "latency ms", "fuel cell %", "CUE kg/kWh", "iters"});
  for (const auto strategy : admm::kAllStrategies) {
    const auto report = admm::solve_strategy(problem, strategy, admg);
    const auto& b = report.breakdown;
    const auto idx = complementary_indexes(problem, report.solution.lambda,
                                           report.solution.mu);
    table.add_row(admm::to_string(strategy),
                  {b.ufc, b.energy_cost, b.carbon_cost, b.avg_latency_ms,
                   100.0 * b.utilization, idx.cue_kg_per_kwh,
                   static_cast<double>(report.iterations)},
                  2);
    if (capture != nullptr)
      strategies.set(admm::to_string(strategy), obs::solve_core_json(report));
  }
  table.print();
  if (capture != nullptr) {
    capture->manifest.set("command", obs::JsonValue("solve"));
    capture->manifest.set("scenario",
                          sim::scenario_config_json(scenario.config()));
    capture->manifest.set("solver", sim::admg_options_json(admg));
    capture->manifest.set("slot", obs::JsonValue(slot));
    capture->manifest.set("strategies", std::move(strategies));
  }
  return 0;
}

int cmd_simulate(const Config& config, MetricsCapture* capture) {
  const auto scenario = traces::Scenario::generate(scenario_from(config));
  auto options = simulator_from(config);
  std::optional<obs::MetricsObserver> observer;
  if (capture != nullptr) {
    observer.emplace(capture->registry);
    options.admg.observer = &*observer;
    options.admg.profile_phases = true;
  }
  std::cout << "Simulating " << scenario.hours() << " hours (stride "
            << options.stride << ") x 3 strategies...\n\n";
  const auto cmp = sim::compare_strategies(scenario, options);

  TablePrinter table({"Strategy", "total UFC $", "energy $", "carbon t",
                      "latency ms", "fuel cell %"});
  for (const auto* week : {&cmp.grid, &cmp.fuel_cell, &cmp.hybrid}) {
    table.add_row(admm::to_string(week->strategy),
                  {week->total_ufc(), week->total_energy_cost(),
                   week->total_carbon_tons(), week->average_latency_ms(),
                   100.0 * week->average_utilization()},
                  1);
  }
  table.print();
  std::cout << "\nI_hg avg " << fixed(cmp.average_improvement_hg(), 1)
            << "%  I_hf avg " << fixed(cmp.average_improvement_hf(), 1)
            << "%  I_fg avg " << fixed(cmp.average_improvement_fg(), 1)
            << "%\n";

  const std::string csv_path = util::output_path(
      config, config.get_string("output.csv", "ufc_simulate.csv"));
  CsvWriter csv(csv_path, {"hour", "ufc_grid", "ufc_fuel_cell", "ufc_hybrid"});
  for (std::size_t t = 0; t < cmp.grid.slots.size(); ++t)
    csv.row({static_cast<double>(cmp.grid.slots[t].slot),
             cmp.grid.slots[t].breakdown.ufc,
             cmp.fuel_cell.slots[t].breakdown.ufc,
             cmp.hybrid.slots[t].breakdown.ufc});
  std::cout << "Per-slot series: " << csv.path() << "\n";
  if (capture != nullptr) {
    capture->manifest.set("command", obs::JsonValue("simulate"));
    capture->manifest.set("scenario",
                          sim::scenario_config_json(scenario.config()));
    capture->manifest.set("simulator", sim::simulator_options_json(options));
    obs::JsonValue weeks = obs::JsonValue::object();
    weeks.set("grid", sim::week_result_json(cmp.grid));
    weeks.set("fuel_cell", sim::week_result_json(cmp.fuel_cell));
    weeks.set("hybrid", sim::week_result_json(cmp.hybrid));
    capture->manifest.set("weeks", std::move(weeks));
    obs::JsonValue improvements = obs::JsonValue::object();
    improvements.set("hybrid_vs_grid_pct",
                     obs::JsonValue(cmp.average_improvement_hg()));
    improvements.set("hybrid_vs_fuel_cell_pct",
                     obs::JsonValue(cmp.average_improvement_hf()));
    improvements.set("fuel_cell_vs_grid_pct",
                     obs::JsonValue(cmp.average_improvement_fg()));
    capture->manifest.set("improvements", std::move(improvements));
  }
  return 0;
}

int cmd_sweep(const Config& config, bool price_sweep, MetricsCapture* capture) {
  const auto base = scenario_from(config);
  auto options = simulator_from(config);
  if (!config.has("simulate.stride")) options.stride = 2;

  const double lo = config.get_double("sweep.min", price_sweep ? 10.0 : 0.0);
  const double hi = config.get_double("sweep.max", price_sweep ? 130.0 : 200.0);
  const int steps = config.get_int("sweep.steps", 7);
  std::vector<double> params;
  for (int k = 0; k < steps; ++k)
    params.push_back(lo + (hi - lo) * k / std::max(1, steps - 1));

  obs::MetricsRegistry* registry =
      capture != nullptr ? &capture->registry : nullptr;
  const auto points =
      price_sweep ? sim::sweep_fuel_cell_price(base, params, options, registry)
                  : sim::sweep_carbon_tax(base, params, options, registry);
  TablePrinter table({price_sweep ? "p0 ($/MWh)" : "tax ($/ton)",
                      "UFC improvement %", "utilization %"});
  for (const auto& point : points)
    table.add_row(fixed(point.parameter, 0),
                  {point.avg_improvement_pct, 100.0 * point.avg_utilization},
                  1);
  table.print();
  if (capture != nullptr) {
    capture->manifest.set(
        "command", obs::JsonValue(price_sweep ? "sweep-price" : "sweep-tax"));
    capture->manifest.set("scenario", sim::scenario_config_json(base));
    capture->manifest.set("simulator", sim::simulator_options_json(options));
    capture->manifest.set("points", sim::sweep_points_json(points));
  }
  return 0;
}

int cmd_traces(const Config& config, MetricsCapture* capture) {
  const auto scenario = traces::Scenario::generate(scenario_from(config));
  if (capture != nullptr) {
    capture->manifest.set("command", obs::JsonValue("traces"));
    capture->manifest.set("scenario",
                          sim::scenario_config_json(scenario.config()));
  }
  const std::string csv_path = util::output_path(
      config, config.get_string("output.csv", "ufc_traces.csv"));
  CsvWriter csv(csv_path,
                {"hour", "workload", "price_calgary", "price_san_jose",
                 "price_dallas", "price_pittsburgh", "carbon_calgary",
                 "carbon_san_jose", "carbon_dallas", "carbon_pittsburgh"});
  for (int t = 0; t < scenario.hours(); ++t) {
    const auto slot = static_cast<std::size_t>(t);
    csv.row({static_cast<double>(t), scenario.total_workload()[slot],
             scenario.prices()(slot, 0), scenario.prices()(slot, 1),
             scenario.prices()(slot, 2), scenario.prices()(slot, 3),
             scenario.carbon_rates()(slot, 0), scenario.carbon_rates()(slot, 1),
             scenario.carbon_rates()(slot, 2),
             scenario.carbon_rates()(slot, 3)});
  }
  std::cout << "Wrote " << csv.rows_written() << " rows to " << csv.path()
            << "\n";
  return 0;
}

int usage() {
  std::cout <<
      "usage: ufc_cli <command> [config.ini] [--metrics <path>]\n"
      "  solve        solve one slot, print per-strategy breakdowns\n"
      "  simulate     run the scenario horizon, compare strategies\n"
      "  sweep-price  sweep the fuel-cell price p0 (Fig. 9 style)\n"
      "  sweep-tax    sweep the carbon tax (Fig. 10 style)\n"
      "  traces       dump generated traces to CSV\n"
      "  --metrics    write a ufc-run-v1 manifest (config, results, metrics)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Split [config.ini] from the --metrics flag; the flag may appear anywhere
  // after the command.
  std::vector<std::string> positional;
  std::string metrics_path;
  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    if (token == "--metrics") {
      if (arg + 1 >= argc) {
        std::cerr << "error: --metrics requires a path argument\n";
        return 2;
      }
      metrics_path = argv[++arg];
    } else {
      positional.push_back(token);
    }
  }
  if (positional.empty()) return usage();
  const std::string command = positional[0];
  Config config;
  if (positional.size() > 1) {
    try {
      config = Config::load(positional[1]);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }
  std::optional<MetricsCapture> capture;
  if (!metrics_path.empty()) capture.emplace();
  MetricsCapture* capture_ptr = capture ? &*capture : nullptr;
  int status = 2;
  try {
    if (command == "solve")
      status = cmd_solve(config, capture_ptr);
    else if (command == "simulate")
      status = cmd_simulate(config, capture_ptr);
    else if (command == "sweep-price")
      status = cmd_sweep(config, true, capture_ptr);
    else if (command == "sweep-tax")
      status = cmd_sweep(config, false, capture_ptr);
    else if (command == "traces")
      status = cmd_traces(config, capture_ptr);
    else
      return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  if (status == 0 && capture) {
    capture->manifest.set_metrics(capture->registry);
    capture->manifest.write(metrics_path);
    std::cout << "Run manifest written to " << metrics_path << "\n";
  }
  return status;
}
