// Receding-horizon controller demo: a multi-tenant online service.
//
// Spins up T independent UFC instances ("tenants"), each fed by its own
// seeded synthetic tick stream (jittered arrivals and grid prices around a
// different hour of the paper scenario), and multiplexes them over one
// MultiTenantScheduler: every tick each tenant's update is applied to its
// live warm-started solver and the tick's shared iteration pool is dealt
// out in round-robin quanta, with early-converging tenants handing their
// unused grant back to the pool.
//
//   $ ./example_controller_demo [ticks] [tenants] [--budget POOL]
//       [--quantum Q] [--seed S] [--threads T] [--metrics <path>]
//
// The run is deterministic: no wall-clock is read anywhere in the control
// path, so the same seed produces an identical manifest (including for any
// --threads value — tenant solves are independent and accounting is
// serial in grant order).
#include <charconv>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/scheduler.hpp"
#include "ctrl/stream.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/table.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: example_controller_demo [ticks] [tenants] [--budget POOL]\n"
         "         [--quantum Q] [--seed S] [--threads T] [--metrics <path>]\n"
         "  ticks      control ticks to run (default 48)\n"
         "  tenants    independent UFC instances to multiplex (default 4)\n"
         "  --budget   shared iteration pool per tick (default 400)\n"
         "  --quantum  largest single grant per tenant per round "
         "(default 50)\n"
         "  --seed     stream seed; same seed -> identical manifest "
         "(default 42)\n"
         "  --threads  scheduler worker threads, 0 = hardware (default 1);\n"
         "             results are bit-identical for every value\n"
         "  --metrics  write a ufc-run-v1 manifest with the per-tenant\n"
         "             ctrl.* counters and histograms\n";
  return 2;
}

bool parse_long(const std::string& what, const std::string& text, long& out) {
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    std::cerr << "error: " << what << " '" << text << "' is not an integer\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ufc;

  long ticks = 48;
  long tenants = 4;
  long budget = 400;
  long quantum = 50;
  long seed = 42;
  long threads = 1;
  std::string metrics_path;
  std::vector<std::string> positional;
  for (int arg = 1; arg < argc; ++arg) {
    const std::string token = argv[arg];
    if (token == "--metrics") {
      if (arg + 1 >= argc) {
        std::cerr << "error: --metrics requires a path argument\n";
        return usage();
      }
      metrics_path = argv[++arg];
    } else if (token == "--budget" || token == "--quantum" ||
               token == "--seed" || token == "--threads") {
      if (arg + 1 >= argc) {
        std::cerr << "error: " << token << " requires an integer argument\n";
        return usage();
      }
      long value = 0;
      if (!parse_long(token, argv[++arg], value)) return usage();
      if (token == "--budget") {
        budget = value;
      } else if (token == "--quantum") {
        quantum = value;
      } else if (token == "--seed") {
        seed = value;
      } else {
        threads = value;
      }
    } else {
      positional.push_back(token);
    }
  }
  if (positional.size() > 2) return usage();
  if (!positional.empty() && !parse_long("ticks", positional[0], ticks))
    return usage();
  if (positional.size() > 1 && !parse_long("tenants", positional[1], tenants))
    return usage();
  if (ticks < 1 || tenants < 1 || budget < 1 || quantum < 1 || threads < 0) {
    std::cerr << "error: ticks/tenants/--budget/--quantum must be >= 1 and "
                 "--threads >= 0\n";
    return usage();
  }

  const auto scenario = traces::Scenario::generate({});

  ctrl::SchedulerOptions options;
  options.iteration_pool_per_tick = static_cast<int>(budget);
  options.quantum = static_cast<int>(quantum);
  options.threads = static_cast<int>(threads);
  options.admg = sim::SimulatorOptions{}.admg;  // paper-scale solver settings

  ctrl::MultiTenantScheduler scheduler(options);
  for (long k = 0; k < tenants; ++k) {
    // Each tenant jitters around a different hour of the week, so the
    // instances are genuinely independent problems, not four copies.
    const int hour = static_cast<int>((24 + 11 * k) %
                                      static_cast<long>(scenario.hours()));
    ctrl::SyntheticTickSource::Options stream;
    stream.seed = static_cast<std::uint64_t>(seed) * 1000 +
                  static_cast<std::uint64_t>(k);
    stream.ticks = static_cast<int>(ticks);
    stream.workload_amplitude = 0.15;
    stream.price_amplitude = 0.25;
    scheduler.add_tenant("tenant" + std::to_string(k),
                         std::make_unique<ctrl::SyntheticTickSource>(
                             scenario.problem_at(hour), stream));
  }

  std::cout << "Multiplexing " << tenants << " tenants over a shared pool of "
            << budget << " iterations/tick (quantum " << quantum << ", "
            << "M = " << scenario.num_front_ends()
            << ", N = " << scenario.num_datacenters() << ")...\n\n";

  const int ran = scheduler.run(static_cast<int>(ticks));

  obs::MetricsRegistry registry;
  scheduler.record_metrics(registry);

  TablePrinter table({"tenant", "ticks", "iters", "converged",
                      "budget exhausted", "iters saved", "balance resid"});
  for (std::size_t t = 0; t < scheduler.tenant_count(); ++t) {
    const std::string prefix = "ctrl.tenant." + scheduler.tenant_name(t);
    const auto count = [&](const std::string& name) {
      const obs::Counter* counter = registry.find_counter(prefix + name);
      return counter != nullptr ? counter->value() : 0;
    };
    table.add_row({scheduler.tenant_name(t), std::to_string(count(".ticks")),
                   std::to_string(count(".iterations")),
                   std::to_string(count(".converged_ticks")),
                   std::to_string(count(".budget_exhausted")),
                   std::to_string(count(".iterations_saved")),
                   fixed(scheduler.tenant_solver(t).balance_residual(), 5)});
  }
  table.print();
  std::cout << "\nRan " << ran << " ticks; every tenant keeps its warm "
               "iterate across ticks, so a budget-exhausted tick resumes "
               "(not restarts) on the next one.\n";

  if (!metrics_path.empty()) {
    for (std::size_t t = 0; t < scheduler.tenant_count(); ++t) {
      const std::string prefix = "ctrl.tenant." + scheduler.tenant_name(t);
      registry.gauge(prefix + ".balance_residual")
          .set(scheduler.tenant_solver(t).balance_residual());
      registry.gauge(prefix + ".copy_residual")
          .set(scheduler.tenant_solver(t).copy_residual());
    }
    obs::RunManifest manifest;
    manifest.set("command", obs::JsonValue("controller_demo"));
    manifest.set("ticks", obs::JsonValue(static_cast<std::int64_t>(ran)));
    manifest.set("tenants",
                 obs::JsonValue(static_cast<std::int64_t>(tenants)));
    manifest.set("budget_per_tick",
                 obs::JsonValue(static_cast<std::int64_t>(budget)));
    manifest.set("quantum", obs::JsonValue(static_cast<std::int64_t>(quantum)));
    manifest.set("seed", obs::JsonValue(static_cast<std::int64_t>(seed)));
    manifest.set_metrics(registry);
    manifest.write(metrics_path);
    std::cout << "\nRun manifest written to " << metrics_path << "\n";
  }
  return 0;
}
