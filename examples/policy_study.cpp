// Policy study: at what fuel-cell price, or what carbon-tax rate, do fuel
// cells become the dominant power source for a geo-distributed cloud?
// Reproduces the question behind the paper's Figs. 9 and 10 on a reduced
// grid of parameters.
//
//   $ ./example_policy_study
#include <array>
#include <iostream>

#include "sim/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace ufc;

  traces::ScenarioConfig config;
  config.hours = 72;  // three days keeps the study quick
  sim::SimulatorOptions options;
  options.stride = 2;

  std::cout << "Sweeping the fuel-cell price p0 (carbon tax fixed at $"
            << config.carbon_tax << "/ton)...\n";
  const std::array<double, 5> prices = {20.0, 40.0, 60.0, 80.0, 100.0};
  const auto price_points = sim::sweep_fuel_cell_price(config, prices, options);

  TablePrinter price_table(
      {"p0 ($/MWh)", "UFC improvement %", "utilization %"});
  for (const auto& point : price_points)
    price_table.add_row(fixed(point.parameter, 0),
                        {point.avg_improvement_pct,
                         100.0 * point.avg_utilization},
                        1);
  price_table.print();

  std::cout << "\nSweeping the carbon tax (fuel-cell price fixed at $"
            << config.fuel_cell_price << "/MWh)...\n";
  const std::array<double, 5> taxes = {0.0, 25.0, 60.0, 120.0, 180.0};
  const auto tax_points = sim::sweep_carbon_tax(config, taxes, options);

  TablePrinter tax_table({"tax ($/ton)", "UFC improvement %", "utilization %"});
  for (const auto& point : tax_points)
    tax_table.add_row(fixed(point.parameter, 0),
                      {point.avg_improvement_pct,
                       100.0 * point.avg_utilization},
                      1);
  tax_table.print();

  // A crude "policy recommendation": the first sweep point where fuel cells
  // carry the majority of the load.
  for (const auto& point : price_points) {
    if (point.avg_utilization > 0.5) {
      std::cout << "\nFuel cells carry most of the load once p0 <= $"
                << fixed(point.parameter, 0) << "/MWh.\n";
      break;
    }
  }
  for (const auto& point : tax_points) {
    if (point.avg_utilization > 0.5) {
      std::cout << "At p0 = $80/MWh, a carbon tax of ~$"
                << fixed(point.parameter, 0)
                << "/ton achieves majority fuel-cell power.\n";
      break;
    }
  }
  return 0;
}
