// Full paper scenario: one simulated week over four datacenters (Calgary,
// San Jose, Dallas, Pittsburgh) and ten front-end proxies, comparing the
// Grid / FuelCell / Hybrid strategies hour by hour.
//
//   $ ./example_geo_week [seed]
#include <charconv>
#include <iostream>
#include <string>

#include "sim/simulator.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ufc;

  traces::ScenarioConfig config;
  if (argc > 1) {
    // strtoull would silently map garbage to 0 (and negative input to a
    // huge wrapped seed); require an exact unsigned integer instead.
    const std::string arg = argv[1];
    const auto result =
        std::from_chars(arg.data(), arg.data() + arg.size(), config.seed);
    if (result.ec != std::errc() || result.ptr != arg.data() + arg.size()) {
      std::cerr << "usage: example_geo_week [seed]\n"
                   "  seed  unsigned integer scenario seed (got '"
                << arg << "')\n";
      return 2;
    }
  }
  std::cout << "Generating one-week scenario (seed " << config.seed
            << ") and solving 3 x " << config.hours << " slots...\n\n";

  const auto scenario = traces::Scenario::generate(config);
  const auto cmp = sim::compare_strategies(scenario, {});

  TablePrinter table({"Strategy", "total UFC $", "energy $", "carbon $",
                      "carbon t", "avg latency ms", "fuel cell %"});
  for (const auto* week : {&cmp.grid, &cmp.fuel_cell, &cmp.hybrid}) {
    table.add_row(admm::to_string(week->strategy),
                  {week->total_ufc(), week->total_energy_cost(),
                   week->total_carbon_cost(), week->total_carbon_tons(),
                   week->average_latency_ms(),
                   100.0 * week->average_utilization()},
                  1);
  }
  table.print();

  std::cout << "\nHybrid vs Grid:     avg " << fixed(cmp.average_improvement_hg(), 1)
            << "%, peak " << fixed(max_value(cmp.improvement_hg), 1) << "%\n";
  std::cout << "Hybrid vs FuelCell: avg " << fixed(cmp.average_improvement_hf(), 1)
            << "%\n";
  std::cout << "FuelCell vs Grid:   avg " << fixed(cmp.average_improvement_fg(), 1)
            << "%, worst " << fixed(min_value(cmp.improvement_fg), 1) << "%\n";

  CsvWriter csv("geo_week.csv",
                {"hour", "ufc_grid", "ufc_fuel_cell", "ufc_hybrid",
                 "latency_hybrid_ms", "utilization_hybrid"});
  for (std::size_t t = 0; t < cmp.grid.slots.size(); ++t)
    csv.row({static_cast<double>(cmp.grid.slots[t].slot),
             cmp.grid.slots[t].breakdown.ufc,
             cmp.fuel_cell.slots[t].breakdown.ufc,
             cmp.hybrid.slots[t].breakdown.ufc,
             cmp.hybrid.slots[t].breakdown.avg_latency_ms,
             cmp.hybrid.slots[t].breakdown.utilization});
  std::cout << "\nPer-hour series written to " << csv.path() << "\n";
  return 0;
}
