// Fig. 3: the four-datacenter simulation inputs — total workload trace,
// per-site electricity prices and per-site carbon emission rates.
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 3 - workload, electricity price and carbon rate traces",
      "diurnal workload; spatially diverse prices and carbon rates");

  const auto scenario = bench::paper_scenario();
  const auto& names = scenario.datacenter_names();

  std::cout << "Workload (servers required): mean "
            << fixed(mean(scenario.total_workload()), 0) << ", peak "
            << fixed(max_value(scenario.total_workload()), 0)
            << ", total capacity "
            << fixed(scenario.servers()[0] + scenario.servers()[1] +
                         scenario.servers()[2] + scenario.servers()[3],
                     0)
            << " servers\n\n";

  TablePrinter prices({"Site", "price mean", "price min", "price max",
                       "carbon mean (kg/MWh)"});
  for (std::size_t j = 0; j < scenario.num_datacenters(); ++j) {
    const Vec price_col = scenario.prices().col(j);
    const Vec carbon_col = scenario.carbon_rates().col(j);
    prices.add_row(names[j],
                   {mean(price_col.raw()), min_value(price_col.raw()),
                    max_value(price_col.raw()), mean(carbon_col.raw())},
                   1);
  }
  prices.print();

  CsvWriter csv("ufc_fig3.csv",
                {"hour", "workload", "price_calgary", "price_san_jose",
                 "price_dallas", "price_pittsburgh", "carbon_calgary",
                 "carbon_san_jose", "carbon_dallas", "carbon_pittsburgh"});
  for (int t = 0; t < scenario.hours(); ++t) {
    const auto slot = static_cast<std::size_t>(t);
    csv.row({static_cast<double>(t), scenario.total_workload()[slot],
             scenario.prices()(slot, 0), scenario.prices()(slot, 1),
             scenario.prices()(slot, 2), scenario.prices()(slot, 3),
             scenario.carbon_rates()(slot, 0), scenario.carbon_rates()(slot, 1),
             scenario.carbon_rates()(slot, 2),
             scenario.carbon_rates()(slot, 3)});
  }
  bench::note_csv(csv);
  return 0;
}
