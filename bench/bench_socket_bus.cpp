// Transport overhead of the socket-backed bus (docs/DISTRIBUTION.md).
//
// Replays synthetic ADM-G protocol rounds — M front-ends propose to N
// datacenters, the datacenters reply with assignments — over the three
// transports the distributed runtime can run on:
//
//   in_process    MessageBus, everything in one address space (the baseline
//                 every fault-injection test is pinned against)
//   unix          SocketBus over a Unix-domain socket pair, hub on the main
//                 thread and the datacenter side on a second thread (the
//                 same topology as a Supervisor fleet, minus fork)
//   tcp           the same over TCP loopback
//
// Reported per (transport, M, N): protocol rounds per second and bytes per
// round, as counted by the hub-side bus (the in-process row counts both
// directions, the socket rows the hub's egress plus frame headers — the
// inner wire codec is identical everywhere). The socket rows price the real
// cost of process isolation: framing, syscalls and scheduler handoffs.
#include "bench_common.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/bus.hpp"
#include "net/message.hpp"
#include "net/socket_bus.hpp"
#include "util/clock.hpp"

namespace {

using namespace ufc;
using namespace ufc::net;

struct TransportPoint {
  std::string transport;
  std::size_t m = 0;
  std::size_t n = 0;
  int rounds = 0;
  double rounds_per_sec = 0.0;
  double bytes_per_round = 0.0;
};

Message make_proposal(std::size_t i, std::size_t j, int iteration) {
  Message msg;
  msg.source = front_end_id(i);
  msg.destination = datacenter_id(j);
  msg.type = MessageType::RoutingProposal;
  msg.iteration = iteration;
  msg.payload = {static_cast<double>(i) + 0.25, static_cast<double>(j) - 0.5};
  return msg;
}

Message make_assignment(const Message& proposal) {
  Message msg;
  msg.source = proposal.destination;
  msg.destination = proposal.source;
  msg.type = MessageType::RoutingAssignment;
  msg.iteration = proposal.iteration;
  msg.payload = {proposal.payload[0] * 0.5};
  return msg;
}

/// One protocol round against an in-process bus: M*N proposals out, M*N
/// assignments back, everything through the serialize/deserialize codec.
TransportPoint run_in_process(std::size_t m, std::size_t n, int rounds) {
  MessageBus bus{BusConfig{}};
  for (int k = 1; k <= rounds; ++k) {
    bus.begin_round(k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) bus.send(make_proposal(i, j, k));
    for (std::size_t j = 0; j < n; ++j)
      for (const Message& proposal : bus.drain(datacenter_id(j)))
        bus.send(make_assignment(proposal));
    for (std::size_t i = 0; i < m; ++i) (void)bus.drain(front_end_id(i));
  }
  // Timed pass after a warm-up sweep of the same shape.
  const util::MonotonicTimer timer;
  for (int k = rounds + 1; k <= 2 * rounds; ++k) {
    bus.begin_round(k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) bus.send(make_proposal(i, j, k));
    for (std::size_t j = 0; j < n; ++j)
      for (const Message& proposal : bus.drain(datacenter_id(j)))
        bus.send(make_assignment(proposal));
    for (std::size_t i = 0; i < m; ++i) (void)bus.drain(front_end_id(i));
  }
  const double seconds = timer.elapsed_seconds();
  TransportPoint point{"in_process", m, n, rounds};
  point.rounds_per_sec = rounds / seconds;
  point.bytes_per_round =
      static_cast<double>(bus.total().bytes) / (2.0 * rounds);
  return point;
}

SocketBusConfig hub_config(const SocketEndpoint& endpoint, std::size_t m) {
  SocketBusConfig config;
  config.endpoint = endpoint;
  config.hub = true;
  config.local_nodes.push_back(kCoordinatorId);
  for (std::size_t i = 0; i < m; ++i)
    config.local_nodes.push_back(front_end_id(i));
  return config;
}

SocketBusConfig worker_config(const SocketEndpoint& endpoint, std::size_t n) {
  SocketBusConfig config;
  config.endpoint = endpoint;
  config.hub = false;
  config.worker_index = 0;
  for (std::size_t j = 0; j < n; ++j)
    config.local_nodes.push_back(datacenter_id(j));
  return config;
}

/// Datacenter side of the protocol, running on its own thread with its own
/// bus: echo every proposal as an assignment until the hub says shutdown.
void worker_loop(const SocketEndpoint& endpoint, std::size_t n) {
  SocketBus bus(worker_config(endpoint, n));
  if (!bus.connect_to_hub(5000)) return;
  while (!bus.shutdown_requested() && bus.hub_connected()) {
    bus.pump(100);
    for (std::size_t j = 0; j < n; ++j)
      for (const Message& proposal : bus.drain(datacenter_id(j)))
        bus.send(make_assignment(proposal));
  }
}

TransportPoint run_socket(const std::string& transport, std::size_t m,
                          std::size_t n, int rounds) {
  SocketEndpoint endpoint;
  if (transport == "unix")
    endpoint.unix_path = "/tmp/ufc_bench_socket_bus_" +
                         std::to_string(::getpid()) + ".sock";
  SocketBus hub(hub_config(endpoint, m));
  SocketEndpoint worker_endpoint = endpoint;
  if (transport != "unix") worker_endpoint.tcp_port = hub.bound_tcp_port();
  std::thread worker(worker_loop, worker_endpoint, n);
  hub.wait_for_workers(1, 5000);

  const auto run_round = [&](int k) {
    hub.begin_round(k);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) hub.send(make_proposal(i, j, k));
    std::size_t received = 0;
    const IoDeadline deadline(5000);
    while (received < m * n && !deadline.expired()) {
      hub.pump(deadline.remaining_ms());
      for (std::size_t i = 0; i < m; ++i)
        received += hub.drain(front_end_id(i)).size();
    }
  };
  for (int k = 1; k <= rounds; ++k) run_round(k);  // warm-up
  const util::MonotonicTimer timer;
  for (int k = rounds + 1; k <= 2 * rounds; ++k) run_round(k);
  const double seconds = timer.elapsed_seconds();

  hub.send_shutdown(2000);
  worker.join();
  TransportPoint point{transport, m, n, rounds};
  point.rounds_per_sec = rounds / seconds;
  point.bytes_per_round =
      static_cast<double>(hub.total().bytes) / (2.0 * rounds);
  return point;
}

}  // namespace

int main() {
  bench::print_header(
      "Socket transport overhead",
      "distributed runtime robustness study (docs/DISTRIBUTION.md)");

  const auto sizes = bench::bench_sizes(
      {{4, 3, 200}, {10, 4, 100}, {20, 6, 50}});
  const std::vector<std::string> transports = {"in_process", "unix", "tcp"};

  CsvWriter csv("ufc_socket_bus.csv",
                {"transport", "m", "n", "rounds", "rounds_per_sec",
                 "bytes_per_round"});
  obs::JsonValue section = obs::JsonValue::array();
  std::printf("%-12s %6s %6s %8s %16s %16s\n", "transport", "M", "N",
              "rounds", "rounds/sec", "bytes/round");
  for (const auto& size : sizes) {
    for (const auto& transport : transports) {
      const TransportPoint point =
          transport == "in_process"
              ? run_in_process(size.m, size.n, size.iterations)
              : run_socket(transport, size.m, size.n, size.iterations);
      std::printf("%-12s %6zu %6zu %8d %16.0f %16.1f\n",
                  point.transport.c_str(), point.m, point.n, point.rounds,
                  point.rounds_per_sec, point.bytes_per_round);
      csv.row_strings({point.transport,
                       csv_number(static_cast<double>(point.m)),
                       csv_number(static_cast<double>(point.n)),
                       csv_number(static_cast<double>(point.rounds)),
                       csv_number(point.rounds_per_sec),
                       csv_number(point.bytes_per_round)});
      obs::JsonValue row = obs::JsonValue::object();
      row.set("transport", obs::JsonValue(point.transport));
      row.set("m", obs::JsonValue(static_cast<std::int64_t>(point.m)));
      row.set("n", obs::JsonValue(static_cast<std::int64_t>(point.n)));
      row.set("rounds", obs::JsonValue(point.rounds));
      row.set("rounds_per_sec", obs::JsonValue(point.rounds_per_sec));
      row.set("bytes_per_round", obs::JsonValue(point.bytes_per_round));
      section.push_back(std::move(row));
    }
  }
  bench::note_csv(csv);

  obs::JsonValue entry = obs::JsonValue::object();
  entry.set("transport_overhead", std::move(section));
  bench::write_bench_entry("socket_bus", std::move(entry));
  return 0;
}
