// Fig. 6: hourly energy cost per strategy — fuel-cell-only is the most
// expensive; the hybrid's price arbitrage cuts it sharply and tracks the
// grid at off-peak hours.
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 6 - energy cost under various strategies",
      "FuelCell highest; Hybrid ~60% below FuelCell; Hybrid==Grid off-peak");

  const auto scenario = bench::paper_scenario();
  const auto cmp = sim::compare_strategies(scenario, bench::paper_options());

  TablePrinter table({"Strategy", "total $", "mean $/h", "max $/h"});
  for (const auto* week : {&cmp.grid, &cmp.fuel_cell, &cmp.hybrid}) {
    const auto series = week->energy_cost_series();
    table.add_row(admm::to_string(week->strategy),
                  {week->total_energy_cost(), mean(series), max_value(series)},
                  0);
  }
  table.print();

  std::cout << "\nHybrid energy-cost reduction vs FuelCell: "
            << fixed(100.0 * (1.0 - cmp.hybrid.total_energy_cost() /
                                        cmp.fuel_cell.total_energy_cost()),
                     1)
            << "% (paper: ~60%)\n";

  CsvWriter csv("ufc_fig6.csv", {"hour", "energy_grid", "energy_fuel_cell",
                                 "energy_hybrid"});
  for (std::size_t t = 0; t < cmp.grid.slots.size(); ++t)
    csv.row({static_cast<double>(cmp.grid.slots[t].slot),
             cmp.grid.slots[t].breakdown.energy_cost,
             cmp.fuel_cell.slots[t].breakdown.energy_cost,
             cmp.hybrid.slots[t].breakdown.energy_cost});
  bench::note_csv(csv);
  return 0;
}
