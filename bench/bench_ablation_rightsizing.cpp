// Ablation of the paper's §II-C Remark: keeping every server powered
// (the paper's reliability-first default) versus right-sizing the active
// fleet to the routed load. Quantifies the idle-power cost of the paper's
// modeling choice across a simulated day.
#include "admm/rightsizing.hpp"
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Ablation - always-on fleets vs server right-sizing",
      "paper keeps S_j fixed; its Remark sketches the shutdown extension");

  const auto scenario = bench::paper_scenario();
  admm::AdmgOptions admg;
  admg.tolerance = 3e-3;
  admg.max_iterations = 800;
  admg.record_trace = false;

  TablePrinter table({"hour", "UFC always-on $", "UFC right-sized $",
                      "gain %", "active servers %"});
  CsvWriter csv("ufc_rightsizing.csv",
                {"hour", "ufc_always_on", "ufc_right_sized", "gain_pct",
                 "active_fraction"});

  double total_always = 0.0, total_sized = 0.0;
  double total_capacity = 0.0;
  for (double s : scenario.servers()) total_capacity += s;

  for (int t = 0; t < 24; ++t) {
    const int hour = 48 + t;  // a full Wednesday
    const auto problem = scenario.problem_at(hour);
    const auto always_on =
        admm::solve_strategy(problem, admm::Strategy::Hybrid, admg);
    const auto sized =
        admm::solve_right_sized(problem, admm::Strategy::Hybrid, admg);

    const double gain = improvement_percent(
        sized.final_report.breakdown.ufc, always_on.breakdown.ufc);
    double active = 0.0;
    for (double s : sized.active_servers) active += s;
    const double active_fraction = active / total_capacity;

    total_always += always_on.breakdown.ufc;
    total_sized += sized.final_report.breakdown.ufc;
    table.add_row(fixed(hour, 0),
                  {always_on.breakdown.ufc, sized.final_report.breakdown.ufc,
                   gain, 100.0 * active_fraction},
                  1);
    csv.row({static_cast<double>(hour), always_on.breakdown.ufc,
             sized.final_report.breakdown.ufc, gain, active_fraction});
  }
  table.print();

  std::cout << "\nDay total: always-on UFC " << fixed(total_always, 0)
            << " vs right-sized " << fixed(total_sized, 0) << " ("
            << fixed(improvement_percent(total_sized, total_always), 1)
            << "% better) — idle power is the price of the paper's "
               "always-on reliability stance.\n";
  bench::note_csv(csv);
  return 0;
}
