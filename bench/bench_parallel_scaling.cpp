// Parallel scaling of the ADM-G step: per-iteration wall time vs. the
// AdmgOptions::threads knob at three problem scales, against the pre-PR
// serial baseline (the allocating, single-threaded step this optimization
// replaced). Iterates are bit-identical across thread counts, so every row
// times exactly the same arithmetic.
#include "bench_common.hpp"

#include <chrono>

#include "admm/admg.hpp"
#include "util/rng.hpp"

namespace {

ufc::UfcProblem random_problem(std::size_t m, std::size_t n) {
  using namespace ufc;
  Rng rng(1234);
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();
  double capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    DatacenterSpec dc;
    dc.name = "dc" + std::to_string(j);
    dc.servers = rng.uniform(1.7e4, 2.3e4);
    dc.grid_price = rng.uniform(15.0, 120.0);
    dc.carbon_rate = rng.uniform(200.0, 900.0);
    dc.fuel_cell_capacity_mw = dc.servers * 200.0 * 1.2 / 1e6;
    dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
    capacity += dc.servers;
    p.datacenters.push_back(std::move(dc));
  }
  Rng shares_rng(7);
  p.arrivals =
      normal_shares(shares_rng, static_cast<int>(m), 0.6 * capacity, 0.35);
  p.latency_s = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p.latency_s(i, j) = rng.uniform(0.002, 0.045);
  return p;
}

double us_per_iteration(const ufc::UfcProblem& problem, int threads,
                        int iterations) {
  ufc::admm::AdmgOptions options;
  options.threads = threads;
  ufc::admm::AdmgSolver solver(problem, options);
  // Warm the workspace and caches (the first step pays the allocations).
  for (int k = 0; k < 5; ++k) solver.step();
  const auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < iterations; ++k) solver.step();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         static_cast<double>(iterations);
}

struct Scale {
  std::size_t m, n;
  int iterations;
  /// Pre-PR serial per-iteration time, microseconds: the allocating
  /// single-threaded step() at commit 7f015e8, measured on this container
  /// (release build, FISTA inner solver, same random_problem seeds).
  double pre_pr_serial_us;
};

}  // namespace

int main() {
  using namespace ufc;
  bench::print_header(
      "Parallel scaling - ADM-G step wall time vs. threads",
      "n/a (engineering benchmark; iterates bit-identical across rows)");

  const Scale scales[] = {
      {16, 4, 2000, 60.3},
      {64, 16, 200, 5424.5},
      {256, 32, 40, 38758.2},
  };
  const int thread_counts[] = {1, 2, 4, 8};

  TablePrinter table({"M", "N", "threads", "us/iter", "pre-PR serial us",
                      "speedup vs pre-PR"});
  CsvWriter csv("ufc_parallel.csv", {"m", "n", "threads", "us_per_iter",
                                     "pre_pr_serial_us", "speedup_vs_pre_pr"});
  obs::JsonValue rows = obs::JsonValue::array();
  for (const auto& scale : scales) {
    const auto problem = random_problem(scale.m, scale.n);
    for (int threads : thread_counts) {
      const double us = us_per_iteration(problem, threads, scale.iterations);
      const double speedup = scale.pre_pr_serial_us / us;
      table.add_row(std::to_string(scale.m),
                    {static_cast<double>(scale.n),
                     static_cast<double>(threads), us, scale.pre_pr_serial_us,
                     speedup},
                    2);
      csv.row({static_cast<double>(scale.m), static_cast<double>(scale.n),
               static_cast<double>(threads), us, scale.pre_pr_serial_us,
               speedup});
      obs::JsonValue row = obs::JsonValue::object();
      row.set("m", obs::JsonValue(static_cast<std::int64_t>(scale.m)));
      row.set("n", obs::JsonValue(static_cast<std::int64_t>(scale.n)));
      row.set("threads", obs::JsonValue(threads));
      row.set("us_per_iter", obs::JsonValue(us));
      row.set("pre_pr_serial_us", obs::JsonValue(scale.pre_pr_serial_us));
      row.set("speedup_vs_pre_pr", obs::JsonValue(speedup));
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::cout << "\nNote: wall-clock thread scaling requires physical cores; "
               "on a single-core host the threads>1 rows measure "
               "synchronization overhead only.\n";
  bench::note_csv(csv);

  obs::JsonValue entry = obs::JsonValue::object();
  entry.set("rows", std::move(rows));
  bench::write_bench_entry("parallel_scaling", std::move(entry));
  return 0;
}
