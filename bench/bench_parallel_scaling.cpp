// Parallel scaling of the ADM-G step, two sweeps:
//
//  1. Thread scaling: per-iteration wall time vs. the AdmgOptions::threads
//     knob at three problem scales, against the pre-PR serial baseline (the
//     allocating, single-threaded step an earlier optimization replaced).
//     Iterates are bit-identical across thread counts, so every row times
//     exactly the same arithmetic.
//
//  2. Size-scaling frontier (docs/PERFORMANCE.md, "Scaling frontier"):
//     serial per-iteration time up to 4096x256 for the default kernels
//     (sort projection, bit-pinned) and the fast path (Condat projection +
//     active-set screening), against the pre-frontier serial baseline.
//     Each fast-path run is KKT-validated: one extra step is taken from a
//     snapshot of (a, varphi), and the resulting lambda rows are checked as
//     projected-gradient fixed points of their sub-problems.
//     Override the sizes with UFC_BENCH_SIZES (see bench_common.hpp).
#include "bench_common.hpp"

#include <chrono>
#include <cmath>

#include "admm/admg.hpp"
#include "opt/kkt.hpp"
#include "util/rng.hpp"

namespace {

ufc::UfcProblem random_problem(std::size_t m, std::size_t n) {
  using namespace ufc;
  Rng rng(1234);
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();
  double capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    DatacenterSpec dc;
    dc.name = "dc" + std::to_string(j);
    dc.servers = rng.uniform(1.7e4, 2.3e4);
    dc.grid_price = rng.uniform(15.0, 120.0);
    dc.carbon_rate = rng.uniform(200.0, 900.0);
    dc.fuel_cell_capacity_mw = dc.servers * 200.0 * 1.2 / 1e6;
    dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
    capacity += dc.servers;
    p.datacenters.push_back(std::move(dc));
  }
  Rng shares_rng(7);
  p.arrivals =
      normal_shares(shares_rng, static_cast<int>(m), 0.6 * capacity, 0.35);
  p.latency_s = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p.latency_s(i, j) = rng.uniform(0.002, 0.045);
  return p;
}

double us_per_iteration(const ufc::UfcProblem& problem, int threads,
                        int iterations) {
  ufc::admm::AdmgOptions options;
  options.threads = threads;
  ufc::admm::AdmgSolver solver(problem, options);
  // Warm the workspace and caches (the first step pays the allocations).
  for (int k = 0; k < 5; ++k) solver.step();
  const auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < iterations; ++k) solver.step();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         static_cast<double>(iterations);
}

struct Scale {
  std::size_t m, n;
  int iterations;
  /// Pre-PR serial per-iteration time, microseconds: the allocating
  /// single-threaded step() at commit 7f015e8, measured on this container
  /// (release build, FISTA inner solver, same random_problem seeds).
  double pre_pr_serial_us;
};

/// Serial per-iteration time of the pre-frontier kernels (sort projection,
/// strided column gathers, no screening) at commit 627702a, measured on this
/// container (release build, threads=1, warmup 5, same random_problem
/// seeds). 0.0 = no baseline recorded for this size (custom UFC_BENCH_SIZES
/// points): the speedup columns are then reported as 0.
double pre_frontier_serial_us(std::size_t m, std::size_t n) {
  if (m == 64 && n == 16) return 4735.11;
  if (m == 256 && n == 32) return 34942.6;
  if (m == 1024 && n == 128) return 771943.0;
  if (m == 4096 && n == 256) return 6866200.0;
  return 0.0;
}

/// Per-iteration serial wall time with the given options, warming up
/// `warmup` steps first (first-step allocations + the screening cold start).
double frontier_us_per_iteration(const ufc::UfcProblem& problem,
                                 const ufc::admm::AdmgOptions& options,
                                 int warmup, int iterations) {
  ufc::admm::AdmgSolver solver(problem, options);
  for (int k = 0; k < warmup; ++k) solver.step();
  const auto start = std::chrono::steady_clock::now();
  for (int k = 0; k < iterations; ++k) solver.step();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         static_cast<double>(iterations);
}

struct KktSummary {
  double max_residual = 0.0;
  bool passed = true;
};

/// Validates the fast path's lambda predictions as first-order optima: from
/// the solver's current state, snapshot (a, varphi), take one more step, and
/// check sampled rows of the resulting lambda (which the step computed from
/// exactly that snapshot) as projected-gradient fixed points of the
/// per-front-end sub-problem (eq. (17)). An incorrectly screened-out
/// coordinate would show up as a residual at that coordinate, because the
/// check runs over the full row, not the support.
KktSummary validate_lambda_kkt(ufc::admm::AdmgSolver& solver) {
  using namespace ufc;
  const Mat a_snap = solver.a();
  const Mat varphi_snap = solver.varphi();
  solver.step();
  const Mat& lambda = solver.lambda();
  const UfcProblem& p = solver.problem();
  const std::size_t m = p.num_front_ends();
  const std::size_t n = p.num_datacenters();
  const std::size_t stride = m < 16 ? 1 : m / 16;
  const double rho = solver.options().rho;
  KktSummary summary;
  for (std::size_t i = 0; i < m; i += stride) {
    const double arrival = p.arrivals[i];
    if (arrival <= 0.0) continue;
    Vec row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = lambda(i, j);
    auto gradient = [&](const Vec& x) {
      double avg_latency = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        avg_latency += x[j] * p.latency_s(i, j);
      avg_latency /= arrival;
      const double uprime = p.utility->derivative(avg_latency);
      Vec g(n);
      for (std::size_t j = 0; j < n; ++j)
        g[j] = -p.latency_weight * uprime * p.latency_s(i, j) -
               varphi_snap(i, j) - rho * (a_snap(i, j) - x[j]);
      return g;
    };
    auto project = [&](const Vec& x) { return project_simplex(x, arrival); };
    const auto check = check_first_order_optimality(row, gradient, project,
                                                    1e-6, 1e-5, arrival);
    summary.max_residual = std::max(summary.max_residual, check.residual);
    summary.passed = summary.passed && check.passed;
  }
  return summary;
}

}  // namespace

int main() {
  using namespace ufc;
  bench::print_header(
      "Parallel scaling - ADM-G step wall time vs. threads",
      "n/a (engineering benchmark; iterates bit-identical across rows)");

  const Scale scales[] = {
      {16, 4, 2000, 60.3},
      {64, 16, 200, 5424.5},
      {256, 32, 40, 38758.2},
  };
  const int thread_counts[] = {1, 2, 4, 8};

  TablePrinter table({"M", "N", "threads", "us/iter", "pre-PR serial us",
                      "speedup vs pre-PR"});
  CsvWriter csv("ufc_parallel.csv", {"m", "n", "threads", "us_per_iter",
                                     "pre_pr_serial_us", "speedup_vs_pre_pr"});
  obs::JsonValue rows = obs::JsonValue::array();
  for (const auto& scale : scales) {
    const auto problem = random_problem(scale.m, scale.n);
    for (int threads : thread_counts) {
      const double us = us_per_iteration(problem, threads, scale.iterations);
      const double speedup = scale.pre_pr_serial_us / us;
      table.add_row(std::to_string(scale.m),
                    {static_cast<double>(scale.n),
                     static_cast<double>(threads), us, scale.pre_pr_serial_us,
                     speedup},
                    2);
      csv.row({static_cast<double>(scale.m), static_cast<double>(scale.n),
               static_cast<double>(threads), us, scale.pre_pr_serial_us,
               speedup});
      obs::JsonValue row = obs::JsonValue::object();
      row.set("m", obs::JsonValue(static_cast<std::int64_t>(scale.m)));
      row.set("n", obs::JsonValue(static_cast<std::int64_t>(scale.n)));
      row.set("threads", obs::JsonValue(threads));
      row.set("us_per_iter", obs::JsonValue(us));
      row.set("pre_pr_serial_us", obs::JsonValue(scale.pre_pr_serial_us));
      row.set("speedup_vs_pre_pr", obs::JsonValue(speedup));
      rows.push_back(std::move(row));
    }
  }
  table.print();
  std::cout << "\nNote: wall-clock thread scaling requires physical cores; "
               "on a single-core host the threads>1 rows measure "
               "synchronization overhead only.\n";
  bench::note_csv(csv);

  obs::JsonValue entry = obs::JsonValue::object();
  entry.set("rows", std::move(rows));
  bench::write_bench_entry("parallel_scaling", std::move(entry));

  // ---- Size-scaling frontier: default kernels vs. the fast path, serial.
  std::cout << "\n=== Size-scaling frontier (serial) ===\n";
  std::cout << "fast path = Condat projection + active-set screening "
               "(full verification pass every "
            << admm::ActiveSetOptions{}.full_pass_every << " steps)\n\n";
  // Timed windows are multiples of the screening period where affordable, so
  // the fast-path mean amortizes the periodic full verification pass.
  const auto frontier = bench::bench_sizes({
      {64, 16, 96},
      {256, 32, 32},
      {1024, 128, 8},
      {4096, 256, 8},
  });
  TablePrinter frontier_table({"M", "N", "default us/iter", "fast us/iter",
                               "pre-PR us", "default speedup", "fast speedup",
                               "KKT max res", "KKT pass"});
  CsvWriter frontier_csv(
      "ufc_scaling_frontier.csv",
      {"m", "n", "iterations", "default_us_per_iter", "fast_us_per_iter",
       "pre_pr_us", "default_speedup", "fast_speedup", "kkt_max_residual",
       "kkt_passed"});
  obs::JsonValue frontier_rows = obs::JsonValue::array();
  for (const auto& size : frontier) {
    const auto problem = random_problem(size.m, size.n);
    const int warmup = 2;

    admm::AdmgOptions defaults;
    defaults.threads = 1;
    const double default_us =
        frontier_us_per_iteration(problem, defaults, warmup, size.iterations);

    admm::AdmgOptions fast = defaults;
    fast.inner.projection = SimplexProjection::Condat;
    fast.screening.enabled = true;
    admm::AdmgSolver fast_solver(problem, fast);
    for (int k = 0; k < warmup; ++k) fast_solver.step();
    const auto start = std::chrono::steady_clock::now();
    for (int k = 0; k < size.iterations; ++k) fast_solver.step();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double fast_us =
        std::chrono::duration<double, std::micro>(elapsed).count() /
        static_cast<double>(size.iterations);
    const KktSummary kkt = validate_lambda_kkt(fast_solver);

    const double pre_pr = pre_frontier_serial_us(size.m, size.n);
    const double default_speedup = pre_pr > 0.0 ? pre_pr / default_us : 0.0;
    const double fast_speedup = pre_pr > 0.0 ? pre_pr / fast_us : 0.0;
    frontier_table.add_row(
        std::to_string(size.m),
        {static_cast<double>(size.n), default_us, fast_us, pre_pr,
         default_speedup, fast_speedup, kkt.max_residual,
         kkt.passed ? 1.0 : 0.0},
        2);
    frontier_csv.row({static_cast<double>(size.m),
                      static_cast<double>(size.n),
                      static_cast<double>(size.iterations), default_us,
                      fast_us, pre_pr, default_speedup, fast_speedup,
                      kkt.max_residual, kkt.passed ? 1.0 : 0.0});
    obs::JsonValue row = obs::JsonValue::object();
    row.set("m", obs::JsonValue(static_cast<std::int64_t>(size.m)));
    row.set("n", obs::JsonValue(static_cast<std::int64_t>(size.n)));
    row.set("iterations", obs::JsonValue(size.iterations));
    row.set("default_us_per_iter", obs::JsonValue(default_us));
    row.set("fast_us_per_iter", obs::JsonValue(fast_us));
    row.set("pre_pr_us", obs::JsonValue(pre_pr));
    row.set("default_speedup", obs::JsonValue(default_speedup));
    row.set("fast_speedup", obs::JsonValue(fast_speedup));
    row.set("kkt_max_residual", obs::JsonValue(kkt.max_residual));
    row.set("kkt_passed", obs::JsonValue(kkt.passed));
    frontier_rows.push_back(std::move(row));
  }
  frontier_table.print();
  bench::note_csv(frontier_csv);

  obs::JsonValue frontier_entry = obs::JsonValue::object();
  frontier_entry.set("rows", std::move(frontier_rows));
  bench::write_bench_entry("scaling_frontier", std::move(frontier_entry));
  return 0;
}
