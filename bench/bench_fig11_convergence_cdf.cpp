// Fig. 11: CDF of the iterations ADM-G needs to converge across the 168
// hourly runs, plus the comparison the paper draws against gradient /
// projection methods ("hundreds of iterations").
#include "bench_common.hpp"

#include "admm/centralized.hpp"
#include "obs/metrics_observer.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 11 - CDF of iterations to convergence (168 runs)",
      "80% within 100 iterations; min 37; max 130");

  const auto scenario = bench::paper_scenario();
  // Instrumented run: the registry collects per-iteration wall time and the
  // per-phase split over all 168 solves. Observers are read-only, so the
  // iteration counts are identical to an unobserved run.
  obs::MetricsRegistry registry;
  obs::MetricsObserver metrics_observer(registry);
  auto options = bench::paper_options();
  options.admg.observer = &metrics_observer;
  options.admg.profile_phases = true;
  const auto hybrid =
      sim::run_strategy_week(scenario, admm::Strategy::Hybrid, options);
  const auto iters = hybrid.iteration_series();

  TablePrinter table({"Statistic", "iterations"});
  table.add_row("min", {min_value(iters)}, 0);
  table.add_row("p50", {percentile(iters, 50)}, 0);
  table.add_row("p80", {percentile(iters, 80)}, 0);
  table.add_row("p95", {percentile(iters, 95)}, 0);
  table.add_row("max", {max_value(iters)}, 0);
  table.print();

  int within100 = 0;
  for (double it : iters) within100 += it <= 100.0 ? 1 : 0;
  std::cout << "\nRuns converged within 100 iterations: " << within100 << "/"
            << iters.size() << " ("
            << fixed(100.0 * within100 / static_cast<double>(iters.size()), 1)
            << "%, paper: 80%)\n";

  // The paper's point of comparison: a projection-based centralized method
  // takes hundreds of (more expensive) iterations on one representative slot.
  admm::CentralizedOptions central;
  central.max_iterations = 500;
  const auto oracle =
      admm::solve_centralized(scenario.problem_at(64), central);
  std::cout << "Projected-subgradient baseline used " << oracle.iterations
            << " iterations on slot 64 (paper cites hundreds for such "
               "methods).\n";

  CsvWriter csv("ufc_fig11.csv", {"iterations", "cdf"});
  for (const auto& point : empirical_cdf(iters))
    csv.row({point.value, point.cumulative});
  bench::note_csv(csv);

  obs::JsonValue entry = obs::JsonValue::object();
  entry.set("runs", obs::JsonValue(static_cast<std::int64_t>(iters.size())));
  entry.set("iterations_min", obs::JsonValue(min_value(iters)));
  entry.set("iterations_p50", obs::JsonValue(percentile(iters, 50)));
  entry.set("iterations_p80", obs::JsonValue(percentile(iters, 80)));
  entry.set("iterations_p95", obs::JsonValue(percentile(iters, 95)));
  entry.set("iterations_max", obs::JsonValue(max_value(iters)));
  entry.set("within_100_fraction",
            obs::JsonValue(static_cast<double>(within100) /
                           static_cast<double>(iters.size())));
  entry.set("solver", registry.to_json());
  bench::write_bench_entry("fig11_convergence_cdf", std::move(entry));
  return 0;
}
