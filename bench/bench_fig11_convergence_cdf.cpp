// Fig. 11: CDF of the iterations ADM-G needs to converge across the 168
// hourly runs, plus the comparison the paper draws against gradient /
// projection methods ("hundreds of iterations").
#include "bench_common.hpp"

#include "admm/centralized.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 11 - CDF of iterations to convergence (168 runs)",
      "80% within 100 iterations; min 37; max 130");

  const auto scenario = bench::paper_scenario();
  const auto hybrid = sim::run_strategy_week(scenario, admm::Strategy::Hybrid,
                                             bench::paper_options());
  const auto iters = hybrid.iteration_series();

  TablePrinter table({"Statistic", "iterations"});
  table.add_row("min", {min_value(iters)}, 0);
  table.add_row("p50", {percentile(iters, 50)}, 0);
  table.add_row("p80", {percentile(iters, 80)}, 0);
  table.add_row("p95", {percentile(iters, 95)}, 0);
  table.add_row("max", {max_value(iters)}, 0);
  table.print();

  int within100 = 0;
  for (double it : iters) within100 += it <= 100.0 ? 1 : 0;
  std::cout << "\nRuns converged within 100 iterations: " << within100 << "/"
            << iters.size() << " ("
            << fixed(100.0 * within100 / static_cast<double>(iters.size()), 1)
            << "%, paper: 80%)\n";

  // The paper's point of comparison: a projection-based centralized method
  // takes hundreds of (more expensive) iterations on one representative slot.
  admm::CentralizedOptions central;
  central.max_iterations = 500;
  const auto oracle =
      admm::solve_centralized(scenario.problem_at(64), central);
  std::cout << "Projected-subgradient baseline used " << oracle.iterations
            << " iterations on slot 64 (paper cites hundreds for such "
               "methods).\n";

  CsvWriter csv("ufc_fig11.csv", {"iterations", "cdf"});
  for (const auto& point : empirical_cdf(iters))
    csv.row({point.value, point.cumulative});
  bench::note_csv(csv);
  return 0;
}
