// Fig. 1: the one-week single-site power demand profile and the Dallas /
// San Jose electricity prices that motivate the hybrid strategy.
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header("Fig. 1 - demand profile and electricity prices",
                      "Facebook demand ~2 MW; Dallas cheap, San Jose dear");

  const auto data = traces::generate_single_site_data(42);

  TablePrinter table({"Series", "mean", "min", "max"});
  table.add_row("Demand (MW)",
                {mean(data.demand_mw), min_value(data.demand_mw),
                 max_value(data.demand_mw)});
  table.add_row("Dallas price ($/MWh)",
                {mean(data.dallas_price), min_value(data.dallas_price),
                 max_value(data.dallas_price)});
  table.add_row("San Jose price ($/MWh)",
                {mean(data.san_jose_price), min_value(data.san_jose_price),
                 max_value(data.san_jose_price)});
  table.print();

  const double p0 = 80.0;
  int dallas_below = 0, sj_below = 0;
  for (std::size_t t = 0; t < data.dallas_price.size(); ++t) {
    dallas_below += data.dallas_price[t] < p0 ? 1 : 0;
    sj_below += data.san_jose_price[t] < p0 ? 1 : 0;
  }
  std::cout << "\nHours with grid cheaper than fuel cells (p0 = 80 $/MWh): "
            << "Dallas " << dallas_below << "/168, San Jose " << sj_below
            << "/168\n";

  CsvWriter csv("ufc_fig1.csv",
                {"hour", "demand_mw", "dallas_price", "san_jose_price"});
  for (std::size_t t = 0; t < data.demand_mw.size(); ++t)
    csv.row({static_cast<double>(t), data.demand_mw[t], data.dallas_price[t],
             data.san_jose_price[t]});
  bench::note_csv(csv);
  return 0;
}
