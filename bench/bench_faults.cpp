// Robustness - distributed ADM-G under injected network faults: iteration
// and traffic inflation plus the UFC gap versus message-loss rate, delivery
// delay, and datacenter crash-window length, at three problem sizes
// (docs/ROBUSTNESS.md). The zero-fault row of each sweep doubles as the
// baseline the gaps are measured against.
#include "bench_common.hpp"

#include <string>

#include "net/runtime.hpp"
#include "util/rng.hpp"

namespace {

/// Random feasible instance at ~55% load so that removing any single
/// datacenter (the crash sweep) keeps the reduced problem feasible.
ufc::UfcProblem random_problem(std::size_t m, std::size_t n) {
  using namespace ufc;
  Rng rng(1234);
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();
  double capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    DatacenterSpec dc;
    dc.name = "dc" + std::to_string(j);
    dc.servers = rng.uniform(1.7e4, 2.3e4);
    dc.grid_price = rng.uniform(15.0, 120.0);
    dc.carbon_rate = rng.uniform(200.0, 900.0);
    dc.fuel_cell_capacity_mw = dc.servers * 200.0 * 1.2 / 1e6;
    dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
    capacity += dc.servers;
    p.datacenters.push_back(std::move(dc));
  }
  Rng shares_rng(7);
  p.arrivals =
      normal_shares(shares_rng, static_cast<int>(m), 0.55 * capacity, 0.35);
  p.latency_s = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p.latency_s(i, j) = rng.uniform(0.002, 0.045);
  return p;
}

ufc::net::DistributedOptions degraded_options() {
  ufc::net::DistributedOptions dist;
  dist.admg.tolerance = 3e-3;
  dist.admg.max_iterations = 4000;
  dist.admg.record_trace = false;
  dist.degraded = true;
  dist.max_attempts = 4;
  return dist;
}

struct SweepRow {
  std::string experiment;
  double param = 0.0;
  ufc::net::DistributedReport report;
};

}  // namespace

int main() {
  using namespace ufc;
  bench::print_header(
      "Robustness - degraded distributed ADM-G under injected faults",
      "n/a (robustness benchmark beyond the paper's fault-free protocol)");

  TablePrinter table({"experiment", "M", "N", "param", "iterations",
                      "iter x", "kB on wire", "traffic x", "retrans",
                      "failures", "stale", "UFC gap %"});
  CsvWriter csv("ufc_faults.csv",
                {"experiment", "m", "n", "param", "iterations",
                 "iter_inflation", "bytes", "traffic_inflation",
                 "retransmissions", "delivery_failures", "stale_inputs",
                 "ufc", "gap_pct"});

  const std::pair<std::size_t, std::size_t> sizes[] = {{4, 3}, {10, 4},
                                                       {20, 6}};
  for (const auto& [m, n] : sizes) {
    const auto problem = random_problem(m, n);

    // Zero-fault baseline: strict lockstep, bit-identical to the monolithic
    // solver. All gaps and inflation factors below are relative to this row.
    net::DistributedOptions clean;
    clean.admg = degraded_options().admg;
    const auto baseline = net::DistributedAdmgRuntime(problem, clean).run();

    std::vector<SweepRow> rows;
    rows.push_back({"baseline", 0.0, baseline});

    for (double loss : {0.1, 0.2, 0.4}) {
      auto dist = degraded_options();
      dist.faults.random_faults({.loss_rate = loss});
      rows.push_back(
          {"loss", loss, net::DistributedAdmgRuntime(problem, dist).run()});
    }

    for (int delay_rounds : {1, 2, 4}) {
      auto dist = degraded_options();
      dist.faults.random_faults(
          {.delay_rate = 0.3, .max_delay_rounds = delay_rounds});
      rows.push_back({"delay", static_cast<double>(delay_rounds),
                      net::DistributedAdmgRuntime(problem, dist).run()});
    }

    for (int window : {10, 30, net::kForeverRound}) {
      auto dist = degraded_options();
      dist.dead_after_rounds = 5;
      dist.faults.crash(net::datacenter_id(0), {20, window == net::kForeverRound
                                                        ? net::kForeverRound
                                                        : 20 + window});
      const double param =
          window == net::kForeverRound ? -1.0 : static_cast<double>(window);
      rows.push_back({"crash", param,
                      net::DistributedAdmgRuntime(problem, dist).run()});
    }

    const double base_iters = static_cast<double>(baseline.iterations);
    const double base_bytes = static_cast<double>(baseline.network.bytes);
    for (const auto& row : rows) {
      const auto& r = row.report;
      const double iter_x = static_cast<double>(r.iterations) / base_iters;
      const double traffic_x =
          static_cast<double>(r.network.bytes) / base_bytes;
      // A permanent crash converges to the *reduced* problem's optimum, so
      // its gap reports the capacity cost of losing the datacenter.
      const double gap =
          improvement_percent(r.breakdown.ufc, baseline.breakdown.ufc);
      table.add_row(row.experiment + " " + fixed(row.param, 1),
                    {static_cast<double>(m), static_cast<double>(n),
                     row.param, static_cast<double>(r.iterations), iter_x,
                     static_cast<double>(r.network.bytes) / 1024.0, traffic_x,
                     static_cast<double>(r.network.retransmissions),
                     static_cast<double>(r.network.delivery_failures),
                     static_cast<double>(r.stale_inputs), gap},
                    2);
      csv.row_strings({row.experiment, csv_number(static_cast<double>(m)),
                       csv_number(static_cast<double>(n)),
                       csv_number(row.param),
                       csv_number(static_cast<double>(r.iterations)),
                       csv_number(iter_x),
                       csv_number(static_cast<double>(r.network.bytes)),
                       csv_number(traffic_x),
                       csv_number(static_cast<double>(
                           r.network.retransmissions)),
                       csv_number(static_cast<double>(
                           r.network.delivery_failures)),
                       csv_number(static_cast<double>(r.stale_inputs)),
                       csv_number(r.breakdown.ufc), csv_number(gap)});
    }
  }
  table.print();

  std::cout << "\nLoss and delay inflate iterations and traffic but leave "
               "the UFC at the fault-free optimum; crashes long enough to "
               "trip the health tracker degrade to the reduced problem's "
               "optimum (negative gap = lost capacity, not solver error).\n";
  bench::note_csv(csv);
  return 0;
}
