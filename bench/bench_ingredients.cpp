// Solver-ingredient iteration frontier (docs/SOLVER_INGREDIENTS.md).
//
// Runs every registered penalty x acceleration composition to a fixed
// scaled-residual tolerance at three problem scales and reports
// iterations-to-tolerance and wall time, normalized against the default
// fixed + none composition (the bit-pinned reference loop). The table
// quantifies what each ingredient buys: residual balancing retunes rho on
// problems where the baked-in value is off, over-relaxation extrapolates
// along the step direction, and safeguarded Anderson mixing recombines the
// recent history into a better fixed-point candidate.
//
// Every non-default run is cross-checked against the baseline's objective
// (the compositions must agree on the optimum, not just converge), and the
// headline rows land in BENCH_ufc.json under `iteration_frontier`
// (validated by scripts/check_bench_json.py). Override the sizes with
// UFC_BENCH_SIZES (see bench_common.hpp).
#include "bench_common.hpp"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "util/rng.hpp"

namespace {

// Same generator (and seeds) as bench_parallel_scaling, so sizes here are
// directly comparable with the scaling-frontier rows.
ufc::UfcProblem random_problem(std::size_t m, std::size_t n) {
  using namespace ufc;
  Rng rng(1234);
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();
  double capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    DatacenterSpec dc;
    dc.name = "dc" + std::to_string(j);
    dc.servers = rng.uniform(1.7e4, 2.3e4);
    dc.grid_price = rng.uniform(15.0, 120.0);
    dc.carbon_rate = rng.uniform(200.0, 900.0);
    dc.fuel_cell_capacity_mw = dc.servers * 200.0 * 1.2 / 1e6;
    dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
    capacity += dc.servers;
    p.datacenters.push_back(std::move(dc));
  }
  Rng shares_rng(7);
  p.arrivals =
      normal_shares(shares_rng, static_cast<int>(m), 0.6 * capacity, 0.35);
  p.latency_s = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p.latency_s(i, j) = rng.uniform(0.002, 0.045);
  return p;
}

struct Composition {
  const char* penalty;
  const char* acceleration;
};

/// Default composition first: every later row is normalized against it.
constexpr Composition kCompositions[] = {
    {"fixed", "none"},
    {"residual-balance", "none"},
    {"fixed", "over-relaxation"},
    {"fixed", "anderson"},
    {"residual-balance", "anderson"},
};

struct RunResult {
  int iterations = 0;
  bool converged = false;
  double wall_seconds = 0.0;
  double ufc = 0.0;
  double final_penalty = 0.0;
  std::uint64_t fallbacks = 0;
};

RunResult run_composition(const ufc::UfcProblem& problem,
                          const Composition& composition,
                          int max_iterations) {
  ufc::admm::AdmgOptions options;
  options.penalty = composition.penalty;
  options.acceleration = composition.acceleration;
  options.max_iterations = max_iterations;
  options.record_trace = false;
  // Every composition runs the same exact inner solves (the rank-one QP —
  // machine precision, valid for the quadratic utility this bench uses), so
  // iteration counts compare outer loops, not inner-solver tuning.
  options.inner.method = ufc::admm::InnerMethod::Exact;
  const auto start = std::chrono::steady_clock::now();
  const ufc::admm::AdmgReport report = ufc::admm::solve_admg(problem, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  RunResult result;
  result.iterations = report.iterations;
  result.converged = report.converged;
  result.wall_seconds = std::chrono::duration<double>(elapsed).count();
  result.ufc = report.breakdown.ufc;
  result.final_penalty = report.final_penalty;
  result.fallbacks = report.acceleration_fallbacks;
  return result;
}

}  // namespace

int main() {
  using namespace ufc;

  bench::print_header("Solver-ingredient iteration frontier",
                      "ADM-G compositions (docs/SOLVER_INGREDIENTS.md)");

  // Iteration caps sized so the default tolerance is reachable at the two
  // smaller scales on one core; 4096x256 rows are capped (and honestly
  // reported converged = no when truncated).
  const std::vector<bench::BenchSize> sizes = bench::bench_sizes({
      {64, 16, 2000},
      {1024, 128, 3000},
      {4096, 256, 300},
  });

  CsvWriter csv("ufc_ingredients.csv",
                {"m", "n", "penalty", "acceleration", "iterations",
                 "converged", "wall_seconds", "ufc", "final_penalty",
                 "fallbacks", "speedup_vs_fixed"});
  obs::JsonValue frontier = obs::JsonValue::array();

  for (const bench::BenchSize& size : sizes) {
    const UfcProblem problem = random_problem(size.m, size.n);
    std::cout << "-- " << size.m << " front-ends x " << size.n
              << " datacenters (max " << size.iterations << " iterations)\n";
    TablePrinter table({"penalty", "acceleration", "iters", "converged",
                        "wall s", "UFC $/h", "final rho", "fallbacks",
                        "iters speedup"});

    double baseline_iterations = 0.0;
    double baseline_ufc = 0.0;
    bool baseline_converged = false;
    bool first = true;
    for (const Composition& composition : kCompositions) {
      const RunResult run =
          run_composition(problem, composition, size.iterations);
      const bool is_baseline = first;
      first = false;
      if (is_baseline) {
        baseline_iterations = static_cast<double>(run.iterations);
        baseline_ufc = run.ufc;
        baseline_converged = run.converged;
      }
      const double speedup =
          run.iterations > 0
              ? baseline_iterations / static_cast<double>(run.iterations)
              : 0.0;
      // Converged compositions share the optimum; a large objective gap
      // means an ingredient broke the solve rather than accelerated it.
      // Truncated runs (either side hit the iteration cap) are reported but
      // not compared — they sit at different points of the same trajectory.
      const double ufc_gap =
          std::abs(run.ufc - baseline_ufc) /
          std::max(1.0, std::abs(baseline_ufc));
      if (!is_baseline && baseline_converged && run.converged &&
          ufc_gap > 5e-3) {
        std::cerr << "objective mismatch for " << composition.penalty << "+"
                  << composition.acceleration << ": " << run.ufc << " vs "
                  << baseline_ufc << "\n";
        return 1;
      }

      table.add_row({std::string(composition.penalty),
                     std::string(composition.acceleration),
                     std::to_string(run.iterations),
                     run.converged ? "yes" : "no", fixed(run.wall_seconds, 3),
                     fixed(run.ufc, 2), fixed(run.final_penalty, 3),
                     std::to_string(run.fallbacks), fixed(speedup, 2)});
      csv.row_strings({std::to_string(size.m), std::to_string(size.n),
                       std::string(composition.penalty),
                       std::string(composition.acceleration),
                       std::to_string(run.iterations),
                       run.converged ? "1" : "0",
                       csv_number(run.wall_seconds), csv_number(run.ufc),
                       csv_number(run.final_penalty),
                       std::to_string(run.fallbacks), csv_number(speedup)});

      obs::JsonValue row = obs::JsonValue::object();
      row.set("m", obs::JsonValue(static_cast<std::int64_t>(size.m)));
      row.set("n", obs::JsonValue(static_cast<std::int64_t>(size.n)));
      row.set("penalty", obs::JsonValue(composition.penalty));
      row.set("acceleration", obs::JsonValue(composition.acceleration));
      row.set("iterations", obs::JsonValue(run.iterations));
      row.set("converged", obs::JsonValue(run.converged));
      row.set("wall_seconds", obs::JsonValue(run.wall_seconds));
      row.set("speedup_vs_fixed", obs::JsonValue(speedup));
      frontier.push_back(std::move(row));
    }
    table.print();
    std::cout << "\n";
  }

  obs::JsonValue metrics = obs::JsonValue::object();
  metrics.set("iteration_frontier", std::move(frontier));
  bench::write_bench_entry("ingredients", std::move(metrics));
  bench::note_csv(csv);
  return 0;
}
