// Fig. 2: the information exchange of the distributed ADM-G — which node
// sends what to whom in each of the five procedures. This bench runs the
// message-passing runtime at paper scale and reports the realized protocol:
// message and byte counts per link class per iteration.
#include "bench_common.hpp"
#include "net/runtime.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 2 - information interaction of the distributed ADM-G",
      "per iteration: FE->DC routing proposals, DC->FE assignments");

  const auto scenario = bench::paper_scenario();
  const auto problem = scenario.problem_at(64);
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();

  net::DistributedOptions options;
  options.admg = bench::paper_options().admg;
  net::DistributedAdmgRuntime runtime(problem, options);
  const auto report = runtime.run();
  const auto rounds = static_cast<double>(report.iterations);

  std::cout << "M = " << m << " front-ends, N = " << n
            << " datacenters; converged in " << report.iterations
            << " iterations.\n\n";

  // Link-class accounting, reconstructed from per-link stats.
  net::LinkStats fe_to_dc, dc_to_fe, to_coordinator;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto up = runtime.bus().link(net::front_end_id(i),
                                         net::datacenter_id(j));
      fe_to_dc.messages += up.messages;
      fe_to_dc.bytes += up.bytes;
      const auto down = runtime.bus().link(net::datacenter_id(j),
                                           net::front_end_id(i));
      dc_to_fe.messages += down.messages;
      dc_to_fe.bytes += down.bytes;
    }
    const auto rep =
        runtime.bus().link(net::front_end_id(i), net::kCoordinatorId);
    to_coordinator.messages += rep.messages;
    to_coordinator.bytes += rep.bytes;
  }
  for (std::size_t j = 0; j < n; ++j) {
    const auto rep =
        runtime.bus().link(net::datacenter_id(j), net::kCoordinatorId);
    to_coordinator.messages += rep.messages;
    to_coordinator.bytes += rep.bytes;
  }

  TablePrinter table({"link class (procedure)", "msgs/iter", "bytes/iter",
                      "total KiB"});
  auto row = [&](const std::string& name, const net::LinkStats& stats) {
    table.add_row(name,
                  {static_cast<double>(stats.messages) / rounds,
                   static_cast<double>(stats.bytes) / rounds,
                   static_cast<double>(stats.bytes) / 1024.0},
                  1);
  };
  row("FE->DC proposals (1: lambda~, varphi)", fe_to_dc);
  row("DC->FE assignments (4: a~)", dc_to_fe);
  row("residual reports (coordinator)", to_coordinator);
  table.print();

  std::cout << "\nProcedures 2 (mu), 3 (nu) and 5 (duals) are node-local — "
               "no messages, matching the paper's Fig. 2.\nPer iteration: "
            << m * n << " + " << m * n << " + " << m + n << " = "
            << 2 * m * n + m + n << " messages, "
            << fixed(static_cast<double>(report.network.bytes) / rounds, 0)
            << " bytes total.\n";

  CsvWriter csv("ufc_fig2.csv", {"link_class", "messages", "bytes"});
  csv.row_strings({"fe_to_dc", csv_number(static_cast<double>(fe_to_dc.messages)),
                   csv_number(static_cast<double>(fe_to_dc.bytes))});
  csv.row_strings({"dc_to_fe", csv_number(static_cast<double>(dc_to_fe.messages)),
                   csv_number(static_cast<double>(dc_to_fe.bytes))});
  csv.row_strings({"coordinator",
                   csv_number(static_cast<double>(to_coordinator.messages)),
                   csv_number(static_cast<double>(to_coordinator.bytes))});
  bench::note_csv(csv);
  return 0;
}
