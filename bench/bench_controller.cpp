// Warm-start value in the receding-horizon controller (docs/CONTROLLER.md).
//
// Replays one week of the paper scenario as a tick stream into two
// controllers that differ in exactly one bit: the warm controller keeps its
// iterate across ticks, the cold baseline resets to the paper's cold start
// before every tick. Both get the same per-tick iteration budget, so the
// comparison isolates what the warm iterate buys: iterations-to-converge
// per tick and how often the budget runs out at all.
//
// Headline totals land in BENCH_ufc.json under `controller` (validated by
// scripts/check_bench_json.py). Override the tick count with
// UFC_BENCH_TICKS (CI smoke runs a short prefix of the week).
#include "bench_common.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "admm/solve_core.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/stream.hpp"

namespace {

/// Tick count: the full week unless UFC_BENCH_TICKS overrides (malformed
/// values abort rather than silently benchmarking the wrong length).
int bench_ticks(int available) {
  // Benches are single-threaded at startup; nobody calls setenv concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("UFC_BENCH_TICKS");
  if (env == nullptr || *env == '\0') return available;
  const std::string spec(env);
  int ticks = 0;
  const auto result =
      std::from_chars(spec.data(), spec.data() + spec.size(), ticks);
  if (result.ec != std::errc() || result.ptr != spec.data() + spec.size() ||
      ticks < 1) {
    std::cerr << "UFC_BENCH_TICKS: malformed value '" << spec
              << "' (expected a positive integer)\n";
    std::exit(2);
  }
  return std::min(ticks, available);
}

}  // namespace

int main() {
  using namespace ufc;

  bench::print_header("Receding-horizon warm starts vs cold restarts",
                      "streaming re-solve, one week of hourly ticks");

  const auto scenario = bench::paper_scenario();
  ctrl::ScenarioTickSource source(scenario);

  std::vector<admm::ProblemUpdate> updates;
  while (auto update = source.next()) updates.push_back(std::move(*update));
  const int ticks = bench_ticks(static_cast<int>(updates.size()));
  updates.resize(static_cast<std::size_t>(ticks));

  ctrl::ControllerOptions options;
  options.admg = bench::paper_options().admg;
  options.max_iters_per_tick = 400;
  ctrl::Controller warm(source.base_problem(), options);
  options.cold_restart = true;
  ctrl::Controller cold(source.base_problem(), options);

  CsvWriter csv("ufc_controller.csv",
                {"tick", "warm_iterations", "warm_status", "cold_iterations",
                 "cold_status"});
  for (int t = 0; t < ticks; ++t) {
    const ctrl::TickReport warm_tick =
        warm.tick(updates[static_cast<std::size_t>(t)]);
    const ctrl::TickReport cold_tick =
        cold.tick(updates[static_cast<std::size_t>(t)]);
    csv.row_strings({std::to_string(t),
                     std::to_string(warm_tick.report.iterations),
                     admm::to_string(warm_tick.report.status),
                     std::to_string(cold_tick.report.iterations),
                     admm::to_string(cold_tick.report.status)});
  }

  // A warm iterate that went non-finite anywhere in the week would poison
  // every later tick; fail loudly rather than reporting garbage totals.
  if (!warm.solver().iterate_finite() || !cold.solver().iterate_finite()) {
    std::cerr << "controller ended with a non-finite iterate\n";
    return 1;
  }

  const double savings_ratio =
      cold.total_iterations() > 0
          ? 1.0 - static_cast<double>(warm.total_iterations()) /
                      static_cast<double>(cold.total_iterations())
          : 0.0;

  TablePrinter table({"controller", "ticks", "iterations", "converged",
                      "budget exhausted", "iters/tick"});
  const auto add = [&](const char* name, const ctrl::Controller& c) {
    table.add_row({std::string(name), std::to_string(c.ticks()),
                   std::to_string(c.total_iterations()),
                   std::to_string(c.converged_ticks()),
                   std::to_string(c.budget_exhausted_ticks()),
                   fixed(static_cast<double>(c.total_iterations()) /
                             std::max(1, c.ticks()),
                         1)});
  };
  add("warm (keep iterate)", warm);
  add("cold restart", cold);
  table.print();
  std::cout << "\nWarm starts cut total iterations by "
            << fixed(100.0 * savings_ratio, 1) << "% over " << ticks
            << " ticks at budget " << options.max_iters_per_tick
            << "/tick.\n";

  obs::JsonValue section = obs::JsonValue::object();
  section.set("ticks", obs::JsonValue(ticks));
  section.set("budget_per_tick", obs::JsonValue(options.max_iters_per_tick));
  section.set("warm_iterations",
              obs::JsonValue(static_cast<std::int64_t>(
                  warm.total_iterations())));
  section.set("cold_iterations",
              obs::JsonValue(static_cast<std::int64_t>(
                  cold.total_iterations())));
  section.set("warm_budget_exhausted",
              obs::JsonValue(warm.budget_exhausted_ticks()));
  section.set("cold_budget_exhausted",
              obs::JsonValue(cold.budget_exhausted_ticks()));
  section.set("savings_ratio", obs::JsonValue(savings_ratio));
  obs::JsonValue metrics = obs::JsonValue::object();
  metrics.set("controller", std::move(section));
  bench::write_bench_entry("controller", std::move(metrics));
  bench::note_csv(csv);
  return 0;
}
