// Ablations of the design choices DESIGN.md calls out:
//  1. Gaussian back substitution on/off (ADM-G vs plain 4-block ADMM),
//  2. the correction relaxation epsilon,
//  3. the penalty rho (all values reach the same objective; speed differs),
//  4. FISTA vs plain projected gradient as the inner solver,
//  5. ADM-G vs the projected-subgradient centralized baseline.
// Every variant runs on the same representative slots of the paper scenario.
#include <array>

#include "admm/centralized.hpp"
#include "bench_common.hpp"

namespace {

struct VariantResult {
  double mean_iterations = 0.0;
  double max_iterations = 0.0;
  double converged_fraction = 0.0;
  double ufc_total = 0.0;
};

VariantResult run_variant(const ufc::traces::Scenario& scenario,
                          const ufc::admm::AdmgOptions& options,
                          const std::vector<int>& slots) {
  VariantResult result;
  for (int slot : slots) {
    const auto report =
        ufc::admm::solve_admg(scenario.problem_at(slot), options);
    result.mean_iterations += report.iterations;
    result.max_iterations =
        std::max(result.max_iterations, static_cast<double>(report.iterations));
    result.converged_fraction += report.converged ? 1.0 : 0.0;
    result.ufc_total += report.breakdown.ufc;
  }
  result.mean_iterations /= static_cast<double>(slots.size());
  result.converged_fraction /= static_cast<double>(slots.size());
  return result;
}

}  // namespace

int main() {
  using namespace ufc;
  bench::print_header("Ablations - ADM-G design choices",
                      "correction step, epsilon, rho, inner solver, baseline");

  const auto scenario = bench::paper_scenario();
  std::vector<int> slots;
  for (int t = 4; t < scenario.hours(); t += 12) slots.push_back(t);

  admm::AdmgOptions base;
  base.tolerance = 3e-3;
  base.max_iterations = 800;
  base.record_trace = false;

  TablePrinter table({"Variant", "mean iters", "max iters", "converged %",
                      "UFC total"});
  CsvWriter csv("ufc_ablation.csv", {"variant", "mean_iters", "max_iters",
                                     "converged_pct", "ufc_total"});
  auto report_variant = [&](const std::string& name,
                            const VariantResult& result) {
    table.add_row(name,
                  {result.mean_iterations, result.max_iterations,
                   100.0 * result.converged_fraction, result.ufc_total},
                  1);
    csv.row_strings({name, csv_number(result.mean_iterations),
                     csv_number(result.max_iterations),
                     csv_number(100.0 * result.converged_fraction),
                     csv_number(result.ufc_total)});
  };

  report_variant("ADM-G (default)", run_variant(scenario, base, slots));

  {
    auto plain = base;
    plain.gaussian_back_substitution = false;
    report_variant("plain 4-block ADMM (no correction)",
                   run_variant(scenario, plain, slots));
  }
  for (double epsilon : {0.6, 0.8, 1.0}) {
    auto options = base;
    options.epsilon = epsilon;
    report_variant("epsilon = " + fixed(epsilon, 1),
                   run_variant(scenario, options, slots));
  }
  for (double rho : {0.3, 3.0, 10.0, 30.0}) {
    auto options = base;
    options.rho = rho;
    options.max_iterations = 4000;
    report_variant("rho = " + fixed(rho, 1),
                   run_variant(scenario, options, slots));
  }
  {
    auto pg = base;
    pg.inner.method = admm::InnerMethod::ProjectedGradient;
    pg.inner.fista.max_iterations = 20000;
    report_variant("inner solver = projected gradient",
                   run_variant(scenario, pg, slots));
  }
  {
    auto exact = base;
    exact.inner.method = admm::InnerMethod::Exact;
    report_variant("inner solver = exact rank-one QP",
                   run_variant(scenario, exact, slots));
  }
  {
    // The case ADM-G exists for: a non-smooth, non-strongly-convex carbon
    // policy (stepped tax). Compare the corrected and uncorrected methods.
    auto stepped = std::make_shared<SteppedCarbonTax>(
        std::vector<double>{0.3, 1.0}, std::vector<double>{5.0, 30.0, 120.0});
    auto admg_stepped = base;
    auto plain_stepped = base;
    plain_stepped.gaussian_back_substitution = false;
    VariantResult corrected, uncorrected;
    for (int slot : slots) {
      auto problem = scenario.problem_at(slot);
      for (auto& dc : problem.datacenters) dc.emission_cost = stepped;
      const auto a = admm::solve_admg(problem, admg_stepped);
      const auto b = admm::solve_admg(problem, plain_stepped);
      corrected.mean_iterations += a.iterations;
      corrected.max_iterations =
          std::max(corrected.max_iterations, static_cast<double>(a.iterations));
      corrected.converged_fraction += a.converged ? 1.0 : 0.0;
      corrected.ufc_total += a.breakdown.ufc;
      uncorrected.mean_iterations += b.iterations;
      uncorrected.max_iterations = std::max(
          uncorrected.max_iterations, static_cast<double>(b.iterations));
      uncorrected.converged_fraction += b.converged ? 1.0 : 0.0;
      uncorrected.ufc_total += b.breakdown.ufc;
    }
    const auto count = static_cast<double>(slots.size());
    corrected.mean_iterations /= count;
    corrected.converged_fraction /= count;
    uncorrected.mean_iterations /= count;
    uncorrected.converged_fraction /= count;
    report_variant("stepped tax, ADM-G", corrected);
    report_variant("stepped tax, plain ADMM", uncorrected);
  }
  {
    // Warm starting across consecutive hours (operational optimization; the
    // paper's Fig. 11 counts cold starts).
    admm::AdmgOptions admg = base;
    VariantResult warm;
    admm::AdmgSolver solver(scenario.problem_at(slots.front()), admg);
    bool first = true;
    for (int slot : slots) {
      if (!first) solver.set_problem(scenario.problem_at(slot));
      const auto report = first ? solver.solve() : solver.solve_warm();
      first = false;
      warm.mean_iterations += report.iterations;
      warm.max_iterations = std::max(warm.max_iterations,
                                     static_cast<double>(report.iterations));
      warm.converged_fraction += report.converged ? 1.0 : 0.0;
      warm.ufc_total += report.breakdown.ufc;
    }
    warm.mean_iterations /= static_cast<double>(slots.size());
    warm.converged_fraction /= static_cast<double>(slots.size());
    report_variant("warm start across slots", warm);
  }
  table.print();

  // Baseline comparison on one representative slot: iteration counts of the
  // projected-subgradient centralized method at matched solution quality.
  const auto problem = scenario.problem_at(64);
  const auto admg = admm::solve_admg(problem, base);
  admm::CentralizedOptions central;
  central.max_iterations = 1000;
  const auto oracle = admm::solve_centralized(problem, central);
  std::cout << "\nSlot 64: ADM-G " << admg.iterations << " iterations (UFC "
            << fixed(admg.breakdown.ufc, 1) << "); projected subgradient "
            << oracle.iterations << " iterations (UFC "
            << fixed(oracle.objective, 1) << ")\n";

  bench::note_csv(csv);
  return 0;
}
