// Extension - battery storage & peak shaving: layers per-datacenter
// batteries with a price-threshold policy on top of the paper's per-slot
// optimization (the temporal lever its related work [19], [26] studies).
#include <array>

#include "bench_common.hpp"
#include "sim/storage.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Extension - battery storage on top of the hybrid strategy",
      "per-slot paper model + threshold charging; cf. peak shaving [19]");

  const auto scenario = bench::paper_scenario();
  auto options = bench::paper_options();

  TablePrinter table({"battery (MWh / MW)", "policy", "energy saving $",
                      "saving %", "peak grid cut %", "carbon delta t"});
  CsvWriter csv("ufc_storage.csv",
                {"capacity_mwh", "rate_mw", "policy", "saving", "saving_pct",
                 "peak_cut_pct", "carbon_delta_tons"});
  auto emit = [&](double capacity, double rate, const std::string& name,
                  const sim::StorageWeekResult& result) {
    table.add_row({fixed(capacity, 0) + " / " + fixed(rate, 0), name,
                   fixed(result.total_saving, 2), fixed(result.saving_pct, 2),
                   fixed(result.peak_reduction_pct, 2),
                   fixed(result.carbon_delta_tons, 2)});
    csv.row_strings({csv_number(capacity), csv_number(rate), name,
                     csv_number(result.total_saving),
                     csv_number(result.saving_pct),
                     csv_number(result.peak_reduction_pct),
                     csv_number(result.carbon_delta_tons)});
  };

  const std::array<std::pair<double, double>, 4> sizes = {
      std::pair{2.0, 1.0}, {8.0, 2.0}, {20.0, 5.0}, {50.0, 12.0}};
  for (const auto& [capacity, rate] : sizes) {
    sim::StoragePolicyOptions policy;
    policy.battery.capacity_mwh = capacity;
    policy.battery.max_charge_mw = rate;
    policy.battery.max_discharge_mw = rate;
    emit(capacity, rate, "threshold",
         sim::run_storage_week(scenario, policy, options));

    sim::OptimalStorageOptions optimal;
    optimal.battery = policy.battery;
    emit(capacity, rate, "DP-optimal",
         sim::run_storage_week_optimal(scenario, optimal, options));
  }
  table.print();

  std::cout << "\nBatteries arbitrage the diurnal price spread that fuel "
               "cells alone cannot (their marginal cost p0 is flat), and "
               "never raise the weekly grid peak by construction.\n";
  bench::note_csv(csv);
  return 0;
}
