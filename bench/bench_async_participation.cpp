// Extension - asynchronous front-end participation: how does ADM-G degrade
// when a fraction of front-end proxies straggle each round and the
// datacenters reuse their stale proposals?
#include <array>

#include "admm/async.hpp"
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Extension - straggling front-ends (randomized participation)",
      "synchronous ADM-G analysis; robustness beyond it measured here");

  const auto scenario = bench::paper_scenario();
  const auto problem = scenario.problem_at(64);  // peak hour

  admm::AsyncOptions base;
  base.admg.tolerance = 3e-3;
  base.admg.max_iterations = 4000;
  // Traces on: the per-iteration residual/objective series the shared
  // SolveCore now carries is exactly what the convergence plot needs.
  base.admg.record_trace = true;

  const auto reference = admm::solve_async_admg(problem, base);

  TablePrinter table({"participation", "iterations", "skipped updates",
                      "UFC $", "UFC gap %"});
  CsvWriter csv("ufc_async.csv",
                {"participation", "iterations", "skipped", "ufc", "gap_pct"});
  CsvWriter trace_csv("ufc_async_trace.csv",
                      {"participation", "iteration", "balance_residual",
                       "copy_residual", "objective"});

  const std::array<double, 5> rates = {1.0, 0.9, 0.7, 0.5, 0.3};
  for (double rate : rates) {
    auto options = base;
    options.participation = rate;
    options.seed = 7;
    const auto report = admm::solve_async_admg(problem, options);
    const double gap =
        improvement_percent(report.breakdown.ufc, reference.breakdown.ufc);
    table.add_row(fixed(rate, 1),
                  {static_cast<double>(report.iterations),
                   static_cast<double>(report.skipped_updates),
                   report.breakdown.ufc, gap},
                  2);
    csv.row({rate, static_cast<double>(report.iterations),
             static_cast<double>(report.skipped_updates),
             report.breakdown.ufc, gap});
    for (std::size_t k = 0; k < report.trace.balance_residual.size(); ++k)
      trace_csv.row({rate, static_cast<double>(k),
                     report.trace.balance_residual[k],
                     report.trace.copy_residual[k], report.trace.objective[k]});
  }
  table.print();

  std::cout << "\nIterations inflate roughly with 1/participation while the "
               "final UFC stays at the synchronous optimum.\n";
  bench::note_csv(csv);
  bench::note_csv(trace_csv);
  return 0;
}
