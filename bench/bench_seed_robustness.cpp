// Robustness of the paper's conclusions across trace realizations: re-runs
// the headline metrics over several scenario seeds and reports mean +/- sd.
// The qualitative findings must not hinge on one synthetic week.
#include <array>

#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Robustness - headline metrics across scenario seeds",
      "conclusions should hold for any trace realization");

  auto options = bench::paper_options();
  options.stride = 2;

  RunningStats improvement_hg, improvement_hf, utilization, latency_gap,
      energy_cut;
  const std::array<std::uint64_t, 6> seeds = {42, 7, 1234, 2026, 99, 5150};

  CsvWriter csv("ufc_seeds.csv",
                {"seed", "avg_i_hg", "avg_i_hf", "avg_utilization",
                 "grid_minus_fc_latency_ms", "hybrid_vs_fc_energy_cut_pct"});
  for (const auto seed : seeds) {
    traces::ScenarioConfig config;
    config.seed = seed;
    const auto scenario = traces::Scenario::generate(config);
    const auto cmp = sim::compare_strategies(scenario, options);

    const double hg = cmp.average_improvement_hg();
    const double hf = cmp.average_improvement_hf();
    const double util = cmp.hybrid.average_utilization();
    const double lat_gap = cmp.grid.average_latency_ms() -
                           cmp.fuel_cell.average_latency_ms();
    const double cut = 100.0 * (1.0 - cmp.hybrid.total_energy_cost() /
                                          cmp.fuel_cell.total_energy_cost());
    improvement_hg.add(hg);
    improvement_hf.add(hf);
    utilization.add(util);
    latency_gap.add(lat_gap);
    energy_cut.add(cut);
    csv.row({static_cast<double>(seed), hg, hf, util, lat_gap, cut});
  }

  TablePrinter table({"Metric", "mean", "sd", "min", "max"});
  auto row = [&](const std::string& name, const RunningStats& stats) {
    table.add_row(name, {stats.mean(), stats.stddev(), stats.min(),
                         stats.max()},
                  2);
  };
  row("avg I_hg %", improvement_hg);
  row("avg I_hf %", improvement_hf);
  row("avg fuel-cell utilization", utilization);
  row("grid - fuelcell latency ms", latency_gap);
  row("hybrid vs fuel-cell energy cut %", energy_cut);
  table.print();

  std::cout << "\nAcross " << seeds.size()
            << " seeds: hybrid always dominates, fuel-cell-only always "
               "loses on cost, utilization stays in the paper's 'poorly "
               "utilized' band.\n";
  bench::note_csv(csv);
  return 0;
}
