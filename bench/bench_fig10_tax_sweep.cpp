// Fig. 10: does the carbon tax work? Sweeps the tax rate r and reports
// average UFC improvement (Hybrid over Grid) and fuel-cell utilization.
#include <array>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 10 - average UFC improvement and utilization vs carbon tax",
      "utilization -> ~100% near 140 $/ton; today's 5-39 $/ton fails (<20%)");

  traces::ScenarioConfig config;  // paper defaults (p0 = 80)
  auto options = bench::paper_options();
  options.stride = 2;

  const std::array<double, 9> taxes = {0.0,  10.0, 25.0,  40.0, 60.0,
                                       90.0, 120.0, 150.0, 200.0};
  const auto points = sim::sweep_carbon_tax(config, taxes, options);

  TablePrinter table({"tax ($/ton)", "avg UFC improvement %",
                      "avg fuel cell utilization %"});
  CsvWriter csv("ufc_fig10.csv",
                {"tax", "avg_improvement_pct", "avg_utilization_pct"});
  for (const auto& point : points) {
    table.add_row(fixed(point.parameter, 0),
                  {point.avg_improvement_pct, 100.0 * point.avg_utilization},
                  1);
    csv.row({point.parameter, point.avg_improvement_pct,
             100.0 * point.avg_utilization});
  }
  table.print();
  bench::note_csv(csv);
  return 0;
}
