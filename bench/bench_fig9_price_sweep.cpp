// Fig. 9: how low must the fuel-cell generation price go? Sweeps p0 and
// reports average UFC improvement (Hybrid over Grid) and fuel-cell
// utilization.
#include <array>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 9 - average UFC improvement and utilization vs fuel cell price",
      "utilization -> 100% at ~27 $/MWh; poor (11-16%) at today's 80-110");

  traces::ScenarioConfig config;  // paper defaults
  auto options = bench::paper_options();
  options.stride = 2;  // every 2nd hour: 84 slots per strategy per point

  const std::array<double, 9> prices = {10.0, 20.0,  30.0,  45.0, 60.0,
                                        80.0, 95.0, 110.0, 130.0};
  const auto points = sim::sweep_fuel_cell_price(config, prices, options);

  TablePrinter table({"p0 ($/MWh)", "avg UFC improvement %",
                      "avg fuel cell utilization %"});
  CsvWriter csv("ufc_fig9.csv",
                {"p0", "avg_improvement_pct", "avg_utilization_pct"});
  for (const auto& point : points) {
    table.add_row(fixed(point.parameter, 0),
                  {point.avg_improvement_pct, 100.0 * point.avg_utilization},
                  1);
    csv.row({point.parameter, point.avg_improvement_pct,
             100.0 * point.avg_utilization});
  }
  table.print();
  bench::note_csv(csv);
  return 0;
}
