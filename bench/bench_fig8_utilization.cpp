// Fig. 8: hourly fuel-cell utilization (fuel-cell generation as a fraction
// of power demand) under the Hybrid strategy — wildly fluctuating and, at
// current prices, low on average.
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 8 - fuel cell utilization at each time period",
      "wild fluctuation; average ~16.2%; rarely above 70%");

  const auto scenario = bench::paper_scenario();
  const auto hybrid = sim::run_strategy_week(scenario, admm::Strategy::Hybrid,
                                             bench::paper_options());
  const auto utilization = hybrid.utilization_series();

  TablePrinter table({"Metric", "value"});
  table.add_row("mean utilization %", {100.0 * mean(utilization)}, 1);
  table.add_row("min utilization %", {100.0 * min_value(utilization)}, 1);
  table.add_row("max utilization %", {100.0 * max_value(utilization)}, 1);
  table.add_row("p95 utilization %", {100.0 * percentile(utilization, 95)}, 1);
  int above70 = 0, near_zero = 0;
  for (double u : utilization) {
    above70 += u > 0.7 ? 1 : 0;
    near_zero += u < 0.01 ? 1 : 0;
  }
  table.add_row("hours above 70%", {static_cast<double>(above70)}, 0);
  table.add_row("hours near zero", {static_cast<double>(near_zero)}, 0);
  table.print();

  CsvWriter csv("ufc_fig8.csv",
                {"hour", "utilization", "fuel_cell_mwh", "demand_mwh"});
  for (const auto& slot : hybrid.slots)
    csv.row({static_cast<double>(slot.slot), slot.breakdown.utilization,
             slot.breakdown.fuel_cell_mwh, slot.breakdown.demand_mwh});
  bench::note_csv(csv);
  return 0;
}
