// Extension - deferrable batch workload: how much does temporal freedom
// save when a batch overlay can chase cheap (hour, site) slots within a
// deadline, on top of the paper's interactive-only model (cf. Goiri et al.
// [26])?
#include <array>

#include "bench_common.hpp"
#include "sim/batch.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Extension - deferrable batch workload over the hybrid strategy",
      "paper models interactive-only load; related work defers batch");

  const auto scenario = bench::paper_scenario();
  auto options = bench::paper_options();

  TablePrinter table({"deadline h", "batch frac", "inline $", "scheduled $",
                      "saving %", "deferred %", "avg delay h"});
  CsvWriter csv("ufc_batch.csv",
                {"deadline_h", "fraction", "inline_cost", "scheduled_cost",
                 "saving_pct", "deferred_pct", "avg_delay_h"});

  const std::array<int, 5> deadlines = {0, 2, 6, 12, 24};
  for (const int deadline : deadlines) {
    sim::BatchWorkloadOptions batch;
    batch.batch_fraction = 0.2;
    batch.deadline_hours = deadline;
    const auto result = sim::run_batch_week(scenario, batch, options);
    table.add_row(fixed(deadline, 0),
                  {batch.batch_fraction, result.inline_cost,
                   result.scheduled_cost, result.saving_pct,
                   100.0 * result.deferred_fraction,
                   result.average_delay_hours},
                  2);
    csv.row({static_cast<double>(deadline), batch.batch_fraction,
             result.inline_cost, result.scheduled_cost, result.saving_pct,
             100.0 * result.deferred_fraction, result.average_delay_hours});
  }
  table.print();

  std::cout << "\nDeadline slack is the temporal analogue of the paper's "
               "spatial routing: a day of freedom rivals the hybrid "
               "strategy's own arbitrage gains.\n";
  bench::note_csv(csv);
  return 0;
}
