// Fig. 7: hourly carbon-emission cost per strategy — hybrid stays close to
// grid (low tax keeps grid power attractive); fuel-cell-only is carbon-free.
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 7 - carbon emission cost under various strategies",
      "Hybrid close to Grid; carbon cost well below energy cost");

  const auto scenario = bench::paper_scenario();
  const auto cmp = sim::compare_strategies(scenario, bench::paper_options());

  TablePrinter table(
      {"Strategy", "carbon $ total", "carbon tons", "energy $ total"});
  for (const auto* week : {&cmp.grid, &cmp.fuel_cell, &cmp.hybrid}) {
    table.add_row(admm::to_string(week->strategy),
                  {week->total_carbon_cost(), week->total_carbon_tons(),
                   week->total_energy_cost()},
                  0);
  }
  table.print();

  std::cout << "\nHybrid emits "
            << fixed(100.0 * cmp.hybrid.total_carbon_tons() /
                         cmp.grid.total_carbon_tons(),
                     1)
            << "% of Grid's carbon; carbon cost is "
            << fixed(100.0 * cmp.hybrid.total_carbon_cost() /
                         cmp.hybrid.total_energy_cost(),
                     1)
            << "% of its energy cost (paper: carbon << energy at $25/ton)\n";

  CsvWriter csv("ufc_fig7.csv", {"hour", "carbon_grid", "carbon_fuel_cell",
                                 "carbon_hybrid"});
  for (std::size_t t = 0; t < cmp.grid.slots.size(); ++t)
    csv.row({static_cast<double>(cmp.grid.slots[t].slot),
             cmp.grid.slots[t].breakdown.carbon_cost,
             cmp.fuel_cell.slots[t].breakdown.carbon_cost,
             cmp.hybrid.slots[t].breakdown.carbon_cost});
  bench::note_csv(csv);
  return 0;
}
