// Table I: one-week energy costs ($) of the Grid / Fuel Cell / Hybrid
// strategies for a single datacenter at Dallas and San Jose, following the
// Facebook-like power demand profile.
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Table I - energy costs of different strategies",
      "Dallas: 9644 / 27957 / 9387; San Jose: 28470 / 27957 / 18250 ($)");

  const auto data = traces::generate_single_site_data(42);
  const double p0 = 80.0;
  const auto dallas =
      sim::single_site_strategy_costs(data.demand_mw, data.dallas_price, p0);
  const auto san_jose =
      sim::single_site_strategy_costs(data.demand_mw, data.san_jose_price, p0);

  TablePrinter table({"Strategy", "Grid", "Fuel Cell", "Hybrid"});
  table.add_row("Dallas", {dallas.grid, dallas.fuel_cell, dallas.hybrid}, 0);
  table.add_row("San Jose",
                {san_jose.grid, san_jose.fuel_cell, san_jose.hybrid}, 0);
  table.print();

  std::cout << "\nHybrid saves " << fixed(100.0 * (1.0 - dallas.hybrid / dallas.grid), 1)
            << "% vs Grid at Dallas and "
            << fixed(100.0 * (1.0 - san_jose.hybrid / san_jose.grid), 1)
            << "% at San Jose (paper: 2.7% and 35.9%).\n";

  CsvWriter csv("ufc_table1.csv", {"site", "grid", "fuel_cell", "hybrid"});
  csv.row_strings({"Dallas", csv_number(dallas.grid),
                   csv_number(dallas.fuel_cell), csv_number(dallas.hybrid)});
  csv.row_strings({"San Jose", csv_number(san_jose.grid),
                   csv_number(san_jose.fuel_cell),
                   csv_number(san_jose.hybrid)});
  bench::note_csv(csv);
  return 0;
}
