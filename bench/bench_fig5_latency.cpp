// Fig. 5: average propagation latency per strategy — fuel cells' load
// following keeps requests near home; chasing cheap grid energy stretches
// the WAN paths.
#include "bench_common.hpp"
#include "model/queueing.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 5 - average propagation latency under various strategies",
      "FuelCell 14-16 ms, Hybrid 14-17 ms, Grid up to 23 ms");

  const auto scenario = bench::paper_scenario();
  const auto cmp = sim::compare_strategies(scenario, bench::paper_options());

  TablePrinter table({"Strategy", "mean ms", "min ms", "max ms", "p95 ms"});
  for (const auto* week : {&cmp.grid, &cmp.fuel_cell, &cmp.hybrid}) {
    const auto series = week->latency_ms_series();
    table.add_row(admm::to_string(week->strategy),
                  {mean(series), min_value(series), max_value(series),
                   percentile(series, 95)},
                  1);
  }
  table.print();

  // Validate the paper's modeling assumption that propagation dominates
  // in-datacenter queueing (§II-B3), on a peak-hour hybrid solution.
  {
    const auto problem = scenario.problem_at(64);
    const auto report =
        admm::solve_strategy(problem, admm::Strategy::Hybrid,
                             bench::paper_options().admg);
    const auto queueing = assess_queueing(problem, report.solution.lambda);
    std::cout << "\nQueueing check (peak slot, M/M/c): propagation "
              << fixed(queueing.avg_propagation_ms, 2) << " ms vs queueing "
              << fixed(queueing.avg_queueing_ms, 4) << " ms ("
              << fixed(100.0 * queueing.queueing_share, 2)
              << "% of user-perceived latency) — the paper's assumption "
                 "holds.\n";
  }

  CsvWriter csv("ufc_fig5.csv",
                {"hour", "latency_grid_ms", "latency_fuel_cell_ms",
                 "latency_hybrid_ms"});
  for (std::size_t t = 0; t < cmp.grid.slots.size(); ++t)
    csv.row({static_cast<double>(cmp.grid.slots[t].slot),
             cmp.grid.slots[t].breakdown.avg_latency_ms,
             cmp.fuel_cell.slots[t].breakdown.avg_latency_ms,
             cmp.hybrid.slots[t].breakdown.avg_latency_ms});
  bench::note_csv(csv);
  return 0;
}
