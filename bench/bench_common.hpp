// Shared helpers for the per-figure bench binaries.
//
// Every binary prints the paper-style table/series to stdout and writes a
// CSV (named ufc_<experiment>.csv) into the current working directory so
// plots can be regenerated offline. Instrumented benches additionally write
// their headline numbers into the machine-readable BENCH_ufc.json artifact
// (schema ufc-bench-v1, validated by scripts/check_bench_json.py), keyed by
// bench name so re-runs update in place.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ufc::bench {

/// The paper's evaluation scenario (§IV-A defaults, seed 42).
inline traces::Scenario paper_scenario() {
  return traces::Scenario::generate(traces::ScenarioConfig{});
}

/// Paper-scale solver settings (tolerance chosen so the Fig. 11 iteration
/// distribution lands in the paper's band; see DESIGN.md).
inline sim::SimulatorOptions paper_options() { return {}; }

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper reference: " << paper << "\n\n";
}

inline void note_csv(const CsvWriter& csv) {
  std::cout << "\nSeries written to " << csv.path() << " ("
            << csv.rows_written() << " rows)\n";
}

/// Where the machine-readable bench results accumulate. Overridable via
/// UFC_BENCH_JSON so CI smoke runs can write into their scratch directory.
inline std::string bench_artifact_path() {
  // Benches are single-threaded at startup; nobody calls setenv concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* override_path = std::getenv("UFC_BENCH_JSON");
  return override_path != nullptr && *override_path != '\0'
             ? std::string(override_path)
             : std::string("BENCH_ufc.json");
}

/// Replaces (or appends) this bench's entry in BENCH_ufc.json.
inline void write_bench_entry(const std::string& name,
                              obs::JsonValue metrics) {
  const std::string path = bench_artifact_path();
  obs::update_bench_artifact(path, name, std::move(metrics));
  std::cout << "Bench entry '" << name << "' written to " << path << "\n";
}

/// One (M, N, timed-iterations) point of a size-scaling sweep.
struct BenchSize {
  std::size_t m = 0;
  std::size_t n = 0;
  int iterations = 0;
};

/// Sizes for a size-scaling sweep: the baked-in `defaults`, unless the
/// UFC_BENCH_SIZES environment variable overrides them. The override format
/// is a comma-separated list of `MxN:iters`, e.g. "64x16:20,256x32:8" — CI
/// smoke jobs use it to compile-and-run the frontier benches at toy sizes
/// without paying the full 4096x256 sweep. A malformed override aborts with
/// a diagnostic rather than silently benchmarking the wrong sizes.
inline std::vector<BenchSize> bench_sizes(std::vector<BenchSize> defaults) {
  // Benches are single-threaded at startup; nobody calls setenv concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("UFC_BENCH_SIZES");
  if (env == nullptr || *env == '\0') return defaults;
  std::vector<BenchSize> sizes;
  const std::string spec(env);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::size_t x = item.find('x');
    const std::size_t colon = item.find(':');
    bool ok = x != std::string::npos && colon != std::string::npos && x > 0 &&
              colon > x + 1 && colon + 1 < item.size();
    BenchSize size;
    if (ok) {
      try {
        size.m = static_cast<std::size_t>(std::stoul(item.substr(0, x)));
        size.n = static_cast<std::size_t>(
            std::stoul(item.substr(x + 1, colon - x - 1)));
        size.iterations = std::stoi(item.substr(colon + 1));
      } catch (const std::exception&) {
        ok = false;
      }
    }
    if (!ok || size.m == 0 || size.n == 0 || size.iterations <= 0) {
      std::cerr << "UFC_BENCH_SIZES: malformed item '" << item
                << "' (expected MxN:iters, e.g. 64x16:20)\n";
      std::exit(2);
    }
    sizes.push_back(size);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace ufc::bench
