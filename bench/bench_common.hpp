// Shared helpers for the per-figure bench binaries.
//
// Every binary prints the paper-style table/series to stdout and writes a
// CSV (named ufc_<experiment>.csv) into the current working directory so
// plots can be regenerated offline. Instrumented benches additionally write
// their headline numbers into the machine-readable BENCH_ufc.json artifact
// (schema ufc-bench-v1, validated by scripts/check_bench_json.py), keyed by
// bench name so re-runs update in place.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/manifest.hpp"
#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ufc::bench {

/// The paper's evaluation scenario (§IV-A defaults, seed 42).
inline traces::Scenario paper_scenario() {
  return traces::Scenario::generate(traces::ScenarioConfig{});
}

/// Paper-scale solver settings (tolerance chosen so the Fig. 11 iteration
/// distribution lands in the paper's band; see DESIGN.md).
inline sim::SimulatorOptions paper_options() { return {}; }

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper reference: " << paper << "\n\n";
}

inline void note_csv(const CsvWriter& csv) {
  std::cout << "\nSeries written to " << csv.path() << " ("
            << csv.rows_written() << " rows)\n";
}

/// Where the machine-readable bench results accumulate. Overridable via
/// UFC_BENCH_JSON so CI smoke runs can write into their scratch directory.
inline std::string bench_artifact_path() {
  // Benches are single-threaded at startup; nobody calls setenv concurrently.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* override_path = std::getenv("UFC_BENCH_JSON");
  return override_path != nullptr && *override_path != '\0'
             ? std::string(override_path)
             : std::string("BENCH_ufc.json");
}

/// Replaces (or appends) this bench's entry in BENCH_ufc.json.
inline void write_bench_entry(const std::string& name,
                              obs::JsonValue metrics) {
  const std::string path = bench_artifact_path();
  obs::update_bench_artifact(path, name, std::move(metrics));
  std::cout << "Bench entry '" << name << "' written to " << path << "\n";
}

}  // namespace ufc::bench
