// Shared helpers for the per-figure bench binaries.
//
// Every binary prints the paper-style table/series to stdout and writes a
// CSV (named ufc_<experiment>.csv) into the current working directory so
// plots can be regenerated offline.
#pragma once

#include <iostream>
#include <string>

#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ufc::bench {

/// The paper's evaluation scenario (§IV-A defaults, seed 42).
inline traces::Scenario paper_scenario() {
  return traces::Scenario::generate(traces::ScenarioConfig{});
}

/// Paper-scale solver settings (tolerance chosen so the Fig. 11 iteration
/// distribution lands in the paper's band; see DESIGN.md).
inline sim::SimulatorOptions paper_options() { return {}; }

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "Paper reference: " << paper << "\n\n";
}

inline void note_csv(const CsvWriter& csv) {
  std::cout << "\nSeries written to " << csv.path() << " ("
            << csv.rows_written() << " rows)\n";
}

}  // namespace ufc::bench
