// Forecast-robustness experiment: the paper plans each slot on *predicted*
// arrivals (§II-A). How much UFC does planning on one-step-ahead forecasts
// actually give up versus a clairvoyant planner?
#include "bench_common.hpp"
#include "sim/forecast_study.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Extension - planning on forecasted arrivals",
      "paper assumes near-term arrivals 'can be predicted quite accurately'");

  const auto scenario = bench::paper_scenario();

  TablePrinter table({"forecaster", "workload MAPE %", "avg UFC gap %",
                      "max UFC gap %"});
  CsvWriter csv("ufc_forecast.csv",
                {"method", "mape_pct", "avg_gap_pct", "max_gap_pct"});

  for (const auto method : {sim::ForecastMethod::SeasonalNaive,
                            sim::ForecastMethod::HoltWinters}) {
    sim::ForecastStudyOptions options;
    options.method = method;
    options.skip_slots = 48;
    const auto result = sim::run_forecast_study(scenario, options);
    const std::string name = method == sim::ForecastMethod::SeasonalNaive
                                 ? "seasonal-naive"
                                 : "holt-winters";
    table.add_row(name,
                  {100.0 * result.workload_mape, result.avg_ufc_gap_pct,
                   result.max_ufc_gap_pct},
                  2);
    csv.row_strings({name, csv_number(100.0 * result.workload_mape),
                     csv_number(result.avg_ufc_gap_pct),
                     csv_number(result.max_ufc_gap_pct)});
  }
  table.print();

  std::cout << "\nA few-percent UFC gap at ~5-10% forecast error supports "
               "the paper's per-slot planning premise.\n";
  bench::note_csv(csv);
  return 0;
}
