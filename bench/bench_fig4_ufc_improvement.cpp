// Fig. 4: per-hour UFC improvement indexes over the one-week horizon —
// I_hg (Hybrid over Grid), I_hf (Hybrid over FuelCell), I_fg (FuelCell over
// Grid).
#include "bench_common.hpp"

int main() {
  using namespace ufc;
  bench::print_header(
      "Fig. 4 - UFC improvement under various strategies",
      "I_fg down to -150% off-peak, <= ~30% at peaks; I_hf > 40% avg; "
      "I_hg in [0%, ~50%]");

  const auto scenario = bench::paper_scenario();
  const auto cmp = sim::compare_strategies(scenario, bench::paper_options());

  TablePrinter table({"Index", "mean %", "min %", "max %", "p95 %"});
  table.add_row("I_hg (Hybrid vs Grid)",
                {mean(cmp.improvement_hg), min_value(cmp.improvement_hg),
                 max_value(cmp.improvement_hg),
                 percentile(cmp.improvement_hg, 95)},
                1);
  table.add_row("I_hf (Hybrid vs FuelCell)",
                {mean(cmp.improvement_hf), min_value(cmp.improvement_hf),
                 max_value(cmp.improvement_hf),
                 percentile(cmp.improvement_hf, 95)},
                1);
  table.add_row("I_fg (FuelCell vs Grid)",
                {mean(cmp.improvement_fg), min_value(cmp.improvement_fg),
                 max_value(cmp.improvement_fg),
                 percentile(cmp.improvement_fg, 95)},
                1);
  table.print();

  int hg_nonnegative = 0;
  for (double v : cmp.improvement_hg) hg_nonnegative += v > -1.0 ? 1 : 0;
  std::cout << "\nI_hg >= 0 (never reduces UFC) in " << hg_nonnegative << "/"
            << cmp.improvement_hg.size() << " hours\n";

  CsvWriter csv("ufc_fig4.csv", {"hour", "i_hg", "i_hf", "i_fg", "ufc_grid",
                                 "ufc_fuel_cell", "ufc_hybrid"});
  for (std::size_t t = 0; t < cmp.improvement_hg.size(); ++t)
    csv.row({static_cast<double>(cmp.grid.slots[t].slot),
             cmp.improvement_hg[t], cmp.improvement_hf[t],
             cmp.improvement_fg[t], cmp.grid.slots[t].breakdown.ufc,
             cmp.fuel_cell.slots[t].breakdown.ufc,
             cmp.hybrid.slots[t].breakdown.ufc});
  bench::note_csv(csv);
  return 0;
}
