// Micro-benchmarks (google-benchmark): per-block sub-problem solvers, full
// ADM-G iterations across problem sizes, and the message-passing round,
// quantifying where the per-iteration time goes and how it scales in M, N.
#include <benchmark/benchmark.h>

#include "admm/admg.hpp"
#include "admm/blocks.hpp"
#include "math/projections.hpp"
#include "net/runtime.hpp"
#include "traces/scenario.hpp"
#include "util/rng.hpp"

namespace ufc {
namespace {

UfcProblem random_problem(std::size_t m, std::size_t n) {
  Rng rng(1234);
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();
  double capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    DatacenterSpec dc;
    dc.name = "dc" + std::to_string(j);
    dc.servers = rng.uniform(1.7e4, 2.3e4);
    dc.grid_price = rng.uniform(15.0, 120.0);
    dc.carbon_rate = rng.uniform(200.0, 900.0);
    dc.fuel_cell_capacity_mw = dc.servers * 200.0 * 1.2 / 1e6;
    dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
    capacity += dc.servers;
    p.datacenters.push_back(std::move(dc));
  }
  Rng shares_rng(7);
  p.arrivals = normal_shares(shares_rng, static_cast<int>(m), 0.6 * capacity,
                             0.35);
  p.latency_s = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p.latency_s(i, j) = rng.uniform(0.002, 0.045);
  return p;
}

void BM_SimplexProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(project_simplex(v, 1.0));
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_LambdaBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  QuadraticUtility utility;
  Vec latency(n), a_row(n), varphi_row(n);
  for (std::size_t j = 0; j < n; ++j) {
    latency[j] = rng.uniform(0.002, 0.045);
    a_row[j] = rng.uniform(0.0, 0.5);
    varphi_row[j] = rng.uniform(-0.1, 0.1);
  }
  admm::LambdaBlockInputs in;
  in.arrival = 1.0;
  in.latency_row = latency.span();
  in.a_row = a_row.span();
  in.varphi_row = varphi_row.span();
  in.rho = 10.0;
  in.latency_weight = 10.0;
  in.utility = &utility;
  const Vec warm(n, 0.0);
  admm::InnerSolverOptions inner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(admm::solve_lambda_block(in, warm, inner));
  }
}
BENCHMARK(BM_LambdaBlock)->Arg(4)->Arg(16)->Arg(64);

void BM_ABlock(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  Vec varphi_col(m), lambda_col(m);
  for (std::size_t i = 0; i < m; ++i) {
    varphi_col[i] = rng.uniform(-0.1, 0.1);
    lambda_col[i] = rng.uniform(0.0, 0.5);
  }
  admm::ABlockInputs in;
  in.alpha = 2.4;
  in.beta = 0.5;
  in.mu = 1.0;
  in.nu = 1.5;
  in.phi = 0.2;
  in.varphi_col = varphi_col.span();
  in.lambda_col = lambda_col.span();
  in.rho = 10.0;
  in.capacity = 4.0;
  const Vec warm(m, 0.0);
  admm::InnerSolverOptions inner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(admm::solve_a_block(in, warm, inner));
  }
}
BENCHMARK(BM_ABlock)->Arg(10)->Arg(40)->Arg(160);

void BM_NuBlockPolicies(benchmark::State& state) {
  const AffineCarbonTax affine(25.0);
  const SteppedCarbonTax stepped({0.5, 2.0}, {10.0, 30.0, 90.0});
  const EmissionCostFunction* policy =
      state.range(0) == 0
          ? static_cast<const EmissionCostFunction*>(&affine)
          : static_cast<const EmissionCostFunction*>(&stepped);
  admm::NuBlockInputs in;
  in.alpha = 2.4;
  in.beta = 0.5;
  in.a_col_sum = 3.0;
  in.mu = 1.0;
  in.phi = 5.0;
  in.rho = 10.0;
  in.grid_price = 40.0;
  in.carbon_tons_per_mwh = 0.5;
  in.emission_cost = policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(admm::solve_nu_block(in));
  }
}
BENCHMARK(BM_NuBlockPolicies)->Arg(0)->Arg(1);

void BM_AdmgIteration(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const auto problem = random_problem(m, n);
  admm::AdmgSolver solver(problem);
  for (auto _ : state) {
    solver.step();
  }
  state.SetLabel("M=" + std::to_string(m) + " N=" + std::to_string(n));
}
BENCHMARK(BM_AdmgIteration)
    ->Args({10, 4})
    ->Args({40, 4})
    ->Args({160, 4})
    ->Args({40, 16})
    ->Args({64, 16});

void BM_FullSlotSolve(benchmark::State& state) {
  const auto scenario = traces::Scenario::generate({});
  const auto problem = scenario.problem_at(64);
  admm::AdmgOptions options;
  options.tolerance = 3e-3;
  options.max_iterations = 800;
  options.record_trace = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(admm::solve_admg(problem, options));
  }
}
BENCHMARK(BM_FullSlotSolve);

void BM_DistributedRound(benchmark::State& state) {
  const auto problem = random_problem(10, 4);
  net::DistributedOptions options;
  net::DistributedAdmgRuntime runtime(problem, options);
  int iteration = 0;
  for (auto _ : state) {
    runtime.round(iteration++);
  }
}
BENCHMARK(BM_DistributedRound);

void BM_MessageSerialization(benchmark::State& state) {
  net::Message msg;
  msg.source = net::front_end_id(3);
  msg.destination = net::datacenter_id(1);
  msg.payload = {1.0, 2.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::deserialize(net::serialize(msg)));
  }
}
BENCHMARK(BM_MessageSerialization);

}  // namespace
}  // namespace ufc

BENCHMARK_MAIN();
