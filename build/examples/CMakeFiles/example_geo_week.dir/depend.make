# Empty dependencies file for example_geo_week.
# This may be replaced when dependencies are built.
