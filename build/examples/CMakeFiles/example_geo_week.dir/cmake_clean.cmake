file(REMOVE_RECURSE
  "CMakeFiles/example_geo_week.dir/geo_week.cpp.o"
  "CMakeFiles/example_geo_week.dir/geo_week.cpp.o.d"
  "example_geo_week"
  "example_geo_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_geo_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
