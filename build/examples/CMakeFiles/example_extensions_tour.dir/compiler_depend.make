# Empty compiler generated dependencies file for example_extensions_tour.
# This may be replaced when dependencies are built.
