file(REMOVE_RECURSE
  "CMakeFiles/example_extensions_tour.dir/extensions_tour.cpp.o"
  "CMakeFiles/example_extensions_tour.dir/extensions_tour.cpp.o.d"
  "example_extensions_tour"
  "example_extensions_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_extensions_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
