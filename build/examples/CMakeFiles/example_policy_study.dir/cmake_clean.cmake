file(REMOVE_RECURSE
  "CMakeFiles/example_policy_study.dir/policy_study.cpp.o"
  "CMakeFiles/example_policy_study.dir/policy_study.cpp.o.d"
  "example_policy_study"
  "example_policy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
