# Empty compiler generated dependencies file for example_policy_study.
# This may be replaced when dependencies are built.
