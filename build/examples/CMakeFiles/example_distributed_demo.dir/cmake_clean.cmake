file(REMOVE_RECURSE
  "CMakeFiles/example_distributed_demo.dir/distributed_demo.cpp.o"
  "CMakeFiles/example_distributed_demo.dir/distributed_demo.cpp.o.d"
  "example_distributed_demo"
  "example_distributed_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distributed_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
