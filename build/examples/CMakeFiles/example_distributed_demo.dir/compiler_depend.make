# Empty compiler generated dependencies file for example_distributed_demo.
# This may be replaced when dependencies are built.
