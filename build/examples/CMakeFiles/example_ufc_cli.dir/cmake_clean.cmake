file(REMOVE_RECURSE
  "CMakeFiles/example_ufc_cli.dir/ufc_cli.cpp.o"
  "CMakeFiles/example_ufc_cli.dir/ufc_cli.cpp.o.d"
  "example_ufc_cli"
  "example_ufc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ufc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
