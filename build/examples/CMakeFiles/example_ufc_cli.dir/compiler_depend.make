# Empty compiler generated dependencies file for example_ufc_cli.
# This may be replaced when dependencies are built.
