
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/admm/test_admg.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_admg.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_admg.cpp.o.d"
  "/root/repo/tests/admm/test_admg_edge_cases.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_admg_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_admg_edge_cases.cpp.o.d"
  "/root/repo/tests/admm/test_admg_properties.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_admg_properties.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_admg_properties.cpp.o.d"
  "/root/repo/tests/admm/test_async.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_async.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_async.cpp.o.d"
  "/root/repo/tests/admm/test_blocks.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_blocks.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_blocks.cpp.o.d"
  "/root/repo/tests/admm/test_centralized.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_centralized.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_centralized.cpp.o.d"
  "/root/repo/tests/admm/test_rightsizing.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_rightsizing.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_rightsizing.cpp.o.d"
  "/root/repo/tests/admm/test_strategy.cpp" "tests/CMakeFiles/ufc_tests.dir/admm/test_strategy.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/admm/test_strategy.cpp.o.d"
  "/root/repo/tests/integration/test_distributed_week.cpp" "tests/CMakeFiles/ufc_tests.dir/integration/test_distributed_week.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/integration/test_distributed_week.cpp.o.d"
  "/root/repo/tests/integration/test_paper_claims.cpp" "tests/CMakeFiles/ufc_tests.dir/integration/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/integration/test_paper_claims.cpp.o.d"
  "/root/repo/tests/integration/test_public_api.cpp" "tests/CMakeFiles/ufc_tests.dir/integration/test_public_api.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/integration/test_public_api.cpp.o.d"
  "/root/repo/tests/math/test_dykstra.cpp" "tests/CMakeFiles/ufc_tests.dir/math/test_dykstra.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/math/test_dykstra.cpp.o.d"
  "/root/repo/tests/math/test_matrix.cpp" "tests/CMakeFiles/ufc_tests.dir/math/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/math/test_matrix.cpp.o.d"
  "/root/repo/tests/math/test_projections.cpp" "tests/CMakeFiles/ufc_tests.dir/math/test_projections.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/math/test_projections.cpp.o.d"
  "/root/repo/tests/math/test_vector.cpp" "tests/CMakeFiles/ufc_tests.dir/math/test_vector.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/math/test_vector.cpp.o.d"
  "/root/repo/tests/model/test_battery.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_battery.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_battery.cpp.o.d"
  "/root/repo/tests/model/test_breakdown.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_breakdown.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_breakdown.cpp.o.d"
  "/root/repo/tests/model/test_emission.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_emission.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_emission.cpp.o.d"
  "/root/repo/tests/model/test_metrics.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_metrics.cpp.o.d"
  "/root/repo/tests/model/test_power.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_power.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_power.cpp.o.d"
  "/root/repo/tests/model/test_problem.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_problem.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_problem.cpp.o.d"
  "/root/repo/tests/model/test_queueing.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_queueing.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_queueing.cpp.o.d"
  "/root/repo/tests/model/test_utility.cpp" "tests/CMakeFiles/ufc_tests.dir/model/test_utility.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/model/test_utility.cpp.o.d"
  "/root/repo/tests/net/test_agents.cpp" "tests/CMakeFiles/ufc_tests.dir/net/test_agents.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/net/test_agents.cpp.o.d"
  "/root/repo/tests/net/test_bus.cpp" "tests/CMakeFiles/ufc_tests.dir/net/test_bus.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/net/test_bus.cpp.o.d"
  "/root/repo/tests/net/test_message.cpp" "tests/CMakeFiles/ufc_tests.dir/net/test_message.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/net/test_message.cpp.o.d"
  "/root/repo/tests/net/test_runtime.cpp" "tests/CMakeFiles/ufc_tests.dir/net/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/net/test_runtime.cpp.o.d"
  "/root/repo/tests/opt/test_fista.cpp" "tests/CMakeFiles/ufc_tests.dir/opt/test_fista.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/opt/test_fista.cpp.o.d"
  "/root/repo/tests/opt/test_kkt.cpp" "tests/CMakeFiles/ufc_tests.dir/opt/test_kkt.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/opt/test_kkt.cpp.o.d"
  "/root/repo/tests/opt/test_projected_gradient.cpp" "tests/CMakeFiles/ufc_tests.dir/opt/test_projected_gradient.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/opt/test_projected_gradient.cpp.o.d"
  "/root/repo/tests/opt/test_rank_one_qp.cpp" "tests/CMakeFiles/ufc_tests.dir/opt/test_rank_one_qp.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/opt/test_rank_one_qp.cpp.o.d"
  "/root/repo/tests/opt/test_scalar.cpp" "tests/CMakeFiles/ufc_tests.dir/opt/test_scalar.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/opt/test_scalar.cpp.o.d"
  "/root/repo/tests/sim/test_batch.cpp" "tests/CMakeFiles/ufc_tests.dir/sim/test_batch.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/sim/test_batch.cpp.o.d"
  "/root/repo/tests/sim/test_forecast_study.cpp" "tests/CMakeFiles/ufc_tests.dir/sim/test_forecast_study.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/sim/test_forecast_study.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/ufc_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_storage.cpp" "tests/CMakeFiles/ufc_tests.dir/sim/test_storage.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/sim/test_storage.cpp.o.d"
  "/root/repo/tests/sim/test_sweep.cpp" "tests/CMakeFiles/ufc_tests.dir/sim/test_sweep.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/sim/test_sweep.cpp.o.d"
  "/root/repo/tests/traces/test_forecast.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_forecast.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_forecast.cpp.o.d"
  "/root/repo/tests/traces/test_fuelmix.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_fuelmix.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_fuelmix.cpp.o.d"
  "/root/repo/tests/traces/test_geography.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_geography.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_geography.cpp.o.d"
  "/root/repo/tests/traces/test_price.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_price.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_price.cpp.o.d"
  "/root/repo/tests/traces/test_scenario.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_scenario.cpp.o.d"
  "/root/repo/tests/traces/test_scenario_io.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_scenario_io.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_scenario_io.cpp.o.d"
  "/root/repo/tests/traces/test_workload.cpp" "tests/CMakeFiles/ufc_tests.dir/traces/test_workload.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/traces/test_workload.cpp.o.d"
  "/root/repo/tests/util/test_config.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_config.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_config.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_csv_reader.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_csv_reader.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_csv_reader.cpp.o.d"
  "/root/repo/tests/util/test_logging.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_logging.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_logging.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/ufc_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/ufc_tests.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ufc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
