# Empty dependencies file for bench_fig4_ufc_improvement.
# This may be replaced when dependencies are built.
