file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ufc_improvement.dir/bench_fig4_ufc_improvement.cpp.o"
  "CMakeFiles/bench_fig4_ufc_improvement.dir/bench_fig4_ufc_improvement.cpp.o.d"
  "bench_fig4_ufc_improvement"
  "bench_fig4_ufc_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ufc_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
