# Empty compiler generated dependencies file for bench_ablation_rightsizing.
# This may be replaced when dependencies are built.
