file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rightsizing.dir/bench_ablation_rightsizing.cpp.o"
  "CMakeFiles/bench_ablation_rightsizing.dir/bench_ablation_rightsizing.cpp.o.d"
  "bench_ablation_rightsizing"
  "bench_ablation_rightsizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rightsizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
