file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_extension.dir/bench_storage_extension.cpp.o"
  "CMakeFiles/bench_storage_extension.dir/bench_storage_extension.cpp.o.d"
  "bench_storage_extension"
  "bench_storage_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
