# Empty compiler generated dependencies file for bench_storage_extension.
# This may be replaced when dependencies are built.
