file(REMOVE_RECURSE
  "CMakeFiles/bench_async_participation.dir/bench_async_participation.cpp.o"
  "CMakeFiles/bench_async_participation.dir/bench_async_participation.cpp.o.d"
  "bench_async_participation"
  "bench_async_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
