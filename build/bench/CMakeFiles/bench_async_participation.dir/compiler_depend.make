# Empty compiler generated dependencies file for bench_async_participation.
# This may be replaced when dependencies are built.
