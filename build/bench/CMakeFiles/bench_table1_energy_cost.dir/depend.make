# Empty dependencies file for bench_table1_energy_cost.
# This may be replaced when dependencies are built.
