# Empty dependencies file for bench_fig9_price_sweep.
# This may be replaced when dependencies are built.
