file(REMOVE_RECURSE
  "CMakeFiles/bench_forecast_robustness.dir/bench_forecast_robustness.cpp.o"
  "CMakeFiles/bench_forecast_robustness.dir/bench_forecast_robustness.cpp.o.d"
  "bench_forecast_robustness"
  "bench_forecast_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forecast_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
