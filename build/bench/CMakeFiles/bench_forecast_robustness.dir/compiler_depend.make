# Empty compiler generated dependencies file for bench_forecast_robustness.
# This may be replaced when dependencies are built.
