# Empty compiler generated dependencies file for bench_fig10_tax_sweep.
# This may be replaced when dependencies are built.
