# Empty dependencies file for bench_batch_extension.
# This may be replaced when dependencies are built.
