file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_extension.dir/bench_batch_extension.cpp.o"
  "CMakeFiles/bench_batch_extension.dir/bench_batch_extension.cpp.o.d"
  "bench_batch_extension"
  "bench_batch_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
