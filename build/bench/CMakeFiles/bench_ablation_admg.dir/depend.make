# Empty dependencies file for bench_ablation_admg.
# This may be replaced when dependencies are built.
