file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_admg.dir/bench_ablation_admg.cpp.o"
  "CMakeFiles/bench_ablation_admg.dir/bench_ablation_admg.cpp.o.d"
  "bench_ablation_admg"
  "bench_ablation_admg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_admg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
