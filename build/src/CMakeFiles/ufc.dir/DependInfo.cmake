
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/admm/admg.cpp" "src/CMakeFiles/ufc.dir/admm/admg.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/admm/admg.cpp.o.d"
  "/root/repo/src/admm/async.cpp" "src/CMakeFiles/ufc.dir/admm/async.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/admm/async.cpp.o.d"
  "/root/repo/src/admm/blocks.cpp" "src/CMakeFiles/ufc.dir/admm/blocks.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/admm/blocks.cpp.o.d"
  "/root/repo/src/admm/centralized.cpp" "src/CMakeFiles/ufc.dir/admm/centralized.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/admm/centralized.cpp.o.d"
  "/root/repo/src/admm/rightsizing.cpp" "src/CMakeFiles/ufc.dir/admm/rightsizing.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/admm/rightsizing.cpp.o.d"
  "/root/repo/src/admm/strategy.cpp" "src/CMakeFiles/ufc.dir/admm/strategy.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/admm/strategy.cpp.o.d"
  "/root/repo/src/math/dykstra.cpp" "src/CMakeFiles/ufc.dir/math/dykstra.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/dykstra.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/CMakeFiles/ufc.dir/math/matrix.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/matrix.cpp.o.d"
  "/root/repo/src/math/projections.cpp" "src/CMakeFiles/ufc.dir/math/projections.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/projections.cpp.o.d"
  "/root/repo/src/math/vector.cpp" "src/CMakeFiles/ufc.dir/math/vector.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/math/vector.cpp.o.d"
  "/root/repo/src/model/battery.cpp" "src/CMakeFiles/ufc.dir/model/battery.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/battery.cpp.o.d"
  "/root/repo/src/model/breakdown.cpp" "src/CMakeFiles/ufc.dir/model/breakdown.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/breakdown.cpp.o.d"
  "/root/repo/src/model/emission.cpp" "src/CMakeFiles/ufc.dir/model/emission.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/emission.cpp.o.d"
  "/root/repo/src/model/metrics.cpp" "src/CMakeFiles/ufc.dir/model/metrics.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/metrics.cpp.o.d"
  "/root/repo/src/model/power.cpp" "src/CMakeFiles/ufc.dir/model/power.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/power.cpp.o.d"
  "/root/repo/src/model/problem.cpp" "src/CMakeFiles/ufc.dir/model/problem.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/problem.cpp.o.d"
  "/root/repo/src/model/queueing.cpp" "src/CMakeFiles/ufc.dir/model/queueing.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/queueing.cpp.o.d"
  "/root/repo/src/model/utility.cpp" "src/CMakeFiles/ufc.dir/model/utility.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/model/utility.cpp.o.d"
  "/root/repo/src/net/agents.cpp" "src/CMakeFiles/ufc.dir/net/agents.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/net/agents.cpp.o.d"
  "/root/repo/src/net/bus.cpp" "src/CMakeFiles/ufc.dir/net/bus.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/net/bus.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/CMakeFiles/ufc.dir/net/message.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/net/message.cpp.o.d"
  "/root/repo/src/net/runtime.cpp" "src/CMakeFiles/ufc.dir/net/runtime.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/net/runtime.cpp.o.d"
  "/root/repo/src/opt/fista.cpp" "src/CMakeFiles/ufc.dir/opt/fista.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/opt/fista.cpp.o.d"
  "/root/repo/src/opt/kkt.cpp" "src/CMakeFiles/ufc.dir/opt/kkt.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/opt/kkt.cpp.o.d"
  "/root/repo/src/opt/projected_gradient.cpp" "src/CMakeFiles/ufc.dir/opt/projected_gradient.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/opt/projected_gradient.cpp.o.d"
  "/root/repo/src/opt/rank_one_qp.cpp" "src/CMakeFiles/ufc.dir/opt/rank_one_qp.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/opt/rank_one_qp.cpp.o.d"
  "/root/repo/src/opt/scalar.cpp" "src/CMakeFiles/ufc.dir/opt/scalar.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/opt/scalar.cpp.o.d"
  "/root/repo/src/sim/batch.cpp" "src/CMakeFiles/ufc.dir/sim/batch.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/batch.cpp.o.d"
  "/root/repo/src/sim/forecast_study.cpp" "src/CMakeFiles/ufc.dir/sim/forecast_study.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/forecast_study.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/ufc.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/storage.cpp" "src/CMakeFiles/ufc.dir/sim/storage.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/storage.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/ufc.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/traces/forecast.cpp" "src/CMakeFiles/ufc.dir/traces/forecast.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/forecast.cpp.o.d"
  "/root/repo/src/traces/fuelmix.cpp" "src/CMakeFiles/ufc.dir/traces/fuelmix.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/fuelmix.cpp.o.d"
  "/root/repo/src/traces/geography.cpp" "src/CMakeFiles/ufc.dir/traces/geography.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/geography.cpp.o.d"
  "/root/repo/src/traces/price.cpp" "src/CMakeFiles/ufc.dir/traces/price.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/price.cpp.o.d"
  "/root/repo/src/traces/scenario.cpp" "src/CMakeFiles/ufc.dir/traces/scenario.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/scenario.cpp.o.d"
  "/root/repo/src/traces/scenario_io.cpp" "src/CMakeFiles/ufc.dir/traces/scenario_io.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/scenario_io.cpp.o.d"
  "/root/repo/src/traces/workload.cpp" "src/CMakeFiles/ufc.dir/traces/workload.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/traces/workload.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/ufc.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/util/config.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/ufc.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/ufc.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/ufc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ufc.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ufc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ufc.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
