// Sort-and-threshold simplex projections (Held/Wolfe/Crowder).
//
// This is the bit-pinned REFERENCE implementation: the pinned hexfloat
// baselines in tests/admm were captured against exactly this arithmetic, so
// these definitions must not change rounding behaviour. The hot path uses
// Condat's O(n) scan in projections.cpp when SimplexProjection::Condat is
// selected; this file is the only place in the projection/ADM-G hot path
// where std::sort is allowed (see the no-sort-in-hot-path lint rule, which
// exempts this file by name).
#include <algorithm>
#include <cmath>
#include <functional>

#include "math/projections.hpp"
#include "util/contract.hpp"

namespace ufc {

void project_simplex_into(std::span<const double> v, double total,
                          std::span<double> out,
                          std::vector<double>& sort_scratch) {
  UFC_EXPECTS(total >= 0.0);
  UFC_EXPECTS(!v.empty());
  UFC_EXPECTS(out.size() == v.size());
  // ufc-lint: allow(float-equal) — exact-zero guard: the degenerate
  // zero-mass simplex has the all-zeros point as its only member.
  if (total == 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  // Sort descending, find the threshold tau with
  //   tau = (prefix_sum(k) - total) / k
  // for the largest k such that sorted[k-1] > tau.
  sort_scratch.assign(v.begin(), v.end());
  std::sort(sort_scratch.begin(), sort_scratch.end(), std::greater<>());
  double prefix = 0.0;
  double tau = 0.0;
  std::size_t support = 0;
  for (std::size_t k = 0; k < sort_scratch.size(); ++k) {
    prefix += sort_scratch[k];
    const double candidate = (prefix - total) / static_cast<double>(k + 1);
    if (sort_scratch[k] - candidate > 0.0) {
      tau = candidate;
      support = k + 1;
    } else {
      break;
    }
  }
  UFC_ENSURES(support > 0);
  // tau depends only on the sorted copy, so out may alias v.
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = std::max(v[i] - tau, 0.0);
}

void project_capped_simplex_into(std::span<const double> v, double cap,
                                 std::span<double> out,
                                 std::vector<double>& sort_scratch) {
  UFC_EXPECTS(cap >= 0.0);
  UFC_EXPECTS(out.size() == v.size());
  // Same addition order as sum(project_nonnegative(v)), so the branch below
  // agrees bitwise with project_capped_simplex.
  double clipped_sum = 0.0;
  for (double x : v) clipped_sum += std::max(x, 0.0);
  if (clipped_sum <= cap) {
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::max(v[i], 0.0);
    return;
  }
  // Projection onto the intersection equals the simplex projection when the
  // inequality is active (standard KKT argument: the multiplier of the sum
  // constraint is positive, so the constraint binds).
  project_simplex_into(v, cap, out, sort_scratch);
}

}  // namespace ufc
