// Dykstra's alternating projection algorithm.
//
// Computes the Euclidean projection of a point onto the intersection of
// finitely many closed convex sets, each given by its individual projector.
// Unlike plain alternating projections, Dykstra's correction terms make the
// limit the true nearest point of the intersection.
//
// Used by the centralized reference solver to project routing matrices onto
// the transportation polytope
//   { lambda >= 0, row sums = A_i, column sums <= S_j },
// which has no closed-form projection.
#pragma once

#include <functional>
#include <vector>

#include "math/vector.hpp"

namespace ufc {

struct DykstraOptions {
  int max_sweeps = 500;     ///< Max passes over all sets.
  double tolerance = 1e-10; ///< Stop when the sweep changes x by less than this (inf-norm).
};

struct DykstraResult {
  Vec point;       ///< Approximate projection onto the intersection.
  int sweeps = 0;  ///< Sweeps performed.
  bool converged = false;
};

/// Projects `v` onto the intersection of the given convex sets.
/// Each projector must return the exact Euclidean projection onto its set.
/// Requires at least one projector; the intersection must be nonempty for
/// convergence (otherwise the iterates approach the "closest pair" cycle).
DykstraResult dykstra_project(
    const Vec& v, const std::vector<std::function<Vec(const Vec&)>>& projectors,
    const DykstraOptions& options = {});

}  // namespace ufc
