// Small dense vector type used throughout the solvers.
//
// Deliberately minimal: owning, contiguous, bounds-checked in debug via
// contracts, with the handful of BLAS-1 style operations the ADMM blocks
// need. Not a general linear-algebra library.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace ufc {

class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vec(std::initializer_list<double> init) : data_(init) {}
  explicit Vec(std::vector<double> data) : data_(std::move(data)) {}
  explicit Vec(std::span<const double> values)
      : data_(values.begin(), values.end()) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i);
  double operator[](std::size_t i) const;

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  std::span<const double> span() const { return data_; }
  std::span<double> span() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  /// Element-wise in-place operations (sizes must match).
  Vec& operator+=(const Vec& other);
  Vec& operator-=(const Vec& other);
  Vec& operator*=(double scalar);

  void fill(double value);
  void resize(std::size_t n, double fill = 0.0) { data_.resize(n, fill); }
  /// Overwrites with `values` (resizing if needed; no allocation when the
  /// size already matches — the workspace-reuse hot path).
  void assign(std::span<const double> values) {
    data_.assign(values.begin(), values.end());
  }

 private:
  std::vector<double> data_;
};

Vec operator+(Vec lhs, const Vec& rhs);
Vec operator-(Vec lhs, const Vec& rhs);
Vec operator*(double scalar, Vec v);

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& v);        ///< Euclidean norm.
double norm_inf(const Vec& v);     ///< Max absolute entry.
double sum(const Vec& v);

/// axpy: y += alpha * x.
void axpy(double alpha, const Vec& x, Vec& y);

/// Span axpy: y += alpha * x, for view-based hot paths (sizes must match).
void add_scaled_into(double alpha, std::span<const double> x,
                     std::span<double> y);

/// Maximum absolute difference between two equal-sized vectors.
double max_abs_diff(const Vec& a, const Vec& b);

}  // namespace ufc
