#include "math/projections.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

Vec project_box(Vec v, double lo, double hi) {
  UFC_EXPECTS(lo <= hi);
  for (auto& x : v) x = std::clamp(x, lo, hi);
  return v;
}

Vec project_simplex(const Vec& v, double total) {
  UFC_EXPECTS(total >= 0.0);
  Vec out(v.size());
  std::vector<double> scratch;
  project_simplex_into(v.span(), total, out.span(), scratch);
  return out;
}

Vec project_capped_simplex(const Vec& v, double cap) {
  UFC_EXPECTS(cap >= 0.0);
  Vec out(v.size());
  std::vector<double> scratch;
  project_capped_simplex_into(v.span(), cap, out.span(), scratch);
  return out;
}

// Condat, "Fast projection onto the simplex and the l1 ball" (Math. Prog.
// 158, 2016), Algorithm 2. One filtering scan maintains a candidate support
// (`active`) and the running threshold rho = (sum(active) - total)/|active|;
// elements that invalidate the candidate demote the whole active set to a
// waiting list, revisited once at the end, followed by a pruning sweep that
// removes elements at or below the final threshold. Exact projection, O(n)
// expected; tau is accumulated incrementally so it can differ from the
// sorted-prefix reference by a few ulps.
void project_simplex_condat_into(std::span<const double> v, double total,
                                 std::span<double> out,
                                 std::vector<double>& scratch) {
  UFC_EXPECTS(total >= 0.0);
  UFC_EXPECTS(!v.empty());
  UFC_EXPECTS(out.size() == v.size());
  // ufc-lint: allow(float-equal) — exact-zero guard: the degenerate
  // zero-mass simplex has the all-zeros point as its only member.
  if (total == 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  const std::size_t n = v.size();
  if (scratch.size() < n) scratch.resize(n);
  // scratch holds both lists: the active candidate support grows upward from
  // index 0, the demoted waiting list grows downward from index n. The two
  // never collide: each input element lives in at most one of them.
  double* active = scratch.data();
  std::size_t active_count = 1;
  std::size_t waiting_top = n;
  active[0] = v[0];
  double rho = v[0] - total;
  for (std::size_t i = 1; i < n; ++i) {
    const double y = v[i];
    if (y <= rho) continue;
    rho += (y - rho) / static_cast<double>(active_count + 1);
    if (rho > y - total) {
      active[active_count++] = y;
    } else {
      // The grown threshold excludes the old candidates; park them for the
      // cleanup pass and restart the candidate set from this element.
      for (std::size_t k = 0; k < active_count; ++k)
        scratch[--waiting_top] = active[k];
      active[0] = y;
      active_count = 1;
      rho = y - total;
    }
  }
  // Cleanup pass: demoted elements may still belong to the support. Reading
  // scratch[k] always happens before any write can reach index k (the active
  // list holds at most k elements when index k is processed).
  for (std::size_t k = waiting_top; k < n; ++k) {
    const double y = scratch[k];
    if (y > rho) {
      active[active_count++] = y;
      rho += (y - rho) / static_cast<double>(active_count);
    }
  }
  // Pruning sweeps: removing an element raises rho, which can disqualify
  // further elements; iterate until a sweep removes nothing.
  for (;;) {
    const std::size_t before = active_count;
    std::size_t kept = 0;
    for (std::size_t k = 0; k < before; ++k) {
      const double y = active[k];
      if (y > rho || active_count == 1) {
        // The single-survivor guard is unreachable in exact arithmetic
        // (rho = y - total < y when total > 0) but keeps the support
        // nonempty if total underflows against a huge entry.
        active[kept++] = y;
      } else {
        --active_count;
        rho += (rho - y) / static_cast<double>(active_count);
      }
    }
    if (kept == before) break;
  }
  UFC_ENSURES(active_count > 0);
  const double tau = rho;
  // tau depends only on scratch, so out may alias v.
  for (std::size_t i = 0; i < n; ++i) out[i] = std::max(v[i] - tau, 0.0);
}

void project_capped_simplex_condat_into(std::span<const double> v, double cap,
                                        std::span<double> out,
                                        std::vector<double>& scratch) {
  UFC_EXPECTS(cap >= 0.0);
  UFC_EXPECTS(out.size() == v.size());
  // Same addition order as the reference, so the inactive-cap branch (and
  // the branch decision itself) agrees bitwise with
  // project_capped_simplex_into.
  double clipped_sum = 0.0;
  for (double x : v) clipped_sum += std::max(x, 0.0);
  if (clipped_sum <= cap) {
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::max(v[i], 0.0);
    return;
  }
  project_simplex_condat_into(v, cap, out, scratch);
}

Vec project_affine_sum(Vec v, double total) {
  UFC_EXPECTS(!v.empty());
  const double shift = (total - sum(v)) / static_cast<double>(v.size());
  for (auto& x : v) x += shift;
  return v;
}

Vec project_halfspace(Vec v, const Vec& a, double b) {
  UFC_EXPECTS(v.size() == a.size());
  const double aa = dot(a, a);
  UFC_EXPECTS(aa > 0.0);
  const double violation = dot(a, v) - b;
  if (violation <= 0.0) return v;
  axpy(-violation / aa, a, v);
  return v;
}

// ufc-lint: allow(expects-guard) — total clamp, defined for any vector.
Vec project_nonnegative(Vec v) {
  for (auto& x : v) x = std::max(x, 0.0);
  return v;
}

}  // namespace ufc
