#include "math/projections.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

Vec project_box(Vec v, double lo, double hi) {
  UFC_EXPECTS(lo <= hi);
  for (auto& x : v) x = std::clamp(x, lo, hi);
  return v;
}

Vec project_simplex(const Vec& v, double total) {
  UFC_EXPECTS(total >= 0.0);
  UFC_EXPECTS(!v.empty());
  // ufc-lint: allow(float-equal) — exact-zero guard: the degenerate
  // zero-mass simplex has the all-zeros point as its only member.
  if (total == 0.0) return Vec(v.size(), 0.0);
  // Sort descending, find the threshold tau with
  //   tau = (prefix_sum(k) - total) / k
  // for the largest k such that sorted[k-1] > tau.
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double prefix = 0.0;
  double tau = 0.0;
  std::size_t support = 0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    prefix += sorted[k];
    const double candidate = (prefix - total) / static_cast<double>(k + 1);
    if (sorted[k] - candidate > 0.0) {
      tau = candidate;
      support = k + 1;
    } else {
      break;
    }
  }
  UFC_ENSURES(support > 0);
  Vec out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = std::max(v[i] - tau, 0.0);
  return out;
}

Vec project_capped_simplex(const Vec& v, double cap) {
  UFC_EXPECTS(cap >= 0.0);
  Vec clipped = project_nonnegative(v);
  if (sum(clipped) <= cap) return clipped;
  // Projection onto the intersection equals the simplex projection when the
  // inequality is active (standard KKT argument: the multiplier of the sum
  // constraint is positive, so the constraint binds).
  return project_simplex(v, cap);
}

Vec project_affine_sum(Vec v, double total) {
  UFC_EXPECTS(!v.empty());
  const double shift = (total - sum(v)) / static_cast<double>(v.size());
  for (auto& x : v) x += shift;
  return v;
}

Vec project_halfspace(Vec v, const Vec& a, double b) {
  UFC_EXPECTS(v.size() == a.size());
  const double aa = dot(a, a);
  UFC_EXPECTS(aa > 0.0);
  const double violation = dot(a, v) - b;
  if (violation <= 0.0) return v;
  axpy(-violation / aa, a, v);
  return v;
}

// ufc-lint: allow(expects-guard) — total clamp, defined for any vector.
Vec project_nonnegative(Vec v) {
  for (auto& x : v) x = std::max(x, 0.0);
  return v;
}

}  // namespace ufc
