#include "math/vector.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

double& Vec::operator[](std::size_t i) {
  UFC_EXPECTS(i < data_.size());
  return data_[i];
}

double Vec::operator[](std::size_t i) const {
  UFC_EXPECTS(i < data_.size());
  return data_[i];
}

Vec& Vec::operator+=(const Vec& other) {
  UFC_EXPECTS(size() == other.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& other) {
  UFC_EXPECTS(size() == other.size());
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vec& Vec::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

void Vec::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

Vec operator+(Vec lhs, const Vec& rhs) {
  lhs += rhs;
  return lhs;
}

Vec operator-(Vec lhs, const Vec& rhs) {
  lhs -= rhs;
  return lhs;
}

Vec operator*(double scalar, Vec v) {
  v *= scalar;
  return v;
}

double dot(const Vec& a, const Vec& b) {
  UFC_EXPECTS(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

// ufc-lint: allow(expects-guard) — total reduction via dot(), defined for
// any vector including the empty one.
double norm2(const Vec& v) { return std::sqrt(dot(v, v)); }

// ufc-lint: allow(expects-guard) — total reduction.
double norm_inf(const Vec& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

// ufc-lint: allow(expects-guard) — total reduction.
double sum(const Vec& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

void axpy(double alpha, const Vec& x, Vec& y) {
  UFC_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void add_scaled_into(double alpha, std::span<const double> x,
                     std::span<double> y) {
  UFC_EXPECTS(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double max_abs_diff(const Vec& a, const Vec& b) {
  UFC_EXPECTS(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace ufc
