// Euclidean projections onto the feasible sets of the UFC program.
//
//  - box            [lo, hi]^n                       (mu blocks)
//  - simplex        {x >= 0, sum x  = total}         (lambda rows, eq. (4))
//  - capped simplex {x >= 0, sum x <= cap}           (a columns, eq. (14))
//  - affine sum     {x : sum x = total}              (Dykstra component)
//  - halfspace      {x : <a, x> <= b}                (Dykstra component)
//
// The simplex projection is the classic O(n log n) sort-and-threshold
// algorithm (Held/Wolfe/Crowder): find tau such that sum max(v_i - tau, 0)
// = total.
#pragma once

#include <span>
#include <vector>

#include "math/vector.hpp"

namespace ufc {

/// Clamps each entry of v into [lo, hi]. Requires lo <= hi.
Vec project_box(Vec v, double lo, double hi);

/// Projects v onto {x >= 0, sum x = total}. Requires total >= 0.
Vec project_simplex(const Vec& v, double total);

/// Projects v onto {x >= 0, sum x <= cap}. Requires cap >= 0.
Vec project_capped_simplex(const Vec& v, double cap);

/// Allocation-free simplex projection writing into `out` (out may alias v).
/// `sort_scratch` is reused across calls and grows to v.size() once.
/// Bit-identical to project_simplex on the same inputs.
void project_simplex_into(std::span<const double> v, double total,
                          std::span<double> out,
                          std::vector<double>& sort_scratch);

/// Allocation-free capped-simplex projection (out may alias v); bit-identical
/// to project_capped_simplex on the same inputs.
void project_capped_simplex_into(std::span<const double> v, double cap,
                                 std::span<double> out,
                                 std::vector<double>& sort_scratch);

/// Projects v onto the affine set {x : sum x = total}.
Vec project_affine_sum(Vec v, double total);

/// Projects v onto the halfspace {x : dot(a, x) <= b}. Requires a != 0.
Vec project_halfspace(Vec v, const Vec& a, double b);

/// Returns max(0, x) element-wise (projection onto the nonnegative orthant).
Vec project_nonnegative(Vec v);

}  // namespace ufc
