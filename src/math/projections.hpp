// Euclidean projections onto the feasible sets of the UFC program.
//
//  - box            [lo, hi]^n                       (mu blocks)
//  - simplex        {x >= 0, sum x  = total}         (lambda rows, eq. (4))
//  - capped simplex {x >= 0, sum x <= cap}           (a columns, eq. (14))
//  - affine sum     {x : sum x = total}              (Dykstra component)
//  - halfspace      {x : <a, x> <= b}                (Dykstra component)
//
// Two simplex algorithms are provided. The classic O(n log n)
// sort-and-threshold method (Held/Wolfe/Crowder) lives in
// projections_reference.cpp and is the bit-pinned reference: find tau such
// that sum max(v_i - tau, 0) = total via a descending sort and prefix scan.
// Condat's O(n) method (L. Condat, "Fast projection onto the simplex and the
// l1 ball", Math. Prog. 158, 2016, Alg. 2) computes the same projection with
// a single filtering scan plus a pruning sweep; tau may differ from the
// reference by a few ulps because the threshold is accumulated incrementally
// instead of via a sorted prefix sum. Solvers pick one via SimplexProjection.
#pragma once

#include <span>
#include <vector>

#include "math/vector.hpp"

namespace ufc {

/// Which simplex-projection algorithm the block solvers use. Both compute
/// the exact Euclidean projection onto the same set; they differ in
/// complexity and in floating-point rounding of the threshold tau (a few
/// ulps), so only SortThreshold reproduces the pinned hexfloat baselines.
enum class SimplexProjection {
  SortThreshold,  ///< O(n log n) sorted-prefix reference (default).
  Condat,         ///< Condat's O(n) filtering scan.
};

/// Clamps each entry of v into [lo, hi]. Requires lo <= hi.
Vec project_box(Vec v, double lo, double hi);

/// Projects v onto {x >= 0, sum x = total}. Requires total >= 0.
Vec project_simplex(const Vec& v, double total);

/// Projects v onto {x >= 0, sum x <= cap}. Requires cap >= 0.
Vec project_capped_simplex(const Vec& v, double cap);

/// Allocation-free simplex projection writing into `out` (out may alias v).
/// `sort_scratch` is reused across calls and grows to v.size() once.
/// Bit-identical to project_simplex on the same inputs. Sort-based
/// reference implementation (projections_reference.cpp).
void project_simplex_into(std::span<const double> v, double total,
                          std::span<double> out,
                          std::vector<double>& sort_scratch);

/// Allocation-free capped-simplex projection (out may alias v); bit-identical
/// to project_capped_simplex on the same inputs. Sort-based reference
/// implementation (projections_reference.cpp).
void project_capped_simplex_into(std::span<const double> v, double cap,
                                 std::span<double> out,
                                 std::vector<double>& sort_scratch);

/// Condat O(n) simplex projection (out may alias v). Same support and the
/// same projection as project_simplex_into up to a few ulps of tau; not
/// bit-identical to the sort-based reference in general. `scratch` is
/// reused across calls and grows to v.size() once (no sorting happens in
/// it; the name parallels sort_scratch so BlockWorkspace can share one
/// buffer between the two algorithms).
void project_simplex_condat_into(std::span<const double> v, double total,
                                 std::span<double> out,
                                 std::vector<double>& scratch);

/// Condat O(n) capped-simplex projection (out may alias v). The inactive-cap
/// branch is bit-identical to the reference; the active-cap branch delegates
/// to project_simplex_condat_into.
void project_capped_simplex_condat_into(std::span<const double> v, double cap,
                                        std::span<double> out,
                                        std::vector<double>& scratch);

/// Projects v onto the affine set {x : sum x = total}.
Vec project_affine_sum(Vec v, double total);

/// Projects v onto the halfspace {x : dot(a, x) <= b}. Requires a != 0.
Vec project_halfspace(Vec v, const Vec& a, double b);

/// Returns max(0, x) element-wise (projection onto the nonnegative orthant).
Vec project_nonnegative(Vec v);

}  // namespace ufc
