#include "math/dykstra.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace ufc {

DykstraResult dykstra_project(
    const Vec& v, const std::vector<std::function<Vec(const Vec&)>>& projectors,
    const DykstraOptions& options) {
  UFC_EXPECTS(!projectors.empty());
  UFC_EXPECTS(options.max_sweeps > 0);

  Vec x = v;
  // One correction (increment) vector per set, all zero-initialized.
  std::vector<Vec> corrections(projectors.size(), Vec(v.size(), 0.0));

  DykstraResult result;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const Vec x_before = x;
    // Track correction movement too: early sweeps can leave x unchanged
    // while corrections are still building (e.g. when one set's projection
    // keeps undoing the other's), so x-change alone stops too early.
    double correction_change = 0.0;
    for (std::size_t s = 0; s < projectors.size(); ++s) {
      Vec y = x + corrections[s];
      Vec projected = projectors[s](y);
      Vec updated = y - projected;
      correction_change =
          std::max(correction_change, max_abs_diff(updated, corrections[s]));
      corrections[s] = std::move(updated);
      x = std::move(projected);
    }
    result.sweeps = sweep + 1;
    if (max_abs_diff(x, x_before) < options.tolerance &&
        correction_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.point = std::move(x);
  return result;
}

}  // namespace ufc
