// Dense row-major matrix, used for M x N routing variables (lambda, a),
// per-pair latencies L_ij and dual variables phi_ij.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/vector.hpp"

namespace ufc {

class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Row r as a copy.
  Vec row(std::size_t r) const;
  /// Column c as a copy.
  Vec col(std::size_t c) const;
  /// Row r as a view (rows are contiguous in the row-major layout); no copy.
  std::span<const double> row_span(std::size_t r) const;
  std::span<double> row_span(std::size_t r);
  /// Copies column c into `out` (resized to rows()); columns are strided, so
  /// a view is impossible — this is the allocation-free alternative to col().
  void col_into(std::size_t c, Vec& out) const;
  /// Overwrites row r.
  void set_row(std::size_t r, std::span<const double> values);
  /// Overwrites column c.
  void set_col(std::size_t c, std::span<const double> values);

  double row_sum(std::size_t r) const;
  double col_sum(std::size_t c) const;

  /// Writes the transpose into `out` (resized to cols() x rows()). Uses a
  /// cache-blocked kernel so both source rows and destination rows stay in
  /// cache: this is how the per-datacenter pass of the ADM-G engine obtains
  /// contiguous column views without striding row-major memory. `out` must
  /// not alias *this.
  void transpose_into(Mat& out) const;

  void fill(double value);

  Mat& operator+=(const Mat& other);
  Mat& operator-=(const Mat& other);
  Mat& operator*=(double scalar);

  const std::vector<double>& raw() const { return data_; }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Frobenius norm of the element-wise difference.
double max_abs_diff(const Mat& a, const Mat& b);
double frobenius_norm(const Mat& m);
double sum(const Mat& m);

}  // namespace ufc
