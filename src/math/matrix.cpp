#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Mat::operator()(std::size_t r, std::size_t c) {
  UFC_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Mat::operator()(std::size_t r, std::size_t c) const {
  UFC_EXPECTS(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Vec Mat::row(std::size_t r) const {
  UFC_EXPECTS(r < rows_);
  Vec out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = data_[r * cols_ + c];
  return out;
}

Vec Mat::col(std::size_t c) const {
  UFC_EXPECTS(c < cols_);
  Vec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

std::span<const double> Mat::row_span(std::size_t r) const {
  UFC_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Mat::row_span(std::size_t r) {
  UFC_EXPECTS(r < rows_);
  return {data_.data() + r * cols_, cols_};
}

void Mat::col_into(std::size_t c, Vec& out) const {
  UFC_EXPECTS(c < cols_);
  out.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
}

void Mat::set_row(std::size_t r, std::span<const double> values) {
  UFC_EXPECTS(r < rows_);
  UFC_EXPECTS(values.size() == cols_);
  for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] = values[c];
}

void Mat::set_col(std::size_t c, std::span<const double> values) {
  UFC_EXPECTS(c < cols_);
  UFC_EXPECTS(values.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = values[r];
}

double Mat::row_sum(std::size_t r) const {
  UFC_EXPECTS(r < rows_);
  double total = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) total += data_[r * cols_ + c];
  return total;
}

double Mat::col_sum(std::size_t c) const {
  UFC_EXPECTS(c < cols_);
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) total += data_[r * cols_ + c];
  return total;
}

void Mat::transpose_into(Mat& out) const {
  UFC_EXPECTS(&out != this);
  if (out.rows_ != cols_ || out.cols_ != rows_) out = Mat(cols_, rows_);
  // 32x32 tiles (8 KiB) keep one row stripe of the source and one column
  // stripe of the destination resident in L1 together, so every cache line
  // touched is fully consumed before eviction.
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows_; rb += kBlock) {
    const std::size_t rend = std::min(rows_, rb + kBlock);
    for (std::size_t cb = 0; cb < cols_; cb += kBlock) {
      const std::size_t cend = std::min(cols_, cb + kBlock);
      for (std::size_t r = rb; r < rend; ++r)
        for (std::size_t c = cb; c < cend; ++c)
          out.data_[c * rows_ + r] = data_[r * cols_ + c];
    }
  }
}

void Mat::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

Mat& Mat::operator+=(const Mat& other) {
  UFC_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Mat& Mat::operator-=(const Mat& other) {
  UFC_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Mat& Mat::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

double max_abs_diff(const Mat& a, const Mat& b) {
  UFC_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.raw().size(); ++i)
    m = std::max(m, std::abs(a.raw()[i] - b.raw()[i]));
  return m;
}

// ufc-lint: allow(expects-guard) — total reduction, defined for any matrix
// including the empty one.
double frobenius_norm(const Mat& m) {
  double total = 0.0;
  for (double x : m.raw()) total += x * x;
  return std::sqrt(total);
}

// ufc-lint: allow(expects-guard) — total reduction.
double sum(const Mat& m) {
  double total = 0.0;
  for (double x : m.raw()) total += x;
  return total;
}

}  // namespace ufc
