// Minimal JSON document model for the observability layer: run manifests,
// bench artifacts and metrics snapshots.
//
// Emission is deterministic — objects keep insertion order, numbers use
// shortest-round-trip formatting — so artifacts diff cleanly across runs.
// JSON has no literals for non-finite doubles; we pin the same encoding the
// CSV layer uses (util/csv.hpp) and emit them as the strings "nan", "inf"
// and "-inf". The parser accepts exactly what dump() produces plus ordinary
// interchange JSON; malformed input throws ufc::ContractViolation.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ufc::obs {

class JsonValue {
 public:
  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;  ///< null
  JsonValue(bool value) : type_(Type::Bool), bool_(value) {}
  JsonValue(int value) : type_(Type::Int), int_(value) {}
  JsonValue(std::int64_t value) : type_(Type::Int), int_(value) {}
  JsonValue(std::uint64_t value);  ///< Throws if it does not fit in int64.
  JsonValue(double value) : type_(Type::Double), double_(value) {}
  JsonValue(const char* value) : type_(Type::String), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::String), string_(std::move(value)) {}

  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_int() const { return type_ == Type::Int; }
  bool is_number() const { return type_ == Type::Int || type_ == Type::Double; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  // Typed accessors; the wrong type throws ufc::ContractViolation.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  ///< Accepts Int and Double.
  const std::string& as_string() const;

  // --- Arrays -------------------------------------------------------------
  /// Appends to an array (a null promotes to an empty array first).
  void push_back(JsonValue value);
  const std::vector<JsonValue>& items() const;
  /// Element access with bounds contract.
  const JsonValue& at(std::size_t index) const;

  // --- Objects ------------------------------------------------------------
  /// Sets a key (a null promotes to an empty object first). Replaces an
  /// existing key in place, otherwise appends — insertion order is kept.
  void set(const std::string& key, JsonValue value);
  /// Key lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Key access with presence contract.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  std::size_t size() const;  ///< Array or object element count.

  /// Serializes the document. indent > 0 pretty-prints with that many spaces
  /// per level; indent == 0 produces a single line.
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document (trailing garbage throws).
  static JsonValue parse(const std::string& text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Reads and parses a JSON file; a missing file throws std::runtime_error.
JsonValue read_json_file(const std::string& path);

/// Writes `value.dump()` plus a trailing newline to `path` (replacing it).
void write_json_file(const std::string& path, const JsonValue& value);

}  // namespace ufc::obs
