#include "obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/contract.hpp"

namespace ufc::obs {

namespace {

// Pinned non-finite encoding, shared with util/csv.cpp.
constexpr const char* kNan = "nan";
constexpr const char* kInf = "inf";
constexpr const char* kNegInf = "-inf";

std::string format_double(double value) {
  std::array<char, 32> buffer{};
  const auto result =
      std::to_chars(buffer.data(), buffer.data() + buffer.size(), value);
  UFC_ENSURES(result.ec == std::errc());
  return std::string(buffer.data(), result.ptr);
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buffer{};
          const auto code = static_cast<unsigned char>(c);
          std::snprintf(buffer.data(), buffer.size(), "\\u%04x",
                        static_cast<unsigned int>(code));
          out += buffer.data();
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    const JsonValue value = parse_value();
    skip_whitespace();
    UFC_EXPECTS(pos_ == text_.size());  // No trailing garbage.
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    UFC_EXPECTS(pos_ < text_.size());  // Unexpected end of JSON input.
    return text_[pos_];
  }

  void expect(char c) {
    UFC_EXPECTS(pos_ < text_.size() && text_[pos_] == c);
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t length = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, length, literal) != 0) return false;
    pos_ += length;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        UFC_EXPECTS(consume_literal("true"));
        return JsonValue(true);
      case 'f':
        UFC_EXPECTS(consume_literal("false"));
        return JsonValue(false);
      case 'n':
        UFC_EXPECTS(consume_literal("null"));
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue object = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(key, parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue array = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      UFC_EXPECTS(pos_ < text_.size());  // Unterminated string.
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      UFC_EXPECTS(pos_ < text_.size());
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += parse_unicode_escape(); break;
        default: UFC_EXPECTS(false);  // Invalid escape.
      }
    }
  }

  std::string parse_unicode_escape() {
    UFC_EXPECTS(pos_ + 4 <= text_.size());
    unsigned int code = 0;
    const auto result =
        std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
    UFC_EXPECTS(result.ec == std::errc() &&
                result.ptr == text_.data() + pos_ + 4);
    pos_ += 4;
    // BMP-only decoding (we never emit escapes above U+001F ourselves);
    // surrogate pairs are rejected rather than silently mangled.
    UFC_EXPECTS(code < 0xD800 || code > 0xDFFF);
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    UFC_EXPECTS(pos_ > start);  // Not a number.
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t value = 0;
      const auto result = std::from_chars(first, last, value);
      if (result.ec == std::errc() && result.ptr == last)
        return JsonValue(value);
    }
    double value = 0.0;
    const auto result = std::from_chars(first, last, value);
    UFC_EXPECTS(result.ec == std::errc() && result.ptr == last);
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue::JsonValue(std::uint64_t value) : type_(Type::Int) {
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  UFC_EXPECTS(value <= static_cast<std::uint64_t>(kMax));
  int_ = static_cast<std::int64_t>(value);
}

JsonValue JsonValue::array() {
  JsonValue value;
  value.type_ = Type::Array;
  return value;
}

JsonValue JsonValue::object() {
  JsonValue value;
  value.type_ = Type::Object;
  return value;
}

bool JsonValue::as_bool() const {
  UFC_EXPECTS(type_ == Type::Bool);
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  UFC_EXPECTS(type_ == Type::Int);
  return int_;
}

double JsonValue::as_double() const {
  UFC_EXPECTS(is_number());
  return type_ == Type::Int ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  UFC_EXPECTS(type_ == Type::String);
  return string_;
}

void JsonValue::push_back(JsonValue value) {
  if (type_ == Type::Null) type_ = Type::Array;
  UFC_EXPECTS(type_ == Type::Array);
  array_.push_back(std::move(value));
}

const std::vector<JsonValue>& JsonValue::items() const {
  UFC_EXPECTS(type_ == Type::Array);
  return array_;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  UFC_EXPECTS(type_ == Type::Array && index < array_.size());
  return array_[index];
}

void JsonValue::set(const std::string& key, JsonValue value) {
  if (type_ == Type::Null) type_ = Type::Object;
  UFC_EXPECTS(type_ == Type::Object);
  for (auto& [existing_key, existing_value] : object_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [existing_key, existing_value] : object_)
    if (existing_key == key) return &existing_value;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  UFC_EXPECTS(value != nullptr);
  return *value;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  UFC_EXPECTS(type_ == Type::Object);
  return object_;
}

std::size_t JsonValue::size() const {
  UFC_EXPECTS(type_ == Type::Array || type_ == Type::Object);
  return type_ == Type::Array ? array_.size() : object_.size();
}

namespace {

void dump_value(const JsonValue& value, std::string& out, int indent,
                int depth) {
  const auto newline_indent = [&](int level) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(level),
        ' ');
  };
  switch (value.type()) {
    case JsonValue::Type::Null: out += "null"; break;
    case JsonValue::Type::Bool:
      out += value.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::Int: out += std::to_string(value.as_int()); break;
    case JsonValue::Type::Double: {
      const double x = value.as_double();
      if (std::isnan(x)) {
        append_escaped(out, kNan);
      } else if (std::isinf(x)) {
        append_escaped(out, x > 0.0 ? kInf : kNegInf);
      } else {
        out += format_double(x);
      }
      break;
    }
    case JsonValue::Type::String: append_escaped(out, value.as_string()); break;
    case JsonValue::Type::Array: {
      if (value.size() == 0) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : value.items()) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        dump_value(item, out, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back(']');
      break;
    }
    case JsonValue::Type::Object: {
      if (value.size() == 0) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.members()) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        append_escaped(out, key);
        out += indent > 0 ? ": " : ":";
        dump_value(member, out, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_json_file: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return JsonValue::parse(text.str());
}

void write_json_file(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json_file: cannot open " + path);
  out << value.dump() << "\n";
}

}  // namespace ufc::obs
