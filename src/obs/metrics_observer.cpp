#include "obs/metrics_observer.hpp"

#include <utility>

#include "admm/solve_core.hpp"
#include "admm/watchdog.hpp"

namespace ufc::obs {

MetricsObserver::MetricsObserver(MetricsRegistry& registry, std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {}

void MetricsObserver::on_iteration(const admm::IterationSample& sample) {
  registry_.counter(prefix_ + ".iterations").add();
  registry_.histogram(prefix_ + ".iteration_seconds", default_time_boundaries())
      .observe(sample.wall_seconds);
  if (sample.has_phases) {
    const admm::PhaseProfile& phases = sample.phases;
    const auto& boundaries = default_time_boundaries();
    registry_.histogram(prefix_ + ".phase.lambda_pass_seconds", boundaries)
        .observe(phases.lambda_pass_seconds);
    registry_.histogram(prefix_ + ".phase.prediction_seconds", boundaries)
        .observe(phases.prediction_seconds);
    registry_.histogram(prefix_ + ".phase.correction_seconds", boundaries)
        .observe(phases.correction_seconds);
    registry_.histogram(prefix_ + ".phase.gate_seconds", boundaries)
        .observe(phases.gate_seconds);
  }
}

void MetricsObserver::on_solve_end(const admm::SolveCore& core) {
  registry_.counter(prefix_ + ".solves").add();
  if (core.converged) registry_.counter(prefix_ + ".converged_solves").add();
  if (core.fallback_centralized)
    registry_.counter(prefix_ + ".fallback_solves").add();
  if (core.watchdog_verdict != admm::WatchdogVerdict::Healthy)
    registry_.counter(prefix_ + ".watchdog_trips").add();
  registry_.gauge(prefix_ + ".last.iterations")
      .set(static_cast<double>(core.iterations));
  registry_.gauge(prefix_ + ".last.balance_residual")
      .set(core.balance_residual);
  registry_.gauge(prefix_ + ".last.copy_residual").set(core.copy_residual);
  registry_.gauge(prefix_ + ".last.objective").set(core.breakdown.ufc);
}

void record_link_stats(MetricsRegistry& registry, const net::LinkStats& stats,
                       const std::string& prefix) {
  registry.counter(prefix + ".messages").add(stats.messages);
  registry.counter(prefix + ".bytes").add(stats.bytes);
  registry.counter(prefix + ".retransmissions").add(stats.retransmissions);
  registry.counter(prefix + ".delivery_failures").add(stats.delivery_failures);
  registry.counter(prefix + ".corrupted").add(stats.corrupted);
  registry.counter(prefix + ".delayed").add(stats.delayed);
  registry.counter(prefix + ".backoff_rounds").add(stats.backoff_rounds);
}

void record_counter_table(MetricsRegistry& registry,
                          const std::map<std::string, std::uint64_t>& counters,
                          const std::string& prefix) {
  for (const auto& [name, value] : counters)
    registry.counter(prefix + "." + name).add(value);
}

void record_gauge_table(MetricsRegistry& registry,
                        const std::map<std::string, double>& gauges,
                        const std::string& prefix) {
  for (const auto& [name, value] : gauges)
    registry.gauge(prefix + "." + name).set(value);
}

}  // namespace ufc::obs
