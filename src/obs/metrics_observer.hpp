// Bridges the engine's IterationObserver seam into a MetricsRegistry.
//
// MetricsObserver is pure telemetry: it reads samples and report cores and
// writes instruments — it can never influence the iterate, so solves with it
// attached stay bit-identical (pinned by tests/admm/test_engine.cpp).
//
// src/obs is lint-banned from including solver-driver headers; everything
// here depends only on the telemetry seam (admm/telemetry.hpp), the shared
// result types (admm/solve_core.hpp) and the traffic counters
// (net/link_stats.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "admm/telemetry.hpp"
#include "net/link_stats.hpp"
#include "obs/metrics.hpp"

namespace ufc::obs {

/// Records every iteration and solve into a registry under `prefix`:
///
///   counters    <prefix>.iterations, <prefix>.solves,
///               <prefix>.converged_solves, <prefix>.fallback_solves,
///               <prefix>.watchdog_trips
///   gauges      <prefix>.last.iterations, <prefix>.last.balance_residual,
///               <prefix>.last.copy_residual, <prefix>.last.objective
///   histograms  <prefix>.iteration_seconds and, when phase profiling is on
///               (AdmgOptions::profile_phases), <prefix>.phase.{lambda_pass,
///               prediction,correction,gate}_seconds — all on
///               default_time_boundaries(), so same-name registries merge.
class MetricsObserver : public admm::IterationObserver {
 public:
  /// `registry` is non-owning and must outlive the observer.
  explicit MetricsObserver(MetricsRegistry& registry,
                           std::string prefix = "solver");

  void on_iteration(const admm::IterationSample& sample) override;
  void on_solve_end(const admm::SolveCore& core) override;

  const std::string& prefix() const { return prefix_; }

 private:
  MetricsRegistry& registry_;
  std::string prefix_;
};

/// Records bus traffic counters under `prefix`: <prefix>.messages, .bytes,
/// .retransmissions, .delivery_failures, .corrupted, .delayed,
/// .backoff_rounds.
void record_link_stats(MetricsRegistry& registry, const net::LinkStats& stats,
                       const std::string& prefix = "net");

/// Records a plain name->value counter table under `prefix`. The socket
/// supervisor ships per-worker measurement tables as plain maps (the net
/// layer cannot depend on obs); merging them here in worker-index order
/// keeps multi-process metrics deterministic.
void record_counter_table(MetricsRegistry& registry,
                          const std::map<std::string, std::uint64_t>& counters,
                          const std::string& prefix);

/// Gauge-table sibling of record_counter_table (last writer wins, so merge
/// order is the caller's contract — workers merge in index order).
void record_gauge_table(MetricsRegistry& registry,
                        const std::map<std::string, double>& gauges,
                        const std::string& prefix);

}  // namespace ufc::obs
