// Machine-readable run artifacts:
//
//   RunManifest            one JSON document per run ("ufc-run-v1"): what was
//                          configured, what the solver did, what it cost.
//                          Written by the CLI (--metrics) and examples.
//   update_bench_artifact  the bench harness's BENCH_ufc.json ("ufc-bench-v1"):
//                          a named-entry list that benches update in place, so
//                          successive bench runs accumulate one machine-
//                          readable results file.
//
// Both schemas are validated by scripts/check_bench_json.py (registered in
// ctest and run by CI's bench-smoke job).
#pragma once

#include <string>

#include "admm/solve_core.hpp"
#include "net/link_stats.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ufc::obs {

inline constexpr const char* kRunManifestSchema = "ufc-run-v1";
inline constexpr const char* kBenchArtifactSchema = "ufc-bench-v1";

/// Builder for the per-run manifest. Sections are ordered by insertion, so a
/// manifest diffs cleanly against the previous run's.
class RunManifest {
 public:
  RunManifest();  ///< Starts with {"schema": "ufc-run-v1"}.

  /// Sets a top-level section (replacing it if already present).
  void set(const std::string& key, JsonValue value);
  /// Shorthand for set("metrics", registry.to_json()).
  void set_metrics(const MetricsRegistry& registry);

  const JsonValue& json() const { return document_; }
  std::string dump() const { return document_.dump(); }
  void write(const std::string& path) const;

  /// Parses a manifest back; a wrong or missing schema marker throws
  /// ufc::ContractViolation.
  static RunManifest read(const std::string& path);

 private:
  JsonValue document_;
};

/// The solver result core as a JSON section: iterations, convergence,
/// residuals, watchdog verdict and the UFC breakdown. The trace is
/// summarized by its length, not embedded (traces go to CSV).
JsonValue solve_core_json(const admm::SolveCore& core);

/// Bus traffic counters as a JSON section.
JsonValue link_stats_json(const net::LinkStats& stats);

/// Loads `path` (creating the document if missing or empty), replaces or
/// appends the entry named `name` in its "benchmarks" array, and writes the
/// file back. Entries are {"name": ..., "metrics": {...}}; an existing file
/// with the wrong schema throws ufc::ContractViolation rather than being
/// clobbered.
void update_bench_artifact(const std::string& path, const std::string& name,
                           JsonValue metrics);

}  // namespace ufc::obs
