#include "obs/manifest.hpp"

#include <fstream>
#include <utility>

#include "admm/watchdog.hpp"
#include "util/contract.hpp"

namespace ufc::obs {

namespace {

const char* verdict_name(admm::WatchdogVerdict verdict) {
  switch (verdict) {
    case admm::WatchdogVerdict::Healthy: return "healthy";
    case admm::WatchdogVerdict::NonFinite: return "non_finite";
    case admm::WatchdogVerdict::Stalled: return "stalled";
  }
  UFC_ENSURES(false);  // Unreachable: all enumerators handled.
}

}  // namespace

RunManifest::RunManifest() : document_(JsonValue::object()) {
  document_.set("schema", JsonValue(kRunManifestSchema));
}

void RunManifest::set(const std::string& key, JsonValue value) {
  document_.set(key, std::move(value));
}

void RunManifest::set_metrics(const MetricsRegistry& registry) {
  document_.set("metrics", registry.to_json());
}

void RunManifest::write(const std::string& path) const {
  write_json_file(path, document_);
}

RunManifest RunManifest::read(const std::string& path) {
  JsonValue document = read_json_file(path);
  const JsonValue* schema = document.find("schema");
  UFC_EXPECTS(schema != nullptr && schema->is_string() &&
              schema->as_string() == kRunManifestSchema);
  RunManifest manifest;
  manifest.document_ = std::move(document);
  return manifest;
}

JsonValue solve_core_json(const admm::SolveCore& core) {
  JsonValue out = JsonValue::object();
  out.set("iterations", JsonValue(core.iterations));
  out.set("converged", JsonValue(core.converged));
  out.set("status", JsonValue(admm::to_string(core.status)));
  out.set("balance_residual", JsonValue(core.balance_residual));
  out.set("copy_residual", JsonValue(core.copy_residual));
  out.set("watchdog_verdict", JsonValue(verdict_name(core.watchdog_verdict)));
  out.set("fallback_centralized", JsonValue(core.fallback_centralized));
  out.set("trace_length",
          JsonValue(static_cast<std::int64_t>(core.trace.objective.size())));
  JsonValue breakdown = JsonValue::object();
  breakdown.set("ufc", JsonValue(core.breakdown.ufc));
  breakdown.set("utility", JsonValue(core.breakdown.utility));
  breakdown.set("energy_cost", JsonValue(core.breakdown.energy_cost));
  breakdown.set("carbon_cost", JsonValue(core.breakdown.carbon_cost));
  breakdown.set("carbon_tons", JsonValue(core.breakdown.carbon_tons));
  breakdown.set("avg_latency_ms", JsonValue(core.breakdown.avg_latency_ms));
  breakdown.set("fuel_cell_mwh", JsonValue(core.breakdown.fuel_cell_mwh));
  breakdown.set("grid_mwh", JsonValue(core.breakdown.grid_mwh));
  breakdown.set("utilization", JsonValue(core.breakdown.utilization));
  out.set("breakdown", std::move(breakdown));
  return out;
}

JsonValue link_stats_json(const net::LinkStats& stats) {
  JsonValue out = JsonValue::object();
  out.set("messages", JsonValue(stats.messages));
  out.set("bytes", JsonValue(stats.bytes));
  out.set("retransmissions", JsonValue(stats.retransmissions));
  out.set("delivery_failures", JsonValue(stats.delivery_failures));
  out.set("corrupted", JsonValue(stats.corrupted));
  out.set("delayed", JsonValue(stats.delayed));
  out.set("backoff_rounds", JsonValue(stats.backoff_rounds));
  return out;
}

void update_bench_artifact(const std::string& path, const std::string& name,
                           JsonValue metrics) {
  JsonValue document;
  {
    std::ifstream probe(path);
    if (probe) {
      std::string text{std::istreambuf_iterator<char>(probe),
                       std::istreambuf_iterator<char>()};
      if (!text.empty()) document = JsonValue::parse(text);
    }
  }
  if (document.is_null()) {
    document = JsonValue::object();
    document.set("schema", JsonValue(kBenchArtifactSchema));
    document.set("benchmarks", JsonValue::array());
  }
  const JsonValue* schema = document.find("schema");
  UFC_EXPECTS(schema != nullptr && schema->is_string() &&
              schema->as_string() == kBenchArtifactSchema);

  JsonValue entry = JsonValue::object();
  entry.set("name", JsonValue(name));
  entry.set("metrics", std::move(metrics));

  JsonValue updated = JsonValue::array();
  bool replaced = false;
  const JsonValue* existing = document.find("benchmarks");
  UFC_EXPECTS(existing != nullptr && existing->is_array());
  for (const JsonValue& item : existing->items()) {
    if (item.is_object() && item.find("name") != nullptr &&
        item.at("name").is_string() && item.at("name").as_string() == name) {
      updated.push_back(entry);
      replaced = true;
    } else {
      updated.push_back(item);
    }
  }
  if (!replaced) updated.push_back(std::move(entry));
  document.set("benchmarks", std::move(updated));
  write_json_file(path, document);
}

}  // namespace ufc::obs
