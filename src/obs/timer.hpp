// Monotonic wall-clock helpers for the observability layer.
//
// All phase and iteration timing in this repo goes through these two types so
// every duration is measured on the same monotonic clock (std::chrono::
// steady_clock — never the wall clock, which NTP can step backwards).
#pragma once

#include <chrono>

namespace ufc::obs {

/// A started stopwatch on the monotonic clock.
class MonotonicTimer {
 public:
  MonotonicTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII phase timer: adds the scope's elapsed seconds to an accumulator on
/// destruction. Accumulating (rather than overwriting) lets one accumulator
/// total a phase that runs many times per iteration.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { accumulator_ += timer_.elapsed_seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& accumulator_;
  MonotonicTimer timer_;
};

}  // namespace ufc::obs
