// Monotonic wall-clock helpers for the observability layer.
//
// The implementations live in util/clock.hpp — the repo's single sanctioned
// clock seam — so that every duration in the tree is measured on the same
// monotonic clock (std::chrono::steady_clock, never the wall clock, which
// NTP can step backwards). This header keeps the obs-layer names stable.
#pragma once

#include "util/clock.hpp"

namespace ufc::obs {

using MonotonicTimer = util::MonotonicTimer;
using ScopedTimer = util::ScopedTimer;

}  // namespace ufc::obs
