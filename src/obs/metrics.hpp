// The metrics registry: named counters, gauges and fixed-boundary histograms.
//
// Design constraints, in order:
//  1. Deterministic aggregation. sim::sweep solves points on a thread pool;
//     each worker records into its own registry and the results are merged
//     serially in slot order, so the aggregate is bit-identical run to run.
//     Every instrument is therefore mergeable: counters add, histograms add
//     bucket-wise, gauges keep the merged-in value (last writer wins).
//  2. Deterministic emission. Instruments live in a std::map keyed by name,
//     so snapshots serialize in sorted order regardless of creation order.
//  3. No global state. A registry is an ordinary value owned by whoever is
//     aggregating (a bench, the CLI, a sweep slot) — tests never fight over
//     a singleton.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace ufc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value of some level (a residual, a config knob, a size).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }
  /// Last writer wins: merging adopts `other`'s value. Merge order is the
  /// caller's contract (sweep merges in slot order).
  void merge(const Gauge& other) { value_ = other.value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-boundary histogram: boundaries [b0 < b1 < ... < bk] define buckets
/// (-inf, b0], (b0, b1], ..., (bk, +inf). Boundaries are fixed at creation so
/// two histograms of the same name are always bucket-compatible and merge by
/// bucket-wise addition.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);

  void observe(double value);
  void merge(const Histogram& other);  ///< Boundaries must match exactly.

  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;  ///< boundaries_.size() + 1 buckets.
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. Names are dotted paths
  /// ("solver.iterations"); re-requesting a name returns the same instrument,
  /// and requesting it as a different kind throws ufc::ContractViolation.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// For an existing histogram the boundaries must match its creation
  /// boundaries (contract-checked), keeping merges well-defined.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& boundaries);

  /// Lookup without creation; nullptr when absent or a different kind.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Merges every instrument of `other` into this registry (creating missing
  /// ones). Same-name instruments must be the same kind with compatible
  /// boundaries. Deterministic given a deterministic merge order.
  void merge(const MetricsRegistry& other);

  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Snapshot as an ordered JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// with instruments sorted by name. Empty sections are omitted.
  JsonValue to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The standard latency-style boundaries used by the solver phase timers,
/// in seconds: 1us .. 10s in decade steps {1e-6, 1e-5, ..., 10}.
const std::vector<double>& default_time_boundaries();

/// 1-2-5 boundaries for per-solve iteration counts {1, 2, 5, ..., 2000},
/// used by the controller's per-tick iteration histograms: every driver
/// bucketing iteration counts shares one boundary set, so the histograms
/// merge across tenants and runs.
const std::vector<double>& default_iteration_boundaries();

}  // namespace ufc::obs
