#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc::obs {

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      counts_(boundaries_.size() + 1, 0) {
  UFC_EXPECTS(!boundaries_.empty());
  UFC_EXPECTS(std::is_sorted(boundaries_.begin(), boundaries_.end()));
  UFC_EXPECTS(std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
              boundaries_.end());  // Strictly increasing.
  for (const double b : boundaries_) UFC_EXPECTS(std::isfinite(b));
}

void Histogram::observe(double value) {
  UFC_EXPECTS(std::isfinite(value));
  const auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())] += 1;
  count_ += 1;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  UFC_EXPECTS(boundaries_ == other.boundaries_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  UFC_EXPECTS(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  UFC_EXPECTS(counters_.count(name) == 0 && histograms_.count(name) == 0);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& boundaries) {
  UFC_EXPECTS(counters_.count(name) == 0 && gauges_.count(name) == 0);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    UFC_EXPECTS(it->second.boundaries() == boundaries);
    return it->second;
  }
  return histograms_.emplace(name, Histogram(boundaries)).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, other_counter] : other.counters_)
    counter(name).merge(other_counter);
  for (const auto& [name, other_gauge] : other.gauges_)
    gauge(name).merge(other_gauge);
  for (const auto& [name, other_histogram] : other.histograms_)
    histogram(name, other_histogram.boundaries()).merge(other_histogram);
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue out = JsonValue::object();
  if (!counters_.empty()) {
    JsonValue section = JsonValue::object();
    for (const auto& [name, instrument] : counters_)
      section.set(name, JsonValue(instrument.value()));
    out.set("counters", std::move(section));
  }
  if (!gauges_.empty()) {
    JsonValue section = JsonValue::object();
    for (const auto& [name, instrument] : gauges_)
      section.set(name, JsonValue(instrument.value()));
    out.set("gauges", std::move(section));
  }
  if (!histograms_.empty()) {
    JsonValue section = JsonValue::object();
    for (const auto& [name, instrument] : histograms_) {
      JsonValue h = JsonValue::object();
      JsonValue boundaries = JsonValue::array();
      for (const double b : instrument.boundaries())
        boundaries.push_back(JsonValue(b));
      JsonValue counts = JsonValue::array();
      for (const std::uint64_t c : instrument.bucket_counts())
        counts.push_back(JsonValue(c));
      h.set("boundaries", std::move(boundaries));
      h.set("bucket_counts", std::move(counts));
      h.set("count", JsonValue(instrument.count()));
      h.set("sum", JsonValue(instrument.sum()));
      section.set(name, std::move(h));
    }
    out.set("histograms", std::move(section));
  }
  return out;
}

const std::vector<double>& default_time_boundaries() {
  static const std::vector<double> boundaries = {1e-6, 1e-5, 1e-4, 1e-3,
                                                 1e-2, 1e-1, 1.0,  10.0};
  return boundaries;
}

const std::vector<double>& default_iteration_boundaries() {
  static const std::vector<double> boundaries = {1.0,   2.0,   5.0,    10.0,
                                                 20.0,  50.0,  100.0,  200.0,
                                                 500.0, 1000.0, 2000.0};
  return boundaries;
}

}  // namespace ufc::obs
