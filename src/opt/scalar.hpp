// One-dimensional convex minimization.
//
// The nu-minimization step (19) of the paper is a scalar convex problem
//   min_{nu >= 0} V(C*nu) + c1*nu + (rho/2)(c0 - nu)^2 .
// For affine V it has a closed form; for general convex V we locate the root
// of the (monotone nondecreasing) derivative by bisection, handling
// subdifferential jumps of piecewise V (e.g. stepped carbon taxes) by
// converging onto the kink.
#pragma once

#include <functional>

namespace ufc {

struct ScalarMinimizeOptions {
  int max_iterations = 200;
  double tolerance = 1e-12;  ///< Interval width at which to stop.
};

/// Minimizes a convex function on [lo, hi], given any selection `derivative`
/// from its subdifferential (must be monotone nondecreasing in x).
/// Returns the minimizer.
double minimize_convex_scalar(const std::function<double(double)>& derivative,
                              double lo, double hi,
                              const ScalarMinimizeOptions& options = {});

/// Golden-section search for a unimodal function on [lo, hi] when no
/// derivative is available. Returns the approximate minimizer.
double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi,
                               const ScalarMinimizeOptions& options = {});

/// Bisection root of a monotone nondecreasing function on [lo, hi].
/// If g(lo) >= 0 returns lo; if g(hi) <= 0 returns hi.
double monotone_root(const std::function<double(double)>& g, double lo,
                     double hi, const ScalarMinimizeOptions& options = {});

}  // namespace ufc
