#include "opt/rank_one_qp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contract.hpp"

namespace ufc {

namespace {

void check(const RankOneQp& qp) {
  UFC_EXPECTS(qp.curvature >= 0.0);
  UFC_EXPECTS(qp.tikhonov > 0.0);
  UFC_EXPECTS(!qp.direction.empty());
  UFC_EXPECTS(qp.linear.size() == qp.direction.size());
  for (double v : qp.direction) UFC_EXPECTS(v >= 0.0);
}

/// x_i(theta, s) = max(0, (theta - g_i - c s v_i) / rho).
Vec primal_point(const RankOneQp& qp, double theta, double s) {
  const std::size_t n = qp.direction.size();
  Vec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::max(
        0.0, (theta - qp.linear[i] - qp.curvature * s * qp.direction[i]) /
                 qp.tikhonov);
  return x;
}

/// Exact theta with sum x(theta, s) = total (sort-and-threshold).
double solve_theta(const RankOneQp& qp, double s, double total) {
  const std::size_t n = qp.direction.size();
  std::vector<double> thresholds(n);
  for (std::size_t i = 0; i < n; ++i)
    thresholds[i] = qp.linear[i] + qp.curvature * s * qp.direction[i];
  std::sort(thresholds.begin(), thresholds.end());

  // With the k smallest thresholds active:
  //   theta = (rho * total + sum_{i<k} t_i) / k,
  // valid iff t_{k-1} < theta and (k == n or theta <= t_k).
  double prefix = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    prefix += thresholds[k - 1];
    const double theta =
        (qp.tikhonov * total + prefix) / static_cast<double>(k);
    const bool above_last = theta > thresholds[k - 1];
    const bool below_next = (k == n) || (theta <= thresholds[k]);
    if (above_last && below_next) return theta;
  }
  // total == 0 degenerates to theta = min threshold (empty active set).
  return thresholds.front();
}

/// Outer consistency gap F(s) = v . x(theta(s), s) - s for the simplex case
/// (theta re-solved per s) or the free case (theta = 0).
double consistency_gap(const RankOneQp& qp, double s, bool fixed_sum,
                       double total) {
  const double theta = fixed_sum ? solve_theta(qp, s, total) : 0.0;
  const Vec x = primal_point(qp, theta, s);
  return dot(qp.direction, x) - s;
}

/// Bisection on the strictly decreasing gap over [0, s_hi].
double solve_coupling(const RankOneQp& qp, double s_hi, bool fixed_sum,
                      double total) {
  if (s_hi <= 0.0) return 0.0;
  double lo = 0.0;
  double hi = s_hi;
  if (consistency_gap(qp, lo, fixed_sum, total) <= 0.0) return lo;
  for (int k = 0; k < 200 && (hi - lo) > 1e-15 * (1.0 + s_hi); ++k) {
    const double mid = 0.5 * (lo + hi);
    if (consistency_gap(qp, mid, fixed_sum, total) > 0.0)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

Vec solve_rank_one_qp_simplex(const RankOneQp& qp, double total) {
  check(qp);
  UFC_EXPECTS(total >= 0.0);
  const std::size_t n = qp.direction.size();
  // ufc-lint: allow(float-equal) — exact-zero guard: zero budget pins x = 0.
  if (total == 0.0) return Vec(n, 0.0);

  double s = 0.0;
  if (qp.curvature > 0.0) {
    double v_max = 0.0;
    for (double v : qp.direction) v_max = std::max(v_max, v);
    s = solve_coupling(qp, total * v_max, /*fixed_sum=*/true, total);
  }
  return primal_point(qp, solve_theta(qp, s, total), s);
}

Vec solve_rank_one_qp_capped(const RankOneQp& qp, double cap) {
  check(qp);
  UFC_EXPECTS(cap >= 0.0);
  const std::size_t n = qp.direction.size();
  // ufc-lint: allow(float-equal) — exact-zero guard: zero cap pins x = 0.
  if (cap == 0.0) return Vec(n, 0.0);

  // First try the sum constraint inactive (theta = 0).
  double s = 0.0;
  if (qp.curvature > 0.0) {
    // x is entrywise decreasing in s, so s = v . x(s=0) brackets the root.
    const double s_hi = dot(qp.direction, primal_point(qp, 0.0, 0.0));
    s = solve_coupling(qp, s_hi, /*fixed_sum=*/false, 0.0);
  }
  Vec x = primal_point(qp, 0.0, s);
  if (sum(x) <= cap) return x;
  // The cap binds: identical to the simplex problem at total = cap.
  return solve_rank_one_qp_simplex(qp, cap);
}

double rank_one_qp_value(const RankOneQp& qp, const Vec& x) {
  UFC_EXPECTS(x.size() == qp.direction.size());
  const double coupling = dot(qp.direction, x);
  return 0.5 * qp.curvature * coupling * coupling +
         0.5 * qp.tikhonov * dot(x, x) + dot(qp.linear, x);
}

}  // namespace ufc
