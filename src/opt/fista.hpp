// FISTA: accelerated projected gradient for smooth convex minimization over
// a simple convex set
//
//     min f(x)   s.t.  x in C,
//
// where f has an L-Lipschitz gradient and C admits an exact Euclidean
// projection. This is the "standard convex optimization technique" we use
// for the per-front-end sub-problem (17) and the per-datacenter sub-problem
// (20) of the paper — both are QPs with identity-plus-rank-one Hessians, so
// L is known exactly and FISTA converges at the optimal O(1/k^2) rate.
//
// We include the O'Donoghue-Candes adaptive restart (restart the momentum
// whenever the gradient forms an acute angle with the last step), which in
// practice gives linear convergence on strongly convex QPs.
#pragma once

#include <functional>

#include "math/vector.hpp"

namespace ufc {

struct FistaOptions {
  int max_iterations = 2000;
  /// Stop when the projected-gradient step moves x by less than this (inf-norm).
  double tolerance = 1e-10;
  /// Enable adaptive restart of the momentum sequence.
  bool adaptive_restart = true;
};

struct FistaResult {
  Vec x;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes f over C starting from x0.
///
/// `gradient(x)` must return the gradient of f at x; `project(x)` must return
/// the exact Euclidean projection of x onto C; `lipschitz` must be a valid
/// (upper bound on the) Lipschitz constant of the gradient, > 0.
FistaResult fista_minimize(const Vec& x0,
                           const std::function<Vec(const Vec&)>& gradient,
                           const std::function<Vec(const Vec&)>& project,
                           double lipschitz, const FistaOptions& options = {});

}  // namespace ufc
