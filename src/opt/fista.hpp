// FISTA: accelerated projected gradient for smooth convex minimization over
// a simple convex set
//
//     min f(x)   s.t.  x in C,
//
// where f has an L-Lipschitz gradient and C admits an exact Euclidean
// projection. This is the "standard convex optimization technique" we use
// for the per-front-end sub-problem (17) and the per-datacenter sub-problem
// (20) of the paper — both are QPs with identity-plus-rank-one Hessians, so
// L is known exactly and FISTA converges at the optimal O(1/k^2) rate.
//
// We include the O'Donoghue-Candes adaptive restart (restart the momentum
// whenever the gradient forms an acute angle with the last step), which in
// practice gives linear convergence on strongly convex QPs.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <span>

#include "math/vector.hpp"
#include "util/contract.hpp"

namespace ufc {

struct FistaOptions {
  int max_iterations = 2000;
  /// Stop when the projected-gradient step moves x by less than this (inf-norm).
  double tolerance = 1e-10;
  /// Enable adaptive restart of the momentum sequence.
  bool adaptive_restart = true;
};

struct FistaResult {
  Vec x;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes f over C starting from x0.
///
/// `gradient(x)` must return the gradient of f at x; `project(x)` must return
/// the exact Euclidean projection of x onto C; `lipschitz` must be a valid
/// (upper bound on the) Lipschitz constant of the gradient, > 0.
FistaResult fista_minimize(const Vec& x0,
                           const std::function<Vec(const Vec&)>& gradient,
                           const std::function<Vec(const Vec&)>& project,
                           double lipschitz, const FistaOptions& options = {});

// ---------------------------------------------------------------------------
// Allocation-free variant for the ADM-G hot path.
//
// fista_minimize allocates ~6 vectors per iteration (gradient result,
// candidate, projection output, iterate difference, plus the projection's
// internals); at the solver's scale (tens of thousands of inner iterations
// per ADM-G step) those mallocs dominate the sub-problem cost. The _ws
// variant runs the *identical* iteration — same operations in the same
// order, bit-identical iterates — against caller-owned workspace, and takes
// its callbacks as template parameters so no std::function is constructed.

/// Reusable FISTA buffers; resize() is a no-op after the first call at a
/// given dimension.
struct FistaWorkspace {
  Vec x, y, grad, candidate, diff;
  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    grad.resize(n);
    candidate.resize(n);
    diff.resize(n);
  }
};

struct FistaStatus {
  int iterations = 0;
  bool converged = false;
};

/// Workspace FISTA: `gradient_into(y, g)` writes the gradient of f at y into
/// g (both pre-sized); `project_in_place(x)` projects x onto C in place. The
/// minimizer is left in ws.x. Bit-identical to fista_minimize given
/// callbacks that compute the same gradient/projection.
template <typename GradientInto, typename ProjectInPlace>
FistaStatus fista_minimize_ws(std::span<const double> x0,
                              GradientInto&& gradient_into,
                              ProjectInPlace&& project_in_place,
                              double lipschitz, const FistaOptions& options,
                              FistaWorkspace& ws) {
  UFC_EXPECTS(lipschitz > 0.0);
  UFC_EXPECTS(options.max_iterations > 0);

  const double step = 1.0 / lipschitz;
  const std::size_t n = x0.size();
  ws.resize(n);
  std::copy(x0.begin(), x0.end(), ws.x.begin());
  project_in_place(ws.x);
  ws.y = ws.x;
  double t = 1.0;

  FistaStatus status;
  for (int k = 0; k < options.max_iterations; ++k) {
    gradient_into(ws.y, ws.grad);
    ws.candidate = ws.y;
    axpy(-step, ws.grad, ws.candidate);
    project_in_place(ws.candidate);  // candidate now holds x_next

    const double move = max_abs_diff(ws.candidate, ws.x);

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    for (std::size_t i = 0; i < n; ++i) ws.diff[i] = ws.candidate[i] - ws.x[i];

    bool restart = false;
    if (options.adaptive_restart) {
      // Gradient-based restart: if the (projected) gradient direction
      // opposes the momentum step, kill the momentum.
      restart = dot(ws.grad, ws.diff) > 0.0;
    }

    if (restart) {
      t = 1.0;
      ws.y = ws.candidate;
    } else {
      const double momentum = (t - 1.0) / t_next;
      ws.y = ws.candidate;
      axpy(momentum, ws.diff, ws.y);
      t = t_next;
    }

    std::swap(ws.x, ws.candidate);  // x <- x_next without copying
    status.iterations = k + 1;
    if (move < options.tolerance) {
      status.converged = true;
      break;
    }
  }
  return status;
}

}  // namespace ufc
