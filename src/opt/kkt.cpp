#include "opt/kkt.hpp"

#include "util/contract.hpp"

namespace ufc {

FirstOrderCheck check_first_order_optimality(
    const Vec& x, const std::function<Vec(const Vec&)>& subgradient,
    const std::function<Vec(const Vec&)>& project, double step,
    double tolerance, double scale) {
  UFC_EXPECTS(step > 0.0);
  UFC_EXPECTS(tolerance > 0.0);
  UFC_EXPECTS(scale > 0.0);

  Vec moved = x;
  axpy(-step, subgradient(x), moved);
  const Vec projected = project(moved);

  FirstOrderCheck check;
  check.residual = max_abs_diff(projected, x) / scale;
  check.passed = check.residual <= tolerance;
  return check;
}

}  // namespace ufc
