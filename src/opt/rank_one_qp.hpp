// Exact solver for identity-plus-rank-one quadratic programs over simplex
// sets — the structure of both routing blocks of the UFC ADMM:
//
//     min  (c/2) (v . x)^2 + (rho/2) ||x||^2 + g . x
//     s.t. x >= 0  and  sum x = total   (simplex)
//       or x >= 0  and  sum x <= cap    (capped simplex)
//
// with c >= 0, rho > 0 and v >= 0 entrywise (v is a latency row or the ones
// vector). KKT gives x_i = max(0, (theta - g_i - c s v_i) / rho) with two
// scalars: the sum multiplier theta and the coupling s = v . x. For fixed s,
// sum x is strictly increasing in theta (inner bisection); the consistency
// gap  F(s) = v . x(s) - s  is strictly decreasing in s (outer bisection),
// so a nested bisection finds the global optimum to machine precision —
// no step sizes, no iteration limits to tune.
//
// Used as the "exact" inner method of the ADMM blocks (ablated against
// FISTA) and as an independent oracle in the block tests.
#pragma once

#include "math/vector.hpp"

namespace ufc {

struct RankOneQp {
  double curvature = 0.0;  ///< c >= 0.
  Vec direction;           ///< v, entrywise >= 0.
  double tikhonov = 1.0;   ///< rho > 0.
  Vec linear;              ///< g, same size as direction.
};

/// Exact minimizer over {x >= 0, sum x = total}. Requires total >= 0.
Vec solve_rank_one_qp_simplex(const RankOneQp& qp, double total);

/// Exact minimizer over {x >= 0, sum x <= cap}. Requires cap >= 0.
Vec solve_rank_one_qp_capped(const RankOneQp& qp, double cap);

/// Objective value at x (for tests and verification).
double rank_one_qp_value(const RankOneQp& qp, const Vec& x);

}  // namespace ufc
