#include "opt/fista.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace ufc {

FistaResult fista_minimize(const Vec& x0,
                           const std::function<Vec(const Vec&)>& gradient,
                           const std::function<Vec(const Vec&)>& project,
                           double lipschitz, const FistaOptions& options) {
  UFC_EXPECTS(lipschitz > 0.0);
  UFC_EXPECTS(options.max_iterations > 0);

  const double step = 1.0 / lipschitz;
  Vec x = project(x0);
  Vec y = x;
  double t = 1.0;

  FistaResult result;
  for (int k = 0; k < options.max_iterations; ++k) {
    Vec grad = gradient(y);
    Vec candidate = y;
    axpy(-step, grad, candidate);
    Vec x_next = project(candidate);

    const double move = max_abs_diff(x_next, x);

    const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
    Vec diff = x_next - x;

    bool restart = false;
    if (options.adaptive_restart) {
      // Gradient-based restart: if the (projected) gradient direction
      // opposes the momentum step, kill the momentum.
      restart = dot(grad, diff) > 0.0;
    }

    if (restart) {
      t = 1.0;
      y = x_next;
    } else {
      const double momentum = (t - 1.0) / t_next;
      y = x_next;
      axpy(momentum, diff, y);
      t = t_next;
    }

    x = std::move(x_next);
    result.iterations = k + 1;
    if (move < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.x = std::move(x);
  return result;
}

}  // namespace ufc
