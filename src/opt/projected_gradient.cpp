#include "opt/projected_gradient.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace ufc {

PgResult projected_gradient(const Vec& x0,
                            const std::function<Vec(const Vec&)>& gradient,
                            const std::function<Vec(const Vec&)>& project,
                            double lipschitz, const PgOptions& options) {
  UFC_EXPECTS(lipschitz > 0.0);
  const double step = 1.0 / lipschitz;

  Vec x = project(x0);
  PgResult result;
  for (int k = 0; k < options.max_iterations; ++k) {
    Vec candidate = x;
    axpy(-step, gradient(x), candidate);
    Vec x_next = project(candidate);
    const double move = max_abs_diff(x_next, x);
    x = std::move(x_next);
    result.iterations = k + 1;
    if (move < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.x = std::move(x);
  return result;
}

SubgradientResult projected_subgradient(
    const Vec& x0, const std::function<Vec(const Vec&)>& subgradient,
    const std::function<double(const Vec&)>& value,
    const std::function<Vec(const Vec&)>& project,
    const SubgradientOptions& options) {
  UFC_EXPECTS(options.step0 > 0.0);
  UFC_EXPECTS(options.eval_stride > 0);

  Vec x = project(x0);
  SubgradientResult result;
  result.best_x = x;
  result.best_value = value(x);

  for (int k = 0; k < options.max_iterations; ++k) {
    Vec g = subgradient(x);
    const double gnorm = norm2(g);
    // ufc-lint: allow(float-equal) — exact-zero guard: a truly zero
    // subgradient is the only unconditionally safe early exit.
    if (gnorm == 0.0) {  // Stationary: x is optimal for convex objectives.
      result.best_x = x;
      result.best_value = value(x);
      result.iterations = k + 1;
      return result;
    }
    const double step =
        options.step0 / (std::sqrt(static_cast<double>(k) + 1.0) * gnorm);
    Vec candidate = x;
    axpy(-step, g, candidate);
    x = project(candidate);
    result.iterations = k + 1;

    if ((k + 1) % options.eval_stride == 0) {
      const double v = value(x);
      if (v < result.best_value) {
        result.best_value = v;
        result.best_x = x;
      }
    }
  }
  const double v = value(x);
  if (v < result.best_value) {
    result.best_value = v;
    result.best_x = x;
  }
  return result;
}

}  // namespace ufc
