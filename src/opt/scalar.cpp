#include "opt/scalar.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace ufc {

double monotone_root(const std::function<double(double)>& g, double lo,
                     double hi, const ScalarMinimizeOptions& options) {
  UFC_EXPECTS(lo <= hi);
  if (g(lo) >= 0.0) return lo;
  if (g(hi) <= 0.0) return hi;
  double a = lo;
  double b = hi;
  for (int k = 0; k < options.max_iterations && (b - a) > options.tolerance;
       ++k) {
    const double mid = 0.5 * (a + b);
    if (g(mid) >= 0.0)
      b = mid;
    else
      a = mid;
  }
  return 0.5 * (a + b);
}

double minimize_convex_scalar(const std::function<double(double)>& derivative,
                              double lo, double hi,
                              const ScalarMinimizeOptions& options) {
  UFC_EXPECTS(lo <= hi);
  UFC_EXPECTS(options.max_iterations > 0);
  // For convex f, f' is nondecreasing; the minimizer over [lo, hi] is the
  // projection of the root of f' onto the interval.
  return monotone_root(derivative, lo, hi, options);
}

double golden_section_minimize(const std::function<double(double)>& f,
                               double lo, double hi,
                               const ScalarMinimizeOptions& options) {
  UFC_EXPECTS(lo <= hi);
  constexpr double inv_phi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int k = 0; k < options.max_iterations && (b - a) > options.tolerance;
       ++k) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace ufc
