// Plain projected (sub)gradient descent.
//
// Two entry points:
//  - projected_gradient: fixed step 1/L for smooth objectives; the baseline
//    the FISTA ablation compares against.
//  - projected_subgradient: diminishing-step subgradient method for convex
//    nonsmooth objectives (used by the centralized reference solver, whose
//    reduced objective is piecewise smooth because the inner fuel-cell
//    dispatch is a pointwise minimum). Tracks the best iterate seen.
#pragma once

#include <functional>

#include "math/vector.hpp"

namespace ufc {

struct PgOptions {
  int max_iterations = 5000;
  double tolerance = 1e-10;  ///< Stop when a step moves x by less (inf-norm).
};

struct PgResult {
  Vec x;
  int iterations = 0;
  bool converged = false;
};

/// Fixed-step projected gradient (step = 1/lipschitz).
PgResult projected_gradient(const Vec& x0,
                            const std::function<Vec(const Vec&)>& gradient,
                            const std::function<Vec(const Vec&)>& project,
                            double lipschitz, const PgOptions& options = {});

struct SubgradientOptions {
  int max_iterations = 20000;
  /// Step at iteration k is step0 / sqrt(k + 1).
  double step0 = 1.0;
  /// Evaluate the objective every `eval_stride` iterations to track the best
  /// iterate (subgradient methods are not descent methods).
  int eval_stride = 10;
};

struct SubgradientResult {
  Vec best_x;
  double best_value = 0.0;
  int iterations = 0;
};

/// Diminishing-step projected subgradient; returns the best iterate found.
/// `value` must evaluate the objective (used only for best-tracking).
SubgradientResult projected_subgradient(
    const Vec& x0, const std::function<Vec(const Vec&)>& subgradient,
    const std::function<double(const Vec&)>& value,
    const std::function<Vec(const Vec&)>& project,
    const SubgradientOptions& options = {});

}  // namespace ufc
