#include "opt/newton.hpp"

#include <cmath>
#include <cstddef>

#include "util/contract.hpp"

namespace ufc {

NewtonResult projected_newton(
    const Vec& x0, const std::function<double(const Vec&)>& value,
    const std::function<Vec(const Vec&)>& gradient,
    const std::function<Vec(const Vec&, const Vec&)>& hessian_vec,
    const std::function<Vec(const Vec&)>& project,
    const NewtonOptions& options) {
  UFC_EXPECTS(!x0.empty());
  UFC_EXPECTS(value != nullptr && gradient != nullptr &&
              hessian_vec != nullptr && project != nullptr);
  UFC_EXPECTS(options.max_iterations > 0);
  UFC_EXPECTS(options.tolerance > 0.0);
  UFC_EXPECTS(options.fixed_point_step > 0.0);
  UFC_EXPECTS(options.cg_max_iterations > 0);
  UFC_EXPECTS(options.cg_tolerance > 0.0 && options.cg_tolerance < 1.0);
  UFC_EXPECTS(options.damping >= 0.0);
  UFC_EXPECTS(options.max_backtracks > 0);
  UFC_EXPECTS(options.armijo > 0.0 && options.armijo < 0.5);

  NewtonResult result;
  result.x = project(x0);
  result.value = value(result.x);
  const std::size_t n = result.x.size();

  for (int k = 0; k < options.max_iterations; ++k) {
    const Vec g = gradient(result.x);

    // Fixed-point convergence test (shared characterization, see header).
    Vec moved = result.x;
    axpy(-options.fixed_point_step, g, moved);
    const Vec fixed_point = project(moved);
    result.residual = max_abs_diff(fixed_point, result.x);
    if (result.residual <= options.tolerance) {
      result.converged = true;
      break;
    }
    ++result.iterations;

    // Truncated CG on (H + damping I) d = -g. d accumulates the Newton
    // direction; r tracks (H + damping I) d + g.
    Vec d(n, 0.0);
    Vec r = g;
    Vec p = r;
    p *= -1.0;
    const double g_norm = norm2(g);
    double r_dot = dot(r, r);
    bool have_direction = false;
    for (int cg = 0; cg < options.cg_max_iterations; ++cg) {
      Vec hp = hessian_vec(result.x, p);
      axpy(options.damping, p, hp);
      ++result.cg_iterations;
      const double curvature = dot(p, hp);
      if (!(curvature > 1e-16 * dot(p, p))) {
        // Non-positive (or non-finite) curvature along p: keep whatever
        // direction CG built so far; with none, fall back to steepest
        // descent below.
        break;
      }
      const double alpha = r_dot / curvature;
      axpy(alpha, p, d);
      axpy(alpha, hp, r);
      have_direction = true;
      const double r_dot_next = dot(r, r);
      if (std::sqrt(r_dot_next) <= options.cg_tolerance * g_norm) break;
      const double beta = r_dot_next / r_dot;
      r_dot = r_dot_next;
      for (std::size_t i = 0; i < n; ++i) p[i] = -r[i] + beta * p[i];
    }
    if (!have_direction) {
      d = g;
      d *= -options.fixed_point_step;
    }

    // Projected Armijo backtracking along d. The sufficient-decrease test
    // measures the actually-taken (projected) displacement, so projection
    // shrinkage cannot fake progress.
    double t = 1.0;
    bool stepped = false;
    for (int b = 0; b < options.max_backtracks; ++b) {
      Vec trial = result.x;
      axpy(t, d, trial);
      const Vec candidate = project(trial);
      const double decrease = dot(g, candidate - result.x);
      const double candidate_value = value(candidate);
      if (std::isfinite(candidate_value) && decrease < 0.0 &&
          candidate_value <= result.value + options.armijo * decrease) {
        result.x = candidate;
        result.value = candidate_value;
        stepped = true;
        break;
      }
      t *= 0.5;
    }
    if (!stepped) {
      // The curvature model failed this iterate (typically a kink of a
      // piecewise-smooth objective): take the plain projected-gradient step
      // if it descends at all, otherwise report the stall.
      const double fallback_value = value(fixed_point);
      if (!(std::isfinite(fallback_value) && fallback_value < result.value))
        break;
      result.x = fixed_point;
      result.value = fallback_value;
    }
  }
  return result;
}

}  // namespace ufc
