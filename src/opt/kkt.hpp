// Generic first-order optimality verification for constrained convex
// problems of the form  min F(x) s.t. x in C.
//
// x* is optimal iff it is a fixed point of the projected-(sub)gradient map:
//     x* = Proj_C( x* - t * g ),   g in dF(x*),  for any t > 0.
// This is the KKT system in fixed-point form and needs only the projector
// and a subgradient — no explicit multipliers — so one checker covers every
// sub-problem and the full UFC program. Tests use it as the optimality
// oracle for ADM-G solutions and for each per-block minimizer.
#pragma once

#include <functional>

#include "math/vector.hpp"

namespace ufc {

struct FirstOrderCheck {
  /// max-norm of x - Proj(x - t g), normalized by `scale`.
  double residual = 0.0;
  bool passed = false;
};

/// Checks the fixed-point condition at `x` with step `t` and tolerance
/// `tolerance` on the residual normalized by `scale` (pass the natural
/// magnitude of x, e.g. the total workload).
FirstOrderCheck check_first_order_optimality(
    const Vec& x, const std::function<Vec(const Vec&)>& subgradient,
    const std::function<Vec(const Vec&)>& project, double step = 1e-6,
    double tolerance = 1e-6, double scale = 1.0);

}  // namespace ufc
