// Projected truncated-Newton method for smooth convex minimization over a
// convex set with a projection oracle.
//
// The solver never forms a Hessian: each outer iteration runs (truncated)
// conjugate gradients on damped Hessian-vector products to approximate the
// Newton direction, then takes a projected Armijo backtracking step. CG is
// truncated on a relative-residual test (the classic inexact-Newton
// forcing term) and bails to the steepest-descent direction if the very
// first product exposes non-positive curvature, so piecewise-smooth
// objectives with locally flat pieces (the reduced UFC objective — see
// admm/centralized.cpp — is one) degrade to projected gradient instead of
// diverging.
//
// Convergence is declared on the projected fixed-point residual
//   || x - Proj(x - step * grad(x)) ||_inf  <=  tolerance,
// the same characterization kkt.hpp and the centralized optimality checker
// use, so "converged" means the same thing across backends.
#pragma once

#include <functional>

#include "math/vector.hpp"

namespace ufc {

struct NewtonOptions {
  int max_iterations = 60;  ///< Outer Newton iterations.
  /// Fixed-point residual threshold (inf-norm, caller's units).
  double tolerance = 1e-6;
  /// Step inside the fixed-point residual map (also the fallback projected-
  /// gradient step when curvature fails).
  double fixed_point_step = 1e-3;
  int cg_max_iterations = 64;  ///< Inner CG cap per outer iteration.
  /// Inexact-Newton forcing term: CG stops at ||r|| <= cg_tolerance * ||g||.
  double cg_tolerance = 0.1;
  /// Levenberg-style damping added to every Hessian-vector product; keeps
  /// CG positive definite on flat pieces of piecewise-smooth objectives.
  double damping = 1e-8;
  int max_backtracks = 30;     ///< Armijo halvings before giving up on a step.
  double armijo = 1e-4;        ///< Sufficient-decrease fraction.
};

struct NewtonResult {
  Vec x;
  double value = 0.0;      ///< Objective at x.
  double residual = 0.0;   ///< Final fixed-point residual (inf-norm).
  int iterations = 0;      ///< Outer iterations taken.
  int cg_iterations = 0;   ///< Total inner CG iterations (the Hv count).
  bool converged = false;
};

/// Minimizes `value` over the set represented by `project`, starting from
/// `x0` (projected first). `gradient` must be the exact gradient where the
/// objective is differentiable; `hessian_vec(x, v)` must return an
/// approximation of H(x) v (finite-difference curvature is fine — CG only
/// needs the products to be symmetric-ish and bounded).
NewtonResult projected_newton(
    const Vec& x0, const std::function<double(const Vec&)>& value,
    const std::function<Vec(const Vec&)>& gradient,
    const std::function<Vec(const Vec&, const Vec&)>& hessian_vec,
    const std::function<Vec(const Vec&)>& project,
    const NewtonOptions& options = {});

}  // namespace ufc
