// CSV output for benchmark series (one file per figure/table).
//
// Values are written with full round-trip precision; strings containing
// commas, quotes or newlines are quoted per RFC 4180. Non-finite values use
// the pinned spellings "nan" / "inf" / "-inf", which parse_csv accepts (and
// it accepts only these), so every file a CsvWriter emits — including a
// diverged solver trace — reads back through read_csv on every platform.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ufc {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one data row; must have exactly as many cells as the header.
  void row(const std::vector<double>& cells);

  /// Appends one mixed row of preformatted cells.
  void row_strings(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  std::size_t rows_written() const { return rows_; }

  const std::string& path() const { return path_; }

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Escapes a single CSV cell per RFC 4180 (quote if it contains , " or \n).
std::string csv_escape(const std::string& cell);

/// Formats a double with shortest round-trip representation. Non-finite
/// values become "nan" / "inf" / "-inf" (NaN sign and payload are not
/// preserved), the only non-finite spellings parse_csv accepts.
std::string csv_number(double value);

/// A parsed CSV file: one header row plus numeric data rows.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;

  std::size_t num_rows() const { return rows.size(); }
  std::size_t num_columns() const { return header.size(); }
  /// Index of the named column; throws ContractViolation if absent.
  std::size_t column(const std::string& name) const;
  /// One column as a vector.
  std::vector<double> column_values(const std::string& name) const;
};

/// Parses CSV text: quoted cells per RFC 4180, numeric data cells, equal
/// row lengths. Throws ContractViolation on malformed input. Data cells are
/// finite numbers or the pinned non-finite spellings "nan"/"inf"/"-inf";
/// any other non-finite spelling is rejected even where the platform's
/// number parser would accept it.
CsvTable parse_csv(const std::string& text);

/// Reads and parses a CSV file. Throws std::runtime_error if unreadable.
CsvTable read_csv(const std::string& path);

}  // namespace ufc
