#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  UFC_EXPECTS(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  UFC_EXPECTS(count_ > 1);
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  UFC_EXPECTS(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  UFC_EXPECTS(count_ > 0);
  return max_;
}

double mean(std::span<const double> xs) {
  UFC_EXPECTS(!xs.empty());
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  UFC_EXPECTS(xs.size() > 1);
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double sum(std::span<const double> xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  return total;
}

double min_value(std::span<const double> xs) {
  UFC_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  UFC_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

namespace {

// A NaN sample breaks std::sort's strict weak ordering: the sort silently
// produces a scrambled (not merely unsorted) array and every quantile read
// from it is garbage. Order statistics therefore reject non-finite samples
// outright, matching the engine's finite-iterate guard.
bool all_samples_finite(std::span<const double> xs) {
  for (double x : xs)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

double percentile(std::span<const double> xs, double p) {
  UFC_EXPECTS(!xs.empty());
  UFC_EXPECTS(all_samples_finite(xs));
  UFC_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs) {
  UFC_EXPECTS(!xs.empty());
  UFC_EXPECTS(all_samples_finite(xs));
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i],
                   static_cast<double>(i + 1) / static_cast<double>(sorted.size())});
  }
  return cdf;
}

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  return std::abs(a - b) <= abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

}  // namespace ufc
