// Minimal leveled logger for library diagnostics.
//
// The library is quiet by default (level = Warn). Benchmarks and examples
// raise the level to Info/Debug. Output goes to stderr so CSV/table output
// on stdout stays machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace ufc::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_level(Level level);
Level level();

/// Emits one line (`[level] message`) to stderr if `lvl` passes the threshold.
void write(Level lvl, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
  if (level() <= Level::Debug) write(Level::Debug, detail::concat(args...));
}
template <typename... Args>
void info(Args&&... args) {
  if (level() <= Level::Info) write(Level::Info, detail::concat(args...));
}
template <typename... Args>
void warn(Args&&... args) {
  if (level() <= Level::Warn) write(Level::Warn, detail::concat(args...));
}
template <typename... Args>
void error(Args&&... args) {
  if (level() <= Level::Error) write(Level::Error, detail::concat(args...));
}

}  // namespace ufc::log
