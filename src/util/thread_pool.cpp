#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "util/contract.hpp"

namespace ufc::util {

std::size_t resolve_thread_count(int threads) {
  if (threads > 0) return static_cast<std::size_t>(threads);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t resolved =
      threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : threads;
  workers_.reserve(resolved - 1);
  for (std::size_t t = 0; t + 1 < resolved; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  UFC_EXPECTS(begin <= end);
  const std::size_t range = end - begin;
  if (range == 0) return;

  const std::size_t chunks = std::min(thread_count(), range);
  if (chunks <= 1) {  // serial degradation: no queue, no synchronization
    body(begin, end, 0);
    return;
  }

  // Deterministic contiguous partition: chunk c covers
  // [begin + c*range/chunks, begin + (c+1)*range/chunks).
  struct Shared {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending;
    std::vector<std::exception_ptr> errors;
  } shared;
  shared.pending = chunks - 1;
  shared.errors.assign(chunks, nullptr);

  auto chunk_bounds = [&](std::size_t c) {
    return std::pair<std::size_t, std::size_t>{
        begin + c * range / chunks, begin + (c + 1) * range / chunks};
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 1; c < chunks; ++c) {
      queue_.emplace_back([&shared, &body, &chunk_bounds, c] {
        try {
          const auto [b, e] = chunk_bounds(c);
          body(b, e, c);
        } catch (...) {
          std::lock_guard<std::mutex> g(shared.mutex);
          shared.errors[c] = std::current_exception();
        }
        std::lock_guard<std::mutex> g(shared.mutex);
        if (--shared.pending == 0) shared.done.notify_one();
      });
    }
  }
  wake_.notify_all();

  // The calling thread takes chunk 0 instead of idling.
  try {
    const auto [b, e] = chunk_bounds(0);
    body(b, e, 0);
  } catch (...) {
    shared.errors[0] = std::current_exception();
  }

  // Help drain the queue before blocking: with every worker busy (or in a
  // nested parallel_for of its own) this keeps the system making progress,
  // so nested calls cannot deadlock.
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }

  {
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done.wait(lock, [&shared] { return shared.pending == 0; });
  }

  for (const auto& error : shared.errors)
    if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(begin, end,
                      [&body](std::size_t b, std::size_t e, std::size_t) {
                        for (std::size_t i = b; i < e; ++i) body(i);
                      });
}

}  // namespace ufc::util
