// Summary statistics and empirical distributions used by the benchmark
// harness (means, percentiles, CDFs) and by tests (tolerant comparisons).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ufc {

/// Single-pass accumulator for mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double sum(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. xs need not be sorted.
/// Throws ContractViolation if any sample is non-finite (a NaN breaks the
/// sort's strict weak ordering and silently scrambles every quantile).
double percentile(std::span<const double> xs, double p);

/// One point of an empirical CDF.
struct CdfPoint {
  double value;       ///< x
  double cumulative;  ///< P(X <= x), in (0, 1].
};

/// Empirical CDF of the samples (sorted ascending, one point per sample).
/// Throws ContractViolation if any sample is non-finite (see percentile).
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs);

/// True if |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool approx_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12);

}  // namespace ufc
