// Fixed-width console tables, used by the bench binaries to print the
// paper's tables/series in a readable form next to the CSV output.
#pragma once

#include <string>
#include <vector>

namespace ufc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimal places.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders the table (header, separator, rows) as a single string.
  std::string to_string() const;

  /// Prints to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimal places.
std::string fixed(double value, int precision = 2);

}  // namespace ufc
