// Lightweight contract checking (GSL Expects/Ensures style, CppCoreGuidelines I.6/I.8).
//
// UFC_EXPECTS(cond)  - precondition; throws ufc::ContractViolation on failure.
// UFC_ENSURES(cond)  - postcondition; same behaviour.
//
// We throw instead of aborting so that library users (and tests) can recover
// from misuse, and so property tests can assert that violations are caught.
#pragma once

#include <stdexcept>
#include <string>

namespace ufc {

/// Thrown when a precondition or postcondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: `" + expr + "` at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace ufc

#define UFC_EXPECTS(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ufc::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define UFC_ENSURES(cond)                                                   \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ufc::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (0)
