// Output-path routing for driver artifacts.
//
// Every file a driver writes (CSV series, manifests) resolves through
// output_path(), so one INI option relocates all of them:
//
//   [output]
//   dir = results/run7   ; created on demand; default "" = current directory
//   csv = series.csv     ; per-command file name override
//
// Before this seam each command defaulted to a bare file name in the
// process working directory, which is how stray ufc_simulate.csv files
// ended up scattered around checkouts.
#pragma once

#include <string>

#include "util/config.hpp"

namespace ufc::util {

/// Joins `config`'s output.dir (created, including parents, when missing)
/// with `name`. Absolute `name`s are returned untouched; with no output.dir
/// the name resolves relative to the working directory, the historical
/// behavior.
std::string output_path(const Config& config, const std::string& name);

}  // namespace ufc::util
