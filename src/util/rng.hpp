// Deterministic, seedable random number generation.
//
// All stochastic pieces of the library (trace synthesis, workload splitting,
// failure injection) draw from an explicitly passed Rng so that every
// experiment is reproducible from a single seed. No global RNG state.
#pragma once

#include <cstdint>
#include <vector>

namespace ufc {

/// SplitMix64-seeded xoshiro256** generator with convenience distributions.
///
/// We implement the generator ourselves (rather than using std::mt19937_64
/// plus std distributions) because std distribution *algorithms* are not
/// specified — values would differ across standard libraries, breaking
/// reproducibility of the calibrated traces.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal truncated to [lo, hi] by rejection (falls back to clamping
  /// after 64 rejections to stay O(1) in pathological configurations).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Log-normal: exp(normal(mu, sigma)).
  double log_normal(double mu, double sigma);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Forks an independent stream: deterministic function of this generator's
  /// state and `stream_id`; does not advance this generator.
  Rng fork(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Returns n samples of `rng.normal(mean, stddev)` normalized to sum to
/// `total`, with each share clamped to be >= min_share * total / n.
/// Used to split a workload trace across front-end proxies ("following a
/// normal distribution" as in the paper's simulation setup).
std::vector<double> normal_shares(Rng& rng, int n, double total, double cv,
                                  double min_share = 0.1);

}  // namespace ufc
