// Persistent-worker thread pool with a deterministic chunked parallel_for.
//
// Built for the ADM-G hot path: the per-front-end (lambda-row) and
// per-datacenter (mu/nu/a-column) sub-problems are independent, so one
// parallel_for per pass covers the whole prediction/correction step. Two
// properties the solver relies on:
//
//  1. Determinism. parallel_for splits [begin, end) into at most
//     thread_count() contiguous chunks and every index is processed by
//     exactly one chunk, so any per-item work that writes disjoint outputs
//     is bit-identical serial vs. threaded. Cross-chunk reductions must be
//     order-insensitive (max over doubles is; float sums are not — keep
//     per-item sums inside one chunk).
//  2. Graceful degradation. With threads <= 1, or a range smaller than two
//     items, the body runs inline on the calling thread: no workers are
//     spawned, no synchronization happens, and exception behaviour is the
//     ordinary call stack.
//
// Exceptions thrown by the body are captured per chunk and the lowest-chunk
// exception is rethrown on the calling thread once every chunk finished, so
// a throwing body never leaves work running concurrently with unwinding.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ufc::util {

class ThreadPool {
 public:
  /// `threads` counts the calling thread too: 1 means fully serial (no
  /// workers), 4 means the caller plus three workers. 0 picks
  /// std::thread::hardware_concurrency() (floored at 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in parallel_for, including the calling thread.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [begin, end). Blocks until all chunks
  /// completed; rethrows the first (lowest-chunk) exception afterwards.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Chunk-granular variant: body(chunk_begin, chunk_end, chunk_index) with
  /// chunk_index < thread_count(). Lets callers keep per-chunk scratch and
  /// per-chunk reductions in a fixed order. Chunk boundaries depend only on
  /// the range and thread_count(), never on scheduling.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

/// Resolves a user-facing thread knob: 0 = hardware concurrency, otherwise
/// the value itself (floored at 1).
std::size_t resolve_thread_count(int threads);

}  // namespace ufc::util
