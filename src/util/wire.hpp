// Low-level binary wire codec shared by the message layer and the solver
// checkpoints.
//
// Encoding is little-endian host layout of trivially copyable scalars (the
// repo targets a single ABI; messages and checkpoints never cross machines
// with different endianness in the simulation). Every read is bounds-checked
// and throws ufc::ContractViolation on truncated input, so arbitrary byte
// strings can be fed to decoders without undefined behavior — the fuzz tests
// rely on this.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/contract.hpp"

namespace ufc::wire {

template <typename T>
  requires std::is_trivially_copyable_v<T>
void append(std::vector<std::byte>& out, const T& value) {
  const std::size_t old_size = out.size();
  out.resize(old_size + sizeof(T));
  std::memcpy(out.data() + old_size, &value, sizeof(T));
}

/// Reads one scalar at `offset`, advancing it. Overflow-safe: the bounds
/// check cannot wrap even for adversarial offsets.
template <typename T>
  requires std::is_trivially_copyable_v<T>
T read(std::span<const std::byte> bytes, std::size_t& offset) {
  UFC_EXPECTS(sizeof(T) <= bytes.size());
  UFC_EXPECTS(offset <= bytes.size() - sizeof(T));
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

inline void append_f64s(std::vector<std::byte>& out,
                        std::span<const double> values) {
  const std::size_t want = values.size() * sizeof(double);
  const std::size_t old_size = out.size();
  out.resize(old_size + want);
  if (want > 0) std::memcpy(out.data() + old_size, values.data(), want);
}

/// Fills `into` from consecutive doubles at `offset`, advancing it.
inline void read_f64s(std::span<const std::byte> bytes, std::size_t& offset,
                      std::span<double> into) {
  const std::size_t want = into.size() * sizeof(double);
  UFC_EXPECTS(want <= bytes.size());
  UFC_EXPECTS(offset <= bytes.size() - want);
  if (want > 0) std::memcpy(into.data(), bytes.data() + offset, want);
  offset += want;
}

}  // namespace ufc::wire
