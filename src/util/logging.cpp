#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ufc::log {

namespace {
std::atomic<Level> g_level{Level::Warn};
std::mutex g_mutex;

const char* name(Level lvl) {
  switch (lvl) {
    case Level::Debug: return "debug";
    case Level::Info:  return "info ";
    case Level::Warn:  return "warn ";
    case Level::Error: return "error";
    case Level::Off:   return "off  ";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  if (lvl < level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << name(lvl) << "] " << message << "\n";
}

}  // namespace ufc::log
