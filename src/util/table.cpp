#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/contract.hpp"

namespace ufc {

std::string fixed(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  UFC_EXPECTS(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  UFC_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  UFC_EXPECTS(values.size() + 1 == header_.size());
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fixed(v, precision));
  add_row(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::print() const { std::cout << to_string(); }

}  // namespace ufc
