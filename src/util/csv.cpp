#include "util/csv.hpp"

#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/contract.hpp"

namespace ufc {

// Non-finite cells use one pinned spelling on both sides of the round trip:
// "nan", "inf", "-inf". std::to_chars/from_chars happen to agree on these on
// libstdc++, but the standard leaves non-finite parsing implementation-
// divergent (MSVC's from_chars rejects them outright), and to_chars emits
// "-nan" for negative NaNs which would then depend on the sign bit of an
// unspecified payload. Encoding explicitly keeps every CsvWriter output —
// including a diverged solver trace full of NaNs — readable by parse_csv.
namespace {
constexpr const char* kNanCell = "nan";
constexpr const char* kInfCell = "inf";
constexpr const char* kNegInfCell = "-inf";
}  // namespace

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string csv_number(double value) {
  if (std::isnan(value)) return kNanCell;  // NaN sign/payload not preserved
  if (std::isinf(value)) return value > 0.0 ? kInfCell : kNegInfCell;
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, res.ptr);
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  UFC_EXPECTS(!header.empty());
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_cells(header);
}

void CsvWriter::row(const std::vector<double>& cells) {
  UFC_EXPECTS(cells.size() == columns_);
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(csv_number(v));
  write_cells(formatted);
  ++rows_;
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  UFC_EXPECTS(cells.size() == columns_);
  write_cells(cells);
  ++rows_;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

namespace {

/// Splits one CSV record (RFC 4180: quoted cells may contain commas and
/// doubled quotes; embedded newlines are not supported by this reader).
std::vector<std::string> split_record(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  UFC_EXPECTS(!quoted);  // unterminated quote
  cells.push_back(std::move(cell));
  return cells;
}

double parse_number(const std::string& cell) {
  // The pinned non-finite spellings (see csv_number) parse explicitly...
  if (cell == kNanCell) return std::numeric_limits<double>::quiet_NaN();
  if (cell == kInfCell) return std::numeric_limits<double>::infinity();
  if (cell == kNegInfCell) return -std::numeric_limits<double>::infinity();
  double value = 0.0;
  const auto* begin = cell.data();
  const auto* end = begin + cell.size();
  const auto result = std::from_chars(begin, end, value);
  UFC_EXPECTS(result.ec == std::errc() && result.ptr == end);
  // ...and every other spelling ("NaN", "Infinity", hex payloads) is
  // rejected even where the platform's from_chars would accept it, so a
  // table either parses identically everywhere or fails loudly.
  UFC_EXPECTS(std::isfinite(value));
  return value;
}

}  // namespace

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t c = 0; c < header.size(); ++c)
    if (header[c] == name) return c;
  throw ContractViolation("CsvTable: no column named '" + name + "'");
}

std::vector<double> CsvTable::column_values(const std::string& name) const {
  const std::size_t c = column(name);
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& row : rows) values.push_back(row[c]);
  return values;
}

CsvTable parse_csv(const std::string& text) {
  CsvTable table;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    auto cells = split_record(line);
    if (table.header.empty()) {
      table.header = std::move(cells);
      UFC_EXPECTS(!table.header.empty());
      continue;
    }
    UFC_EXPECTS(cells.size() == table.header.size());
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) row.push_back(parse_number(cell));
    table.rows.push_back(std::move(row));
  }
  UFC_EXPECTS(!table.header.empty());
  return table;
}

CsvTable read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_csv(text.str());
}

}  // namespace ufc
