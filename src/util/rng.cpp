#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contract.hpp"

namespace ufc {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  UFC_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  UFC_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  UFC_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  UFC_EXPECTS(lo <= hi);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

double Rng::log_normal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  return uniform() < std::clamp(p, 0.0, 1.0);
}

double Rng::exponential(double lambda) {
  UFC_EXPECTS(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Combine the current state with the stream id through splitmix; the
  // resulting stream is independent for distinct ids.
  std::uint64_t mix = s_[0] ^ rotl(s_[3], 13) ^ (stream_id * 0xD2B74407B1CE6E93ULL);
  return Rng(splitmix64(mix));
}

std::vector<double> normal_shares(Rng& rng, int n, double total, double cv,
                                  double min_share) {
  UFC_EXPECTS(n > 0);
  UFC_EXPECTS(total >= 0.0);
  UFC_EXPECTS(cv >= 0.0);
  UFC_EXPECTS(min_share >= 0.0 && min_share < 1.0);

  const double mean = 1.0;
  std::vector<double> shares(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (auto& s : shares) {
    s = std::max(min_share * mean, rng.normal(mean, cv * mean));
    sum += s;
  }
  for (auto& s : shares) s *= total / sum;
  return shares;
}

}  // namespace ufc
