// Portable restrict qualifier for hot-loop pointer declarations.
//
// The ADM-G inner loops (gradient assembly, gather/scatter over support
// sets) take their operands as std::span, which the compiler cannot prove
// non-aliasing; hoisting the data pointers into UFC_RESTRICT-qualified
// locals removes the runtime alias checks and lets the loops auto-vectorize.
// Only apply it where the contract genuinely forbids aliasing — the simplex
// projections, for example, allow out to alias v and must not use it.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define UFC_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define UFC_RESTRICT __restrict
#else
#define UFC_RESTRICT
#endif
