// The repo's single sanctioned monotonic-clock seam.
//
// Every wall-clock read outside src/obs goes through these helpers (the
// ufc_analyze wall-clock rule enforces it), so the set of places where real
// time can enter the solver is reviewable in one file — and a clock read can
// never leak into iterate arithmetic. All timing uses
// std::chrono::steady_clock: monotonic, never stepped backwards by NTP.
#pragma once

#include <chrono>

namespace ufc::util {

/// Opaque monotonic timestamp. Value-initialized ticks compare equal and are
/// usable as "not started" sentinels.
using MonotonicTick = std::chrono::steady_clock::time_point;

/// The current monotonic timestamp.
inline MonotonicTick monotonic_now() {
  return std::chrono::steady_clock::now();
}

/// Seconds elapsed from `from` to `to` (negative if `to` precedes `from`).
inline double seconds_between(MonotonicTick from, MonotonicTick to) {
  return std::chrono::duration<double>(to - from).count();
}

/// A started stopwatch on the monotonic clock.
class MonotonicTimer {
 public:
  MonotonicTimer() : start_(monotonic_now()) {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed_seconds() const {
    return seconds_between(start_, monotonic_now());
  }

  void restart() { start_ = monotonic_now(); }

 private:
  MonotonicTick start_;
};

/// RAII phase timer: adds the scope's elapsed seconds to an accumulator on
/// destruction. Accumulating (rather than overwriting) lets one accumulator
/// total a phase that runs many times per iteration.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ~ScopedTimer() { accumulator_ += timer_.elapsed_seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& accumulator_;
  MonotonicTimer timer_;
};

}  // namespace ufc::util
