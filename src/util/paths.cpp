#include "util/paths.hpp"

#include <filesystem>

#include "util/contract.hpp"

namespace ufc::util {

std::string output_path(const Config& config, const std::string& name) {
  UFC_EXPECTS(!name.empty());
  const std::string dir = config.get_string("output.dir", "");
  const std::filesystem::path file(name);
  if (dir.empty() || file.is_absolute()) return name;
  std::filesystem::create_directories(dir);
  return (std::filesystem::path(dir) / file).string();
}

}  // namespace ufc::util
