#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/contract.hpp"

namespace ufc {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string strip_comment(const std::string& line) {
  // ';' or '#' starts a comment (we do not support quoted values).
  const auto pos = line.find_first_of(";#");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Config Config::parse(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::string section;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::string content = trim(strip_comment(line));
    if (content.empty()) continue;
    if (content.front() == '[') {
      UFC_EXPECTS(content.back() == ']');
      section = trim(content.substr(1, content.size() - 2));
      UFC_EXPECTS(!section.empty());
      continue;
    }
    const auto eq = content.find('=');
    UFC_EXPECTS(eq != std::string::npos);
    const std::string key = trim(content.substr(0, eq));
    UFC_EXPECTS(!key.empty());
    const std::string value = trim(content.substr(eq + 1));
    const std::string full_key = section.empty() ? key : section + "." + key;
    config.values_[full_key] = value;
  }
  return config;
}

Config Config::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Config: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

bool Config::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    UFC_EXPECTS(consumed == it->second.size());
    return value;
  } catch (const std::logic_error&) {
    throw ContractViolation("Config: key '" + key + "' has non-numeric value '" +
                            it->second + "'");
  }
}

int Config::get_int(const std::string& key, int fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(it->second, &consumed);
    UFC_EXPECTS(consumed == it->second.size());
    return value;
  } catch (const std::logic_error&) {
    throw ContractViolation("Config: key '" + key + "' has non-integer value '" +
                            it->second + "'");
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string value = lower(it->second);
  if (value == "true" || value == "yes" || value == "on" || value == "1")
    return true;
  if (value == "false" || value == "no" || value == "off" || value == "0")
    return false;
  throw ContractViolation("Config: key '" + key + "' has non-boolean value '" +
                          it->second + "'");
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace ufc
