// Minimal INI-style configuration parser for the CLI driver.
//
// Grammar (deliberately small, no external dependencies):
//   [section]
//   key = value        ; comment
//   # full-line comment
// Keys are addressed as "section.key"; keys before any section header live
// in the "" section and are addressed bare. Values keep inner whitespace,
// with surrounding whitespace trimmed.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ufc {

class Config {
 public:
  /// Parses INI text. Throws ContractViolation on malformed lines
  /// (missing '=', unterminated section header).
  static Config parse(const std::string& text);

  /// Reads and parses a file. Throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters with defaults; throw ContractViolation when the value
  /// exists but cannot be converted.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in "section.key" form, sorted.
  std::vector<std::string> keys() const;

  /// Number of key/value pairs.
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ufc
