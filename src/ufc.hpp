// Umbrella header: the library's public API in one include.
//
//   #include "ufc.hpp"
//
// Layers (see DESIGN.md):
//   model/  — the UFC formulation: problems, utilities, emission policies
//   admm/   — the distributed 4-block ADM-G solver and strategies
//   traces/ — calibrated synthetic (or CSV-loaded) workload/price/carbon data
//   net/    — the message-passing protocol runtime
//   sim/    — week-scale simulation, sweeps and extensions
//   ctrl/   — the online receding-horizon controller service
#pragma once

#include "admm/admg.hpp"
#include "admm/async.hpp"
#include "admm/centralized.hpp"
#include "admm/rightsizing.hpp"
#include "admm/strategy.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/scheduler.hpp"
#include "ctrl/stream.hpp"
#include "model/battery.hpp"
#include "model/breakdown.hpp"
#include "model/emission.hpp"
#include "model/metrics.hpp"
#include "model/power.hpp"
#include "model/queueing.hpp"
#include "model/problem.hpp"
#include "model/utility.hpp"
#include "net/runtime.hpp"
#include "sim/batch.hpp"
#include "sim/forecast_study.hpp"
#include "sim/simulator.hpp"
#include "sim/storage.hpp"
#include "sim/sweep.hpp"
#include "traces/forecast.hpp"
#include "traces/geography.hpp"
#include "traces/scenario.hpp"
#include "traces/scenario_io.hpp"
