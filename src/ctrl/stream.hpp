// Tick streams: the ingestion side of the receding-horizon controller.
//
// A TickSource produces one sparse admm::ProblemUpdate per control tick —
// the delta between consecutive problem states, never a full re-build — so
// the controller can mutate a *live* solver between budgeted re-solves and
// keep its iterate as the warm start. Three sources cover the use cases:
//
//   ScenarioTickSource   deterministic replay of a traces::Scenario (plus
//                        the sim fault model): tick t emits the hour t-1 ->
//                        t delta of arrivals, prices, carbon rates and
//                        outage-driven fuel-cell capacity transitions.
//   SyntheticTickSource  seeded multiplicative jitter around a base
//                        problem; every tick is derived from the base (not
//                        the previous tick), so excursions stay bounded and
//                        the constructor can certify feasibility up front.
//   read_tick_stream     CSV ingestion (tick,kind,index,value rows) with
//                        hard validation: NaN/Inf, negatives, short rows,
//                        unknown kinds, out-of-range indices and decreasing
//                        ticks all throw ufc::ContractViolation — malformed
//                        telemetry must never be silently clamped into a
//                        plausible-looking problem.
//
// No wall-clock anywhere: a tick is a logical step, and pacing (if any) is
// the caller's business. This keeps every stream bit-reproducible.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "admm/engine.hpp"
#include "model/problem.hpp"
#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/rng.hpp"

namespace ufc::ctrl {

/// A stream of per-tick sparse problem updates.
class TickSource {
 public:
  virtual ~TickSource() = default;

  /// The problem state before any tick — what the consumer should construct
  /// its solver from. Stable across the stream's lifetime.
  virtual const UfcProblem& base_problem() const = 0;

  /// The next tick's update (possibly empty: the tick happened but nothing
  /// changed), or nullopt once the stream is exhausted.
  virtual std::optional<admm::ProblemUpdate> next() = 0;
};

/// Replays a generated scenario (and its outage schedule) as a tick stream:
/// the base problem is hour 0 with outages applied, and tick t diffs hour t
/// against hour t-1, emitting only the entries that actually changed.
/// Capacity transitions at outage window boundaries ride the same diff, so
/// the stream reproduces exactly what sim::SolveSession would solve per slot.
class ScenarioTickSource final : public TickSource {
 public:
  explicit ScenarioTickSource(traces::Scenario scenario,
                              std::vector<sim::FuelCellOutage> outages = {});

  const UfcProblem& base_problem() const override { return base_; }
  std::optional<admm::ProblemUpdate> next() override;

 private:
  traces::Scenario scenario_;
  std::vector<sim::FuelCellOutage> outages_;
  UfcProblem base_;  ///< Hour 0, outages applied.
  UfcProblem prev_;  ///< Hour next_hour_ - 1, outages applied.
  int next_hour_ = 1;
};

/// Seeded jitter around a fixed base problem: tick values are
/// base * (1 + amplitude * u) with u uniform in [-1, 1), drawn from an
/// ufc::Rng owned by the source. Deterministic in (seed, options); two
/// sources with equal configuration emit identical streams.
class SyntheticTickSource final : public TickSource {
 public:
  struct Options {
    std::uint64_t seed = 42;
    int ticks = 168;                  ///< Stream length.
    double workload_amplitude = 0.2;  ///< Relative jitter on arrivals.
    double price_amplitude = 0.3;     ///< Relative jitter on grid prices.
    double carbon_amplitude = 0.0;    ///< Relative jitter on carbon rates.
  };

  /// Validates the base problem and requires every amplitude in [0, 1) with
  /// the worst-case workload excursion still within total server capacity,
  /// so no emitted tick can ever be infeasible.
  SyntheticTickSource(UfcProblem base, Options options);

  const UfcProblem& base_problem() const override { return base_; }
  std::optional<admm::ProblemUpdate> next() override;

 private:
  double jitter(double amplitude);

  UfcProblem base_;
  Options options_;
  Rng rng_;
  int emitted_ = 0;
};

/// Parses a tick-stream CSV into one ProblemUpdate per tick. Format: a
/// `tick,kind,index,value` header followed by data rows, where kind is one
/// of arrival | grid_price | carbon_rate | fuel_cell_cap, index addresses a
/// front-end (arrival, < front_ends) or a datacenter (the rest,
/// < datacenters), and value is a finite non-negative double. Rows must be
/// sorted by non-decreasing tick; ticks without rows become empty updates,
/// so the result has last_tick + 1 entries. Every malformed input — short or
/// long rows, unknown kinds, NaN/Inf/negative values, out-of-range indices,
/// decreasing ticks — throws ufc::ContractViolation; nothing is clamped.
std::vector<admm::ProblemUpdate> read_tick_stream(std::istream& in,
                                                  std::size_t front_ends,
                                                  std::size_t datacenters);

/// read_tick_stream on a file path; throws ContractViolation when the file
/// cannot be opened.
std::vector<admm::ProblemUpdate> read_tick_stream_file(const std::string& path,
                                                       std::size_t front_ends,
                                                       std::size_t datacenters);

}  // namespace ufc::ctrl
