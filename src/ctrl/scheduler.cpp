#include "ctrl/scheduler.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/contract.hpp"

namespace ufc::ctrl {

MultiTenantScheduler::MultiTenantScheduler(SchedulerOptions options)
    : options_(std::move(options)),
      pool_(util::resolve_thread_count(options_.threads)) {
  UFC_EXPECTS(options_.iteration_pool_per_tick >= 1);
  UFC_EXPECTS(options_.quantum >= 1);
  UFC_EXPECTS(options_.threads >= 0);
}

void MultiTenantScheduler::add_tenant(std::string name,
                                      std::unique_ptr<TickSource> source) {
  UFC_EXPECTS(!name.empty());
  UFC_EXPECTS(source != nullptr);
  for (const Tenant& existing : tenants_) UFC_EXPECTS(existing.name != name);
  admm::AdmgOptions admg = options_.admg;
  admg.threads = 1;  // Parallelism is across tenants, never inside a solve.
  Tenant tenant{std::move(name),
                std::move(source),
                nullptr,
                obs::Histogram(obs::default_iteration_boundaries())};
  tenant.solver =
      std::make_unique<admm::AdmgSolver>(tenant.source->base_problem(), admg);
  tenants_.push_back(std::move(tenant));
}

const std::string& MultiTenantScheduler::tenant_name(std::size_t t) const {
  UFC_EXPECTS(t < tenants_.size());
  return tenants_[t].name;
}

const admm::AdmgSolver& MultiTenantScheduler::tenant_solver(
    std::size_t t) const {
  UFC_EXPECTS(t < tenants_.size());
  return *tenants_[t].solver;
}

bool MultiTenantScheduler::run_tick() {
  UFC_EXPECTS(!tenants_.empty());

  // Phase 1 (serial): pull one update per live tenant and apply it to the
  // tenant's live solver. A source returning nullopt retires its tenant.
  std::vector<std::size_t> participants;
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    Tenant& tenant = tenants_[t];
    if (tenant.exhausted) continue;
    std::optional<admm::ProblemUpdate> update = tenant.source->next();
    if (!update) {
      tenant.exhausted = true;
      continue;
    }
    if (!update->empty()) tenant.solver->apply_update(*update);
    participants.push_back(t);
  }
  if (participants.empty()) return false;

  // Phase 2: deal the shared pool out in rounds until it runs dry or every
  // participant has converged. Grants are decided serially (deterministic),
  // solves run in parallel (disjoint per-tenant state, disjoint report
  // slots), accounting is serial in grant order — so the tick is
  // bit-identical for any scheduler thread count.
  std::vector<std::size_t> pending = participants;
  std::vector<std::int64_t> consumed(tenants_.size(), 0);
  std::vector<bool> converged(tenants_.size(), false);
  int pool = options_.iteration_pool_per_tick;
  const std::size_t rotation =
      static_cast<std::size_t>(tick_index_) % tenants_.size();
  while (pool > 0 && !pending.empty()) {
    // Round-robin order with a rotating start, so the pool's tail is not
    // always denied to the same tenants.
    std::size_t start = 0;
    while (start < pending.size() && pending[start] < rotation) ++start;
    std::vector<std::pair<std::size_t, int>> grants;
    for (std::size_t k = 0; k < pending.size() && pool > 0; ++k) {
      const std::size_t t = pending[(start + k) % pending.size()];
      const int grant = std::min(options_.quantum, pool);
      pool -= grant;
      grants.emplace_back(t, grant);
    }

    std::vector<admm::AdmgReport> reports(grants.size());
    pool_.parallel_for(0, grants.size(), [&](std::size_t g) {
      reports[g] = tenants_[grants[g].first].solver->solve_budgeted(
          grants[g].second);
    });

    for (std::size_t g = 0; g < grants.size(); ++g) {
      const auto [t, grant] = grants[g];
      consumed[t] += reports[g].iterations;
      pool += grant - reports[g].iterations;  // Reclaim the unused grant.
      if (reports[g].status != admm::SolveStatus::BudgetExhausted) {
        // Converged (or watchdog-tripped) tenants leave the round-robin:
        // granting them more of the pool this tick buys nothing.
        pending.erase(std::find(pending.begin(), pending.end(), t));
        if (reports[g].status == admm::SolveStatus::Converged) {
          converged[t] = true;
          tenants_[t].iterations_saved += grant - reports[g].iterations;
        }
      }
    }
  }

  for (const std::size_t t : participants) {
    Tenant& tenant = tenants_[t];
    ++tenant.ticks;
    tenant.iterations_total += consumed[t];
    tenant.tick_iterations.observe(static_cast<double>(consumed[t]));
    if (converged[t]) {
      ++tenant.converged_ticks;
    } else {
      ++tenant.budget_exhausted_ticks;
    }
  }
  ++tick_index_;
  return true;
}

int MultiTenantScheduler::run(int max_ticks) {
  UFC_EXPECTS(max_ticks >= 0);
  int done = 0;
  while (done < max_ticks && run_tick()) ++done;
  return done;
}

void MultiTenantScheduler::record_metrics(obs::MetricsRegistry& out) const {
  out.counter("ctrl.ticks").add(static_cast<std::uint64_t>(tick_index_));
  for (const Tenant& tenant : tenants_) {
    const std::string prefix = "ctrl.tenant." + tenant.name;
    out.counter(prefix + ".ticks")
        .add(static_cast<std::uint64_t>(tenant.ticks));
    out.counter(prefix + ".iterations")
        .add(static_cast<std::uint64_t>(tenant.iterations_total));
    out.counter(prefix + ".converged_ticks")
        .add(static_cast<std::uint64_t>(tenant.converged_ticks));
    out.counter(prefix + ".budget_exhausted")
        .add(static_cast<std::uint64_t>(tenant.budget_exhausted_ticks));
    out.counter(prefix + ".iterations_saved")
        .add(static_cast<std::uint64_t>(tenant.iterations_saved));
    out.histogram(prefix + ".tick_iterations",
                  obs::default_iteration_boundaries())
        .merge(tenant.tick_iterations);
  }
}

}  // namespace ufc::ctrl
