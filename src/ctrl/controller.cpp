#include "ctrl/controller.hpp"

#include "util/contract.hpp"

namespace ufc::ctrl {

Controller::Controller(const UfcProblem& problem, ControllerOptions options)
    : options_(std::move(options)),
      solver_(problem, options_.admg),
      tick_iterations_(obs::default_iteration_boundaries()) {
  UFC_EXPECTS(options_.max_iters_per_tick > 0);
}

TickReport Controller::tick(const admm::ProblemUpdate& update) {
  TickReport out;
  out.tick = ticks_;
  if (!update.empty()) solver_.apply_update(update);
  if (options_.cold_restart) solver_.reset();
  out.report = solver_.solve_budgeted(options_.max_iters_per_tick);

  ++ticks_;
  total_iterations_ += out.report.iterations;
  tick_iterations_.observe(static_cast<double>(out.report.iterations));
  if (out.report.status == admm::SolveStatus::Converged) {
    ++converged_ticks_;
  } else {
    ++budget_exhausted_ticks_;
  }
  return out;
}

void Controller::record_metrics(obs::MetricsRegistry& out,
                                const std::string& prefix) const {
  out.counter(prefix + ".ticks").add(static_cast<std::uint64_t>(ticks_));
  out.counter(prefix + ".iterations")
      .add(static_cast<std::uint64_t>(total_iterations_));
  out.counter(prefix + ".converged_ticks")
      .add(static_cast<std::uint64_t>(converged_ticks_));
  out.counter(prefix + ".budget_exhausted")
      .add(static_cast<std::uint64_t>(budget_exhausted_ticks_));
  out.histogram(prefix + ".tick_iterations",
                obs::default_iteration_boundaries())
      .merge(tick_iterations_);
}

}  // namespace ufc::ctrl
