#include "ctrl/stream.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <string_view>
#include <utility>

#include "sim/session.hpp"
#include "util/contract.hpp"

namespace ufc::ctrl {

namespace {

/// Diffs `next` against `prev` into a sparse update. Exact comparison is
/// intentional: both states come from the same deterministic generator, so
/// an unchanged entry is bitwise unchanged and a changed one should be
/// forwarded verbatim, not tolerance-filtered.
admm::ProblemUpdate diff_problems(const UfcProblem& prev,
                                  const UfcProblem& next) {
  UFC_EXPECTS(prev.num_front_ends() == next.num_front_ends());
  UFC_EXPECTS(prev.num_datacenters() == next.num_datacenters());
  admm::ProblemUpdate update;
  for (std::size_t i = 0; i < prev.num_front_ends(); ++i) {
    if (next.arrivals[i] != prev.arrivals[i])
      update.arrivals.emplace_back(i, next.arrivals[i]);
  }
  for (std::size_t j = 0; j < prev.num_datacenters(); ++j) {
    const DatacenterSpec& before = prev.datacenters[j];
    const DatacenterSpec& after = next.datacenters[j];
    if (after.grid_price != before.grid_price)
      update.grid_prices.emplace_back(j, after.grid_price);
    if (after.carbon_rate != before.carbon_rate)
      update.carbon_rates.emplace_back(j, after.carbon_rate);
    if (after.fuel_cell_capacity_mw != before.fuel_cell_capacity_mw)
      update.fuel_cell_caps.emplace_back(j, after.fuel_cell_capacity_mw);
  }
  return update;
}

}  // namespace

ScenarioTickSource::ScenarioTickSource(traces::Scenario scenario,
                                       std::vector<sim::FuelCellOutage> outages)
    : scenario_(std::move(scenario)), outages_(std::move(outages)) {
  UFC_EXPECTS(scenario_.hours() >= 1);
  base_ = scenario_.problem_at(0);
  sim::apply_outages(base_, outages_, 0);
  base_.validate();
  prev_ = base_;
}

std::optional<admm::ProblemUpdate> ScenarioTickSource::next() {
  if (next_hour_ >= scenario_.hours()) return std::nullopt;
  UfcProblem current = scenario_.problem_at(next_hour_);
  sim::apply_outages(current, outages_, next_hour_);
  admm::ProblemUpdate update = diff_problems(prev_, current);
  prev_ = std::move(current);
  ++next_hour_;
  return update;
}

SyntheticTickSource::SyntheticTickSource(UfcProblem base, Options options)
    : base_(std::move(base)), options_(options), rng_(options.seed) {
  base_.validate();
  UFC_EXPECTS(options_.ticks >= 0);
  for (const double amplitude :
       {options_.workload_amplitude, options_.price_amplitude,
        options_.carbon_amplitude}) {
    UFC_EXPECTS(amplitude >= 0.0 && amplitude < 1.0);
  }
  // Worst-case excursion certificate: every tick scales arrivals by at most
  // (1 + workload_amplitude), so feasibility at the extreme covers the whole
  // stream.
  UFC_EXPECTS(base_.total_arrivals() * (1.0 + options_.workload_amplitude) <=
              base_.total_server_capacity());
}

double SyntheticTickSource::jitter(double amplitude) {
  return 1.0 + amplitude * rng_.uniform(-1.0, 1.0);
}

std::optional<admm::ProblemUpdate> SyntheticTickSource::next() {
  if (emitted_ >= options_.ticks) return std::nullopt;
  ++emitted_;
  admm::ProblemUpdate update;
  if (options_.workload_amplitude > 0.0) {
    for (std::size_t i = 0; i < base_.num_front_ends(); ++i) {
      update.arrivals.emplace_back(
          i, base_.arrivals[i] * jitter(options_.workload_amplitude));
    }
  }
  if (options_.price_amplitude > 0.0) {
    for (std::size_t j = 0; j < base_.num_datacenters(); ++j) {
      update.grid_prices.emplace_back(
          j,
          base_.datacenters[j].grid_price * jitter(options_.price_amplitude));
    }
  }
  if (options_.carbon_amplitude > 0.0) {
    for (std::size_t j = 0; j < base_.num_datacenters(); ++j) {
      update.carbon_rates.emplace_back(
          j,
          base_.datacenters[j].carbon_rate * jitter(options_.carbon_amplitude));
    }
  }
  return update;
}

namespace {

// Streaming CSV ingestion is a trust boundary: every field goes through
// std::from_chars with full-match and range checking, and values are
// additionally required to be finite and non-negative (from_chars happily
// parses "nan" and "inf"). A bad row is a ContractViolation, never a clamp.

constexpr int kMaxTick = 1 << 20;  ///< Allocation guard for the result.

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

int parse_tick_field(std::string_view field) {
  int tick = 0;
  const char* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), end, tick);
  UFC_EXPECTS(ec == std::errc{} && ptr == end);
  UFC_EXPECTS(tick >= 0 && tick <= kMaxTick);
  return tick;
}

std::size_t parse_index_field(std::string_view field, std::size_t bound) {
  std::uint64_t index = 0;
  const char* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), end, index);
  UFC_EXPECTS(ec == std::errc{} && ptr == end);
  UFC_EXPECTS(index < bound);
  return static_cast<std::size_t>(index);
}

double parse_value_field(std::string_view field) {
  double value = 0.0;
  const char* end = field.data() + field.size();
  const auto [ptr, ec] = std::from_chars(field.data(), end, value);
  UFC_EXPECTS(ec == std::errc{} && ptr == end);
  UFC_EXPECTS(std::isfinite(value) && value >= 0.0);
  return value;
}

}  // namespace

std::vector<admm::ProblemUpdate> read_tick_stream(std::istream& in,
                                                  std::size_t front_ends,
                                                  std::size_t datacenters) {
  UFC_EXPECTS(front_ends > 0 && datacenters > 0);
  std::string line;
  UFC_EXPECTS(static_cast<bool>(std::getline(in, line)));
  UFC_EXPECTS(strip_cr(line) == "tick,kind,index,value");

  std::vector<admm::ProblemUpdate> updates;
  int last_tick = -1;
  while (std::getline(in, line)) {
    const std::string_view row = strip_cr(line);
    if (row.empty()) continue;  // Tolerate a trailing blank line.
    const std::vector<std::string_view> fields = split_fields(row);
    UFC_EXPECTS(fields.size() == 4);

    const int tick = parse_tick_field(fields[0]);
    UFC_EXPECTS(tick >= last_tick);  // Sorted stream; gaps are fine.
    last_tick = tick;
    if (static_cast<std::size_t>(tick) >= updates.size())
      updates.resize(static_cast<std::size_t>(tick) + 1);
    admm::ProblemUpdate& update = updates[static_cast<std::size_t>(tick)];

    const std::string_view kind = fields[1];
    const double value = parse_value_field(fields[3]);
    if (kind == "arrival") {
      update.arrivals.emplace_back(parse_index_field(fields[2], front_ends),
                                   value);
    } else if (kind == "grid_price") {
      update.grid_prices.emplace_back(parse_index_field(fields[2], datacenters),
                                      value);
    } else if (kind == "carbon_rate") {
      update.carbon_rates.emplace_back(
          parse_index_field(fields[2], datacenters), value);
    } else if (kind == "fuel_cell_cap") {
      update.fuel_cell_caps.emplace_back(
          parse_index_field(fields[2], datacenters), value);
    } else {
      UFC_EXPECTS(false);  // Unknown kind.
    }
  }
  return updates;
}

std::vector<admm::ProblemUpdate> read_tick_stream_file(
    const std::string& path, std::size_t front_ends, std::size_t datacenters) {
  std::ifstream in(path);
  UFC_EXPECTS(static_cast<bool>(in));
  return read_tick_stream(in, front_ends, datacenters);
}

}  // namespace ufc::ctrl
