// The receding-horizon controller: one tenant's streaming re-solve loop.
//
// Each control tick the controller (1) applies the tick's sparse problem
// update to its live solver — invalidating screening/certification caches
// and repairing the warm iterate through AdmgSolver::apply_update — and
// (2) re-solves under a bounded iteration budget via solve_budgeted. A tick
// that exhausts its budget returns the best-so-far iterate with status
// BudgetExhausted and the next tick resumes exactly where it stopped, so a
// slow tick degrades solution freshness, never correctness.
//
// The tick deadline is expressed purely as an iteration budget: this layer
// never reads a clock (enforced by the no-wall-clock-in-ctrl-tick analyzer
// rule), which is what makes N-tick runs bit-reproducible and lets the
// budget-resume identity (N ticks of k iterations == one N*k solve) be
// tested exactly.
#pragma once

#include <cstdint>
#include <string>

#include "admm/admg.hpp"
#include "obs/metrics.hpp"

namespace ufc::ctrl {

struct ControllerOptions {
  /// Iteration budget per tick (the deadline, in solver steps).
  int max_iters_per_tick = 50;
  /// Baseline mode: forget the warm iterate before every tick and re-solve
  /// from the paper's cold start. Exists so warm-start savings are
  /// measurable against an otherwise identical loop.
  bool cold_restart = false;
  admm::AdmgOptions admg;
};

/// What one tick produced: the solver report plus the tick's index.
struct TickReport {
  int tick = 0;
  admm::AdmgReport report;
};

class Controller {
 public:
  Controller(const UfcProblem& problem, ControllerOptions options);

  /// Runs one control tick: apply `update` (skipped when empty), optionally
  /// cold-restart, then solve under the per-tick budget. The report's
  /// status distinguishes Converged from BudgetExhausted; either way the
  /// solver keeps the resulting iterate for the next tick.
  TickReport tick(const admm::ProblemUpdate& update);

  int ticks() const { return ticks_; }
  int converged_ticks() const { return converged_ticks_; }
  int budget_exhausted_ticks() const { return budget_exhausted_ticks_; }
  std::int64_t total_iterations() const { return total_iterations_; }

  admm::AdmgSolver& solver() { return solver_; }
  const admm::AdmgSolver& solver() const { return solver_; }
  const ControllerOptions& options() const { return options_; }

  /// Adds this controller's lifetime totals into `out` under
  /// `<prefix>.ticks`, `.iterations`, `.converged_ticks`,
  /// `.budget_exhausted` and the `.tick_iterations` histogram
  /// (default_iteration_boundaries, so records merge across controllers).
  void record_metrics(obs::MetricsRegistry& out,
                      const std::string& prefix) const;

 private:
  ControllerOptions options_;
  admm::AdmgSolver solver_;
  obs::Histogram tick_iterations_;
  int ticks_ = 0;
  int converged_ticks_ = 0;
  int budget_exhausted_ticks_ = 0;
  std::int64_t total_iterations_ = 0;
};

}  // namespace ufc::ctrl
