// MultiTenantScheduler: several independent UFC instances sharing one
// iteration pool and one thread pool.
//
// Each scheduler tick: every live tenant pulls its next stream update
// (serially — sources are plain objects), then the tick's shared iteration
// pool is dealt out in quantum-sized grants, round-robin with a rotating
// start (tick % tenants), so no tenant is structurally first. Granted
// solves run in parallel on the shared util::ThreadPool — tenant solvers
// are forced to a single solver thread, state is per-tenant, results land
// in disjoint slots — and accounting happens serially in grant order:
// unused grant (a tenant converging early) flows back into the pool for
// the next round, and converged tenants drop out of the round-robin until
// the next tick. The whole tick is therefore bit-identical for any
// scheduler thread count.
//
// Per-tenant counters and iteration histograms accumulate over the run and
// export into an obs::MetricsRegistry under ctrl.tenant.<name>.*, which the
// controller demo embeds in its run manifest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "ctrl/stream.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ufc::ctrl {

struct SchedulerOptions {
  /// Shared iteration pool dealt out across tenants each tick.
  int iteration_pool_per_tick = 200;
  /// Largest single grant; smaller quanta interleave tenants more fairly at
  /// the cost of more solver handoffs.
  int quantum = 50;
  /// Scheduler worker threads (including the caller; 0 = hardware
  /// concurrency). Parallelism is across tenants, never inside a solve.
  int threads = 1;
  /// Per-tenant solver configuration; the threads field is overridden to 1.
  admm::AdmgOptions admg;
};

class MultiTenantScheduler {
 public:
  explicit MultiTenantScheduler(SchedulerOptions options = {});

  /// Registers a tenant: a unique non-empty name and its tick stream. The
  /// tenant's solver is constructed from source->base_problem() and warm-
  /// starts across ticks from then on.
  void add_tenant(std::string name, std::unique_ptr<TickSource> source);

  std::size_t tenant_count() const { return tenants_.size(); }
  const std::string& tenant_name(std::size_t t) const;
  const admm::AdmgSolver& tenant_solver(std::size_t t) const;

  /// Runs one scheduler tick over every tenant whose stream is still live.
  /// Returns false — and does nothing — once all streams are exhausted.
  bool run_tick();

  /// Runs up to `max_ticks` ticks; returns how many actually ran (fewer
  /// when the streams end first).
  int run(int max_ticks);

  int ticks() const { return tick_index_; }

  /// Adds lifetime totals into `out`: a global ctrl.ticks counter plus, per
  /// tenant, ctrl.tenant.<name>.{ticks, iterations, converged_ticks,
  /// budget_exhausted, iterations_saved} counters and a .tick_iterations
  /// histogram. iterations_saved counts grant iterations handed back to the
  /// pool by early convergence — the direct measure of what warm starts buy.
  void record_metrics(obs::MetricsRegistry& out) const;

 private:
  struct Tenant {
    std::string name;
    std::unique_ptr<TickSource> source;
    std::unique_ptr<admm::AdmgSolver> solver;
    obs::Histogram tick_iterations;
    std::int64_t iterations_total = 0;
    std::int64_t iterations_saved = 0;
    int ticks = 0;
    int converged_ticks = 0;
    int budget_exhausted_ticks = 0;
    bool exhausted = false;  ///< Stream returned nullopt; tenant is done.
  };

  SchedulerOptions options_;
  util::ThreadPool pool_;
  std::vector<Tenant> tenants_;
  int tick_index_ = 0;
};

}  // namespace ufc::ctrl
