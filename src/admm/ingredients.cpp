#include "admm/ingredients.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/contract.hpp"

namespace ufc::admm {

namespace {

// ---------------------------------------------------------------------------
// Penalty policies
// ---------------------------------------------------------------------------

/// The default: rho is whatever AdmgOptions::rho says, forever. fixed()
/// lets the engine skip the penalty seam, preserving bit-identity.
class FixedPenalty final : public PenaltyPolicy {
 public:
  std::string_view name() const override { return "fixed"; }
  bool fixed() const override { return true; }
  double propose(double rho, double /*scaled_primal*/,
                 double /*scaled_dual*/) override {
    return rho;
  }
};

/// Boyd-style residual balancing (Boyd et al. 2011, §3.4.1): a large primal
/// residual means rho is too small to enforce the constraints, a large dual
/// proxy means rho is so large the iterates crawl. Both comparisons use the
/// engine's scaled (dimensionless) residuals, so the trigger ratio is
/// problem-size independent.
class ResidualBalancePenalty final : public PenaltyPolicy {
 public:
  explicit ResidualBalancePenalty(const IngredientOptions& knobs)
      : ratio_(knobs.balance_ratio),
        increase_(knobs.increase),
        decrease_(knobs.decrease),
        period_(knobs.balance_period) {
    UFC_EXPECTS(ratio_ > 1.0);
    UFC_EXPECTS(increase_ > 1.0);
    UFC_EXPECTS(decrease_ > 1.0);
    UFC_EXPECTS(period_ >= 1);
  }

  std::string_view name() const override { return "residual-balance"; }

  double propose(double rho, double scaled_primal,
                 double scaled_dual) override {
    // The window pins rho to four decades around its starting value: a
    // degenerate residual pair (dual proxy stuck at ~0 while the primal
    // stalls) would otherwise ratchet rho geometrically without bound and
    // overflow the closed-form block solves, which divide by rho.
    if (calls_ == 0) {
      floor_ = rho / kWindow;
      ceiling_ = rho * kWindow;
    }
    // Decide only every period_-th iteration: the dual proxy needs a few
    // plain steps after each rho change before it reflects the new map
    // rather than the change itself (see IngredientOptions::balance_period).
    if (++calls_ % period_ != 0) return rho;
    if (scaled_primal > ratio_ * scaled_dual)
      return std::min(rho * increase_, ceiling_);
    if (scaled_dual > ratio_ * scaled_primal)
      return std::max(rho / decrease_, floor_);
    return rho;
  }

 private:
  static constexpr double kWindow = 1e4;

  double ratio_;
  double increase_;
  double decrease_;
  int period_;
  double floor_ = 0.0;
  double ceiling_ = 0.0;
  std::uint64_t calls_ = 0;
};

// ---------------------------------------------------------------------------
// Acceleration policies
// ---------------------------------------------------------------------------

/// The default: never propose a candidate. identity() lets the engine skip
/// the acceleration seam (no iterate snapshots), preserving bit-identity.
class NoAcceleration final : public AccelerationPolicy {
 public:
  std::string_view name() const override { return "none"; }
  bool identity() const override { return true; }
  void begin(std::size_t /*size*/) override {}
  bool propose(std::span<const double> /*previous*/,
               std::span<const double> /*stepped*/,
               std::span<double> /*candidate*/) override {
    return false;
  }
  bool accept(double /*plain_residual*/,
              double /*candidate_residual*/) override {
    return true;
  }
};

/// Krasnosel'skii–Mann-style extrapolation of the whole prediction-
/// correction map: candidate = x^k + alpha (T(x^k) - x^k). The iterate's
/// equality structure survives exactly — both x^k and T(x^k) satisfy the
/// per-row routing sums, and affine combinations preserve them — while
/// inequality slack (lambda >= 0, capacity caps) may be transiently
/// violated; the next step's block projections restore it. Safeguard:
/// non-finite candidates fall back to the plain iterate.
class OverRelaxationAcceleration final : public AccelerationPolicy {
 public:
  explicit OverRelaxationAcceleration(const IngredientOptions& knobs)
      : alpha_(knobs.over_relaxation) {
    UFC_EXPECTS(alpha_ > 0.0 && alpha_ < 2.0);
  }

  std::string_view name() const override { return "over-relaxation"; }

  void begin(std::size_t /*size*/) override { fallbacks_ = 0; }

  bool propose(std::span<const double> previous,
               std::span<const double> stepped,
               std::span<double> candidate) override {
    UFC_EXPECTS(previous.size() == candidate.size() &&
                stepped.size() == candidate.size());
    for (std::size_t i = 0; i < candidate.size(); ++i)
      candidate[i] = previous[i] + alpha_ * (stepped[i] - previous[i]);
    return true;
  }

  bool accept(double /*plain_residual*/, double candidate_residual) override {
    if (std::isfinite(candidate_residual)) return true;
    ++fallbacks_;
    return false;
  }

  std::uint64_t fallbacks() const override { return fallbacks_; }

 private:
  double alpha_;
  std::uint64_t fallbacks_ = 0;
};

/// Type-II Anderson mixing over the fixed-point residual f(x) = T(x) - x:
/// keep the last `memory` difference pairs (dG_p, dF_p), solve the least-
/// squares mixing weights from the normal equations (dF' dF) gamma = dF' f_k
/// and propose  candidate = T(x^k) - dG gamma.
///
/// The normal equations are solved by Gaussian elimination WITHOUT pivoting
/// or Tikhonov regularization — deliberately: a singular Gram matrix
/// divides by zero and a near-singular one blows the weights past
/// kWeightCap, and propose() then declines to offer a candidate, counts the
/// fallback and purges the degenerate history. That makes the safeguard
/// path an ordinary, testable event rather than a numerical accident.
class AndersonAcceleration final : public AccelerationPolicy {
 public:
  explicit AndersonAcceleration(const IngredientOptions& knobs)
      : memory_(static_cast<std::size_t>(knobs.anderson_memory)),
        safeguard_(knobs.anderson_safeguard) {
    UFC_EXPECTS(knobs.anderson_memory >= 1);
    UFC_EXPECTS(safeguard_ > 0.0);
  }

  std::string_view name() const override { return "anderson"; }

  void begin(std::size_t size) override {
    size_ = size;
    dg_.assign(memory_ * size, 0.0);
    df_.assign(memory_ * size, 0.0);
    f_.assign(size, 0.0);
    prev_g_.assign(size, 0.0);
    prev_f_.assign(size, 0.0);
    gram_.assign(memory_ * memory_, 0.0);
    gamma_.assign(memory_, 0.0);
    cols_ = 0;
    next_ = 0;
    have_previous_ = false;
    fallbacks_ = 0;
  }

  bool propose(std::span<const double> previous,
               std::span<const double> stepped,
               std::span<double> candidate) override {
    UFC_EXPECTS(previous.size() == size_ && stepped.size() == size_ &&
                candidate.size() == size_);
    for (std::size_t i = 0; i < size_; ++i) f_[i] = stepped[i] - previous[i];
    if (have_previous_) {
      double* dg = dg_.data() + next_ * size_;
      double* df = df_.data() + next_ * size_;
      for (std::size_t i = 0; i < size_; ++i) {
        dg[i] = stepped[i] - prev_g_[i];
        df[i] = f_[i] - prev_f_[i];
      }
      next_ = (next_ + 1) % memory_;
      cols_ = std::min(cols_ + 1, memory_);
    }
    std::copy(stepped.begin(), stepped.end(), prev_g_.begin());
    std::copy(f_.begin(), f_.end(), prev_f_.begin());
    have_previous_ = true;
    if (cols_ == 0) return false;  // mixing needs at least one pair

    // Normal equations over the active columns (ring order is irrelevant to
    // the least-squares solution).
    for (std::size_t p = 0; p < cols_; ++p) {
      const double* dfp = df_.data() + p * size_;
      gamma_[p] = dot(dfp, f_.data());
      for (std::size_t q = p; q < cols_; ++q) {
        const double g = dot(dfp, df_.data() + q * size_);
        gram_[p * memory_ + q] = g;
        gram_[q * memory_ + p] = g;
      }
    }
    solve_in_place();

    // Degenerate-solve gate. Exactly singular Gram matrices give NaN
    // weights; NEAR-singular ones give finite but astronomical weights, and
    // the mixed candidate then teleports the multiplier blocks somewhere the
    // residual safeguard cannot see (accept() measures primal feasibility
    // only — a wild-dual candidate looks fine until the next plain step
    // explodes). Both shapes are the same event: the history no longer
    // determines a trustworthy mixture, so count the fallback and purge.
    double weight_mass = 0.0;
    for (std::size_t p = 0; p < cols_; ++p) weight_mass += std::abs(gamma_[p]);
    if (!(weight_mass <= kWeightCap)) {  // NaN fails the comparison too
      ++fallbacks_;
      reset();
      return false;
    }

    std::copy(stepped.begin(), stepped.end(), candidate.begin());
    for (std::size_t p = 0; p < cols_; ++p) {
      const double* dgp = dg_.data() + p * size_;
      const double w = gamma_[p];
      for (std::size_t i = 0; i < size_; ++i) candidate[i] -= w * dgp[i];
    }
    return true;
  }

  bool accept(double plain_residual, double candidate_residual) override {
    best_ = std::min(best_, plain_residual);
    // NaN (non-finite candidate) fails the comparison, so it always falls
    // through to the rejection path. Gating against the best residual seen
    // so far (not just the plain step's) keeps a chain of "slightly worse"
    // accepts from compounding: against the plain residual alone the bound
    // ratchets upward with the diverging trajectory and finite overflow can
    // reach the block solves before any single accept looks bad.
    if (std::isfinite(candidate_residual) &&
        candidate_residual <= safeguard_ * plain_residual &&
        candidate_residual <= safeguard_ * best_) {
      best_ = std::min(best_, candidate_residual);
      return true;
    }
    ++fallbacks_;
    // The rejected mixture means the history no longer predicts the map;
    // purge it so the divergence cannot feed the next candidates.
    reset();
    return false;
  }

  void reset() override {
    cols_ = 0;
    next_ = 0;
    have_previous_ = false;
  }

  std::uint64_t fallbacks() const override { return fallbacks_; }

 private:
  double dot(const double* a, const double* b) const {
    double total = 0.0;
    for (std::size_t i = 0; i < size_; ++i) total += a[i] * b[i];
    return total;
  }

  /// Gaussian elimination on (gram_, gamma_) without pivoting: singular
  /// systems produce non-finite gamma_ (see class comment).
  void solve_in_place() {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double pivot = gram_[k * memory_ + k];
      for (std::size_t r = k + 1; r < cols_; ++r) {
        const double factor = gram_[r * memory_ + k] / pivot;
        for (std::size_t c = k; c < cols_; ++c)
          gram_[r * memory_ + c] -= factor * gram_[k * memory_ + c];
        gamma_[r] -= factor * gamma_[k];
      }
    }
    for (std::size_t k = cols_; k-- > 0;) {
      double value = gamma_[k];
      for (std::size_t c = k + 1; c < cols_; ++c)
        value -= gram_[k * memory_ + c] * gamma_[c];
      gamma_[k] = value / gram_[k * memory_ + k];
    }
  }

  /// l1 bound on the mixing weights: well-conditioned histories produce
  /// O(1) weights, so anything beyond this is a near-singular solve.
  static constexpr double kWeightCap = 1e4;

  std::size_t memory_;
  double safeguard_;
  std::size_t size_ = 0;
  std::vector<double> dg_, df_, f_, prev_g_, prev_f_, gram_, gamma_;
  std::size_t cols_ = 0;
  std::size_t next_ = 0;
  bool have_previous_ = false;
  std::uint64_t fallbacks_ = 0;
  /// Smallest residual observed on the accepted trajectory; survives
  /// reset() because it describes the iterate, not the mixing history.
  double best_ = std::numeric_limits<double>::infinity();
};

}  // namespace

Registry<PenaltyPolicy, AdmgOptions> penalty_registry() {
  Registry<PenaltyPolicy, AdmgOptions> registry("penalty");
  registry.add("fixed", [](const AdmgOptions& /*options*/) {
    return std::unique_ptr<PenaltyPolicy>(std::make_unique<FixedPenalty>());
  });
  registry.add("residual-balance", [](const AdmgOptions& options) {
    return std::unique_ptr<PenaltyPolicy>(
        std::make_unique<ResidualBalancePenalty>(options.ingredients));
  });
  return registry;
}

Registry<AccelerationPolicy, AdmgOptions> acceleration_registry() {
  Registry<AccelerationPolicy, AdmgOptions> registry("acceleration");
  registry.add("none", [](const AdmgOptions& /*options*/) {
    return std::unique_ptr<AccelerationPolicy>(
        std::make_unique<NoAcceleration>());
  });
  registry.add("over-relaxation", [](const AdmgOptions& options) {
    return std::unique_ptr<AccelerationPolicy>(
        std::make_unique<OverRelaxationAcceleration>(options.ingredients));
  });
  registry.add("anderson", [](const AdmgOptions& options) {
    return std::unique_ptr<AccelerationPolicy>(
        std::make_unique<AndersonAcceleration>(options.ingredients));
  });
  return registry;
}

void validate_ingredients(const AdmgOptions& options) {
  const IngredientOptions& knobs = options.ingredients;
  UFC_EXPECTS(knobs.balance_ratio > 1.0);
  UFC_EXPECTS(knobs.increase > 1.0);
  UFC_EXPECTS(knobs.decrease > 1.0);
  UFC_EXPECTS(knobs.balance_period >= 1);
  UFC_EXPECTS(knobs.over_relaxation > 0.0 && knobs.over_relaxation < 2.0);
  UFC_EXPECTS(knobs.anderson_memory >= 1);
  UFC_EXPECTS(knobs.anderson_safeguard > 0.0);
  // Resolve both names so an unknown one is rejected with the registry's
  // available-name message; the built policies are discarded.
  penalty_registry().create(options.penalty, options);
  acceleration_registry().create(options.acceleration, options);
}

}  // namespace ufc::admm
