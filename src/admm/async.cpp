#include "admm/async.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"
#include "util/logging.hpp"

namespace ufc::admm {

AsyncReport solve_async_admg(const UfcProblem& original,
                             const AsyncOptions& options) {
  original.validate();
  const auto& admg = options.admg;
  UFC_EXPECTS(admg.rho > 0.0);
  UFC_EXPECTS(admg.epsilon > 0.5 && admg.epsilon <= 1.0);
  UFC_EXPECTS(options.participation > 0.0 && options.participation <= 1.0);
  UFC_EXPECTS(admg.pinning == BlockPinning::None ||
              // ufc-lint: allow(float-equal) — 1.0 is an exact sentinel
              // meaning "every agent participates", not a computed value.
              options.participation == 1.0);  // pinned baselines stay sync

  const double sigma = admg.workload_scale > 0.0
                           ? admg.workload_scale
                           : natural_workload_scale(original);
  const UfcProblem problem = scale_workload_units(original, sigma);

  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  const double rho = admg.rho;
  const double eps = admg.gaussian_back_substitution ? admg.epsilon : 1.0;

  Mat lambda(m, n, 0.0), a(m, n, 0.0), varphi(m, n, 0.0);
  Mat lambda_tilde(m, n, 0.0);  // cached predictions (stragglers reuse).
  Vec mu(n, 0.0), nu(n, 0.0), phi(n, 0.0);

  double copy_scale = 1.0;
  for (double arrival : problem.arrivals)
    copy_scale = std::max(copy_scale, arrival);
  double balance_scale = 1.0;
  for (std::size_t j = 0; j < n; ++j)
    balance_scale = std::max(
        balance_scale, problem.demand_mw(j, problem.datacenters[j].servers));

  Rng rng(options.seed);
  AsyncReport report;

  for (int k = 0; k < admg.max_iterations; ++k) {
    const Mat a_before = a;
    const Vec mu_before = mu, nu_before = nu;

    // lambda predictions: only participating front-ends refresh theirs.
    for (std::size_t i = 0; i < m; ++i) {
      const bool participates =
          options.participation >= 1.0 || rng.bernoulli(options.participation);
      if (!participates) {
        ++report.skipped_updates;
        continue;
      }
      LambdaBlockInputs in;
      in.arrival = problem.arrivals[i];
      // row_span views stay valid for the whole solve (no temporaries).
      in.latency_row = problem.latency_s.row_span(i);
      in.a_row = a.row_span(i);
      in.varphi_row = varphi.row_span(i);
      in.rho = rho;
      in.latency_weight = problem.latency_weight;
      in.utility = problem.utility.get();
      lambda_tilde.set_row(i, solve_lambda_block(in, lambda.row(i), admg.inner));
    }

    // mu / nu predictions (always run; datacenters do not straggle here).
    Vec mu_tilde(n, 0.0);
    if (admg.pinning != BlockPinning::PinMu) {
      for (std::size_t j = 0; j < n; ++j) {
        MuBlockInputs in;
        in.alpha = problem.alpha_mw(j);
        in.beta = problem.beta_mw(j);
        in.a_col_sum = a.col_sum(j);
        in.nu = nu[j];
        in.phi = phi[j];
        in.rho = rho;
        in.fuel_cell_price = problem.fuel_cell_price;
        in.mu_max = problem.datacenters[j].fuel_cell_capacity_mw;
        mu_tilde[j] = solve_mu_block(in);
      }
    }
    Vec nu_tilde(n, 0.0);
    if (admg.pinning != BlockPinning::PinNu) {
      for (std::size_t j = 0; j < n; ++j) {
        NuBlockInputs in;
        in.alpha = problem.alpha_mw(j);
        in.beta = problem.beta_mw(j);
        in.a_col_sum = a.col_sum(j);
        in.mu = mu_tilde[j];
        in.phi = phi[j];
        in.rho = rho;
        in.grid_price = problem.datacenters[j].grid_price;
        in.carbon_tons_per_mwh = problem.datacenters[j].carbon_rate / 1000.0;
        in.emission_cost = problem.datacenters[j].emission_cost.get();
        nu_tilde[j] = solve_nu_block(in);
      }
    }

    // a predictions against the cached lambda~ / varphi. The column views
    // must outlive each solve, so gather them into named buffers.
    Mat a_tilde(m, n);
    Vec varphi_col(m), lambda_col(m);
    for (std::size_t j = 0; j < n; ++j) {
      varphi.col_into(j, varphi_col);
      lambda_tilde.col_into(j, lambda_col);
      ABlockInputs in;
      in.alpha = problem.alpha_mw(j);
      in.beta = problem.beta_mw(j);
      in.mu = mu_tilde[j];
      in.nu = nu_tilde[j];
      in.phi = phi[j];
      in.varphi_col = varphi_col.span();
      in.lambda_col = lambda_col.span();
      in.rho = rho;
      in.capacity = problem.datacenters[j].servers;
      a_tilde.set_col(j, solve_a_block(in, a.col(j), admg.inner));
    }

    // Dual predictions.
    Vec phi_tilde(n);
    for (std::size_t j = 0; j < n; ++j)
      phi_tilde[j] = update_phi(phi[j], rho, problem.alpha_mw(j),
                                problem.beta_mw(j), a_tilde.col_sum(j),
                                mu_tilde[j], nu_tilde[j]);
    Mat varphi_tilde(m, n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        varphi_tilde(i, j) =
            update_varphi(varphi(i, j), rho, a_tilde(i, j), lambda_tilde(i, j));

    // Correction (identical to the synchronous solver).
    if (!admg.gaussian_back_substitution) {
      phi = std::move(phi_tilde);
      varphi = std::move(varphi_tilde);
      a = a_tilde;
      nu = std::move(nu_tilde);
      mu = std::move(mu_tilde);
    } else {
      for (std::size_t j = 0; j < n; ++j)
        phi[j] += eps * (phi_tilde[j] - phi[j]);
      for (std::size_t i = 0; i < m; ++i)
        for (std::size_t j = 0; j < n; ++j)
          varphi(i, j) += eps * (varphi_tilde(i, j) - varphi(i, j));
      Vec delta_col_sum(n, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        double delta_sum = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double delta = eps * (a_tilde(i, j) - a(i, j));
          a(i, j) += delta;
          delta_sum += delta;
        }
        delta_col_sum[j] = delta_sum;
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double beta = problem.beta_mw(j);
        const double nu_old = nu[j];
        if (admg.pinning != BlockPinning::PinNu)
          nu[j] += eps * (nu_tilde[j] - nu[j]) + beta * delta_col_sum[j];
        if (admg.pinning != BlockPinning::PinMu) {
          double correction = eps * (mu_tilde[j] - mu[j]);
          if (admg.pinning != BlockPinning::PinNu)
            correction -= (nu[j] - nu_old);
          correction += beta * delta_col_sum[j];
          mu[j] += correction;
        }
      }
    }
    lambda = lambda_tilde;

    report.iterations = k + 1;

    // Convergence: same criterion as the synchronous solver.
    double balance_residual = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      balance_residual = std::max(
          balance_residual,
          std::abs(problem.alpha_mw(j) + problem.beta_mw(j) * a.col_sum(j) -
                   mu[j] - nu[j]));
    const double copy_residual = max_abs_diff(a, lambda);
    const double change =
        std::max({max_abs_diff(a, a_before), max_abs_diff(mu, mu_before),
                  max_abs_diff(nu, nu_before)});
    if (balance_residual / balance_scale < admg.tolerance &&
        copy_residual / copy_scale < admg.tolerance &&
        change / copy_scale < admg.tolerance) {
      report.converged = true;
      break;
    }
  }

  Mat lambda_servers = lambda;
  lambda_servers *= sigma;
  report.solution.lambda = std::move(lambda_servers);
  report.solution.mu = mu;
  report.solution.nu =
      grid_draw_mw(original, report.solution.lambda, report.solution.mu);
  report.breakdown = evaluate(original, report.solution.lambda, mu);
  if (!report.converged)
    log::warn("async ADM-G did not converge in ", report.iterations,
              " iterations at participation ", options.participation);
  return report;
}

}  // namespace ufc::admm
