#include "admm/async.hpp"

#include "util/contract.hpp"

namespace ufc::admm {

AsyncReport solve_async_admg(const UfcProblem& problem,
                             const AsyncOptions& options) {
  UFC_EXPECTS(options.participation > 0.0 && options.participation <= 1.0);
  // The executor re-checks this, but validating here keeps the error at the
  // API boundary the caller actually used.
  UFC_EXPECTS(options.admg.pinning == BlockPinning::None ||
              // ufc-lint: allow(float-equal) — 1.0 is an exact sentinel
              // meaning "every agent participates", not a computed value.
              options.participation == 1.0);  // pinned baselines stay sync

  PartialParticipationExecutor executor(problem, options.admg,
                                        options.participation, options.seed);
  AdmgEngine engine(options.admg);
  AsyncReport report;
  static_cast<SolveCore&>(report) = engine.solve(executor);
  report.skipped_updates = executor.skipped_updates();
  return report;
}

}  // namespace ufc::admm
