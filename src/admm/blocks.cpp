#include "admm/blocks.hpp"

#include <algorithm>
#include <cmath>

#include "math/projections.hpp"
#include "opt/rank_one_qp.hpp"
#include "opt/projected_gradient.hpp"
#include "opt/scalar.hpp"
#include "util/contract.hpp"
#include "util/restrict.hpp"

namespace ufc::admm {

namespace {

/// Runs the plain-PG ablation inner solver. The FISTA default goes through
/// the allocation-free fista_minimize_ws path instead; Exact is dispatched
/// before reaching here.
Vec run_projected_gradient(const Vec& x0,
                           const std::function<Vec(const Vec&)>& gradient,
                           const std::function<Vec(const Vec&)>& project,
                           double lipschitz,
                           const InnerSolverOptions& options) {
  PgOptions pg;
  pg.max_iterations = options.fista.max_iterations;
  pg.tolerance = options.fista.tolerance;
  return projected_gradient(x0, gradient, project, lipschitz, pg).x;
}

}  // namespace

void solve_lambda_block_into(const LambdaBlockInputs& in,
                             std::span<const double> warm_start,
                             std::span<double> out, BlockWorkspace& ws,
                             const InnerSolverOptions& options) {
  UFC_EXPECTS(in.utility != nullptr);
  UFC_EXPECTS(in.rho > 0.0);
  UFC_EXPECTS(in.arrival >= 0.0);
  const std::size_t n = in.latency_row.size();
  UFC_EXPECTS(in.a_row.size() == n && in.varphi_row.size() == n);
  UFC_EXPECTS(warm_start.size() == n);
  UFC_EXPECTS(out.size() == n);

  // A front-end with no arrivals routes nothing.
  if (in.arrival <= 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }

  // Exact path: with the paper's quadratic utility the sub-problem is
  //   (w/A)(lambda . L)^2 + (rho/2)||lambda||^2 - (varphi + rho a).lambda
  // over the simplex — an identity-plus-rank-one QP.
  if (options.method == InnerMethod::Exact && in.utility->is_quadratic()) {
    RankOneQp& qp = ws.qp;  // coefficient buffers reused across solves
    qp.curvature = 2.0 * in.latency_weight / in.arrival;
    qp.direction.assign(in.latency_row);
    qp.tikhonov = in.rho;
    qp.linear.resize(n);
    for (std::size_t j = 0; j < n; ++j)
      qp.linear[j] = -in.varphi_row[j] - in.rho * in.a_row[j];
    const Vec solution = solve_rank_one_qp_simplex(qp, in.arrival);
    std::copy(solution.begin(), solution.end(), out.begin());
    return;
  }

  // Gradient of
  //   f(lambda) = -w A u(l) - sum_j varphi_j lambda_j
  //               + (rho/2) sum_j (a_j - lambda_j)^2,
  // with l = dot(lambda, L) / A:
  //   df/dlambda_j = -w u'(l) L_j - varphi_j - rho (a_j - lambda_j).

  // Hessian = (w |u''| / A) L L^T + rho I  =>  exact Lipschitz bound.
  double latency_norm_sq = 0.0;
  double latency_max = 0.0;
  for (double l : in.latency_row) {
    latency_norm_sq += l * l;
    latency_max = std::max(latency_max, l);
  }
  const double curvature = in.utility->max_curvature(latency_max);
  const double lipschitz =
      in.latency_weight * curvature * latency_norm_sq / in.arrival + in.rho;

  if (options.method == InnerMethod::ProjectedGradient) {
    auto gradient = [&](const Vec& lambda) {
      double weighted = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        weighted += lambda[j] * in.latency_row[j];
      const double avg_latency = weighted / in.arrival;
      const double uprime = in.utility->derivative(avg_latency);
      Vec g(n);
      for (std::size_t j = 0; j < n; ++j) {
        g[j] = -in.latency_weight * uprime * in.latency_row[j] -
               in.varphi_row[j] - in.rho * (in.a_row[j] - lambda[j]);
      }
      return g;
    };
    auto project = [&](const Vec& x) { return project_simplex(x, in.arrival); };
    const Vec solution = run_projected_gradient(Vec(warm_start), gradient,
                                                project, lipschitz, options);
    std::copy(solution.begin(), solution.end(), out.begin());
    return;
  }

  // FISTA (default, and the Exact fallback for non-quadratic utilities):
  // allocation-free against the workspace. The gradient writes into a
  // workspace buffer that never aliases the inputs, so the pointers are
  // hoisted with UFC_RESTRICT and both loops (one reduction, one branchless
  // elementwise write) auto-vectorize; the arithmetic order matches the
  // span-indexed form bit for bit.
  auto gradient_into = [&](const Vec& lambda, Vec& g) {
    const double* UFC_RESTRICT lam = lambda.data();
    const double* UFC_RESTRICT lat = in.latency_row.data();
    const double* UFC_RESTRICT varphi = in.varphi_row.data();
    const double* UFC_RESTRICT a = in.a_row.data();
    double* UFC_RESTRICT grad = g.data();
    double weighted = 0.0;
    for (std::size_t j = 0; j < n; ++j) weighted += lam[j] * lat[j];
    const double avg_latency = weighted / in.arrival;
    const double uprime = in.utility->derivative(avg_latency);
    for (std::size_t j = 0; j < n; ++j) {
      grad[j] = -in.latency_weight * uprime * lat[j] - varphi[j] -
                in.rho * (a[j] - lam[j]);
    }
  };
  auto project_in_place = [&](Vec& x) {
    if (options.projection == SimplexProjection::Condat) {
      project_simplex_condat_into(x.span(), in.arrival, x.span(),
                                  ws.sort_scratch);
    } else {
      project_simplex_into(x.span(), in.arrival, x.span(), ws.sort_scratch);
    }
  };
  fista_minimize_ws(warm_start, gradient_into, project_in_place, lipschitz,
                    options.fista, ws.fista);
  std::copy(ws.fista.x.begin(), ws.fista.x.end(), out.begin());
}

// ufc-lint: allow(expects-guard) — thin wrapper; solve_lambda_block_into
// guards every input before any work happens.
Vec solve_lambda_block(const LambdaBlockInputs& in, const Vec& warm_start,
                       const InnerSolverOptions& options) {
  Vec out(in.latency_row.size());
  BlockWorkspace ws;
  solve_lambda_block_into(in, warm_start.span(), out.span(), ws, options);
  return out;
}

double solve_mu_block(const MuBlockInputs& in) {
  UFC_EXPECTS(in.rho > 0.0);
  UFC_EXPECTS(in.mu_max >= 0.0);
  // Minimize (p0 - phi) mu + (rho/2)(c - mu)^2 over [0, mu_max],
  // c = alpha + beta * sum_i a_ij - nu. Unconstrained optimum:
  //   mu* = c + (phi - p0) / rho, then clamp.
  const double c = in.alpha + in.beta * in.a_col_sum - in.nu;
  const double unconstrained = c + (in.phi - in.fuel_cell_price) / in.rho;
  return std::clamp(unconstrained, 0.0, in.mu_max);
}

double solve_nu_block(const NuBlockInputs& in) {
  UFC_EXPECTS(in.emission_cost != nullptr);
  UFC_EXPECTS(in.rho > 0.0);
  UFC_EXPECTS(in.carbon_tons_per_mwh >= 0.0);

  const double c = in.alpha + in.beta * in.a_col_sum - in.mu;
  const double kappa = in.carbon_tons_per_mwh;

  // Derivative of V(kappa nu) + (p - phi) nu + (rho/2)(c - nu)^2:
  //   h(nu) = kappa V'(kappa nu) + p - phi + rho (nu - c),
  // monotone nondecreasing (V convex), so bisection finds the minimizer.
  auto h = [&](double nu) {
    return kappa * in.emission_cost->derivative(kappa * nu) + in.grid_price -
           in.phi + in.rho * (nu - c);
  };

  if (h(0.0) >= 0.0) return 0.0;
  // h(hi) > 0 for hi = max(0, c + (phi - p)/rho) + 1 because V' >= 0.
  const double hi = std::max(0.0, c + (in.phi - in.grid_price) / in.rho) + 1.0;
  return monotone_root(h, 0.0, hi);
}

void solve_a_block_into(const ABlockInputs& in,
                        std::span<const double> warm_start,
                        std::span<double> out, BlockWorkspace& ws,
                        const InnerSolverOptions& options) {
  UFC_EXPECTS(in.rho > 0.0);
  UFC_EXPECTS(in.capacity >= 0.0);
  const std::size_t m = in.varphi_col.size();
  UFC_EXPECTS(in.lambda_col.size() == m);
  UFC_EXPECTS(warm_start.size() == m);
  UFC_EXPECTS(out.size() == m);

  // Exact path: the a sub-problem is always an identity-plus-rank-one QP,
  //   (rho beta^2 / 2)(1 . a)^2 + (rho/2)||a||^2 + g . a,  with
  //   g_i = phi beta + varphi_i + rho beta (alpha - mu - nu) - rho lambda_i.
  if (options.method == InnerMethod::Exact) {
    const double shift = in.alpha - in.mu - in.nu;
    RankOneQp& qp = ws.qp;
    qp.curvature = in.rho * in.beta * in.beta;
    qp.direction.resize(m);
    qp.direction.fill(1.0);
    qp.tikhonov = in.rho;
    qp.linear.resize(m);
    for (std::size_t i = 0; i < m; ++i)
      qp.linear[i] = in.phi * in.beta + in.varphi_col[i] +
                     in.rho * in.beta * shift - in.rho * in.lambda_col[i];
    const Vec solution = solve_rank_one_qp_capped(qp, in.capacity);
    std::copy(solution.begin(), solution.end(), out.begin());
    return;
  }

  // Gradient of
  //   f(a) = phi beta sum_i a_i + sum_i varphi_i a_i
  //          + (rho/2)(alpha + beta sum_i a_i - mu - nu)^2
  //          + (rho/2) sum_i (a_i - lambda_i)^2:
  //   df/da_i = phi beta + varphi_i + rho beta (alpha + beta S - mu - nu)
  //             + rho (a_i - lambda_i),  S = sum_i a_i.

  // Hessian = rho (I + beta^2 1 1^T)  =>  L = rho (1 + beta^2 M).
  const double lipschitz =
      in.rho * (1.0 + in.beta * in.beta * static_cast<double>(m));

  if (options.method == InnerMethod::ProjectedGradient) {
    auto gradient = [&](const Vec& a) {
      double a_sum = 0.0;
      for (double x : a) a_sum += x;
      const double balance = in.alpha + in.beta * a_sum - in.mu - in.nu;
      Vec g(m);
      for (std::size_t i = 0; i < m; ++i) {
        g[i] = in.phi * in.beta + in.varphi_col[i] +
               in.rho * in.beta * balance + in.rho * (a[i] - in.lambda_col[i]);
      }
      return g;
    };
    auto project = [&](const Vec& x) {
      return project_capped_simplex(x, in.capacity);
    };
    const Vec solution = run_projected_gradient(Vec(warm_start), gradient,
                                                project, lipschitz, options);
    std::copy(solution.begin(), solution.end(), out.begin());
    return;
  }

  // FISTA (default): allocation-free against the workspace. Same
  // restrict-hoisting as the lambda block; bit-identical arithmetic.
  auto gradient_into = [&](const Vec& a, Vec& g) {
    const double* UFC_RESTRICT av = a.data();
    const double* UFC_RESTRICT varphi = in.varphi_col.data();
    const double* UFC_RESTRICT lam = in.lambda_col.data();
    double* UFC_RESTRICT grad = g.data();
    double a_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) a_sum += av[i];
    const double balance = in.alpha + in.beta * a_sum - in.mu - in.nu;
    for (std::size_t i = 0; i < m; ++i) {
      grad[i] = in.phi * in.beta + varphi[i] + in.rho * in.beta * balance +
                in.rho * (av[i] - lam[i]);
    }
  };
  auto project_in_place = [&](Vec& x) {
    if (options.projection == SimplexProjection::Condat) {
      project_capped_simplex_condat_into(x.span(), in.capacity, x.span(),
                                         ws.sort_scratch);
    } else {
      project_capped_simplex_into(x.span(), in.capacity, x.span(),
                                  ws.sort_scratch);
    }
  };
  fista_minimize_ws(warm_start, gradient_into, project_in_place, lipschitz,
                    options.fista, ws.fista);
  std::copy(ws.fista.x.begin(), ws.fista.x.end(), out.begin());
}

// ufc-lint: allow(expects-guard) — thin wrapper; solve_a_block_into guards
// every input before any work happens.
Vec solve_a_block(const ABlockInputs& in, const Vec& warm_start,
                  const InnerSolverOptions& options) {
  Vec out(in.varphi_col.size());
  BlockWorkspace ws;
  solve_a_block_into(in, warm_start.span(), out.span(), ws, options);
  return out;
}

// ufc-lint: allow(expects-guard) — pure arithmetic on scalars already
// validated by the solver; this is the per-datacenter inner-loop dual update.
double update_phi(double phi, double rho, double alpha, double beta,
                  double a_col_sum, double mu, double nu) {
  return phi + rho * (alpha + beta * a_col_sum - mu - nu);
}

// ufc-lint: allow(expects-guard) — same as update_phi: validated-scalar
// arithmetic on the hot path.
double update_varphi(double varphi, double rho, double a, double lambda) {
  return varphi + rho * (a - lambda);
}

}  // namespace ufc::admm
