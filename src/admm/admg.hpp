// Distributed 4-block ADM-G for UFC maximization (paper §III-C).
//
// Solves the ADMM form (13) of the UFC program with the prediction-
// correction scheme of He, Tao & Yuan (ADM-G): an alternating ADMM pass in
// the forward order lambda -> mu -> nu -> a -> duals, followed by a Gaussian
// back substitution correction in the backward order. Unlike plain
// multi-block ADMM, ADM-G provably converges without strong convexity —
// which matters here because real carbon-cost policies (flat taxes, linear
// cap-and-trade) are merely convex.
//
// The Grid and FuelCell baseline strategies of the paper are the same
// program with one block pinned (mu = 0, respectively nu = 0); the solver
// supports both via BlockPinning, specializing the back-substitution to the
// remaining blocks.
//
// AdmgSolver is the synchronous in-process driver: a thin facade over
// AdmgEngine + InProcessExecutor (engine.hpp), which own the iteration
// skeleton and the block arithmetic respectively. The options/trace/report
// vocabulary (AdmgOptions, AdmgTrace, SolveCore) lives in engine.hpp and is
// shared by every driver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "admm/engine.hpp"

namespace ufc::admm {

/// Report of a synchronous in-process solve; all fields live in the shared
/// SolveCore.
struct AdmgReport : SolveCore {};

class AdmgSolver {
 public:
  /// Validates the problem; for PinNu additionally requires every
  /// datacenter's fuel-cell capacity to cover its peak demand.
  AdmgSolver(const UfcProblem& problem, AdmgOptions options = {})
      : exec_(problem, options) {}

  /// Runs ADM-G from the paper's cold start (all variables zero) until the
  /// scaled primal residuals drop below tolerance or max_iterations.
  AdmgReport solve();

  /// Runs ADM-G from the *current* state (primal and dual) instead of the
  /// cold start. With `set_problem`, this warm-starts consecutive slots:
  /// adjacent hours have similar prices/arrivals, so the previous optimum
  /// and duals are an excellent initial point (see the warm-start bench).
  AdmgReport solve_warm();

  /// solve_warm under a per-call iteration budget (the receding-horizon
  /// tick: src/ctrl re-solves every tick with `max_iterations` capped at the
  /// tick deadline). Returns the best-so-far iterate with report.status
  /// telling Converged from BudgetExhausted; the executor keeps that
  /// iterate, so the next call resumes exactly where this one stopped.
  /// Under the default ingredient composition the budget seam never touches
  /// the iteration arithmetic: N budgeted calls of k iterations produce
  /// iterates bit-identical to one (N*k)-iteration solve_warm.
  AdmgReport solve_budgeted(int max_iterations);

  /// Back to the paper's cold start (all variables zero); the next
  /// solve_warm behaves like solve(). The receding-horizon cold-restart
  /// baseline re-solves every tick from here.
  void reset() { exec_.reset(); }

  /// Swaps in a new slot's problem while keeping the iterate as the warm
  /// start. Dimensions (M, N) must match; the workload normalization is
  /// kept from construction so iterates remain directly comparable.
  void set_problem(const UfcProblem& problem) { exec_.set_problem(problem); }

  /// Applies a sparse tick update to the live problem (engine.hpp
  /// ProblemUpdate): validates the batch, mutates the problem in place,
  /// invalidates screening/certification caches and projects the warm
  /// iterate back into the primal box if a capacity shrank under it.
  void apply_update(const ProblemUpdate& update) {
    exec_.apply_update(update);
  }

  /// Seeds the iterate from a caller-unit solution (e.g. a centralized
  /// oracle's plan): routing and its copy take solution.lambda normalized,
  /// mu/nu carry over, and the multipliers start from the plan's KKT prices
  /// (phi_j = the dispatched source's marginal cost, varphi = -beta phi).
  /// The next solve_warm continues from this point — the warm-start
  /// consumer of the second-order backend.
  void seed(const UfcSolution& solution) { exec_.seed(solution); }

  /// One prediction + correction step on the current state. Exposed so
  /// tests can compare the message-passing runtime iterate-by-iterate.
  void step() { exec_.step(0); }

  // Read access to the current iterate (post-correction), in *normalized*
  // workload units (multiply routing variables by workload_scale() to get
  // servers). The distributed runtime exposes the same normalized iterate,
  // so the two are directly comparable.
  const Mat& lambda() const { return exec_.lambda(); }
  const Vec& mu() const { return exec_.mu(); }
  const Vec& nu() const { return exec_.nu(); }
  const Mat& a() const { return exec_.a(); }
  const Vec& phi() const { return exec_.phi(); }
  const Mat& varphi() const { return exec_.varphi(); }

  /// Residuals of the current iterate (normalized workload units / MW).
  double balance_residual() const { return exec_.balance_residual(); }
  double copy_residual() const { return exec_.copy_residual(); }
  /// Largest per-variable movement of the last step (the ADMM dual-residual
  /// proxy), in normalized units.
  double last_change() const { return exec_.last_change(); }
  /// True when both scaled primal residuals and the scaled last change are
  /// below tolerance.
  bool is_converged() const { return exec_.is_converged(); }

  double workload_scale() const { return exec_.workload_scale(); }
  /// The normalized problem the solver operates on.
  const UfcProblem& problem() const { return exec_.problem(); }
  const AdmgOptions& options() const { return exec_.options(); }

  /// True iff every entry of every block (primal and dual) is finite.
  bool iterate_finite() const { return exec_.iterate_finite(); }

  /// Serializes the complete iterate (primal, dual, last-change tracking)
  /// with the shared wire codec. A restored solver continues bit-identically
  /// to one that never paused.
  std::vector<std::byte> checkpoint() const { return exec_.checkpoint(); }
  /// Restores a checkpoint() image. The solver must hold a problem with the
  /// same dimensions and workload normalization; anything else (including a
  /// truncated or mutated image) throws ufc::ContractViolation.
  void restore(std::span<const std::byte> bytes) { exec_.restore(bytes); }

 private:
  InProcessExecutor exec_;
};

/// Convenience wrapper: construct, solve, return the report.
AdmgReport solve_admg(const UfcProblem& problem, const AdmgOptions& options = {});

}  // namespace ufc::admm
