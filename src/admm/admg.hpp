// Distributed 4-block ADM-G for UFC maximization (paper §III-C).
//
// Solves the ADMM form (13) of the UFC program with the prediction-
// correction scheme of He, Tao & Yuan (ADM-G): an alternating ADMM pass in
// the forward order lambda -> mu -> nu -> a -> duals, followed by a Gaussian
// back substitution correction in the backward order. Unlike plain
// multi-block ADMM, ADM-G provably converges without strong convexity —
// which matters here because real carbon-cost policies (flat taxes, linear
// cap-and-trade) are merely convex.
//
// The Grid and FuelCell baseline strategies of the paper are the same
// program with one block pinned (mu = 0, respectively nu = 0); the solver
// supports both via BlockPinning, specializing the back-substitution to the
// remaining blocks.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "admm/blocks.hpp"
#include "admm/watchdog.hpp"
#include "model/breakdown.hpp"
#include "model/problem.hpp"
#include "util/thread_pool.hpp"

namespace ufc::admm {

/// Which block, if any, is pinned to zero (paper §IV-B baselines).
enum class BlockPinning {
  None,   ///< Hybrid: full joint optimization.
  PinMu,  ///< Grid strategy: mu_j = 0 for all j.
  PinNu,  ///< FuelCell strategy: nu_j = 0 for all j (needs full fuel-cell capacity).
};

struct AdmgOptions {
  /// Penalty parameter. The paper reports rho = 0.3 for its (unstated)
  /// variable scaling; with our mean-arrival workload normalization the
  /// well-conditioned value is ~10 (see the rho-sweep ablation bench, which
  /// also confirms every rho reaches the same objective).
  double rho = 10.0;
  double epsilon = 1.0;   ///< Back-substitution relaxation, in (0.5, 1].
  int max_iterations = 2000;
  /// Converged when both scaled primal residuals and the scaled
  /// successive-iterate change (the ADMM dual residual proxy) fall below
  /// this.
  double tolerance = 1e-4;
  /// Workload-unit normalization. ADMM's conditioning depends on the ratio
  /// between rho and the objective curvature; with lambda in raw "servers"
  /// (hundreds to thousands) the paper's rho = 0.3 dwarfs the utility
  /// curvature and the duals crawl. We therefore solve in normalized units
  /// lambda' = lambda / sigma with sigma = mean arrival (<= 0 picks that
  /// default), which leaves the objective value invariant and makes
  /// rho = 0.3 well-conditioned. Set to 1 to disable.
  double workload_scale = 0.0;
  /// false: plain (uncorrected) 4-block ADMM — the ablation the paper's
  /// choice of ADM-G guards against.
  bool gaussian_back_substitution = true;
  InnerSolverOptions inner;
  BlockPinning pinning = BlockPinning::None;
  /// Record per-iteration residuals/objective (costs one evaluate() per
  /// iteration; cheap at paper scale).
  bool record_trace = true;
  /// Worker threads for the per-front-end and per-datacenter passes of each
  /// step (the count includes the calling thread). 1 = serial (default);
  /// 0 = std::thread::hardware_concurrency(). Iterates are bit-identical
  /// for every thread count: the passes split into deterministic contiguous
  /// chunks whose items write disjoint outputs.
  int threads = 1;
  /// Solver-health watchdog (shared with the distributed runtime; see
  /// docs/ROBUSTNESS.md). The default checks finiteness only; stall
  /// detection is opt-in via watchdog.stall_window. The watchdog never
  /// modifies iterates, so healthy runs are bit-identical with it on.
  WatchdogOptions watchdog;
  /// When the watchdog trips, re-solve with the centralized reference
  /// solver and return its plan instead of the untrusted iterate.
  bool fallback_to_centralized = false;
};

/// Per-iteration diagnostics.
struct AdmgTrace {
  std::vector<double> balance_residual;  ///< max_j |alpha+beta*sum a-mu-nu|, MW.
  std::vector<double> copy_residual;     ///< max_ij |a_ij - lambda_ij|, servers.
  std::vector<double> objective;         ///< UFC at (lambda^k, mu^k).
};

struct AdmgReport {
  UfcSolution solution;
  UfcBreakdown breakdown;       ///< Evaluated at the returned solution.
  int iterations = 0;
  bool converged = false;
  double balance_residual = 0.0;  ///< Final scaled-residual inputs, raw units.
  double copy_residual = 0.0;
  /// Healthy unless the solve was cut short by the watchdog.
  WatchdogVerdict watchdog_verdict = WatchdogVerdict::Healthy;
  /// True when the returned solution came from the centralized fallback.
  bool fallback_centralized = false;
  AdmgTrace trace;
};

/// The default workload normalization sigma: the mean arrival, floored at 1.
double natural_workload_scale(const UfcProblem& problem);

/// Returns an equivalent problem in normalized workload units
/// lambda' = lambda / sigma: arrivals and server counts divided by sigma,
/// per-server watts and the latency weight multiplied by sigma. The UFC
/// objective value of corresponding points is identical.
UfcProblem scale_workload_units(const UfcProblem& problem, double sigma);

/// In-place variant of scale_workload_units: rescales `problem` directly
/// without copying it (the per-slot warm-start path swaps problems every
/// simulated hour, where the copy was measurable).
void scale_workload_units_in_place(UfcProblem& problem, double sigma);

class AdmgSolver {
 public:
  /// Validates the problem; for PinNu additionally requires every
  /// datacenter's fuel-cell capacity to cover its peak demand.
  AdmgSolver(const UfcProblem& problem, AdmgOptions options = {});

  /// Runs ADM-G from the paper's cold start (all variables zero) until the
  /// scaled primal residuals drop below tolerance or max_iterations.
  AdmgReport solve();

  /// Runs ADM-G from the *current* state (primal and dual) instead of the
  /// cold start. With `set_problem`, this warm-starts consecutive slots:
  /// adjacent hours have similar prices/arrivals, so the previous optimum
  /// and duals are an excellent initial point (see the warm-start bench).
  AdmgReport solve_warm();

  /// Swaps in a new slot's problem while keeping the iterate as the warm
  /// start. Dimensions (M, N) must match; the workload normalization is
  /// kept from construction so iterates remain directly comparable.
  void set_problem(const UfcProblem& problem);

  /// One prediction + correction step on the current state; returns the
  /// (unscaled) residuals after the step. Exposed so tests can compare the
  /// message-passing runtime iterate-by-iterate.
  void step();

  // Read access to the current iterate (post-correction), in *normalized*
  // workload units (multiply routing variables by workload_scale() to get
  // servers). The distributed runtime exposes the same normalized iterate,
  // so the two are directly comparable.
  const Mat& lambda() const { return lambda_; }
  const Vec& mu() const { return mu_; }
  const Vec& nu() const { return nu_; }
  const Mat& a() const { return a_; }
  const Vec& phi() const { return phi_; }
  const Mat& varphi() const { return varphi_; }

  /// Residuals of the current iterate (normalized workload units / MW).
  double balance_residual() const;
  double copy_residual() const;
  /// Largest per-variable movement of the last step (the ADMM dual-residual
  /// proxy), in normalized units.
  double last_change() const { return last_change_; }
  /// True when both scaled primal residuals and the scaled last change are
  /// below tolerance.
  bool is_converged() const;

  double workload_scale() const { return sigma_; }
  /// The normalized problem the solver operates on.
  const UfcProblem& problem() const { return problem_; }
  const AdmgOptions& options() const { return options_; }

  /// True iff every entry of every block (primal and dual) is finite.
  bool iterate_finite() const;

  /// Serializes the complete iterate (primal, dual, last-change tracking)
  /// with the shared wire codec. A restored solver continues bit-identically
  /// to one that never paused.
  std::vector<std::byte> checkpoint() const;
  /// Restores a checkpoint() image. The solver must hold a problem with the
  /// same dimensions and workload normalization; anything else (including a
  /// truncated or mutated image) throws ufc::ContractViolation.
  void restore(std::span<const std::byte> bytes);

 private:
  /// Per-worker scratch: block-solver workspace plus the column gather
  /// buffers of the fused datacenter pass. One instance per pool thread,
  /// indexed by parallel_for_chunks' chunk index; every buffer reaches its
  /// steady size in reset() and is never reallocated inside step().
  struct WorkerScratch {
    BlockWorkspace blocks;
    Vec varphi_col, lambda_col, a_col, a_new;
  };

  void reset();
  void update_residual_scales();

  UfcProblem original_;  ///< As given (for the final evaluation).
  UfcProblem problem_;   ///< Workload-normalized.
  AdmgOptions options_;
  double sigma_ = 1.0;
  std::size_t m_ = 0;  ///< Front-ends.
  std::size_t n_ = 0;  ///< Datacenters.

  Mat lambda_, a_, varphi_;
  Vec mu_, nu_, phi_;
  double last_change_ = 0.0;
  bool stepped_ = false;        ///< last_change_ is meaningful only after a step.
  double balance_scale_ = 1.0;  ///< Residual normalization, MW.
  double copy_scale_ = 1.0;     ///< Residual normalization, normalized units.

  // Step workspace (hoisted out of step(); see reset()).
  util::ThreadPool pool_;
  Mat lambda_tilde_;                   ///< Swapped with lambda_ each step.
  Vec a_col_sum_;                      ///< Per-step cache of a^k column sums.
  std::vector<WorkerScratch> scratch_; ///< One per pool thread.
  std::vector<double> chunk_change_;   ///< Per-chunk last-change maxima.
};

/// Convenience wrapper: construct, solve, return the report.
AdmgReport solve_admg(const UfcProblem& problem, const AdmgOptions& options = {});

}  // namespace ufc::admm
