// Pluggable solver ingredients: penalty schedule and iterate acceleration.
//
// The engine's solve loop (engine.cpp) is deliberately policy-agnostic — it
// moves buffers and calls the two abstract interfaces below; every update
// rule lives in this translation unit's concrete policies, created
// exclusively through the admm::Registry seam (registry-confinement analyzer
// rule). Built-in compositions (docs/SOLVER_INGREDIENTS.md):
//
//   penalty       "fixed"             rho never changes (default; the pinned
//                                     bit-identical baseline behavior)
//                 "residual-balance"  Boyd-style adaptive rho: increase when
//                                     the primal residual dominates the dual
//                                     proxy, decrease in the mirrored case,
//                                     clamped to a fixed window around the
//                                     starting rho. The duals are never
//                                     rescaled: the engine runs the unscaled
//                                     convention y += rho (a - lambda), under
//                                     which phi/varphi are rho-independent
//                                     prices.
//   acceleration  "none"              accept the plain step (default)
//                 "over-relaxation"   x^{k+1} = x^k + alpha (T(x^k) - x^k),
//                                     alpha in (0, 2)
//                 "anderson"          type-II Anderson mixing over a bounded
//                                     history of residual pairs, with a
//                                     safeguarded fallback to the plain
//                                     iterate on non-finite candidates or
//                                     residual growth.
//
// The per-solve protocol: begin(size) resets history; each iteration the
// engine calls propose(previous, stepped, candidate); if a candidate is
// proposed, the engine installs it, measures its scaled residual (NaN when
// the candidate is non-finite) and asks accept(plain, candidate) — a
// rejection counts a fallback, purges poisoned history, and the engine
// restores the plain iterate.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "admm/engine.hpp"
#include "admm/registry.hpp"

namespace ufc::admm {

/// Per-iteration penalty (rho) schedule.
class PenaltyPolicy {
 public:
  virtual ~PenaltyPolicy() = default;
  virtual std::string_view name() const = 0;
  /// True when the policy never changes rho; the engine then skips the
  /// penalty seam entirely (the bit-identity fast path).
  virtual bool fixed() const { return false; }
  /// Proposes the penalty for the next iteration. `scaled_primal` is the
  /// larger of the scaled balance and copy residuals, `scaled_dual` the
  /// scaled last-change (the ADMM dual-residual proxy). Returning `rho`
  /// unchanged (exactly) keeps the current penalty.
  virtual double propose(double rho, double scaled_primal,
                         double scaled_dual) = 0;
};

/// Iterate-level acceleration over the executor's flat iterate.
class AccelerationPolicy {
 public:
  virtual ~AccelerationPolicy() = default;
  virtual std::string_view name() const = 0;
  /// True when the policy never proposes a candidate; the engine then skips
  /// the acceleration seam entirely (the bit-identity fast path).
  virtual bool identity() const { return false; }
  /// Resets mixing history (and the fallback counter) for a solve over a
  /// flat iterate of `size` entries.
  virtual void begin(std::size_t size) = 0;
  /// Given the pre-step iterate and the plain stepped iterate T(previous),
  /// writes an accelerated candidate and returns true; returning false
  /// keeps the plain iterate for this iteration (history is still
  /// recorded). All three spans have the begin() size.
  virtual bool propose(std::span<const double> previous,
                       std::span<const double> stepped,
                       std::span<double> candidate) = 0;
  /// Safeguard: keep or reject the proposed candidate. `candidate_residual`
  /// is the executor's scaled residual at the candidate — NaN when the
  /// candidate is non-finite, which no comparison accepts. Rejection counts
  /// a fallback and purges any history the rejected candidate poisoned; the
  /// engine then restores the plain iterate.
  virtual bool accept(double plain_residual, double candidate_residual) = 0;
  /// Purges any mixing history while keeping the fallback count. The engine
  /// calls this whenever the fixed-point map changes under the policy — a
  /// penalty update reshapes every block proximal step, so residual pairs
  /// recorded under the old rho must not be mixed with pairs from the new
  /// one.
  virtual void reset() {}
  /// Safeguard fallbacks since begin().
  virtual std::uint64_t fallbacks() const { return 0; }
};

/// The penalty-policy seam registry with the built-ins ("fixed",
/// "residual-balance") registered. Built per call — no namespace-scope
/// state — so callers may freely extend their copy.
Registry<PenaltyPolicy, AdmgOptions> penalty_registry();

/// The acceleration seam registry with the built-ins ("none",
/// "over-relaxation", "anderson") registered.
Registry<AccelerationPolicy, AdmgOptions> acceleration_registry();

/// Validates every ingredient knob domain (unconditionally, so a typo in a
/// currently-unused knob still surfaces) and resolves both names through
/// the registries (unknown names throw with the available-name list).
/// Called by the executor constructors and mirrored by options_from_config.
void validate_ingredients(const AdmgOptions& options);

}  // namespace ufc::admm
