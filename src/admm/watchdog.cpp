#include "admm/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contract.hpp"

namespace ufc::admm {

SolverWatchdog::SolverWatchdog(const WatchdogOptions& options)
    : options_(options) {
  UFC_EXPECTS(options_.stall_window >= 0);
  UFC_EXPECTS(options_.min_decrease >= 0.0 && options_.min_decrease < 1.0);
  reset();
}

void SolverWatchdog::reset() {
  verdict_ = WatchdogVerdict::Healthy;
  best_ = std::numeric_limits<double>::infinity();
  stalled_observations_ = 0;
  observations_ = 0;
}

WatchdogVerdict SolverWatchdog::observe(double scaled_balance,
                                        double scaled_copy,
                                        bool iterates_finite) {
  if (tripped()) return verdict_;
  ++observations_;

  if (options_.check_finite &&
      (!iterates_finite || !std::isfinite(scaled_balance) ||
       !std::isfinite(scaled_copy))) {
    verdict_ = WatchdogVerdict::NonFinite;
    return verdict_;
  }

  if (options_.stall_window > 0) {
    const double metric = std::max(scaled_balance, scaled_copy);
    if (metric < best_ * (1.0 - options_.min_decrease)) {
      best_ = metric;
      stalled_observations_ = 0;
    } else {
      ++stalled_observations_;
      if (stalled_observations_ >= options_.stall_window)
        verdict_ = WatchdogVerdict::Stalled;
    }
  }
  return verdict_;
}

}  // namespace ufc::admm
