// Server right-sizing extension (paper §II-C Remark).
//
// The base model keeps every server powered ("reliability is more of a
// concern than shutting down idle servers"), so idle power alpha_j is fixed.
// The paper notes the model "can be easily extended to incorporate the
// choice of shutting down the idle servers": the active-server count s_j
// becomes a decision with  sum_i lambda_ij <= s_j <= S_j^max.
//
// We implement that extension by alternating two convex steps:
//   1. right-size: for fixed routing, the cost is increasing in s_j, so
//      s_j* = clamp(headroom * load_j, floor_j, S_j^max)  in closed form;
//   2. re-solve: run ADM-G on the problem with the shrunken fleets.
// Each step cannot decrease UFC given the other's variables, and in practice
// the loop settles in a handful of rounds (tests assert monotonicity and
// convergence; an ablation bench quantifies the savings).
#pragma once

#include <vector>

#include "admm/strategy.hpp"

namespace ufc::admm {

struct RightSizingOptions {
  /// Keep at least this fraction of each fleet powered (reliability floor).
  double min_active_fraction = 0.1;
  /// Active servers per unit of routed load (>= 1; slack for load spikes).
  double headroom = 1.05;
  /// Alternating rounds (right-size <-> re-route).
  int max_rounds = 10;
  /// Stop when UFC improves by less than this relative amount in a round.
  double relative_tolerance = 1e-5;
};

struct RightSizedReport {
  AdmgReport final_report;       ///< Solve at the final fleet sizes.
  Vec active_servers;            ///< s_j per datacenter.
  std::vector<double> ufc_per_round;  ///< UFC trajectory (non-decreasing).
  int rounds = 0;
  bool converged = false;
};

/// Closed-form right-sizing step: optimal active servers for a fixed
/// routing. `lambda` must be (M x N) in servers.
Vec right_size_servers(const UfcProblem& problem, const Mat& lambda,
                       const RightSizingOptions& options = {});

/// Returns a copy of `problem` with each datacenter's fleet (and its
/// fuel-cell capacity cap, which the paper ties to the fleet's peak power)
/// replaced by `active` servers.
UfcProblem with_active_servers(const UfcProblem& problem, const Vec& active);

/// Jointly optimizes routing, fuel-cell dispatch and fleet sizes for one
/// slot under `strategy` by alternating right-sizing and ADM-G.
RightSizedReport solve_right_sized(const UfcProblem& problem,
                                   Strategy strategy = Strategy::Hybrid,
                                   AdmgOptions admg_options = {},
                                   const RightSizingOptions& options = {});

}  // namespace ufc::admm
