#include "admm/options.hpp"

#include "admm/ingredients.hpp"
#include "util/contract.hpp"

namespace ufc::admm {

AdmgOptions options_from_config(const Config& config, AdmgOptions defaults) {
  AdmgOptions options = defaults;
  options.rho = config.get_double("solver.rho", options.rho);
  options.epsilon = config.get_double("solver.epsilon", options.epsilon);
  options.tolerance = config.get_double("solver.tolerance", options.tolerance);
  options.max_iterations =
      config.get_int("solver.max_iterations", options.max_iterations);
  options.gaussian_back_substitution =
      config.get_bool("solver.gaussian_back_substitution",
                      options.gaussian_back_substitution);
  options.threads = config.get_int("solver.threads", options.threads);
  const std::string projection = config.get_string(
      "solver.projection",
      options.inner.projection == SimplexProjection::Condat ? "condat"
                                                            : "sort");
  UFC_EXPECTS(projection == "sort" || projection == "condat");
  options.inner.projection = projection == "condat"
                                 ? SimplexProjection::Condat
                                 : SimplexProjection::SortThreshold;
  options.screening.enabled =
      config.get_bool("solver.screening", options.screening.enabled);
  options.screening.full_pass_every = config.get_int(
      "solver.screening_full_pass_every", options.screening.full_pass_every);
  // Solver-ingredient composition (docs/SOLVER_INGREDIENTS.md).
  options.penalty = config.get_string("solver.penalty", options.penalty);
  options.acceleration =
      config.get_string("solver.acceleration", options.acceleration);
  options.ingredients.balance_ratio = config.get_double(
      "solver.penalty_balance_ratio", options.ingredients.balance_ratio);
  options.ingredients.increase = config.get_double(
      "solver.penalty_increase", options.ingredients.increase);
  options.ingredients.decrease = config.get_double(
      "solver.penalty_decrease", options.ingredients.decrease);
  options.ingredients.balance_period = config.get_int(
      "solver.penalty_period", options.ingredients.balance_period);
  options.ingredients.over_relaxation = config.get_double(
      "solver.over_relaxation", options.ingredients.over_relaxation);
  options.ingredients.anderson_memory = config.get_int(
      "solver.anderson_memory", options.ingredients.anderson_memory);
  options.ingredients.anderson_safeguard = config.get_double(
      "solver.anderson_safeguard", options.ingredients.anderson_safeguard);
  // Same domains the solver constructor enforces, checked here so a typo in
  // the INI file surfaces as a config error, not a solver-internal one.
  UFC_EXPECTS(options.rho > 0.0);
  UFC_EXPECTS(options.epsilon > 0.5 && options.epsilon <= 1.0);
  UFC_EXPECTS(options.tolerance > 0.0);
  UFC_EXPECTS(options.max_iterations > 0);
  UFC_EXPECTS(options.threads >= 0);
  UFC_EXPECTS(options.screening.full_pass_every >= 1);
  // Ingredient knob domains and names, mirrored from the solver layer; an
  // unknown name throws listing the registered alternatives.
  validate_ingredients(options);
  return options;
}

}  // namespace ufc::admm
