// The single ADM-G iteration engine (paper §III-C).
//
// Every driver in this repo runs the same 4-block prediction-correction
// scheme of He, Tao & Yuan: an alternating ADMM pass in the forward order
// lambda -> mu -> nu -> a -> duals, followed by a Gaussian back substitution
// correction in the backward order. This header hosts that algorithm exactly
// once, split along its natural seam:
//
//   AdmgEngine        the iteration skeleton — convergence gate, watchdog,
//                     trace/telemetry, centralized fallback, solution
//                     packaging. Knows nothing about *where* blocks run.
//   BlockExecutor     how one iteration's blocks get computed. Three
//                     implementations:
//                       InProcessExecutor              serial / thread-pool
//                       PartialParticipationExecutor   straggler model
//                       net::BusExecutor               message passing
//   IterationObserver structured telemetry (telemetry.hpp).
//
// Correctness contract: for zero-fault, serial, participation=1 solves the
// engine produces iterates bit-identical to the pre-refactor drivers at every
// iteration — the refactor moves code, not arithmetic. tests/admm/
// test_engine.cpp pins this against hexfloat baselines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "admm/blocks.hpp"
#include "admm/solve_core.hpp"
#include "admm/telemetry.hpp"
#include "admm/watchdog.hpp"
#include "model/breakdown.hpp"
#include "model/problem.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ufc::admm {

/// Which block, if any, is pinned to zero (paper §IV-B baselines).
enum class BlockPinning {
  None,   ///< Hybrid: full joint optimization.
  PinMu,  ///< Grid strategy: mu_j = 0 for all j.
  PinNu,  ///< FuelCell strategy: nu_j = 0 for all j (needs full fuel-cell capacity).
};

/// Active-set screening for the in-process executor (scaling feature; see
/// docs/PERFORMANCE.md "Scaling frontier"). At the optimum most lambda_ij
/// are zero — each front-end routes to a few near datacenters — so between
/// periodic full passes the lambda and a solves are restricted to the
/// current support pattern (the combined nonzero pattern of lambda and a,
/// maintained per row and per column). Exactness contract: every
/// `full_pass_every`-th step runs the unrestricted pass and rebuilds the
/// supports; convergence is only ever declared on an iterate produced by a
/// full pass whose support did not grow (a growing full pass resets that
/// gate). Screened iterates are NOT bit-identical to unscreened ones — the
/// restricted inner solves use the restricted Lipschitz constant — but the
/// fixed point is validated by the same residual gate and the KKT checker.
struct ActiveSetOptions {
  bool enabled = false;
  /// Period of unrestricted verification passes. 1 = every pass full
  /// (screening effectively off, gate bookkeeping only).
  int full_pass_every = 8;
};

/// Numeric knobs of the non-default solver ingredients
/// (docs/SOLVER_INGREDIENTS.md). Inert under the default "fixed" + "none"
/// composition; domains are enforced by the policy constructors, by
/// validate_ingredients() at executor/engine construction, and mirrored in
/// options_from_config so a bad INI value surfaces as a config error.
struct IngredientOptions {
  /// Residual-balance penalty (penalty = "residual-balance", Boyd et al.
  /// §3.4.1): rho *= increase when the scaled primal residual exceeds
  /// balance_ratio x the scaled dual proxy, rho /= decrease in the mirrored
  /// case. All three factors must be > 1.
  double balance_ratio = 10.0;
  double increase = 2.0;
  double decrease = 2.0;
  /// Iterations between adaptation decisions (>= 1). The dual proxy is the
  /// successive-iterate change, which spikes for a few iterations after
  /// every rho change; deciding only every balance_period-th iteration
  /// samples settled residuals instead of chasing its own transients.
  int balance_period = 10;
  /// Over-relaxation (acceleration = "over-relaxation"): the accepted
  /// iterate is x^k + alpha (T(x^k) - x^k) with alpha in (0, 2);
  /// alpha > 1 extrapolates along the step direction.
  double over_relaxation = 1.6;
  /// Anderson type-II (acceleration = "anderson"): bounded mixing memory
  /// (>= 1 past residual pairs) and the safeguard factor (> 0): a candidate
  /// whose scaled residual exceeds safeguard x the plain step's — or is
  /// non-finite — is rejected in favor of the plain iterate and the mixing
  /// history is purged.
  int anderson_memory = 5;
  double anderson_safeguard = 2.0;
};

struct AdmgOptions {
  /// Penalty parameter. The paper reports rho = 0.3 for its (unstated)
  /// variable scaling; with our mean-arrival workload normalization the
  /// well-conditioned value is ~10 (see the rho-sweep ablation bench, which
  /// also confirms every rho reaches the same objective).
  double rho = 10.0;
  double epsilon = 1.0;   ///< Back-substitution relaxation, in (0.5, 1].
  int max_iterations = 2000;
  /// Converged when both scaled primal residuals and the scaled
  /// successive-iterate change (the ADMM dual residual proxy) fall below
  /// this.
  double tolerance = 1e-4;
  /// Workload-unit normalization. ADMM's conditioning depends on the ratio
  /// between rho and the objective curvature; with lambda in raw "servers"
  /// (hundreds to thousands) the paper's rho = 0.3 dwarfs the utility
  /// curvature and the duals crawl. We therefore solve in normalized units
  /// lambda' = lambda / sigma with sigma = mean arrival (<= 0 picks that
  /// default), which leaves the objective value invariant and makes
  /// rho = 0.3 well-conditioned. Set to 1 to disable.
  double workload_scale = 0.0;
  /// false: plain (uncorrected) 4-block ADMM — the ablation the paper's
  /// choice of ADM-G guards against.
  bool gaussian_back_substitution = true;
  InnerSolverOptions inner;
  /// Active-set screening (in-process executor only; incompatible with the
  /// straggler model, ignored by the message-passing runtime).
  ActiveSetOptions screening;
  BlockPinning pinning = BlockPinning::None;
  /// Record per-iteration residuals/objective (costs one evaluate() per
  /// iteration; cheap at paper scale).
  bool record_trace = true;
  /// Log a warning when the solve ends unconverged. Budgeted drivers
  /// (AdmgSolver::solve_budgeted, src/ctrl) turn this off: running out of a
  /// deliberate per-tick budget is an expected outcome reported through
  /// SolveStatus, not a solver-health event worth a log line per tick.
  bool warn_on_unconverged = true;
  /// Worker threads for the per-front-end and per-datacenter passes of each
  /// step (the count includes the calling thread). 1 = serial (default);
  /// 0 = std::thread::hardware_concurrency(). Iterates are bit-identical
  /// for every thread count: the passes split into deterministic contiguous
  /// chunks whose items write disjoint outputs.
  int threads = 1;
  /// Solver-health watchdog (shared with the distributed runtime; see
  /// docs/ROBUSTNESS.md). The default checks finiteness only; stall
  /// detection is opt-in via watchdog.stall_window. The watchdog never
  /// modifies iterates, so healthy runs are bit-identical with it on.
  WatchdogOptions watchdog;
  /// When the watchdog trips, re-solve with the centralized reference
  /// solver and return its plan instead of the untrusted iterate.
  bool fallback_to_centralized = false;
  /// Structured per-iteration telemetry hook (telemetry.hpp). Non-owning;
  /// must outlive the solve. Never influences the iterate.
  IterationObserver* observer = nullptr;
  /// Measure per-phase wall time (lambda pass, source prediction, GBS
  /// correction, convergence gate) each iteration and attach a PhaseProfile
  /// to every observer sample. Only meaningful with an observer attached.
  /// Profiling adds clock reads around existing code paths and never
  /// reorders or alters arithmetic, so profiled solves stay bit-identical.
  bool profile_phases = false;
  /// Solver-ingredient composition (docs/SOLVER_INGREDIENTS.md): names
  /// resolved through admm::penalty_registry() / acceleration_registry() at
  /// engine construction; unknown names throw with the available-name list.
  /// The default composition ("fixed" + "none") keeps the engine
  /// bit-identical to the pinned baselines on every executor. Non-default
  /// names need an executor with the corresponding seam (set_penalty /
  /// flat-iterate access — the in-process executors) and relax bit-identity,
  /// not correctness: every composition passes the same residual gate and is
  /// cross-validated against the centralized reference and the KKT checker.
  std::string penalty = "fixed";
  std::string acceleration = "none";
  IngredientOptions ingredients;
};

// AdmgTrace and SolveCore — the result types every driver's report embeds —
// live in admm/solve_core.hpp so result consumers (notably src/obs) can
// include them without the engine.

/// The default workload normalization sigma: the mean arrival, floored at 1.
double natural_workload_scale(const UfcProblem& problem);

/// Returns an equivalent problem in normalized workload units
/// lambda' = lambda / sigma: arrivals and server counts divided by sigma,
/// per-server watts and the latency weight multiplied by sigma. The UFC
/// objective value of corresponding points is identical.
UfcProblem scale_workload_units(const UfcProblem& problem, double sigma);

/// In-place variant of scale_workload_units: rescales `problem` directly
/// without copying it (the per-slot warm-start path swaps problems every
/// simulated hour, where the copy was measurable).
void scale_workload_units_in_place(UfcProblem& problem, double sigma);

/// A sparse batch of problem-data changes applied between warm-started
/// solves — the receding-horizon tick vocabulary (src/ctrl). Indices address
/// the construction-time dimensions; values are caller units (servers, $/MWh,
/// kg/MWh, MW). Every entry must be finite and non-negative, and the updated
/// problem must stay feasible (total arrivals within total capacity) —
/// apply_update contract-checks all of it before touching the live problem,
/// so a malformed tick never leaves the solver half-updated.
struct ProblemUpdate {
  std::vector<std::pair<std::size_t, double>> arrivals;        ///< i -> A_i.
  std::vector<std::pair<std::size_t, double>> grid_prices;     ///< j -> p_j.
  std::vector<std::pair<std::size_t, double>> carbon_rates;    ///< j -> C_j.
  std::vector<std::pair<std::size_t, double>> fuel_cell_caps;  ///< j -> mu_max_j.

  bool empty() const {
    return arrivals.empty() && grid_prices.empty() && carbon_rates.empty() &&
           fuel_cell_caps.empty();
  }
};

// ---------------------------------------------------------------------------
// Gaussian back substitution correction steps (paper step 2, backward order).
//
// These three helpers are the ONLY place the GBS correction arithmetic lives;
// the in-process executor and the net:: agents both call them, and the
// engine-single-loop lint rule keeps a fourth copy from ever reappearing.
// With gbs=false they apply the plain multi-block ADMM ablation (accept the
// prediction unchanged).

/// Result of correcting one a-block column.
struct ABlockCorrection {
  double delta_sum = 0.0;   ///< Sum of applied a-deltas (meaningful under gbs).
  double max_change = 0.0;  ///< max_i |a_new_i - a_old_i|.
};

/// Corrects one varphi column in place: varphi_i <- varphi_i +
/// eps * (varphi~_i - varphi_i) with varphi~ from update_varphi.
void correct_varphi_block(std::span<double> varphi,
                          std::span<const double> a_tilde,
                          std::span<const double> lambda_tilde, double rho,
                          double eps, bool gbs);

/// Corrects one a column in place toward its prediction a~.
ABlockCorrection correct_a_block(std::span<double> a,
                                 std::span<const double> a_tilde, double eps,
                                 bool gbs);

/// Corrects one datacenter's phi, nu and mu (backward order: dual first, then
/// the sources with the cross-block terms derived from (K_i^T K_i)^{-1}
/// K_i^T K_j — see DESIGN.md). `delta_sum` is ABlockCorrection::delta_sum of
/// the same column. Returns the largest nu/mu movement.
double correct_sources(double& phi, double& nu, double& mu, double phi_tilde,
                       double nu_tilde, double mu_tilde, double beta,
                       double delta_sum, double eps, bool gbs, bool pin_mu,
                       bool pin_nu);

// ---------------------------------------------------------------------------

/// Where one ADM-G iteration's blocks get computed. The engine drives this
/// interface and never touches block state directly; executors own the
/// iterate and report residuals/scales back in raw units.
class BlockExecutor {
 public:
  virtual ~BlockExecutor() = default;

  /// Runs one prediction + correction step. `iteration` is the engine's
  /// iteration counter (the round number for message-passing executors;
  /// in-process executors may ignore it).
  virtual void step(int iteration) = 0;

  /// True when the step changed the problem shape (e.g. degraded-mode
  /// datacenter removal). The engine then resets the watchdog and skips the
  /// convergence test for this iteration.
  virtual bool topology_changed() { return false; }

  /// False while some agent is still integrating inputs older than the
  /// staleness bound; convergence is not declared on stale inputs.
  virtual bool inputs_fresh(int iteration) const {
    (void)iteration;
    return true;
  }

  /// Enables per-phase wall timing for subsequent steps. Executors without
  /// phase timing ignore this (the engine still times the convergence gate).
  virtual void set_phase_profiling(bool enabled) { (void)enabled; }
  /// Phase timings of the last step; nullptr when unsupported or disabled.
  virtual const PhaseProfile* phase_profile() const { return nullptr; }

  virtual double balance_residual() const = 0;
  virtual double copy_residual() const = 0;
  /// Largest per-variable movement of the last step.
  virtual double last_change() const = 0;
  virtual double balance_scale() const = 0;
  virtual double copy_scale() const = 0;
  /// UFC objective at the current (normalized) iterate.
  virtual double objective() const = 0;
  /// True iff every entry of every block (primal and dual) is finite.
  virtual bool iterate_finite() const = 0;

  virtual double workload_scale() const = 0;
  /// The caller-unit problem the final solution is evaluated on.
  virtual const UfcProblem& original_problem() const = 0;
  /// Current iterate in normalized workload units, assembled.
  virtual Mat gather_lambda() const = 0;
  virtual Vec gather_mu() const = 0;

  // ---- Ingredient seams (docs/SOLVER_INGREDIENTS.md). ---------------------
  // Default implementations decline support, so executors that predate the
  // seams (notably the message-passing runtime, whose agents were configured
  // at spawn) keep working with the default composition and the engine
  // rejects non-default compositions on them up front.

  /// Applies a new penalty parameter for subsequent steps and returns true;
  /// false when the executor cannot change rho mid-solve. The duals are NOT
  /// touched on a change: the engine runs the unscaled convention
  /// y += rho (a - lambda), under which phi and varphi are rho-independent
  /// prices — implementations only swap the scalar.
  virtual bool set_penalty(double rho) {
    (void)rho;
    return false;
  }

  /// Flat-iterate access for acceleration policies: the dimension of the
  /// stacked (lambda, a, varphi, mu, nu, phi) vector, or 0 when candidate
  /// replacement is unsupported (the engine then requires the "none"
  /// acceleration).
  virtual std::size_t iterate_size() const { return 0; }
  virtual void copy_iterate(std::span<double> out) const { (void)out; }
  /// Replaces the current iterate with `values` (same stacking as
  /// copy_iterate) and invalidates residual/screening caches. last_change()
  /// keeps reporting the preceding plain step's movement — the dual-residual
  /// proxy of the map evaluation, which the convergence gate deliberately
  /// keeps (an accelerated iterate only certifies once the underlying step
  /// has stopped moving).
  virtual void set_iterate(std::span<const double> values) { (void)values; }
  /// Projects an extrapolated/mixed candidate back into the primal box
  /// (nonnegative routing and dispatch, fuel-cell capacity) before it is
  /// installed. Extrapolation can step outside the feasible set where the
  /// model layer's contracts (nonnegative workloads) do not hold; clamping
  /// is the standard projected-acceleration safeguard and is a no-op on
  /// feasible iterates. Duals are untouched.
  virtual void clamp_iterate(std::span<double> values) const { (void)values; }
};

/// The monolithic executor: the serial / thread-pool ADM-G pass that
/// AdmgSolver has always run, plus (optionally, via enable_partial) the
/// seeded straggler model of the asynchronous-participation extension.
class InProcessExecutor : public BlockExecutor {
 public:
  /// Validates the problem and options; for PinNu additionally requires
  /// every datacenter's fuel-cell capacity to cover its peak demand.
  InProcessExecutor(const UfcProblem& problem, AdmgOptions options);

  void step(int iteration) override;
  /// With screening enabled, false until the most recent step was a full
  /// (unrestricted) pass whose support pattern did not grow — the engine's
  /// convergence gate therefore never accepts a screened iterate. Always
  /// true with screening disabled.
  bool inputs_fresh(int iteration) const override {
    (void)iteration;
    return !options_.screening.enabled || screen_verified_;
  }
  void set_phase_profiling(bool enabled) override { profile_ = enabled; }
  const PhaseProfile* phase_profile() const override {
    return profile_ ? &profile_last_ : nullptr;
  }
  double balance_residual() const override;
  double copy_residual() const override;
  double last_change() const override { return last_change_; }
  double balance_scale() const override { return balance_scale_; }
  double copy_scale() const override { return copy_scale_; }
  double objective() const override;
  bool iterate_finite() const override;
  double workload_scale() const override { return sigma_; }
  const UfcProblem& original_problem() const override { return original_; }
  Mat gather_lambda() const override { return lambda_; }
  Vec gather_mu() const override { return mu_; }

  bool set_penalty(double rho) override;
  std::size_t iterate_size() const override {
    return 3 * m_ * n_ + 3 * n_;
  }
  void copy_iterate(std::span<double> out) const override;
  void set_iterate(std::span<const double> values) override;
  void clamp_iterate(std::span<double> values) const override;

  /// Back to the paper's cold start (all variables zero).
  void reset();
  /// Seeds the iterate from a caller-unit solution — the warm-start producer
  /// seam for the second-order centralized backend: lambda and its copy a
  /// take solution.lambda / sigma, mu and nu carry over, duals restart at
  /// zero (the oracle has no multipliers in ADM-G's parameterization). The
  /// next solve_warm continues from this point.
  void seed(const UfcSolution& solution);
  /// Swaps in a new slot's problem while keeping the iterate as the warm
  /// start. Dimensions (M, N) must match; the workload normalization is
  /// kept from construction so iterates remain directly comparable.
  void set_problem(const UfcProblem& problem);
  /// Applies a sparse tick update to the live problem in place (the
  /// streaming analogue of set_problem: no full-problem copy, no
  /// re-validation of untouched rows). The warm iterate carries over; every
  /// cache that described the pre-update problem — active-set supports, the
  /// convergence-certification gate, the maintained column sums, residual
  /// scales — is invalidated, and an iterate left outside the new primal box
  /// (a fuel-cell cap shrinking below the warm mu_j) is routed through the
  /// clamp_iterate feasibility projection before the next step.
  void apply_update(const ProblemUpdate& update);

  // Read access to the current iterate (post-correction), in *normalized*
  // workload units.
  const Mat& lambda() const { return lambda_; }
  const Vec& mu() const { return mu_; }
  const Vec& nu() const { return nu_; }
  const Mat& a() const { return a_; }
  const Vec& phi() const { return phi_; }
  const Mat& varphi() const { return varphi_; }

  /// True when both scaled primal residuals and the scaled last change are
  /// below tolerance.
  bool is_converged() const;

  /// The normalized problem the executor operates on.
  const UfcProblem& problem() const { return problem_; }
  const AdmgOptions& options() const { return options_; }

  /// Front-end updates skipped by the straggler model (0 unless partial
  /// participation is enabled).
  std::uint64_t skipped_updates() const { return skipped_updates_; }

  /// Serializes the complete iterate (primal, dual, last-change tracking)
  /// with the shared wire codec. A restored executor continues
  /// bit-identically to one that never paused — for default options; the
  /// active-set bookkeeping is deliberately NOT serialized, so a restored
  /// screened run re-verifies with a full pass first (exactness preserved,
  /// step-for-step trajectory not).
  std::vector<std::byte> checkpoint() const;
  /// Restores a checkpoint() image. The executor must hold a problem with
  /// the same dimensions and workload normalization; anything else
  /// (including a truncated or mutated image) throws ufc::ContractViolation.
  void restore(std::span<const std::byte> bytes);

 protected:
  /// Enables the straggler model: each step, every front-end independently
  /// participates with probability `participation` (seeded Bernoulli, drawn
  /// serially in front-end order); a straggler's lambda prediction is the
  /// cached one from its last participating step. Requires
  /// participation in (0, 1); at exactly 1 the model is left disabled so the
  /// step consumes no randomness and stays bit-identical to the synchronous
  /// path. Incompatible with active-set screening (a straggler's cached
  /// prediction would bypass the support bookkeeping).
  void enable_partial(double participation, std::uint64_t seed);

 private:
  /// Per-worker scratch: block-solver workspace, the a~ prediction buffer,
  /// and the compact gather buffers of the screened passes. One instance per
  /// pool thread, indexed by parallel_for_chunks' chunk index; every buffer
  /// reaches its steady capacity in reset() (max(M, N)) and is never
  /// reallocated inside step() — screened passes resize within capacity.
  struct WorkerScratch {
    BlockWorkspace blocks;
    Vec a_new;  ///< a~ prediction: full column (M) or compact support.
    // Screened-pass gathers: compact views of a row/column restricted to
    // its support set.
    Vec sub_latency, sub_a, sub_varphi, sub_lambda, sub_warm, sub_out;
    std::vector<std::uint32_t> support_scratch;  ///< Rebuilt column support.
  };

  void update_residual_scales();
  /// Projects the warm iterate through clamp_iterate when a problem change
  /// left it outside the primal box (set_problem / apply_update with a
  /// shrunken fuel-cell cap). No-op — and no cache invalidation — while the
  /// iterate is already feasible.
  void repair_iterate_bounds();
  void run_full_datacenter_pass();
  void run_screened_lambda_pass();
  void run_screened_datacenter_pass();
  void rebuild_row_supports();

  UfcProblem original_;  ///< As given (for the final evaluation).
  UfcProblem problem_;   ///< Workload-normalized.
  AdmgOptions options_;
  double sigma_ = 1.0;
  std::size_t m_ = 0;  ///< Front-ends.
  std::size_t n_ = 0;  ///< Datacenters.

  Mat lambda_, a_, varphi_;
  Vec mu_, nu_, phi_;
  double last_change_ = 0.0;
  bool stepped_ = false;        ///< last_change_ is meaningful only after a step.
  double balance_scale_ = 1.0;  ///< Residual normalization, MW.
  double copy_scale_ = 1.0;     ///< Residual normalization, normalized units.

  // Straggler model (enable_partial).
  bool partial_ = false;
  double participation_ = 1.0;
  Rng rng_{1};
  std::vector<unsigned char> participate_;  ///< Per-front-end mask, this step.
  std::uint64_t skipped_updates_ = 0;

  // Step workspace (hoisted out of step(); see reset()).
  util::ThreadPool pool_;
  Mat lambda_tilde_;                   ///< Swapped with lambda_ each step.
  Vec a_col_sum_;                      ///< Per-step cache of a^k column sums.
  std::vector<WorkerScratch> scratch_; ///< One per pool thread.
  std::vector<double> chunk_change_;   ///< Per-chunk last-change maxima.

  // Transposed mirrors (N x M) for the fused datacenter pass: the pass works
  // on contiguous rows of these instead of striding the row-major primaries,
  // then transposes the corrected state back (cache-blocked both ways).
  Mat lambda_tilde_t_, a_t_, varphi_t_;
  /// Post-correction a column sums, maintained by both datacenter passes in
  /// increasing-i order (bitwise equal to Mat::col_sum) so balance_residual
  /// stops re-striding a_ every iteration.
  Vec a_col_sum_post_;
  bool post_sums_fresh_ = false;

  // Active-set screening state (options_.screening; see ActiveSetOptions).
  // Supports hold the combined nonzero pattern of lambda and a, ascending,
  // rebuilt by every full pass; out-of-support lambda/a entries are exact
  // zeros and their varphi duals are frozen between full passes.
  bool screen_ready_ = false;     ///< Supports valid (a full pass ran).
  bool screen_verified_ = false;  ///< Last step was a full, non-growing pass.
  int steps_since_full_ = 0;
  std::vector<std::vector<std::uint32_t>> row_support_, col_support_;
  std::vector<unsigned char> chunk_grew_;  ///< Per-chunk support growth.

  // Phase profiling (set_phase_profiling). The fused datacenter pass splits
  // its time per column into prediction vs correction, accumulated per chunk
  // and summed in chunk order afterwards — deterministic bookkeeping around
  // unchanged arithmetic.
  bool profile_ = false;
  PhaseProfile profile_last_;
  std::vector<double> chunk_predict_seconds_;
  std::vector<double> chunk_correct_seconds_;
};

/// The asynchronous-participation executor (extension bench §"async"): the
/// in-process pass with the straggler model enabled. Participation must lie
/// in (0, 1]; the pinned baselines require participation == 1 (their
/// convergence guarantees assume every agent moves every round).
class PartialParticipationExecutor : public InProcessExecutor {
 public:
  PartialParticipationExecutor(const UfcProblem& problem, AdmgOptions options,
                               double participation, std::uint64_t seed);
};

// The ingredient interfaces live in admm/ingredients.hpp; the engine only
// ever names the abstract types (registry-confinement analyzer rule).
class PenaltyPolicy;
class AccelerationPolicy;

/// The driver-independent iteration skeleton: convergence gate, watchdog,
/// trace + observer telemetry, centralized fallback and solution packaging.
/// The penalty schedule and acceleration are pluggable ingredients resolved
/// by name from AdmgOptions through admm::Registry at construction
/// (docs/SOLVER_INGREDIENTS.md); unknown names throw ContractViolation
/// listing the registered alternatives.
class AdmgEngine {
 public:
  explicit AdmgEngine(const AdmgOptions& options);
  ~AdmgEngine();

  /// Runs up to options.max_iterations steps of `executor` starting at
  /// iteration number `first_iteration` (non-zero when resuming a
  /// checkpointed distributed run) and packages the result. The executor
  /// keeps its final iterate, so callers can checkpoint or keep warm-
  /// starting from it. Non-default ingredients require the corresponding
  /// executor seam (set_penalty / flat-iterate access); compositions the
  /// executor cannot honor are rejected up front.
  SolveCore solve(BlockExecutor& executor, int first_iteration = 0);

 private:
  AdmgOptions options_;
  std::unique_ptr<PenaltyPolicy> penalty_;
  std::unique_ptr<AccelerationPolicy> acceleration_;
  // Acceleration workspace, sized once per solve (the engine loop itself
  // never allocates past the first iteration).
  std::vector<double> previous_, plain_, candidate_;
};

}  // namespace ufc::admm
