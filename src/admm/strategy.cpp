#include "admm/strategy.hpp"

#include "util/contract.hpp"

namespace ufc::admm {

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::Grid:     return "Grid";
    case Strategy::FuelCell: return "FuelCell";
    case Strategy::Hybrid:   return "Hybrid";
  }
  return "?";
}

BlockPinning pinning_for(Strategy strategy) {
  switch (strategy) {
    case Strategy::Grid:     return BlockPinning::PinMu;
    case Strategy::FuelCell: return BlockPinning::PinNu;
    case Strategy::Hybrid:   return BlockPinning::None;
  }
  return BlockPinning::None;
}

AdmgReport solve_strategy(const UfcProblem& problem, Strategy strategy,
                          AdmgOptions options) {
  options.pinning = pinning_for(strategy);
  return solve_admg(problem, options);
}

}  // namespace ufc::admm
