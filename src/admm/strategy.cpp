#include "admm/strategy.hpp"

#include "util/contract.hpp"

namespace ufc::admm {

// ufc-lint: allow(expects-guard) — total switch over the enum; the trailing
// return covers out-of-range values defensively.
std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::Grid:     return "Grid";
    case Strategy::FuelCell: return "FuelCell";
    case Strategy::Hybrid:   return "Hybrid";
  }
  return "?";
}

// ufc-lint: allow(expects-guard) — total switch over the enum.
BlockPinning pinning_for(Strategy strategy) {
  switch (strategy) {
    case Strategy::Grid:     return BlockPinning::PinMu;
    case Strategy::FuelCell: return BlockPinning::PinNu;
    case Strategy::Hybrid:   return BlockPinning::None;
  }
  return BlockPinning::None;
}

// ufc-lint: allow(expects-guard) — delegates to solve_admg, whose solver
// constructor validates the problem and options.
AdmgReport solve_strategy(const UfcProblem& problem, Strategy strategy,
                          AdmgOptions options) {
  options.pinning = pinning_for(strategy);
  return solve_admg(problem, options);
}

}  // namespace ufc::admm
