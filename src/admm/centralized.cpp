#include "admm/centralized.hpp"

#include <algorithm>
#include <cmath>

#include "math/dykstra.hpp"
#include "math/projections.hpp"
#include "opt/projected_gradient.hpp"
#include "opt/scalar.hpp"
#include "util/contract.hpp"

namespace ufc::admm {

namespace {

constexpr double kKgPerTon = 1000.0;

Mat vec_to_mat(const Vec& v, std::size_t rows, std::size_t cols) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = v[r * cols + c];
  return m;
}

Vec mat_to_vec(const Mat& m) { return Vec(m.raw()); }

/// The UFC program with (mu, nu) eliminated: a convex minimization in the
/// routing matrix alone. Shared by the solver and the optimality checker.
class ReducedProblem {
 public:
  ReducedProblem(const UfcProblem& problem, bool grid_only,
                 bool fuel_cell_only)
      : p_(problem), grid_only_(grid_only), fuel_cell_only_(fuel_cell_only) {
    UFC_EXPECTS(!(grid_only && fuel_cell_only));
  }

  double dispatch(std::size_t j, double demand) const {
    if (grid_only_) return 0.0;
    if (fuel_cell_only_) return demand;
    return optimal_dispatch_mw(p_.datacenters[j], p_.fuel_cell_price, demand);
  }

  /// Marginal grid-side cost dg/dD at the optimal dispatch (envelope).
  double marginal(std::size_t j, double demand, double mu) const {
    const auto& dc = p_.datacenters[j];
    const double kappa = dc.carbon_rate / kKgPerTon;
    if (grid_only_)
      return dc.grid_price + kappa * dc.emission_cost->derivative(kappa * demand);
    if (fuel_cell_only_) return p_.fuel_cell_price;
    const double nu = std::max(0.0, demand - mu);
    if (nu > 1e-12)
      return dc.grid_price + kappa * dc.emission_cost->derivative(kappa * nu);
    return p_.fuel_cell_price;
  }

  /// Reduced minimization objective: energy + carbon - w * utility.
  double value(const Vec& x) const {
    const std::size_t m = p_.num_front_ends();
    const std::size_t n = p_.num_datacenters();
    const Mat lambda = vec_to_mat(x, m, n);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto& dc = p_.datacenters[j];
      const double demand = p_.demand_mw(j, lambda.col_sum(j));
      const double mu = dispatch(j, demand);
      const double nu = std::max(0.0, demand - mu);
      const double kappa = dc.carbon_rate / kKgPerTon;
      total += p_.fuel_cell_price * mu + dc.grid_price * nu +
               dc.emission_cost->value(kappa * nu);
    }
    for (std::size_t i = 0; i < m; ++i) {
      const Vec row = lambda.row(i);
      total -= p_.latency_weight * p_.arrivals[i] *
               p_.utility->value(p_.average_latency_s(i, row));
    }
    return total;
  }

  Vec subgradient(const Vec& x) const {
    const std::size_t m = p_.num_front_ends();
    const std::size_t n = p_.num_datacenters();
    const Mat lambda = vec_to_mat(x, m, n);
    Vec g(m * n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double demand = p_.demand_mw(j, lambda.col_sum(j));
      const double mu = dispatch(j, demand);
      const double col_grad = p_.beta_mw(j) * marginal(j, demand, mu);
      for (std::size_t i = 0; i < m; ++i) g[i * n + j] += col_grad;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (p_.arrivals[i] <= 0.0) continue;
      const Vec row = lambda.row(i);
      const double uprime =
          p_.utility->derivative(p_.average_latency_s(i, row));
      for (std::size_t j = 0; j < n; ++j)
        g[i * n + j] -= p_.latency_weight * uprime * p_.latency_s(i, j);
    }
    return g;
  }

 private:
  const UfcProblem& p_;
  bool grid_only_;
  bool fuel_cell_only_;
};

}  // namespace

double optimal_dispatch_mw(const DatacenterSpec& dc, double fuel_cell_price,
                           double demand_mw) {
  UFC_EXPECTS(demand_mw >= 0.0);
  UFC_EXPECTS(dc.emission_cost != nullptr);
  const double hi = std::min(dc.fuel_cell_capacity_mw, demand_mw);
  if (hi <= 0.0) return 0.0;
  const double kappa = dc.carbon_rate / kKgPerTon;
  // Derivative of p0*mu + p*(D-mu) + V(kappa*(D-mu)) with respect to mu:
  //   h(mu) = p0 - p - kappa * V'(kappa*(D-mu)),
  // nondecreasing in mu (V convex), so the minimizer is the projected root.
  auto h = [&](double mu) {
    return fuel_cell_price - dc.grid_price -
           kappa * dc.emission_cost->derivative(kappa * (demand_mw - mu));
  };
  return monotone_root(h, 0.0, hi);
}

Mat project_routing(const UfcProblem& problem, const Mat& lambda,
                    int max_sweeps) {
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  UFC_EXPECTS(lambda.rows() == m && lambda.cols() == n);

  // Set 1: product of per-row simplices {row_i >= 0, sum = A_i}.
  auto project_rows = [&problem, m, n](const Vec& x) {
    Mat mat = vec_to_mat(x, m, n);
    for (std::size_t i = 0; i < m; ++i)
      mat.set_row(i, project_simplex(mat.row(i), problem.arrivals[i]));
    return mat_to_vec(mat);
  };
  // Set 2: product of per-column halfspaces {sum_i x_ij <= S_j}.
  auto project_cols = [&problem, m, n](const Vec& x) {
    Mat mat = vec_to_mat(x, m, n);
    for (std::size_t j = 0; j < n; ++j) {
      const double excess = mat.col_sum(j) - problem.datacenters[j].servers;
      if (excess > 0.0) {
        const double shift = excess / static_cast<double>(m);
        for (std::size_t i = 0; i < m; ++i) mat(i, j) -= shift;
      }
    }
    return mat_to_vec(mat);
  };

  DykstraOptions opts;
  opts.max_sweeps = max_sweeps;
  const auto result =
      dykstra_project(mat_to_vec(lambda), {project_rows, project_cols}, opts);
  return vec_to_mat(result.point, m, n);
}

CentralizedResult solve_centralized(const UfcProblem& problem,
                                    const CentralizedOptions& options) {
  problem.validate();
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  const ReducedProblem reduced(problem, options.grid_only,
                               options.fuel_cell_only);

  auto project = [&](const Vec& x) {
    return mat_to_vec(
        project_routing(problem, vec_to_mat(x, m, n), options.dykstra_sweeps));
  };

  // Start from proportional routing: each front-end spreads its load over
  // datacenters proportionally to capacity.
  Mat start(m, n);
  const double total_capacity = problem.total_server_capacity();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      start(i, j) = problem.arrivals[i] * problem.datacenters[j].servers /
                    total_capacity;

  SubgradientOptions sg;
  sg.max_iterations = options.max_iterations;
  // Auto step: proportional to the workload magnitude so the first steps can
  // move a meaningful fraction of the routing mass.
  sg.step0 = options.step0 > 0.0
                 ? options.step0
                 : 0.1 * std::max(1.0, problem.total_arrivals());

  const auto sg_result = projected_subgradient(
      mat_to_vec(start),
      [&](const Vec& x) { return reduced.subgradient(x); },
      [&](const Vec& x) { return reduced.value(x); }, project, sg);

  CentralizedResult result;
  result.iterations = sg_result.iterations;
  result.solution.lambda = vec_to_mat(sg_result.best_x, m, n);
  result.solution.mu = Vec(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double demand =
        problem.demand_mw(j, result.solution.lambda.col_sum(j));
    result.solution.mu[j] = reduced.dispatch(j, demand);
  }
  result.solution.nu =
      grid_draw_mw(problem, result.solution.lambda, result.solution.mu);
  result.breakdown =
      evaluate(problem, result.solution.lambda, result.solution.mu);
  result.objective = result.breakdown.ufc;
  return result;
}

double routing_optimality_residual(const UfcProblem& problem,
                                   const Mat& lambda, double step,
                                   bool grid_only, bool fuel_cell_only) {
  UFC_EXPECTS(step > 0.0);
  const ReducedProblem reduced(problem, grid_only, fuel_cell_only);
  const Vec x = mat_to_vec(lambda);
  Vec moved = x;
  axpy(-step, reduced.subgradient(x), moved);
  const Mat projected = project_routing(
      problem, vec_to_mat(moved, lambda.rows(), lambda.cols()), 400);
  // Normalize by the largest arrival so the residual is a dimensionless
  // "fraction of a front-end's load still wanting to move".
  double max_arrival = 1.0;
  for (double a : problem.arrivals) max_arrival = std::max(max_arrival, a);
  return max_abs_diff(projected, lambda) / max_arrival;
}

}  // namespace ufc::admm
