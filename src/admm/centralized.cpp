#include "admm/centralized.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "math/dykstra.hpp"
#include "math/projections.hpp"
#include "opt/projected_gradient.hpp"
#include "opt/scalar.hpp"
#include "util/contract.hpp"

namespace ufc::admm {

namespace {

constexpr double kKgPerTon = 1000.0;

/// Central finite difference of EmissionCostFunction::derivative — the
/// second-order information the model interface deliberately does not
/// expose (V'' would constrain every policy implementation for the benefit
/// of one backend). The Newton CG only needs bounded, symmetric-ish
/// curvature, which a two-point stencil of the exact first derivative
/// provides; convexity is clamped (V convex => V'' >= 0 up to noise).
double emission_second_derivative(const EmissionCostFunction& cost,
                                  double tons) {
  const double h = 1e-4 * std::max(1.0, std::abs(tons));
  const double upper = cost.derivative(tons + h);
  const double lower = cost.derivative(std::max(0.0, tons - h));
  return std::max(0.0, (upper - lower) / (2.0 * h));
}

/// Same stencil for UtilityFunction::derivative; concavity is clamped
/// (U'' <= 0), which keeps the utility Hessian block PSD in the reduced
/// *minimization* objective.
double utility_second_derivative(const UtilityFunction& utility,
                                 double latency_s) {
  const double h = 1e-6 * std::max(1.0, std::abs(latency_s));
  const double upper = utility.derivative(latency_s + h);
  const double lower = utility.derivative(std::max(0.0, latency_s - h));
  return std::min(0.0, (upper - lower) / (2.0 * h));
}

Mat vec_to_mat(const Vec& v, std::size_t rows, std::size_t cols) {
  Mat m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = v[r * cols + c];
  return m;
}

Vec mat_to_vec(const Mat& m) { return Vec(m.raw()); }

/// The UFC program with (mu, nu) eliminated: a convex minimization in the
/// routing matrix alone. Shared by the solver and the optimality checker.
class ReducedProblem {
 public:
  ReducedProblem(const UfcProblem& problem, bool grid_only,
                 bool fuel_cell_only)
      : p_(problem), grid_only_(grid_only), fuel_cell_only_(fuel_cell_only) {
    UFC_EXPECTS(!(grid_only && fuel_cell_only));
  }

  double dispatch(std::size_t j, double demand) const {
    if (grid_only_) return 0.0;
    if (fuel_cell_only_) return demand;
    return optimal_dispatch_mw(p_.datacenters[j], p_.fuel_cell_price, demand);
  }

  /// Marginal grid-side cost dg/dD at the optimal dispatch (envelope).
  double marginal(std::size_t j, double demand, double mu) const {
    const auto& dc = p_.datacenters[j];
    const double kappa = dc.carbon_rate / kKgPerTon;
    if (grid_only_)
      return dc.grid_price + kappa * dc.emission_cost->derivative(kappa * demand);
    if (fuel_cell_only_) return p_.fuel_cell_price;
    const double nu = std::max(0.0, demand - mu);
    if (nu > 1e-12)
      return dc.grid_price + kappa * dc.emission_cost->derivative(kappa * nu);
    return p_.fuel_cell_price;
  }

  /// Reduced minimization objective: energy + carbon - w * utility.
  double value(const Vec& x) const {
    const std::size_t m = p_.num_front_ends();
    const std::size_t n = p_.num_datacenters();
    const Mat lambda = vec_to_mat(x, m, n);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto& dc = p_.datacenters[j];
      const double demand = p_.demand_mw(j, lambda.col_sum(j));
      const double mu = dispatch(j, demand);
      const double nu = std::max(0.0, demand - mu);
      const double kappa = dc.carbon_rate / kKgPerTon;
      total += p_.fuel_cell_price * mu + dc.grid_price * nu +
               dc.emission_cost->value(kappa * nu);
    }
    for (std::size_t i = 0; i < m; ++i) {
      const Vec row = lambda.row(i);
      total -= p_.latency_weight * p_.arrivals[i] *
               p_.utility->value(p_.average_latency_s(i, row));
    }
    return total;
  }

  /// Generalized second derivative d^2 g / dD^2 of the grid-side cost at
  /// the optimal dispatch, by the envelope-theorem cases of marginal():
  /// with the dispatch mu pinned at a bound the extra demand flows to the
  /// grid (curvature kappa^2 V''(kappa nu)); with mu interior, the root
  /// condition kappa V'(kappa nu) = p0 - p holds on a neighborhood, so the
  /// marginal is locally constant; with nu = 0 the marginal is the flat
  /// fuel-cell price.
  double demand_curvature(std::size_t j, double demand) const {
    if (fuel_cell_only_) return 0.0;
    const auto& dc = p_.datacenters[j];
    const double kappa = dc.carbon_rate / kKgPerTon;
    if (grid_only_)
      return kappa * kappa *
             emission_second_derivative(*dc.emission_cost, kappa * demand);
    const double mu = dispatch(j, demand);
    const double nu = std::max(0.0, demand - mu);
    if (nu <= 1e-12) return 0.0;
    const double hi = std::min(dc.fuel_cell_capacity_mw, demand);
    const bool pinned = mu <= 1e-12 || mu >= hi - 1e-12;
    if (!pinned) return 0.0;
    return kappa * kappa *
           emission_second_derivative(*dc.emission_cost, kappa * nu);
  }

  /// Generalized-Hessian-vector product of the reduced objective at x. The
  /// Hessian is a sum of rank-structured pieces — per datacenter
  /// beta_j^2 g_j'' (1 1^T) over column j, per front-end
  /// (-w U''(Lbar_i) / A_i) l_i l_i^T over row i — so the product is two
  /// O(MN) passes, never a formed matrix.
  Vec hessian_vec(const Vec& x, const Vec& v) const {
    const std::size_t m = p_.num_front_ends();
    const std::size_t n = p_.num_datacenters();
    const Mat lambda = vec_to_mat(x, m, n);
    Vec out(m * n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double demand = p_.demand_mw(j, lambda.col_sum(j));
      const double beta = p_.beta_mw(j);
      const double curvature = beta * beta * demand_curvature(j, demand);
      if (curvature <= 0.0) continue;
      double column_sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) column_sum += v[i * n + j];
      const double add = curvature * column_sum;
      for (std::size_t i = 0; i < m; ++i) out[i * n + j] += add;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (p_.arrivals[i] <= 0.0) continue;
      const Vec row = lambda.row(i);
      const double upp = utility_second_derivative(
          *p_.utility, p_.average_latency_s(i, row));
      if (upp >= 0.0) continue;
      const double factor = -p_.latency_weight * upp / p_.arrivals[i];
      double along = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        along += p_.latency_s(i, j) * v[i * n + j];
      for (std::size_t j = 0; j < n; ++j)
        out[i * n + j] += factor * along * p_.latency_s(i, j);
    }
    return out;
  }

  Vec subgradient(const Vec& x) const {
    const std::size_t m = p_.num_front_ends();
    const std::size_t n = p_.num_datacenters();
    const Mat lambda = vec_to_mat(x, m, n);
    Vec g(m * n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double demand = p_.demand_mw(j, lambda.col_sum(j));
      const double mu = dispatch(j, demand);
      const double col_grad = p_.beta_mw(j) * marginal(j, demand, mu);
      for (std::size_t i = 0; i < m; ++i) g[i * n + j] += col_grad;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (p_.arrivals[i] <= 0.0) continue;
      const Vec row = lambda.row(i);
      const double uprime =
          p_.utility->derivative(p_.average_latency_s(i, row));
      for (std::size_t j = 0; j < n; ++j)
        g[i * n + j] -= p_.latency_weight * uprime * p_.latency_s(i, j);
    }
    return g;
  }

 private:
  const UfcProblem& p_;
  bool grid_only_;
  bool fuel_cell_only_;
};

}  // namespace

double optimal_dispatch_mw(const DatacenterSpec& dc, double fuel_cell_price,
                           double demand_mw) {
  UFC_EXPECTS(demand_mw >= 0.0);
  UFC_EXPECTS(dc.emission_cost != nullptr);
  const double hi = std::min(dc.fuel_cell_capacity_mw, demand_mw);
  if (hi <= 0.0) return 0.0;
  const double kappa = dc.carbon_rate / kKgPerTon;
  // Derivative of p0*mu + p*(D-mu) + V(kappa*(D-mu)) with respect to mu:
  //   h(mu) = p0 - p - kappa * V'(kappa*(D-mu)),
  // nondecreasing in mu (V convex), so the minimizer is the projected root.
  auto h = [&](double mu) {
    return fuel_cell_price - dc.grid_price -
           kappa * dc.emission_cost->derivative(kappa * (demand_mw - mu));
  };
  return monotone_root(h, 0.0, hi);
}

Mat project_routing(const UfcProblem& problem, const Mat& lambda,
                    int max_sweeps) {
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  UFC_EXPECTS(lambda.rows() == m && lambda.cols() == n);

  // Set 1: product of per-row simplices {row_i >= 0, sum = A_i}.
  auto project_rows = [&problem, m, n](const Vec& x) {
    Mat mat = vec_to_mat(x, m, n);
    for (std::size_t i = 0; i < m; ++i)
      mat.set_row(i, project_simplex(mat.row(i), problem.arrivals[i]));
    return mat_to_vec(mat);
  };
  // Set 2: product of per-column halfspaces {sum_i x_ij <= S_j}.
  auto project_cols = [&problem, m, n](const Vec& x) {
    Mat mat = vec_to_mat(x, m, n);
    for (std::size_t j = 0; j < n; ++j) {
      const double excess = mat.col_sum(j) - problem.datacenters[j].servers;
      if (excess > 0.0) {
        const double shift = excess / static_cast<double>(m);
        for (std::size_t i = 0; i < m; ++i) mat(i, j) -= shift;
      }
    }
    return mat_to_vec(mat);
  };

  DykstraOptions opts;
  opts.max_sweeps = max_sweeps;
  const auto result =
      dykstra_project(mat_to_vec(lambda), {project_rows, project_cols}, opts);
  return vec_to_mat(result.point, m, n);
}

namespace {

/// Proportional start shared by both backends: each front-end spreads its
/// load over datacenters proportionally to capacity.
Mat proportional_start(const UfcProblem& problem) {
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  Mat start(m, n);
  const double total_capacity = problem.total_server_capacity();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      start(i, j) = problem.arrivals[i] * problem.datacenters[j].servers /
                    total_capacity;
  return start;
}

/// Completes a CentralizedResult from the routing a backend produced:
/// re-derive the optimal dispatch, the grid draws and the breakdown.
CentralizedResult package_routing(const UfcProblem& problem,
                                  const ReducedProblem& reduced, Mat lambda) {
  CentralizedResult result;
  result.solution.lambda = std::move(lambda);
  const std::size_t n = problem.num_datacenters();
  result.solution.mu = Vec(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double demand =
        problem.demand_mw(j, result.solution.lambda.col_sum(j));
    result.solution.mu[j] = reduced.dispatch(j, demand);
  }
  result.solution.nu =
      grid_draw_mw(problem, result.solution.lambda, result.solution.mu);
  result.breakdown =
      evaluate(problem, result.solution.lambda, result.solution.mu);
  result.objective = result.breakdown.ufc;
  return result;
}

CentralizedResult run_subgradient(const UfcProblem& problem,
                                  const CentralizedOptions& options) {
  problem.validate();
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  const ReducedProblem reduced(problem, options.grid_only,
                               options.fuel_cell_only);

  auto project = [&](const Vec& x) {
    return mat_to_vec(
        project_routing(problem, vec_to_mat(x, m, n), options.dykstra_sweeps));
  };

  SubgradientOptions sg;
  sg.max_iterations = options.max_iterations;
  // Auto step: proportional to the workload magnitude so the first steps can
  // move a meaningful fraction of the routing mass.
  sg.step0 = options.step0 > 0.0
                 ? options.step0
                 : 0.1 * std::max(1.0, problem.total_arrivals());

  const auto sg_result = projected_subgradient(
      mat_to_vec(proportional_start(problem)),
      [&](const Vec& x) { return reduced.subgradient(x); },
      [&](const Vec& x) { return reduced.value(x); }, project, sg);

  CentralizedResult result =
      package_routing(problem, reduced, vec_to_mat(sg_result.best_x, m, n));
  result.iterations = sg_result.iterations;
  return result;
}

CentralizedResult run_newton(const UfcProblem& problem,
                             const CentralizedOptions& options) {
  problem.validate();
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  const ReducedProblem reduced(problem, options.grid_only,
                               options.fuel_cell_only);

  auto project = [&](const Vec& x) {
    return mat_to_vec(
        project_routing(problem, vec_to_mat(x, m, n), options.dykstra_sweeps));
  };

  // The generic solver works in raw routing units; scale the dimensionless
  // tolerance by the largest arrival, the same normalization
  // routing_optimality_residual divides by.
  double max_arrival = 1.0;
  for (double a : problem.arrivals) max_arrival = std::max(max_arrival, a);
  NewtonOptions newton = options.newton;
  newton.tolerance = options.newton.tolerance * max_arrival;

  const auto nr = projected_newton(
      mat_to_vec(proportional_start(problem)),
      [&](const Vec& x) { return reduced.value(x); },
      [&](const Vec& x) { return reduced.subgradient(x); },
      [&](const Vec& x, const Vec& v) { return reduced.hessian_vec(x, v); },
      project, newton);

  CentralizedResult result =
      package_routing(problem, reduced, vec_to_mat(nr.x, m, n));
  result.iterations = nr.iterations;
  result.converged = nr.converged;
  return result;
}

class SubgradientMethod final : public CentralizedMethod {
 public:
  explicit SubgradientMethod(const CentralizedOptions& options)
      : options_(options) {}
  std::string_view name() const override { return "subgradient"; }
  CentralizedResult solve(const UfcProblem& problem) const override {
    return run_subgradient(problem, options_);
  }

 private:
  CentralizedOptions options_;
};

class NewtonMethod final : public CentralizedMethod {
 public:
  explicit NewtonMethod(const CentralizedOptions& options)
      : options_(options) {}
  std::string_view name() const override { return "newton"; }
  CentralizedResult solve(const UfcProblem& problem) const override {
    return run_newton(problem, options_);
  }

 private:
  CentralizedOptions options_;
};

}  // namespace

Registry<CentralizedMethod, CentralizedOptions> centralized_registry() {
  Registry<CentralizedMethod, CentralizedOptions> registry(
      "centralized method");
  registry.add("subgradient", [](const CentralizedOptions& options) {
    return std::unique_ptr<CentralizedMethod>(
        std::make_unique<SubgradientMethod>(options));
  });
  registry.add("newton", [](const CentralizedOptions& options) {
    return std::unique_ptr<CentralizedMethod>(
        std::make_unique<NewtonMethod>(options));
  });
  return registry;
}

CentralizedResult solve_centralized(const UfcProblem& problem,
                                    const CentralizedOptions& options) {
  UFC_EXPECTS(options.max_iterations > 0);
  UFC_EXPECTS(options.dykstra_sweeps > 0);
  UFC_EXPECTS(!(options.grid_only && options.fuel_cell_only));
  return centralized_registry().create(options.method, options)->solve(problem);
}

double routing_optimality_residual(const UfcProblem& problem,
                                   const Mat& lambda, double step,
                                   bool grid_only, bool fuel_cell_only) {
  UFC_EXPECTS(step > 0.0);
  const ReducedProblem reduced(problem, grid_only, fuel_cell_only);
  const Vec x = mat_to_vec(lambda);
  Vec moved = x;
  axpy(-step, reduced.subgradient(x), moved);
  const Mat projected = project_routing(
      problem, vec_to_mat(moved, lambda.rows(), lambda.cols()), 400);
  // Normalize by the largest arrival so the residual is a dimensionless
  // "fraction of a front-end's load still wanting to move".
  double max_arrival = 1.0;
  for (double a : problem.arrivals) max_arrival = std::max(max_arrival, a);
  return max_abs_diff(projected, lambda) / max_arrival;
}

}  // namespace ufc::admm
