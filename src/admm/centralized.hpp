// Centralized reference solver for the UFC program.
//
// Serves two purposes:
//  1. a validation oracle for ADM-G (tests compare objectives), and
//  2. the "gradient or projection based method" baseline whose iteration
//     counts the paper's Fig. 11 discussion contrasts with ADM-G's.
//
// Method: eliminate (mu, nu) — for a fixed routing lambda the optimal
// fuel-cell dispatch decouples per datacenter into a scalar convex problem
// with an exact solution — then run projected subgradient on the reduced
// convex objective F(lambda) over the transportation polytope
//   { lambda >= 0, row sums = A_i, column sums <= S_j },
// projecting with Dykstra's algorithm (the polytope has no closed-form
// projection).
// A second, independent backend — a projected (semismooth) truncated-Newton
// method on the same reduced objective (opt/newton.hpp) — registers beside
// the subgradient reference in centralized_registry(); select it with
// CentralizedOptions::method = "newton". Both backends return the same
// CentralizedResult vocabulary, so either can serve as the cross-validation
// oracle or as a warm-start producer for AdmgSolver::seed + solve_warm.
#pragma once

#include <string>
#include <string_view>

#include "admm/registry.hpp"
#include "math/matrix.hpp"
#include "model/breakdown.hpp"
#include "model/problem.hpp"
#include "opt/newton.hpp"

namespace ufc::admm {

/// Exact single-datacenter fuel-cell dispatch for a given demand (MW):
/// minimizes p0*mu + p*(D-mu) + V(kappa*(D-mu)) over 0 <= mu <= min(mu_max, D).
double optimal_dispatch_mw(const DatacenterSpec& dc, double fuel_cell_price,
                           double demand_mw);

struct CentralizedOptions {
  /// Backend name, resolved through centralized_registry(): "subgradient"
  /// (the projected-subgradient reference) or "newton" (projected truncated
  /// Newton, opt/newton.hpp). Unknown names throw with the registered list.
  std::string method = "subgradient";
  int max_iterations = 4000;    ///< Outer subgradient iterations.
  double step0 = 0.0;           ///< 0: auto-scale from problem magnitudes.
  int dykstra_sweeps = 200;     ///< Per-projection Dykstra passes.
  /// Pin blocks exactly as the ADM-G baselines do.
  bool grid_only = false;       ///< Force mu = 0.
  bool fuel_cell_only = false;  ///< Force nu = 0 (mu = demand).
  /// Knobs of the "newton" backend. newton.tolerance is dimensionless here:
  /// the backend scales it by the largest arrival, matching the
  /// normalization of routing_optimality_residual.
  NewtonOptions newton;
};

struct CentralizedResult {
  UfcSolution solution;
  UfcBreakdown breakdown;
  double objective = 0.0;  ///< UFC at the returned point.
  int iterations = 0;
  bool converged = false;  ///< Newton's fixed-point test; subgradient never
                           ///< declares convergence (it runs its budget).
};

/// One centralized backend: consumes the knobs bound at creation and
/// produces a complete plan. Concrete backends live in centralized.cpp and
/// are reachable only through centralized_registry() (registry-confinement
/// analyzer rule).
class CentralizedMethod {
 public:
  virtual ~CentralizedMethod() = default;
  virtual std::string_view name() const = 0;
  virtual CentralizedResult solve(const UfcProblem& problem) const = 0;
};

/// The centralized-backend registry with the built-ins ("subgradient",
/// "newton") registered. Value-built per call, like the engine-ingredient
/// registries (admm/ingredients.hpp).
Registry<CentralizedMethod, CentralizedOptions> centralized_registry();

/// Solves the UFC program with the backend options.method names.
/// Intended as an oracle: slower but independent of the ADMM machinery.
CentralizedResult solve_centralized(const UfcProblem& problem,
                                    const CentralizedOptions& options = {});

/// Projects a routing matrix onto the transportation polytope of `problem`
/// using Dykstra's algorithm (exposed for tests).
Mat project_routing(const UfcProblem& problem, const Mat& lambda,
                    int max_sweeps = 200);

/// First-order optimality residual of a routing matrix for the reduced
/// problem:  max_ij | lambda - Proj_C(lambda - step * subgrad F(lambda)) |
/// normalized by the largest arrival. Near zero iff lambda is optimal
/// (fixed-point characterization of projected gradient). The strategy flags
/// must match those used to produce `lambda`.
double routing_optimality_residual(const UfcProblem& problem,
                                   const Mat& lambda, double step = 1e-3,
                                   bool grid_only = false,
                                   bool fuel_cell_only = false);

}  // namespace ufc::admm
