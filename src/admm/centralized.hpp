// Centralized reference solver for the UFC program.
//
// Serves two purposes:
//  1. a validation oracle for ADM-G (tests compare objectives), and
//  2. the "gradient or projection based method" baseline whose iteration
//     counts the paper's Fig. 11 discussion contrasts with ADM-G's.
//
// Method: eliminate (mu, nu) — for a fixed routing lambda the optimal
// fuel-cell dispatch decouples per datacenter into a scalar convex problem
// with an exact solution — then run projected subgradient on the reduced
// convex objective F(lambda) over the transportation polytope
//   { lambda >= 0, row sums = A_i, column sums <= S_j },
// projecting with Dykstra's algorithm (the polytope has no closed-form
// projection).
#pragma once

#include "math/matrix.hpp"
#include "model/breakdown.hpp"
#include "model/problem.hpp"

namespace ufc::admm {

/// Exact single-datacenter fuel-cell dispatch for a given demand (MW):
/// minimizes p0*mu + p*(D-mu) + V(kappa*(D-mu)) over 0 <= mu <= min(mu_max, D).
double optimal_dispatch_mw(const DatacenterSpec& dc, double fuel_cell_price,
                           double demand_mw);

struct CentralizedOptions {
  int max_iterations = 4000;    ///< Outer subgradient iterations.
  double step0 = 0.0;           ///< 0: auto-scale from problem magnitudes.
  int dykstra_sweeps = 200;     ///< Per-projection Dykstra passes.
  /// Pin blocks exactly as the ADM-G baselines do.
  bool grid_only = false;       ///< Force mu = 0.
  bool fuel_cell_only = false;  ///< Force nu = 0 (mu = demand).
};

struct CentralizedResult {
  UfcSolution solution;
  UfcBreakdown breakdown;
  double objective = 0.0;  ///< UFC at the returned point.
  int iterations = 0;
};

/// Solves the UFC program by projected subgradient on the reduced objective.
/// Intended as an oracle: slower but independent of the ADMM machinery.
CentralizedResult solve_centralized(const UfcProblem& problem,
                                    const CentralizedOptions& options = {});

/// Projects a routing matrix onto the transportation polytope of `problem`
/// using Dykstra's algorithm (exposed for tests).
Mat project_routing(const UfcProblem& problem, const Mat& lambda,
                    int max_sweeps = 200);

/// First-order optimality residual of a routing matrix for the reduced
/// problem:  max_ij | lambda - Proj_C(lambda - step * subgrad F(lambda)) |
/// normalized by the largest arrival. Near zero iff lambda is optimal
/// (fixed-point characterization of projected gradient). The strategy flags
/// must match those used to produce `lambda`.
double routing_optimality_residual(const UfcProblem& problem,
                                   const Mat& lambda, double step = 1e-3,
                                   bool grid_only = false,
                                   bool fuel_cell_only = false);

}  // namespace ufc::admm
