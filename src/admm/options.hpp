// Config-file binding for the ADM-G solver knobs.
//
// Every driver that reads solver settings from an INI file (the CLI, the
// simulator, ad-hoc tools) goes through options_from_config() so the
// recognized keys, defaults and validity guards live in exactly one place.
#pragma once

#include "admm/engine.hpp"
#include "util/config.hpp"

namespace ufc::admm {

/// Builds AdmgOptions from the INI [solver] section, starting from
/// `defaults` (missing keys keep the given defaults). Recognized keys:
/// solver.rho, solver.epsilon, solver.tolerance, solver.max_iterations,
/// solver.gaussian_back_substitution, solver.threads. Out-of-range values
/// throw ufc::ContractViolation.
AdmgOptions options_from_config(const Config& config,
                                AdmgOptions defaults = {});

}  // namespace ufc::admm
