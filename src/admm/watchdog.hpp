// Divergence watchdog shared by the monolithic ADM-G solver and the
// distributed runtime.
//
// ADM-G converges for the paper's convex program, but a production control
// loop cannot assume its own health: corrupted state (a bad checkpoint
// restore, a bit-flipped message that slipped through) can make iterates
// non-finite, and fault-degraded protocols can stall short of tolerance
// (e.g. a permanently partitioned link that keeps one copy constraint
// unsatisfiable). The watchdog observes each iteration's scaled residuals
// and a finiteness flag, and reports a sticky verdict:
//
//   NonFinite  an iterate or residual stopped being a real number;
//   Stalled    stall_window consecutive observations without the best
//              residual improving by at least min_decrease (relative).
//
// Callers treat any non-Healthy verdict as "this solve cannot be trusted"
// and fall back to the centralized reference solver for a safe plan.
// Healthy runs are untouched: the watchdog never modifies iterates, so
// zero-fault trajectories remain bit-identical with it enabled.
#pragma once

namespace ufc::admm {

struct WatchdogOptions {
  /// Check iterates and residuals for NaN/Inf every observation.
  bool check_finite = true;
  /// Consecutive non-improving observations before declaring a stall.
  /// 0 disables stall detection. ADMM residuals are not monotone, so keep
  /// this comfortably above the oscillation scale (tens of iterations).
  int stall_window = 0;
  /// Relative decrease of the best residual that counts as progress.
  double min_decrease = 1e-6;
};

enum class WatchdogVerdict {
  Healthy,
  NonFinite,
  Stalled,
};

class SolverWatchdog {
 public:
  explicit SolverWatchdog(const WatchdogOptions& options = {});

  /// Feeds one iteration: the two scaled primal residuals and whether the
  /// caller's iterate (and these numbers) are finite. Returns the sticky
  /// verdict — once tripped, the watchdog stays tripped until reset().
  WatchdogVerdict observe(double scaled_balance, double scaled_copy,
                          bool iterates_finite);

  WatchdogVerdict verdict() const { return verdict_; }
  bool tripped() const { return verdict_ != WatchdogVerdict::Healthy; }
  int observations() const { return observations_; }
  /// Best (smallest) max-residual seen so far; +inf before any observation.
  double best_residual() const { return best_; }

  /// Forgets all history (e.g. after the problem changed under the solver:
  /// graceful degradation re-baselines progress on the reduced problem).
  void reset();

 private:
  WatchdogOptions options_;
  WatchdogVerdict verdict_ = WatchdogVerdict::Healthy;
  double best_ = 0.0;  // set to +inf in reset()
  int stalled_observations_ = 0;
  int observations_ = 0;
};

}  // namespace ufc::admm
