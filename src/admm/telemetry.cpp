#include "admm/telemetry.hpp"

#include "admm/engine.hpp"
#include "util/contract.hpp"
#include "util/csv.hpp"

namespace ufc::admm {

void IterationObserver::on_solve_end(const SolveCore& /*core*/) {}

void SolveCounters::on_iteration(const IterationSample& sample) {
  UFC_EXPECTS(sample.iteration >= 0);
  ++iterations_;
  wall_seconds_ += sample.wall_seconds;
}

void SolveCounters::on_solve_end(const SolveCore& core) {
  UFC_EXPECTS(core.iterations >= 0);
  ++solves_;
  if (core.converged) ++converged_;
}

CsvTraceObserver::CsvTraceObserver(const std::string& path)
    : csv_(std::make_unique<CsvWriter>(
          path, std::vector<std::string>{"solve", "iteration",
                                         "balance_residual", "copy_residual",
                                         "change", "objective",
                                         "wall_seconds"})) {
  UFC_EXPECTS(!path.empty());
}

CsvTraceObserver::~CsvTraceObserver() = default;

void CsvTraceObserver::on_iteration(const IterationSample& sample) {
  csv_->row({static_cast<double>(solve_), static_cast<double>(sample.iteration),
             sample.balance_residual, sample.copy_residual, sample.change,
             sample.objective, sample.wall_seconds});
}

void CsvTraceObserver::on_solve_end(const SolveCore& /*core*/) { ++solve_; }

std::size_t CsvTraceObserver::rows_written() const {
  return csv_->rows_written();
}

const std::string& CsvTraceObserver::path() const { return csv_->path(); }

}  // namespace ufc::admm
