#include "admm/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "admm/centralized.hpp"
#include "admm/ingredients.hpp"
#include "util/clock.hpp"
#include "util/contract.hpp"
#include "util/logging.hpp"
#include "util/wire.hpp"

namespace ufc::admm {

namespace {

// Checkpoint framing (see docs/ROBUSTNESS.md): magic + version guard the
// decoder against foreign byte strings, dimensions + sigma guard against
// restoring into an executor built on a different problem shape.
constexpr std::uint32_t kCheckpointMagic = 0x55464343;  // "UFCC"
constexpr std::uint32_t kCheckpointVersion = 1;

bool all_finite(std::span<const double> values) {
  for (double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

double natural_workload_scale(const UfcProblem& problem) {
  UFC_EXPECTS(problem.num_front_ends() > 0);
  const double mean_arrival =
      problem.total_arrivals() /
      static_cast<double>(problem.num_front_ends());
  return std::max(1.0, mean_arrival);
}

void scale_workload_units_in_place(UfcProblem& problem, double sigma) {
  UFC_EXPECTS(sigma > 0.0);
  problem.power.idle_watts *= sigma;
  problem.power.peak_watts *= sigma;
  problem.latency_weight *= sigma;
  for (auto& dc : problem.datacenters) {
    dc.servers /= sigma;
    if (dc.power_override) {
      dc.power_override->idle_watts *= sigma;
      dc.power_override->peak_watts *= sigma;
    }
  }
  for (auto& a : problem.arrivals) a /= sigma;
}

// ufc-lint: allow(expects-guard) — thin wrapper; the in-place variant above
// guards sigma before any work happens.
UfcProblem scale_workload_units(const UfcProblem& problem, double sigma) {
  UfcProblem scaled = problem;
  scale_workload_units_in_place(scaled, sigma);
  return scaled;
}

// ---------------------------------------------------------------------------
// Gaussian back substitution (paper step 2, backward order). Duals first
// (identity row of G), then a, then nu and mu with the cross-block
// correction terms derived from (K_i^T K_i)^{-1} K_i^T K_j for our
// constraint matrices (see DESIGN.md). With gbs=false: plain multi-block
// ADMM (ablation), accept the prediction unchanged.

void correct_varphi_block(std::span<double> varphi,
                          std::span<const double> a_tilde,
                          std::span<const double> lambda_tilde, double rho,
                          double eps, bool gbs) {
  UFC_EXPECTS(a_tilde.size() == varphi.size() &&
              lambda_tilde.size() == varphi.size());
  for (std::size_t i = 0; i < varphi.size(); ++i) {
    const double varphi_tilde =
        update_varphi(varphi[i], rho, a_tilde[i], lambda_tilde[i]);
    if (gbs) {
      varphi[i] += eps * (varphi_tilde - varphi[i]);
    } else {
      varphi[i] = varphi_tilde;
    }
  }
}

ABlockCorrection correct_a_block(std::span<double> a,
                                 std::span<const double> a_tilde, double eps,
                                 bool gbs) {
  UFC_EXPECTS(a_tilde.size() == a.size());
  ABlockCorrection out;
  if (!gbs) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      out.max_change = std::max(out.max_change, std::abs(a_tilde[i] - a[i]));
      a[i] = a_tilde[i];
    }
    return out;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double a_old = a[i];
    const double delta = eps * (a_tilde[i] - a_old);
    a[i] = a_old + delta;
    out.delta_sum += delta;
    out.max_change = std::max(out.max_change, std::abs(a[i] - a_old));
  }
  return out;
}

double correct_sources(double& phi, double& nu, double& mu, double phi_tilde,
                       double nu_tilde, double mu_tilde, double beta,
                       double delta_sum, double eps, bool gbs, bool pin_mu,
                       bool pin_nu) {
  UFC_EXPECTS(eps > 0.0 && eps <= 1.0);
  double change = 0.0;
  if (!gbs) {
    phi = phi_tilde;
    change = std::max(change, std::abs(nu_tilde - nu));
    nu = nu_tilde;
    change = std::max(change, std::abs(mu_tilde - mu));
    mu = mu_tilde;
    return change;
  }
  phi += eps * (phi_tilde - phi);
  const double nu_old = nu;
  if (!pin_nu) {
    nu += eps * (nu_tilde - nu) + beta * delta_sum;
    change = std::max(change, std::abs(nu - nu_old));
  }
  if (!pin_mu) {
    const double mu_old = mu;
    double correction = eps * (mu_tilde - mu);
    if (!pin_nu) correction -= (nu - nu_old);
    correction += beta * delta_sum;
    mu = mu_old + correction;
    change = std::max(change, std::abs(mu - mu_old));
  }
  return change;
}

// ---------------------------------------------------------------------------

InProcessExecutor::InProcessExecutor(const UfcProblem& problem,
                                     AdmgOptions options)
    : original_(problem),
      options_(options),
      pool_(util::resolve_thread_count(options.threads)) {
  original_.validate();
  UFC_EXPECTS(options_.rho > 0.0);
  UFC_EXPECTS(options_.epsilon > 0.5 && options_.epsilon <= 1.0);
  UFC_EXPECTS(options_.max_iterations > 0);
  UFC_EXPECTS(options_.tolerance > 0.0);
  UFC_EXPECTS(options_.threads >= 0);
  UFC_EXPECTS(options_.screening.full_pass_every >= 1);
  validate_ingredients(options_);

  sigma_ = options_.workload_scale > 0.0 ? options_.workload_scale
                                         : natural_workload_scale(original_);
  problem_ = scale_workload_units(original_, sigma_);

  m_ = problem_.num_front_ends();
  n_ = problem_.num_datacenters();

  if (options_.pinning == BlockPinning::PinNu) {
    // nu = 0 requires fuel cells able to carry the peak demand at every
    // datacenter (the paper's "completely powered by fuel cells" premise).
    for (std::size_t j = 0; j < n_; ++j) {
      const double peak = problem_.demand_mw(j, problem_.datacenters[j].servers);
      UFC_EXPECTS(problem_.datacenters[j].fuel_cell_capacity_mw >=
                  peak - 1e-9);
    }
  }

  update_residual_scales();
  reset();
}

void InProcessExecutor::enable_partial(double participation,
                                       std::uint64_t seed) {
  UFC_EXPECTS(participation > 0.0 && participation < 1.0);
  // A straggler's cached lambda row bypasses the screened-pass bookkeeping,
  // so the support invariants cannot be maintained under both models.
  UFC_EXPECTS(!options_.screening.enabled);
  partial_ = true;
  participation_ = participation;
  rng_ = Rng(seed);
  participate_.assign(m_, 1);
  skipped_updates_ = 0;
}

void InProcessExecutor::update_residual_scales() {
  // Residual scales: copy residual lives in "servers routed" units, balance
  // residual in MW. Normalize by the largest arrival / peak demand so the
  // convergence test is dimensionless.
  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < n_; ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;
}

void InProcessExecutor::reset() {
  // The paper's cold start: everything at zero.
  lambda_ = Mat(m_, n_, 0.0);
  a_ = Mat(m_, n_, 0.0);
  varphi_ = Mat(m_, n_, 0.0);
  mu_ = Vec(n_, 0.0);
  nu_ = Vec(n_, 0.0);
  phi_ = Vec(n_, 0.0);
  last_change_ = 0.0;
  stepped_ = false;

  // Step workspace, allocated once here so step() itself never allocates:
  // the tilde matrix, the transposed mirrors, the column-sum caches and one
  // scratch set per worker.
  lambda_tilde_ = Mat(m_, n_, 0.0);
  lambda_tilde_t_ = Mat(n_, m_, 0.0);
  a_t_ = Mat(n_, m_, 0.0);
  varphi_t_ = Mat(n_, m_, 0.0);
  a_col_sum_.resize(n_);
  a_col_sum_post_.resize(n_);
  post_sums_fresh_ = false;
  participate_.assign(m_, 1);
  const std::size_t max_dim = std::max(m_, n_);
  scratch_.resize(pool_.thread_count());
  for (auto& ws : scratch_) {
    ws.a_new.resize(m_);
    // Compact gather buffers reach max capacity here; the screened passes
    // resize them per row/column strictly within that capacity.
    ws.sub_latency.resize(max_dim);
    ws.sub_a.resize(max_dim);
    ws.sub_varphi.resize(max_dim);
    ws.sub_lambda.resize(max_dim);
    ws.sub_warm.resize(max_dim);
    ws.sub_out.resize(max_dim);
    ws.support_scratch.reserve(m_);
  }
  row_support_.assign(m_, {});
  col_support_.assign(n_, {});
  chunk_grew_.assign(pool_.thread_count(), 0);
  screen_ready_ = false;
  screen_verified_ = false;
  steps_since_full_ = 0;
  chunk_change_.assign(pool_.thread_count(), 0.0);
  chunk_predict_seconds_.assign(pool_.thread_count(), 0.0);
  chunk_correct_seconds_.assign(pool_.thread_count(), 0.0);
}

bool InProcessExecutor::set_penalty(double rho) {
  UFC_EXPECTS(std::isfinite(rho) && rho > 0.0);
  options_.rho = rho;
  return true;
}

void InProcessExecutor::copy_iterate(std::span<double> out) const {
  UFC_EXPECTS(out.size() == iterate_size());
  double* dst = out.data();
  dst = std::copy(lambda_.data(), lambda_.data() + lambda_.size(), dst);
  dst = std::copy(a_.data(), a_.data() + a_.size(), dst);
  dst = std::copy(varphi_.data(), varphi_.data() + varphi_.size(), dst);
  dst = std::copy(mu_.begin(), mu_.end(), dst);
  dst = std::copy(nu_.begin(), nu_.end(), dst);
  std::copy(phi_.begin(), phi_.end(), dst);
}

void InProcessExecutor::set_iterate(std::span<const double> values) {
  UFC_EXPECTS(values.size() == iterate_size());
  const double* src = values.data();
  std::copy(src, src + lambda_.size(), lambda_.data());
  src += lambda_.size();
  std::copy(src, src + a_.size(), a_.data());
  src += a_.size();
  std::copy(src, src + varphi_.size(), varphi_.data());
  src += varphi_.size();
  std::copy(src, src + mu_.size(), mu_.data());
  src += mu_.size();
  std::copy(src, src + nu_.size(), nu_.data());
  src += nu_.size();
  std::copy(src, src + phi_.size(), phi_.data());
  // The replaced iterate invalidates every cache that described the stepped
  // one: the maintained column sums, and the active-set supports (an
  // accelerated iterate may repopulate entries a screened pass zeroed, so
  // the next step must be a full verification pass).
  post_sums_fresh_ = false;
  screen_ready_ = false;
  screen_verified_ = false;
  steps_since_full_ = 0;
}

void InProcessExecutor::clamp_iterate(std::span<double> values) const {
  UFC_EXPECTS(values.size() == iterate_size());
  const std::size_t mn = m_ * n_;
  // lambda and a carry workloads: the model layer requires them >= 0. The
  // varphi segment between them is dual and stays untouched.
  for (std::size_t k = 0; k < 2 * mn; ++k)
    values[k] = std::max(0.0, values[k]);
  double* mu = values.data() + 3 * mn;
  double* nu = mu + n_;
  for (std::size_t j = 0; j < n_; ++j) {
    // mu_j is fuel-cell generation, bounded by the installed capacity
    // mu_max_j; nu_j is grid draw, bounded below only. (An earlier revision
    // had these two swapped, which let an extrapolated mu_j sail past a
    // shrunken capacity while truncating legitimate grid draw — pinned by
    // ProblemUpdateTest.ClampProjectsMuToCapacityAndNuToZero.)
    mu[j] = std::clamp(mu[j], 0.0,
                       problem_.datacenters[j].fuel_cell_capacity_mw);
    nu[j] = std::max(0.0, nu[j]);
  }
}

void InProcessExecutor::seed(const UfcSolution& solution) {
  UFC_EXPECTS(solution.lambda.rows() == m_ && solution.lambda.cols() == n_);
  UFC_EXPECTS(solution.mu.size() == n_ && solution.nu.size() == n_);
  for (std::size_t i = 0; i < m_; ++i) {
    const auto src = solution.lambda.row_span(i);
    const auto lam = lambda_.row_span(i);
    const auto a_row = a_.row_span(i);
    for (std::size_t j = 0; j < n_; ++j) {
      lam[j] = src[j] / sigma_;
      a_row[j] = lam[j];
    }
  }
  // mu and nu are MW quantities, invariant under the workload normalization.
  std::copy(solution.mu.begin(), solution.mu.end(), mu_.begin());
  std::copy(solution.nu.begin(), solution.nu.end(), nu_.begin());
  // Multiplier seeds from the oracle's KKT conditions, read off the block
  // fixed-point equations: an interior fuel-cell dispatch pins phi_j at the
  // fuel-cell price (mu-block stationarity), a positive grid draw pins it
  // at the grid price plus the marginal carbon cost (nu-block), and the
  // a-block stationarity then gives varphi_ij = -beta_j phi_j on interior
  // routing. Boundary cases fall back to the cheaper source's marginal —
  // approximate there, but ADM-G only has to correct the active rows
  // instead of rebuilding every multiplier from zero.
  constexpr double kDispatchTolMw = 1e-9;
  for (std::size_t j = 0; j < n_; ++j) {
    const DatacenterSpec& dc = problem_.datacenters[j];
    const double kappa = dc.carbon_rate / 1000.0;
    const double grid_marginal = [&](double draw) {
      return dc.grid_price + kappa * dc.emission_cost->derivative(kappa * draw);
    }(nu_[j]);
    double phi = 0.0;
    if (nu_[j] > kDispatchTolMw) {
      phi = grid_marginal;
    } else if (mu_[j] > kDispatchTolMw &&
               mu_[j] < dc.fuel_cell_capacity_mw - kDispatchTolMw) {
      phi = problem_.fuel_cell_price;
    } else {
      phi = std::min(problem_.fuel_cell_price, grid_marginal);
    }
    phi_[j] = phi;
    // varphi = -beta phi holds only where the a-block sits interior; on
    // off-support coordinates the bound multiplier absorbs part of it, so
    // those start at zero and let the first corrections fill them in.
    const double varphi = -problem_.beta_mw(j) * phi;
    for (std::size_t i = 0; i < m_; ++i)
      varphi_(i, j) = lambda_(i, j) > 0.0 ? varphi : 0.0;
  }
  last_change_ = 0.0;
  stepped_ = false;
  post_sums_fresh_ = false;
  screen_ready_ = false;
  screen_verified_ = false;
  steps_since_full_ = 0;
}

double InProcessExecutor::balance_residual() const {
  double r = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    // The maintained post-correction sums are bitwise equal to col_sum
    // (same increasing-i addition order); the fallback only runs before the
    // first step or right after restore().
    const double col_sum =
        post_sums_fresh_ ? a_col_sum_post_[j] : a_.col_sum(j);
    const double balance = problem_.alpha_mw(j) +
                           problem_.beta_mw(j) * col_sum - mu_[j] -
                           nu_[j];
    r = std::max(r, std::abs(balance));
  }
  return r;
}

double InProcessExecutor::copy_residual() const {
  return max_abs_diff(a_, lambda_);
}

double InProcessExecutor::objective() const {
  return ufc_objective(problem_, lambda_, mu_);
}

bool InProcessExecutor::is_converged() const {
  return stepped_ && inputs_fresh(0) &&
         balance_residual() / balance_scale_ < options_.tolerance &&
         copy_residual() / copy_scale_ < options_.tolerance &&
         last_change_ / copy_scale_ < options_.tolerance;
}

// The step runs two parallel passes over deterministic contiguous chunks:
// one per front-end (lambda predictions) and one per datacenter (mu, nu, a,
// duals and the Gaussian back substitution, fused column-wise exactly like
// net::DatacenterAgent). Every item writes only its own row/column, so the
// iterate sequence is bit-identical for every thread count — and identical
// to the message-passing runtime, which tests pin exactly.
void InProcessExecutor::step(int /*iteration*/) {
  using util::monotonic_now;
  using util::MonotonicTick;
  using util::seconds_between;
  if (profile_) {
    profile_last_ = PhaseProfile{};
    std::fill(chunk_predict_seconds_.begin(), chunk_predict_seconds_.end(),
              0.0);
    std::fill(chunk_correct_seconds_.begin(), chunk_correct_seconds_.end(),
              0.0);
  }
  const double rho = options_.rho;

  // Pass mode: with screening enabled, full (unrestricted) verification
  // passes run first thing and every full_pass_every-th step; everything in
  // between runs restricted to the current supports. The facade always
  // passes iteration 0, so scheduling uses the internal counter.
  const bool screening = options_.screening.enabled;
  const bool full_pass =
      !screening || !screen_ready_ ||
      steps_since_full_ + 1 >= options_.screening.full_pass_every;

  // Straggler draws happen serially in ascending front-end order before the
  // parallel pass, so the consumed random stream (and therefore the iterate
  // sequence) is independent of the thread count.
  if (partial_) {
    for (std::size_t i = 0; i < m_; ++i) {
      participate_[i] = rng_.bernoulli(participation_) ? 1 : 0;
      if (participate_[i] == 0) ++skipped_updates_;
    }
  }

  // Cache the column sums of a^k once per step. The row-major pass adds each
  // column's entries in increasing-i order, which is bitwise the same as
  // Mat::col_sum and as the runtime agent's sum(a_). (Out-of-support entries
  // are exact zeros, so the screened iterate loses nothing here.)
  a_col_sum_.fill(0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const auto row = a_.row_span(i);
    for (std::size_t j = 0; j < n_; ++j) a_col_sum_[j] += row[j];
  }

  // ---- Step 1.1: lambda predictions, one independent task per front-end.
  const auto lambda_pass_started =
      profile_ ? monotonic_now() : MonotonicTick{};
  if (full_pass) {
    pool_.parallel_for_chunks(
        0, m_, [&](std::size_t begin, std::size_t end, std::size_t c) {
          BlockWorkspace& ws = scratch_[c].blocks;
          for (std::size_t i = begin; i < end; ++i) {
            if (partial_ && participate_[i] == 0) {
              // Straggler: the coordinator keeps this front-end's cached
              // prediction. lambda_ holds the previous step's predictions
              // (post-swap), so copying the row into lambda~ reproduces the
              // stale proposal exactly; at the cold start both rows are zero.
              const auto cached = lambda_.row_span(i);
              const auto stale = lambda_tilde_.row_span(i);
              std::copy(cached.begin(), cached.end(), stale.begin());
              continue;
            }
            LambdaBlockInputs in;
            in.arrival = problem_.arrivals[i];
            in.latency_row = problem_.latency_s.row_span(i);
            in.a_row = a_.row_span(i);
            in.varphi_row = varphi_.row_span(i);
            in.rho = rho;
            in.latency_weight = problem_.latency_weight;
            in.utility = problem_.utility.get();
            solve_lambda_block_into(in, lambda_.row_span(i),
                                    lambda_tilde_.row_span(i), ws,
                                    options_.inner);
          }
        });
  } else {
    run_screened_lambda_pass();
  }

  if (profile_)
    profile_last_.lambda_pass_seconds =
        seconds_between(lambda_pass_started, monotonic_now());

  // ---- Steps 1.2-1.5 + step 2, fused per datacenter. Each column task
  // reads only iteration-k state of its own column (plus lambda~ and the
  // column-sum cache, both finalized above), so tasks are independent.
  std::fill(chunk_change_.begin(), chunk_change_.end(), 0.0);
  if (full_pass) {
    run_full_datacenter_pass();
  } else {
    run_screened_datacenter_pass();
  }

  if (profile_) {
    // Summed worker-thread time (not wall time): chunks overlap, so the
    // phase totals measure compute cost, comparable across thread counts.
    for (const double s : chunk_predict_seconds_)
      profile_last_.prediction_seconds += s;
    for (const double s : chunk_correct_seconds_)
      profile_last_.correction_seconds += s;
  }

  // lambda is the first block: accepted as predicted. Swapping (instead of
  // moving) keeps lambda_tilde_'s storage for the next step; a full pass
  // rewrites every row, a screened pass zero-fills and scatters every row.
  std::swap(lambda_, lambda_tilde_);

  if (screening) {
    if (full_pass) {
      rebuild_row_supports();
      bool grew = false;
      for (const unsigned char g : chunk_grew_) grew = grew || g != 0;
      // The convergence gate: only a full pass whose support did not grow
      // may certify the iterate (ActiveSetOptions contract).
      screen_verified_ = !grew;
      screen_ready_ = true;
      steps_since_full_ = 0;
    } else {
      screen_verified_ = false;
      ++steps_since_full_;
    }
  }

  // max is exact and order-insensitive, so the cross-chunk reduction is
  // bit-identical for every chunking.
  double change = 0.0;
  for (double c : chunk_change_) change = std::max(change, c);
  last_change_ = change;
  post_sums_fresh_ = true;
  stepped_ = true;
}

// Fused per-datacenter prediction + correction (steps 1.2-1.5 + step 2) over
// the transposed mirrors: each column task reads and writes contiguous rows
// of the N x M transposes instead of gathering/scattering strided columns of
// the row-major primaries. Values and evaluation order are identical to the
// former col_into/set_col formulation bit for bit — only the memory layout
// changed. With screening enabled this pass additionally rebuilds each
// column's support from the corrected state and records growth.
void InProcessExecutor::run_full_datacenter_pass() {
  using util::monotonic_now;
  using util::MonotonicTick;
  using util::seconds_between;
  const double rho = options_.rho;
  const bool pin_mu = options_.pinning == BlockPinning::PinMu;
  const bool pin_nu = options_.pinning == BlockPinning::PinNu;
  const bool gbs = options_.gaussian_back_substitution;
  const double eps = gbs ? options_.epsilon : 1.0;
  const bool screening = options_.screening.enabled;

  varphi_.transpose_into(varphi_t_);
  lambda_tilde_.transpose_into(lambda_tilde_t_);
  a_.transpose_into(a_t_);
  std::fill(chunk_grew_.begin(), chunk_grew_.end(), 0);

  pool_.parallel_for_chunks(
      0, n_, [&](std::size_t begin, std::size_t end, std::size_t c) {
        WorkerScratch& ws = scratch_[c];
        double change = 0.0;
        for (std::size_t j = begin; j < end; ++j) {
          const auto column_started =
              profile_ ? monotonic_now() : MonotonicTick{};
          const double alpha = problem_.alpha_mw(j);
          const double beta = problem_.beta_mw(j);
          const double a_col_sum_k = a_col_sum_[j];

          // 1.2 mu-minimization (uses a^k, nu^k, phi^k).
          double mu_tilde = 0.0;
          if (!pin_mu) {
            MuBlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.a_col_sum = a_col_sum_k;
            in.nu = nu_[j];
            in.phi = phi_[j];
            in.rho = rho;
            in.fuel_cell_price = problem_.fuel_cell_price;
            in.mu_max = problem_.datacenters[j].fuel_cell_capacity_mw;
            mu_tilde = solve_mu_block(in);
          }

          // 1.3 nu-minimization (uses a^k, mu~, phi^k).
          double nu_tilde = 0.0;
          if (!pin_nu) {
            NuBlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.a_col_sum = a_col_sum_k;
            in.mu = mu_tilde;
            in.phi = phi_[j];
            in.rho = rho;
            in.grid_price = problem_.datacenters[j].grid_price;
            in.carbon_tons_per_mwh =
                problem_.datacenters[j].carbon_rate / 1000.0;
            in.emission_cost = problem_.datacenters[j].emission_cost.get();
            nu_tilde = solve_nu_block(in);
          }

          // 1.4 a-minimization (uses lambda~, mu~, nu~, phi^k, varphi^k) —
          // directly on the contiguous transposed rows.
          const auto varphi_col = varphi_t_.row_span(j);
          const auto lambda_col = lambda_tilde_t_.row_span(j);
          const auto a_col = a_t_.row_span(j);
          ws.a_new.resize(m_);
          {
            ABlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.mu = mu_tilde;
            in.nu = nu_tilde;
            in.phi = phi_[j];
            in.varphi_col = varphi_col;
            in.lambda_col = lambda_col;
            in.rho = rho;
            in.capacity = problem_.datacenters[j].servers;
            solve_a_block_into(in, a_col, ws.a_new.span(), ws.blocks,
                               options_.inner);
          }

          // 1.5 dual predictions (use a~, lambda~, mu~, nu~).
          double a_tilde_sum = 0.0;
          for (std::size_t i = 0; i < m_; ++i) a_tilde_sum += ws.a_new[i];
          const double phi_tilde = update_phi(phi_[j], rho, alpha, beta,
                                              a_tilde_sum, mu_tilde, nu_tilde);

          // Phase boundary: everything above is the prediction pass
          // (steps 1.2-1.5), everything below the GBS correction. Clock
          // reads only — the arithmetic is untouched.
          const auto correction_started =
              profile_ ? monotonic_now() : MonotonicTick{};
          if (profile_)
            chunk_predict_seconds_[c] +=
                seconds_between(column_started, correction_started);

          // Step 2 (or the plain-ADMM acceptance when gbs is off), applied
          // in place on the transposed rows. Each variable's correction
          // reads only its own old value, so sequencing varphi -> a ->
          // (phi, nu, mu) is bitwise the same as the paper's backward order.
          correct_varphi_block(varphi_col, ws.a_new.span(), lambda_col, rho,
                               eps, gbs);
          const ABlockCorrection corr =
              correct_a_block(a_col, ws.a_new.span(), eps, gbs);
          // Post-correction column sum in increasing-i order: bitwise equal
          // to Mat::col_sum on the transposed-back primary.
          double col_total = 0.0;
          for (std::size_t i = 0; i < m_; ++i) col_total += a_col[i];
          a_col_sum_post_[j] = col_total;
          change = std::max(change, corr.max_change);
          change = std::max(
              change, correct_sources(phi_[j], nu_[j], mu_[j], phi_tilde,
                                      nu_tilde, mu_tilde, beta, corr.delta_sum,
                                      eps, gbs, pin_mu, pin_nu));

          if (screening) {
            // Rebuild this column's support from the corrected state: the
            // combined nonzero pattern of a (post-correction) and lambda~
            // (which becomes lambda at the end-of-step swap).
            auto& fresh = ws.support_scratch;
            fresh.clear();
            for (std::size_t i = 0; i < m_; ++i) {
              // ufc-lint: allow(float-equal) — support membership is defined
              // by exact zeros: the projections emit hard zeros and screened
              // passes never write outside the support.
              if (a_col[i] != 0.0 || lambda_col[i] != 0.0)
                fresh.push_back(static_cast<std::uint32_t>(i));
            }
            auto& previous = col_support_[j];
            // Growth = any fresh index absent from the previous support
            // (both ascending; merge scan).
            bool grew = false;
            std::size_t p = 0;
            for (const std::uint32_t i : fresh) {
              while (p < previous.size() && previous[p] < i) ++p;
              if (p == previous.size() || previous[p] != i) {
                grew = true;
                break;
              }
            }
            if (grew) chunk_grew_[c] = 1;
            previous.assign(fresh.begin(), fresh.end());
          }
          if (profile_)
            chunk_correct_seconds_[c] +=
                seconds_between(correction_started, monotonic_now());
        }
        chunk_change_[c] = change;
      });

  varphi_t_.transpose_into(varphi_);
  a_t_.transpose_into(a_);
}

// Restricted lambda pass: each front-end solves its sub-problem over its
// support set only. The restriction is exact for the restricted problem —
// out-of-support lambda entries are exact zeros, so the latency, dual and
// proximal terms they would contribute are constants — but the restricted
// FISTA solve uses the restricted Lipschitz constant, which is why screened
// iterates are not bit-identical to unscreened ones.
void InProcessExecutor::run_screened_lambda_pass() {
  const double rho = options_.rho;
  pool_.parallel_for_chunks(
      0, m_, [&](std::size_t begin, std::size_t end, std::size_t c) {
        WorkerScratch& ws = scratch_[c];
        for (std::size_t i = begin; i < end; ++i) {
          const auto out_row = lambda_tilde_.row_span(i);
          // Zero the whole prediction row first: lambda_tilde_ holds the
          // two-steps-old lambda after the swap cycle, which may have
          // support the pattern has since dropped.
          std::fill(out_row.begin(), out_row.end(), 0.0);
          if (problem_.arrivals[i] <= 0.0) continue;
          const auto& support = row_support_[i];
          LambdaBlockInputs in;
          in.arrival = problem_.arrivals[i];
          in.rho = rho;
          in.latency_weight = problem_.latency_weight;
          in.utility = problem_.utility.get();
          if (support.empty()) {
            // Defensive: a positive-arrival row always has support after a
            // full pass (its lambda row sums to the arrival). Solve the
            // full row rather than emit an infeasible all-zero row.
            in.latency_row = problem_.latency_s.row_span(i);
            in.a_row = a_.row_span(i);
            in.varphi_row = varphi_.row_span(i);
            solve_lambda_block_into(in, lambda_.row_span(i), out_row,
                                    ws.blocks, options_.inner);
            continue;
          }
          const std::size_t s = support.size();
          ws.sub_latency.resize(s);
          ws.sub_a.resize(s);
          ws.sub_varphi.resize(s);
          ws.sub_warm.resize(s);
          ws.sub_out.resize(s);
          const auto lat = problem_.latency_s.row_span(i);
          const auto a_row = a_.row_span(i);
          const auto varphi_row = varphi_.row_span(i);
          const auto warm_row = lambda_.row_span(i);
          for (std::size_t k = 0; k < s; ++k) {
            const std::size_t j = support[k];
            ws.sub_latency[k] = lat[j];
            ws.sub_a[k] = a_row[j];
            ws.sub_varphi[k] = varphi_row[j];
            ws.sub_warm[k] = warm_row[j];
          }
          in.latency_row = ws.sub_latency.span();
          in.a_row = ws.sub_a.span();
          in.varphi_row = ws.sub_varphi.span();
          solve_lambda_block_into(in, ws.sub_warm.span(), ws.sub_out.span(),
                                  ws.blocks, options_.inner);
          for (std::size_t k = 0; k < s; ++k)
            out_row[support[k]] = ws.sub_out[k];
        }
      });
}

// Restricted datacenter pass: mu, nu and phi keep their exact full
// arithmetic (they depend on the column sums, which the exact-zero support
// invariant preserves); the a solve and the varphi/a corrections run on the
// compact support gather only, and out-of-support varphi entries stay frozen
// (their correction would be a no-op: a~ = lambda~ = 0 there).
void InProcessExecutor::run_screened_datacenter_pass() {
  using util::monotonic_now;
  using util::MonotonicTick;
  using util::seconds_between;
  const double rho = options_.rho;
  const bool pin_mu = options_.pinning == BlockPinning::PinMu;
  const bool pin_nu = options_.pinning == BlockPinning::PinNu;
  const bool gbs = options_.gaussian_back_substitution;
  const double eps = gbs ? options_.epsilon : 1.0;

  pool_.parallel_for_chunks(
      0, n_, [&](std::size_t begin, std::size_t end, std::size_t c) {
        WorkerScratch& ws = scratch_[c];
        double change = 0.0;
        for (std::size_t j = begin; j < end; ++j) {
          const auto column_started =
              profile_ ? monotonic_now() : MonotonicTick{};
          const double alpha = problem_.alpha_mw(j);
          const double beta = problem_.beta_mw(j);
          const double a_col_sum_k = a_col_sum_[j];

          double mu_tilde = 0.0;
          if (!pin_mu) {
            MuBlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.a_col_sum = a_col_sum_k;
            in.nu = nu_[j];
            in.phi = phi_[j];
            in.rho = rho;
            in.fuel_cell_price = problem_.fuel_cell_price;
            in.mu_max = problem_.datacenters[j].fuel_cell_capacity_mw;
            mu_tilde = solve_mu_block(in);
          }

          double nu_tilde = 0.0;
          if (!pin_nu) {
            NuBlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.a_col_sum = a_col_sum_k;
            in.mu = mu_tilde;
            in.phi = phi_[j];
            in.rho = rho;
            in.grid_price = problem_.datacenters[j].grid_price;
            in.carbon_tons_per_mwh =
                problem_.datacenters[j].carbon_rate / 1000.0;
            in.emission_cost = problem_.datacenters[j].emission_cost.get();
            nu_tilde = solve_nu_block(in);
          }

          const auto& support = col_support_[j];
          const std::size_t s = support.size();
          double a_tilde_sum = 0.0;
          ABlockCorrection corr;
          if (s > 0) {
            ws.sub_varphi.resize(s);
            ws.sub_lambda.resize(s);
            ws.sub_a.resize(s);
            ws.a_new.resize(s);
            const double* varphi_base = varphi_.data();
            const double* lambda_base = lambda_tilde_.data();
            const double* a_base = a_.data();
            for (std::size_t k = 0; k < s; ++k) {
              const std::size_t idx = support[k] * n_ + j;
              ws.sub_varphi[k] = varphi_base[idx];
              ws.sub_lambda[k] = lambda_base[idx];
              ws.sub_a[k] = a_base[idx];
            }
            ABlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.mu = mu_tilde;
            in.nu = nu_tilde;
            in.phi = phi_[j];
            in.varphi_col = ws.sub_varphi.span();
            in.lambda_col = ws.sub_lambda.span();
            in.rho = rho;
            in.capacity = problem_.datacenters[j].servers;
            solve_a_block_into(in, ws.sub_a.span(), ws.a_new.span(),
                               ws.blocks, options_.inner);
            for (std::size_t k = 0; k < s; ++k) a_tilde_sum += ws.a_new[k];
          }
          const double phi_tilde = update_phi(phi_[j], rho, alpha, beta,
                                              a_tilde_sum, mu_tilde, nu_tilde);

          const auto correction_started =
              profile_ ? monotonic_now() : MonotonicTick{};
          if (profile_)
            chunk_predict_seconds_[c] +=
                seconds_between(column_started, correction_started);

          double col_total = 0.0;
          if (s > 0) {
            correct_varphi_block(ws.sub_varphi.span(), ws.a_new.span(),
                                 ws.sub_lambda.span(), rho, eps, gbs);
            corr = correct_a_block(ws.sub_a.span(), ws.a_new.span(), eps, gbs);
            double* varphi_base = varphi_.data();
            double* a_base = a_.data();
            // Scatter back and accumulate the post-correction column sum in
            // increasing-i order; the skipped entries are exact zeros, which
            // are additive identities on these nonnegative partial sums, so
            // the result is bitwise equal to the full-column scan.
            for (std::size_t k = 0; k < s; ++k) {
              const std::size_t idx = support[k] * n_ + j;
              varphi_base[idx] = ws.sub_varphi[k];
              a_base[idx] = ws.sub_a[k];
              col_total += ws.sub_a[k];
            }
          }
          a_col_sum_post_[j] = col_total;
          change = std::max(change, corr.max_change);
          change = std::max(
              change, correct_sources(phi_[j], nu_[j], mu_[j], phi_tilde,
                                      nu_tilde, mu_tilde, beta, corr.delta_sum,
                                      eps, gbs, pin_mu, pin_nu));
          if (profile_)
            chunk_correct_seconds_[c] +=
                seconds_between(correction_started, monotonic_now());
        }
        chunk_change_[c] = change;
      });
}

void InProcessExecutor::rebuild_row_supports() {
  for (auto& row : row_support_) row.clear();
  for (std::size_t j = 0; j < n_; ++j)
    for (const std::uint32_t i : col_support_[j])
      row_support_[i].push_back(static_cast<std::uint32_t>(j));
}

void InProcessExecutor::set_problem(const UfcProblem& problem) {
  problem.validate();
  UFC_EXPECTS(problem.num_front_ends() == m_);
  UFC_EXPECTS(problem.num_datacenters() == n_);
  original_ = problem;
  // Rescale into the existing problem_ storage; the previous implementation
  // built a third full copy through scale_workload_units' return value.
  problem_ = problem;
  scale_workload_units_in_place(problem_, sigma_);
  // Residual scales track the new slot's magnitudes.
  update_residual_scales();
  stepped_ = false;  // convergence must be re-established on the new slot
  // The warm-started iterate carries over, so the cached post-correction
  // column sums stay valid — but the supports were certified against the old
  // problem, so the next step must be a full verification pass.
  screen_ready_ = false;
  screen_verified_ = false;
  steps_since_full_ = 0;
  // The new slot may have shrunk a fuel-cell cap below the warm mu_j (an
  // outage at a slot boundary): project rather than iterate from an
  // infeasible point the block solvers' contracts do not cover.
  repair_iterate_bounds();
}

void InProcessExecutor::apply_update(const ProblemUpdate& update) {
  // Validate the whole batch before touching anything: a malformed entry
  // must never leave the live problem half-updated under a warm solver.
  for (const auto& [i, value] : update.arrivals) {
    UFC_EXPECTS(i < m_);
    UFC_EXPECTS(std::isfinite(value) && value >= 0.0);
  }
  for (const auto* batch :
       {&update.grid_prices, &update.carbon_rates, &update.fuel_cell_caps}) {
    for (const auto& [j, value] : *batch) {
      UFC_EXPECTS(j < n_);
      UFC_EXPECTS(std::isfinite(value) && value >= 0.0);
    }
  }
  if (options_.pinning == BlockPinning::PinNu) {
    // The FuelCell strategy's construction invariant: capacity covers the
    // peak demand. A tick must not silently break it.
    for (const auto& [j, value] : update.fuel_cell_caps) {
      const double peak =
          problem_.demand_mw(j, problem_.datacenters[j].servers);
      UFC_EXPECTS(value >= peak - 1e-9);
    }
  }
  // Aggregate feasibility, checked against a scratch copy (duplicate
  // indices are allowed, last writer wins — same as replaying the entries).
  std::vector<double> new_arrivals = original_.arrivals;
  for (const auto& [i, value] : update.arrivals) new_arrivals[i] = value;
  double total = 0.0;
  for (double a : new_arrivals) total += a;
  UFC_EXPECTS(total <= original_.total_server_capacity() + 1e-9);

  // Commit. Arrivals are workload quantities (divided by sigma in the
  // normalized problem); prices, carbon rates and fuel-cell caps are $/MWh,
  // kg/MWh and MW — invariant under the workload normalization.
  original_.arrivals = std::move(new_arrivals);
  for (const auto& [i, value] : update.arrivals) {
    (void)value;
    problem_.arrivals[i] = original_.arrivals[i] / sigma_;
  }
  for (const auto& [j, value] : update.grid_prices) {
    original_.datacenters[j].grid_price = value;
    problem_.datacenters[j].grid_price = value;
  }
  for (const auto& [j, value] : update.carbon_rates) {
    original_.datacenters[j].carbon_rate = value;
    problem_.datacenters[j].carbon_rate = value;
  }
  for (const auto& [j, value] : update.fuel_cell_caps) {
    original_.datacenters[j].fuel_cell_capacity_mw = value;
    problem_.datacenters[j].fuel_cell_capacity_mw = value;
  }

  // Invalidate everything that described the pre-update problem: residual
  // scales, the convergence-certification gate (stepped_), the active-set
  // supports and the cached post-correction column sums. set_problem/restore
  // already guaranteed this; a live mutation path without the same
  // invalidation is exactly where stale-screening bugs hide.
  update_residual_scales();
  stepped_ = false;
  post_sums_fresh_ = false;
  screen_ready_ = false;
  screen_verified_ = false;
  steps_since_full_ = 0;
  // A shrunken cap can leave the warm mu_j outside the new primal box.
  repair_iterate_bounds();
}

void InProcessExecutor::repair_iterate_bounds() {
  bool feasible = true;
  for (std::size_t j = 0; j < n_ && feasible; ++j) {
    const double cap = problem_.datacenters[j].fuel_cell_capacity_mw;
    feasible = mu_[j] >= 0.0 && mu_[j] <= cap && nu_[j] >= 0.0;
  }
  if (feasible) {
    const auto nonnegative = [](std::span<const double> values) {
      for (const double v : values)
        if (v < 0.0) return false;
      return true;
    };
    feasible = nonnegative(lambda_.raw()) && nonnegative(a_.raw());
  }
  if (feasible) return;
  // Route the infeasible warm iterate through the same projection the
  // acceleration safeguard uses; set_iterate then invalidates the caches
  // that described the unprojected point.
  std::vector<double> flat(iterate_size());
  copy_iterate(flat);
  clamp_iterate(flat);
  set_iterate(flat);
}

bool InProcessExecutor::iterate_finite() const {
  return all_finite(lambda_.raw()) && all_finite(a_.raw()) &&
         all_finite(varphi_.raw()) && all_finite(mu_.span()) &&
         all_finite(nu_.span()) && all_finite(phi_.span()) &&
         std::isfinite(last_change_);
}

std::vector<std::byte> InProcessExecutor::checkpoint() const {
  std::vector<std::byte> out;
  wire::append(out, kCheckpointMagic);
  wire::append(out, kCheckpointVersion);
  wire::append(out, static_cast<std::uint64_t>(m_));
  wire::append(out, static_cast<std::uint64_t>(n_));
  wire::append(out, sigma_);
  wire::append(out, last_change_);
  wire::append(out, static_cast<std::uint8_t>(stepped_ ? 1 : 0));
  wire::append_f64s(out, lambda_.raw());
  wire::append_f64s(out, a_.raw());
  wire::append_f64s(out, varphi_.raw());
  wire::append_f64s(out, mu_.span());
  wire::append_f64s(out, nu_.span());
  wire::append_f64s(out, phi_.span());
  return out;
}

void InProcessExecutor::restore(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) == kCheckpointMagic);
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) == kCheckpointVersion);
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == m_);
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == n_);
  // Iterates are stored in normalized workload units; a different sigma
  // would silently reinterpret them.
  UFC_EXPECTS(wire::read<double>(bytes, offset) == sigma_);
  last_change_ = wire::read<double>(bytes, offset);
  stepped_ = wire::read<std::uint8_t>(bytes, offset) != 0;
  wire::read_f64s(bytes, offset, {lambda_.data(), lambda_.size()});
  wire::read_f64s(bytes, offset, {a_.data(), a_.size()});
  wire::read_f64s(bytes, offset, {varphi_.data(), varphi_.size()});
  wire::read_f64s(bytes, offset, mu_.span());
  wire::read_f64s(bytes, offset, nu_.span());
  wire::read_f64s(bytes, offset, phi_.span());
  UFC_EXPECTS(offset == bytes.size());
  // Screening bookkeeping is deliberately not serialized (the checkpoint
  // format predates it and a restored run may use different options): force
  // the next step to be a full verification pass, and drop the cached
  // column sums, which describe the pre-restore iterate.
  post_sums_fresh_ = false;
  screen_ready_ = false;
  screen_verified_ = false;
  steps_since_full_ = 0;
}

PartialParticipationExecutor::PartialParticipationExecutor(
    const UfcProblem& problem, AdmgOptions options, double participation,
    std::uint64_t seed)
    : InProcessExecutor(problem, options) {
  UFC_EXPECTS(participation > 0.0 && participation <= 1.0);
  // The pinned baselines' convergence argument assumes every agent moves
  // every round. 1.0 is an exact sentinel meaning "every agent
  // participates", not a computed value.
  // ufc-lint: allow(float-equal)
  UFC_EXPECTS(options.pinning == BlockPinning::None || participation == 1.0);
  // At exactly 1 the straggler model stays disabled: the step consumes no
  // randomness and remains bit-identical to the synchronous path.
  if (participation < 1.0) enable_partial(participation, seed);
}

AdmgEngine::AdmgEngine(const AdmgOptions& options) : options_(options) {
  UFC_EXPECTS(options_.max_iterations > 0);
  UFC_EXPECTS(options_.tolerance > 0.0);
  validate_ingredients(options_);
  penalty_ = penalty_registry().create(options_.penalty, options_);
  acceleration_ =
      acceleration_registry().create(options_.acceleration, options_);
}

// Out of line: the policy members are unique_ptrs to types engine.hpp only
// forward-declares (registry-confinement keeps the concrete headers out).
AdmgEngine::~AdmgEngine() = default;

SolveCore AdmgEngine::solve(BlockExecutor& executor, int first_iteration) {
  UFC_EXPECTS(first_iteration >= 0);
  SolveCore core;
  SolverWatchdog watchdog(options_.watchdog);
  double balance = 0.0;
  double copy = 0.0;
  // A poisoned warm start (e.g. a checkpoint whose payload was corrupted
  // after framing) must be caught before step() feeds NaN into the block
  // solvers, whose own contracts would throw instead of degrading.
  if (options_.watchdog.check_finite && !executor.iterate_finite()) {
    watchdog.observe(0.0, 0.0, false);
    core.watchdog_verdict = watchdog.verdict();
  }
  const bool sampling = options_.record_trace || options_.observer != nullptr;
  // Phase profiles ride on observer samples, so profiling without an
  // observer would only pay clock reads for data nobody sees.
  const bool profiling =
      options_.profile_phases && options_.observer != nullptr;
  executor.set_phase_profiling(profiling);
  // Ingredient support gates (both trivially pass under the default
  // composition, which never touches the seams — the bit-identity fast
  // path). An accelerating composition needs flat-iterate access, an
  // adaptive penalty needs a rho the engine can swap mid-solve; executors
  // without the seams (the message-passing runtime) reject up front rather
  // than silently running the plain scheme.
  const bool accelerating = !acceleration_->identity();
  const bool adaptive_penalty = !penalty_->fixed();
  double rho = options_.rho;
  if (accelerating) {
    const std::size_t size = executor.iterate_size();
    UFC_EXPECTS(size > 0);
    acceleration_->begin(size);
    previous_.resize(size);
    plain_.resize(size);
    candidate_.resize(size);
  }
  if (adaptive_penalty) {
    const bool supported = executor.set_penalty(rho);
    UFC_EXPECTS(supported);
  }
  const int first = first_iteration;
  for (int k = first;
       !watchdog.tripped() && k < first + options_.max_iterations; ++k) {
    if (accelerating) executor.copy_iterate(previous_);
    double wall_seconds = 0.0;
    if (options_.observer != nullptr) {
      const auto started = util::monotonic_now();
      executor.step(k);
      wall_seconds = util::seconds_between(started, util::monotonic_now());
    } else {
      executor.step(k);
    }
    ++core.iterations;
    if (executor.topology_changed()) {
      // The problem shape changed under us (degraded-mode capacity
      // removal): residual history is no longer comparable, so restart the
      // watchdog and skip this round's convergence test.
      watchdog.reset();
      continue;
    }
    // One residual evaluation per iteration, shared by the trace, the
    // observer and the convergence test (each is an O(MN) pass). The gate
    // phase timer covers these passes — they are the per-iteration cost the
    // convergence test imposes on top of the step itself.
    const auto gate_started =
        profiling ? util::monotonic_now() : util::MonotonicTick{};
    balance = executor.balance_residual();
    copy = executor.copy_residual();
    if (accelerating) {
      // Acceleration seam: the plain step T(previous) just ran and its
      // residuals are in hand. Propose a candidate, install it, measure it,
      // and let the policy's safeguard keep or reject it; the residuals
      // carried to the trace / convergence gate / watchdog below are those
      // of whichever iterate survived.
      executor.copy_iterate(plain_);
      const double plain_scaled = std::max(balance / executor.balance_scale(),
                                           copy / executor.copy_scale());
      if (acceleration_->propose(previous_, plain_, candidate_)) {
        executor.clamp_iterate(candidate_);
        executor.set_iterate(candidate_);
        // std::max never selects NaN, so a non-finite candidate is flagged
        // explicitly instead of relying on residual propagation.
        double candidate_balance = std::numeric_limits<double>::quiet_NaN();
        double candidate_copy = std::numeric_limits<double>::quiet_NaN();
        double candidate_scaled = std::numeric_limits<double>::quiet_NaN();
        if (executor.iterate_finite()) {
          candidate_balance = executor.balance_residual();
          candidate_copy = executor.copy_residual();
          candidate_scaled =
              std::max(candidate_balance / executor.balance_scale(),
                       candidate_copy / executor.copy_scale());
        }
        if (acceleration_->accept(plain_scaled, candidate_scaled)) {
          balance = candidate_balance;
          copy = candidate_copy;
        } else {
          executor.set_iterate(plain_);
        }
      }
    }
    if (sampling) {
      const double objective = executor.objective();
      if (options_.record_trace) {
        core.trace.balance_residual.push_back(balance);
        core.trace.copy_residual.push_back(copy);
        core.trace.objective.push_back(objective);
      }
      if (options_.observer != nullptr) {
        IterationSample sample;
        sample.iteration = k;
        sample.balance_residual = balance;
        sample.copy_residual = copy;
        sample.change = executor.last_change();
        sample.objective = objective;
        sample.wall_seconds = wall_seconds;
        if (profiling) {
          sample.has_phases = true;
          if (const PhaseProfile* phases = executor.phase_profile())
            sample.phases = *phases;
          sample.phases.gate_seconds =
              util::seconds_between(gate_started, util::monotonic_now());
        }
        options_.observer->on_iteration(sample);
      }
    }
    // Convergence is tested first so that reaching tolerance on the same
    // iteration a stall window fills still counts as success. NaN residuals
    // can never pass the comparisons, so NonFinite is not maskable. The
    // freshness gate keeps degraded-mode runs from declaring victory while
    // an agent is still integrating inputs older than the staleness bound.
    if (executor.inputs_fresh(k) &&
        balance / executor.balance_scale() < options_.tolerance &&
        copy / executor.copy_scale() < options_.tolerance &&
        executor.last_change() / executor.copy_scale() < options_.tolerance) {
      core.converged = true;
      break;
    }
    const bool finite =
        !options_.watchdog.check_finite || executor.iterate_finite();
    if (watchdog.observe(balance / executor.balance_scale(),
                         copy / executor.copy_scale(),
                         finite) != WatchdogVerdict::Healthy) {
      core.watchdog_verdict = watchdog.verdict();
      break;
    }
    if (adaptive_penalty) {
      // Penalty seam: the policy sees this iteration's scaled residuals and
      // proposes the next rho. On a change the engine applies it — once,
      // here, for every executor — and purges the acceleration history.
      const double scaled_primal = std::max(balance / executor.balance_scale(),
                                            copy / executor.copy_scale());
      const double scaled_dual =
          executor.last_change() / executor.copy_scale();
      const double next_rho = penalty_->propose(rho, scaled_primal,
                                                scaled_dual);
      UFC_EXPECTS(std::isfinite(next_rho) && next_rho > 0.0);
      // An unchanged rho is the policy's exact keep-current sentinel.
      // ufc-lint: allow(float-equal)
      if (next_rho != rho) {
        const bool applied = executor.set_penalty(next_rho);
        UFC_EXPECTS(applied);
        // The duals are deliberately NOT rescaled: this engine runs the
        // unscaled convention y += rho (a - lambda), under which phi and
        // varphi are rho-independent marginal prices (the warm-start seeds
        // read them straight off the problem data). Rescaling belongs to
        // the scaled-dual (u = y/rho) formulation only; applying it here
        // multiplies real prices by the ratio and compounds into dual
        // divergence as the balancer ratchets.
        rho = next_rho;
        // The penalty change reshaped every block proximal step: residual
        // pairs recorded under the old rho describe a different fixed-point
        // map, so the acceleration history must not mix across the change.
        if (accelerating) acceleration_->reset();
      }
    }
  }
  core.balance_residual = balance;
  core.copy_residual = copy;
  core.acceleration_fallbacks = acceleration_->fallbacks();
  core.final_penalty = rho;
  core.status = core.watchdog_verdict != WatchdogVerdict::Healthy
                    ? SolveStatus::WatchdogTripped
                : core.converged ? SolveStatus::Converged
                                 : SolveStatus::BudgetExhausted;

  if (core.watchdog_verdict != WatchdogVerdict::Healthy) {
    log::warn("ADM-G watchdog tripped (",
              core.watchdog_verdict == WatchdogVerdict::NonFinite
                  ? "non-finite iterate"
                  : "residual stall",
              ") after ", core.iterations, " iterations");
    if (options_.fallback_to_centralized) {
      CentralizedOptions fallback;
      fallback.grid_only = options_.pinning == BlockPinning::PinMu;
      fallback.fuel_cell_only = options_.pinning == BlockPinning::PinNu;
      const auto safe = solve_centralized(executor.original_problem(), fallback);
      core.solution = safe.solution;
      core.breakdown = safe.breakdown;
      core.fallback_centralized = true;
      if (options_.observer != nullptr) options_.observer->on_solve_end(core);
      return core;
    }
  }

  // Rescale routing back to caller units and evaluate on the original
  // problem (the objective is invariant, but reported latencies/costs should
  // reference the caller's units).
  Mat lambda_servers = executor.gather_lambda();
  lambda_servers *= executor.workload_scale();
  core.solution.lambda = std::move(lambda_servers);
  core.solution.mu = executor.gather_mu();
  core.solution.nu = grid_draw_mw(executor.original_problem(),
                                  core.solution.lambda, core.solution.mu);
  core.breakdown =
      evaluate(executor.original_problem(), core.solution.lambda,
               core.solution.mu);

  if (!core.converged && options_.warn_on_unconverged) {
    log::warn("ADM-G did not converge in ", core.iterations,
              " iterations (balance residual ", core.balance_residual,
              ", copy residual ", core.copy_residual, ")");
  }
  if (options_.observer != nullptr) options_.observer->on_solve_end(core);
  return core;
}

}  // namespace ufc::admm
