// Structured solve telemetry for the ADM-G engine.
//
// Every driver (in-process, partial-participation, message-passing) runs the
// same AdmgEngine loop; an IterationObserver hooked into AdmgOptions sees the
// same per-iteration stream regardless of which executor produced it. That is
// the single instrumentation seam for admm, net, sim, bench and the CLI — no
// driver grows its own ad-hoc trace plumbing again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace ufc {
class CsvWriter;
}  // namespace ufc

namespace ufc::admm {

struct SolveCore;  // solve_core.hpp

/// Wall time one engine iteration spent in each algorithm phase, seconds on
/// the monotonic clock. Filled only when AdmgOptions::profile_phases is set
/// and the executor supports phase timing (the in-process executors do; the
/// message-passing executor reports only the gate, which the engine times).
/// Profiling adds clock reads around existing code and never reorders or
/// alters arithmetic, so profiled solves stay bit-identical.
struct PhaseProfile {
  double lambda_pass_seconds = 0.0;  ///< Per-front-end lambda predictions.
  double prediction_seconds = 0.0;   ///< mu/nu/a solves + dual updates.
  double correction_seconds = 0.0;   ///< Gaussian back substitution.
  double gate_seconds = 0.0;         ///< Residual/objective convergence gate.

  double total_seconds() const {
    return lambda_pass_seconds + prediction_seconds + correction_seconds +
           gate_seconds;
  }
};

/// One engine iteration as the observer sees it. Residuals and change are in
/// raw (unscaled) units, matching AdmgTrace; `iteration` is the engine's
/// iteration number, which for resumed/distributed solves is the round index
/// rather than a zero-based counter.
struct IterationSample {
  int iteration = 0;
  double balance_residual = 0.0;  ///< max_j |alpha+beta*sum a-mu-nu|, MW.
  double copy_residual = 0.0;     ///< max_ij |a_ij - lambda_ij|, normalized units.
  double change = 0.0;            ///< Largest per-variable movement of the step.
  double objective = 0.0;         ///< UFC at the current (lambda, mu).
  double wall_seconds = 0.0;      ///< Wall time spent inside the step.
  bool has_phases = false;        ///< True when `phases` holds measurements.
  PhaseProfile phases;            ///< Valid only when has_phases.
};

/// Engine telemetry hook. Observers never see (and can never influence) the
/// iterate itself, so an attached observer keeps solves bit-identical.
class IterationObserver {
 public:
  virtual ~IterationObserver() = default;

  /// Called after every engine iteration (including the converging one).
  virtual void on_iteration(const IterationSample& sample) = 0;

  /// Called once per solve after the report core is finalized. Default: no-op.
  virtual void on_solve_end(const SolveCore& core);
};

/// Aggregates counters across any number of solves (e.g. a week of slots).
class SolveCounters : public IterationObserver {
 public:
  void on_iteration(const IterationSample& sample) override;
  void on_solve_end(const SolveCore& core) override;

  int solves() const { return solves_; }
  int converged_solves() const { return converged_; }
  std::int64_t iterations() const { return iterations_; }
  double wall_seconds() const { return wall_seconds_; }

 private:
  int solves_ = 0;
  int converged_ = 0;
  std::int64_t iterations_ = 0;
  double wall_seconds_ = 0.0;
};

/// Streams every sample into a CSV file with columns
/// {solve, iteration, balance_residual, copy_residual, change, objective,
/// wall_seconds}. `solve` increments at each on_solve_end so multi-slot runs
/// stay separable.
class CsvTraceObserver : public IterationObserver {
 public:
  explicit CsvTraceObserver(const std::string& path);
  ~CsvTraceObserver() override;

  void on_iteration(const IterationSample& sample) override;
  void on_solve_end(const SolveCore& core) override;

  std::size_t rows_written() const;
  const std::string& path() const;

 private:
  std::unique_ptr<CsvWriter> csv_;
  int solve_ = 0;
};

}  // namespace ufc::admm
