#include "admm/rightsizing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contract.hpp"

namespace ufc::admm {

Vec right_size_servers(const UfcProblem& problem, const Mat& lambda,
                       const RightSizingOptions& options) {
  UFC_EXPECTS(options.min_active_fraction >= 0.0 &&
              options.min_active_fraction <= 1.0);
  UFC_EXPECTS(options.headroom >= 1.0);
  UFC_EXPECTS(lambda.rows() == problem.num_front_ends());
  UFC_EXPECTS(lambda.cols() == problem.num_datacenters());

  Vec active(problem.num_datacenters());
  for (std::size_t j = 0; j < active.size(); ++j) {
    const double fleet = problem.datacenters[j].servers;
    const double floor_servers = options.min_active_fraction * fleet;
    const double needed = options.headroom * lambda.col_sum(j);
    active[j] = std::clamp(std::max(needed, floor_servers), 0.0, fleet);
  }
  return active;
}

UfcProblem with_active_servers(const UfcProblem& problem, const Vec& active) {
  UFC_EXPECTS(active.size() == problem.num_datacenters());
  UfcProblem sized = problem;
  for (std::size_t j = 0; j < active.size(); ++j) {
    UFC_EXPECTS(active[j] >= 0.0);
    UFC_EXPECTS(active[j] <= problem.datacenters[j].servers + 1e-9);
    auto& dc = sized.datacenters[j];
    const double ratio = active[j] / dc.servers;
    dc.servers = active[j];
    // The paper sizes fuel cells to the fleet's peak power; shrink the cap
    // proportionally so the PinNu feasibility precondition keeps holding.
    dc.fuel_cell_capacity_mw *= ratio;
  }
  return sized;
}

RightSizedReport solve_right_sized(const UfcProblem& problem,
                                   Strategy strategy,
                                   AdmgOptions admg_options,
                                   const RightSizingOptions& options) {
  problem.validate();
  UFC_EXPECTS(options.max_rounds > 0);
  UFC_EXPECTS(options.relative_tolerance >= 0.0);

  RightSizedReport result;
  result.active_servers = Vec(problem.num_datacenters());
  for (std::size_t j = 0; j < result.active_servers.size(); ++j)
    result.active_servers[j] = problem.datacenters[j].servers;

  UfcProblem current = problem;
  double previous_ufc = -std::numeric_limits<double>::infinity();

  for (int round = 0; round < options.max_rounds; ++round) {
    const auto report = solve_strategy(current, strategy, admg_options);
    result.rounds = round + 1;
    result.ufc_per_round.push_back(report.breakdown.ufc);
    result.final_report = report;

    const double ufc = report.breakdown.ufc;
    if (std::abs(ufc - previous_ufc) <=
        options.relative_tolerance * std::max(1.0, std::abs(ufc))) {
      result.converged = true;
      break;
    }
    previous_ufc = ufc;

    // Right-size against the *original* fleets (the floor and cap refer to
    // the physically installed servers).
    result.active_servers =
        right_size_servers(problem, report.solution.lambda, options);
    current = with_active_servers(problem, result.active_servers);
  }
  return result;
}

}  // namespace ufc::admm
