// The four per-block sub-problems of the distributed 4-block ADM-G
// (paper §III-C, steps 1.1-1.5).
//
// Each function consumes exactly the tuple of information the paper's Fig. 2
// says the owning node has, so the monolithic solver (admm/admg.cpp) and the
// message-passing runtime (net/runtime.cpp) share one implementation and
// produce bit-identical iterates.
//
// Dual convention: we use the standard ascent  y <- y + rho * r  with
// residuals r1_j = alpha_j + beta_j sum_i a_ij - mu_j - nu_j  and
// r2_ij = a_ij - lambda_ij. (The paper prints the equivalent negated-dual
// form; the iterates coincide under phi -> -phi.)
#pragma once

#include <span>
#include <vector>

#include "math/projections.hpp"
#include "math/vector.hpp"
#include "model/emission.hpp"
#include "model/utility.hpp"
#include "opt/fista.hpp"
#include "opt/rank_one_qp.hpp"

namespace ufc::admm {

/// How the lambda and a sub-problems are minimized.
enum class InnerMethod {
  Fista,              ///< Accelerated projected gradient (default).
  ProjectedGradient,  ///< Plain PG (ablation baseline).
  /// Exact identity-plus-rank-one QP solve (opt/rank_one_qp.hpp) — machine
  /// precision, no iteration tuning. Applies to the a block always and to
  /// the lambda block when the utility is the paper's quadratic; other
  /// utility shapes fall back to FISTA.
  Exact,
};

/// Inner-solver configuration shared by the lambda and a blocks.
struct InnerSolverOptions {
  FistaOptions fista;
  InnerMethod method = InnerMethod::Fista;
  /// Simplex-projection algorithm used by the FISTA hot path (the PG
  /// ablation keeps the sort-based reference; Exact solves a QP instead).
  /// SortThreshold reproduces the pinned hexfloat baselines; Condat is the
  /// O(n) scaling choice and agrees with the reference to a few ulps of tau.
  SimplexProjection projection = SimplexProjection::SortThreshold;
};

/// Reusable scratch for the *_into block solvers: FISTA iterate buffers, the
/// simplex projection's scratch and the exact QP's coefficient vectors.
/// One instance per worker thread; every buffer reaches its steady size
/// after the first solve and is never reallocated again.
///
/// sort_scratch ownership (audited): the buffer is OWNED here and only
/// borrowed by project_*_into / project_*_condat_into, which assign or
/// resize it to the input length per call. A worker alternates between
/// lambda rows (length N) and a columns (length M); std::vector::assign
/// never releases capacity, so the capacity climbs monotonically to
/// max(M, N) during the first engine step and no reallocation happens on
/// any later call — there is deliberately no shrinking, because the next
/// solve of either length reuses the same allocation.
struct BlockWorkspace {
  FistaWorkspace fista;
  std::vector<double> sort_scratch;
  RankOneQp qp;
};

// ---------------------------------------------------------------------------
// Step 1.1 — lambda-minimization, one sub-problem per front-end i (eq. (17)):
//
//   min_{lambda_i in simplex(A_i)}  -w A_i u(l_i)
//        - sum_j varphi_ij lambda_ij + (rho/2) sum_j (a_ij - lambda_ij)^2

// The row/column inputs are non-owning views (the solver hands out
// Mat::row_span / workspace columns without copying): the backing storage
// must outlive the solve call. Assigning a temporary Vec dangles.
struct LambdaBlockInputs {
  double arrival = 0.0;                ///< A_i.
  std::span<const double> latency_row; ///< L_i1..L_iN, seconds.
  std::span<const double> a_row;       ///< a_i^k.
  std::span<const double> varphi_row;  ///< varphi_i^k.
  double rho = 0.3;
  double latency_weight = 0.0;              ///< w.
  const UtilityFunction* utility = nullptr; ///< non-owning, non-null.
};

/// Solves the per-front-end sub-problem; `warm_start` seeds the inner solver.
Vec solve_lambda_block(const LambdaBlockInputs& in, const Vec& warm_start,
                       const InnerSolverOptions& options);

/// Allocation-free variant writing the minimizer into `out` (sized N). With
/// the default FISTA method no heap allocation happens once `ws` is warm;
/// iterates are bit-identical to solve_lambda_block.
void solve_lambda_block_into(const LambdaBlockInputs& in,
                             std::span<const double> warm_start,
                             std::span<double> out, BlockWorkspace& ws,
                             const InnerSolverOptions& options);

// ---------------------------------------------------------------------------
// Step 1.2 — mu-minimization, one scalar per datacenter j (eq. (18));
// closed form.

struct MuBlockInputs {
  double alpha = 0.0;             ///< alpha_j, MW.
  double beta = 0.0;              ///< beta_j, MW per workload unit.
  double a_col_sum = 0.0;         ///< sum_i a_ij^k.
  double nu = 0.0;                ///< nu_j^k (0 when the nu block is pinned).
  double phi = 0.0;               ///< phi_j^k.
  double rho = 0.3;
  double fuel_cell_price = 0.0;   ///< p_0.
  double mu_max = 0.0;            ///< mu_j^max, MW.
};

double solve_mu_block(const MuBlockInputs& in);

// ---------------------------------------------------------------------------
// Step 1.3 — nu-minimization, one scalar per datacenter j (eq. (19)):
//
//   min_{nu >= 0}  V(kappa * nu) + (p_j - phi_j) nu + (rho/2)(c - nu)^2,
//   c = alpha_j + beta_j sum_i a_ij^k - mu~_j.
//
// Solved by bisection on the monotone derivative, so any convex V works
// (affine, capped, stepped, quadratic).

struct NuBlockInputs {
  double alpha = 0.0;
  double beta = 0.0;
  double a_col_sum = 0.0;
  double mu = 0.0;                ///< mu~_j (already updated this iteration).
  double phi = 0.0;
  double rho = 0.3;
  double grid_price = 0.0;        ///< p_j.
  double carbon_tons_per_mwh = 0.0;  ///< kappa_j = C_j / 1000.
  const EmissionCostFunction* emission_cost = nullptr;  ///< non-null.
};

double solve_nu_block(const NuBlockInputs& in);

// ---------------------------------------------------------------------------
// Step 1.4 — a-minimization, one sub-problem per datacenter j (eq. (20)):
//
//   min_{a_j >= 0, sum_i a_ij <= S_j}
//     phi_j beta_j sum_i a_ij + sum_i varphi_ij a_ij
//     + (rho/2)(alpha_j + beta_j sum_i a_ij - mu~_j - nu~_j)^2
//     + (rho/2) sum_i (a_ij - lambda~_ij)^2

// Column inputs are non-owning views; see LambdaBlockInputs.
struct ABlockInputs {
  double alpha = 0.0;
  double beta = 0.0;
  double mu = 0.0;                     ///< mu~_j.
  double nu = 0.0;                     ///< nu~_j.
  double phi = 0.0;                    ///< phi_j^k.
  std::span<const double> varphi_col;  ///< varphi_1j..varphi_Mj (^k).
  std::span<const double> lambda_col;  ///< lambda~_1j..lambda~_Mj.
  double rho = 0.3;
  double capacity = 0.0;               ///< S_j, servers.
};

Vec solve_a_block(const ABlockInputs& in, const Vec& warm_start,
                  const InnerSolverOptions& options);

/// Allocation-free variant writing the minimizer into `out` (sized M);
/// bit-identical to solve_a_block. See solve_lambda_block_into.
void solve_a_block_into(const ABlockInputs& in,
                        std::span<const double> warm_start,
                        std::span<double> out, BlockWorkspace& ws,
                        const InnerSolverOptions& options);

// ---------------------------------------------------------------------------
// Step 1.5 — dual updates.

/// phi~_j = phi_j + rho * (alpha_j + beta_j sum_i a~_ij - mu~_j - nu~_j).
double update_phi(double phi, double rho, double alpha, double beta,
                  double a_col_sum, double mu, double nu);

/// varphi~_ij = varphi_ij + rho * (a~_ij - lambda~_ij).
double update_varphi(double varphi, double rho, double a, double lambda);

}  // namespace ufc::admm
