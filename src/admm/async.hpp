// Asynchronous-update extension of the distributed ADM-G.
//
// In a WAN deployment, front-end proxies straggle: some rounds a proxy's
// fresh routing proposal does not arrive in time and the datacenters must
// reuse its last one. We model this as randomized partial participation —
// each front-end performs its lambda update in a given round only with
// probability `participation` (its previous prediction lambda~_i and dual
// are reused otherwise); datacenter blocks always run.
//
// The driver is a thin wrapper over AdmgEngine + PartialParticipationExecutor
// (engine.hpp), so the iteration skeleton, trace and convergence gate are the
// synchronous solver's, straggler draws aside.
//
// This is an empirical-robustness extension (the paper's ADM-G analysis is
// synchronous): tests verify participation = 1 reproduces the synchronous
// solver bit-for-bit and that lower participation still reaches the same
// objective, while the ablation bench quantifies the iteration inflation.
#pragma once

#include "admm/admg.hpp"

namespace ufc::admm {

struct AsyncOptions {
  AdmgOptions admg;
  /// Per-round probability that a front-end's lambda update runs.
  double participation = 1.0;
  std::uint64_t seed = 1;  ///< Straggler draw seed.
};

struct AsyncReport : SolveCore {
  std::uint64_t skipped_updates = 0;  ///< Total stragglers over the run.
};

/// Runs ADM-G with randomized front-end participation.
AsyncReport solve_async_admg(const UfcProblem& problem,
                             const AsyncOptions& options = {});

}  // namespace ufc::admm
