// The three operating strategies evaluated throughout the paper's §IV:
//
//   Grid     — power only from the electricity grid (mu_j = 0),
//   FuelCell — power only from fuel cells (nu_j = 0),
//   Hybrid   — the full joint optimization (the paper's contribution).
//
// Each is problem (12) with the corresponding block pinned, so all three
// run through the same ADM-G solver and are directly comparable.
#pragma once

#include <array>
#include <string>

#include "admm/admg.hpp"

namespace ufc::admm {

enum class Strategy { Grid, FuelCell, Hybrid };

inline constexpr std::array<Strategy, 3> kAllStrategies = {
    Strategy::Grid, Strategy::FuelCell, Strategy::Hybrid};

std::string to_string(Strategy strategy);

/// Maps the strategy to its block pinning.
BlockPinning pinning_for(Strategy strategy);

/// Solves one slot under `strategy` with otherwise-identical options.
AdmgReport solve_strategy(const UfcProblem& problem, Strategy strategy,
                          AdmgOptions options = {});

}  // namespace ufc::admm
