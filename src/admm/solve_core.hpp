// The driver-independent solve result types.
//
// AdmgReport, AsyncReport and net::DistributedReport all embed SolveCore, so
// callers read solution, convergence and trace fields the same way regardless
// of driver. The structs live apart from engine.hpp so result consumers —
// most importantly the observability layer in src/obs, which is lint-banned
// from including solver-driver headers — can name them without pulling in the
// iteration engine.
#pragma once

#include <cstdint>
#include <vector>

#include "admm/watchdog.hpp"
#include "model/breakdown.hpp"
#include "model/problem.hpp"

namespace ufc::admm {

/// Why a solve returned. Budgeted (receding-horizon) drivers branch on this
/// instead of re-deriving it from `converged` + `watchdog_verdict`: a
/// BudgetExhausted report is a usable best-so-far iterate the caller is
/// expected to resume from next tick, a WatchdogTripped one is not.
enum class SolveStatus {
  Converged,        ///< Residual gate passed within the iteration budget.
  BudgetExhausted,  ///< Ran out of iterations; iterate is best-so-far.
  WatchdogTripped,  ///< Cut short by the solver-health watchdog.
};

constexpr const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Converged: return "converged";
    case SolveStatus::BudgetExhausted: return "budget_exhausted";
    case SolveStatus::WatchdogTripped: return "watchdog_tripped";
  }
  return "unknown";
}

/// Per-iteration diagnostics.
struct AdmgTrace {
  std::vector<double> balance_residual;  ///< max_j |alpha+beta*sum a-mu-nu|, MW.
  std::vector<double> copy_residual;     ///< max_ij |a_ij - lambda_ij|, servers.
  std::vector<double> objective;         ///< UFC at (lambda^k, mu^k).
};

/// The shared core of every solve report. AdmgReport, AsyncReport and
/// net::DistributedReport all embed this, so callers read solution,
/// convergence and trace fields the same way regardless of driver.
struct SolveCore {
  UfcSolution solution;
  UfcBreakdown breakdown;       ///< Evaluated at the returned solution.
  int iterations = 0;
  bool converged = false;
  /// Why the solve returned (mirrors converged/watchdog_verdict; see
  /// SolveStatus). Defaults to BudgetExhausted so a zero-iteration report
  /// never reads as a certificate.
  SolveStatus status = SolveStatus::BudgetExhausted;
  double balance_residual = 0.0;  ///< Final scaled-residual inputs, raw units.
  double copy_residual = 0.0;
  /// Healthy unless the solve was cut short by the watchdog.
  WatchdogVerdict watchdog_verdict = WatchdogVerdict::Healthy;
  /// True when the returned solution came from the centralized fallback.
  bool fallback_centralized = false;
  /// Safeguard fallbacks of the acceleration ingredient (0 under the default
  /// "none" acceleration — it never proposes, so it never falls back).
  std::uint64_t acceleration_fallbacks = 0;
  /// The penalty parameter at the end of the solve; equals AdmgOptions::rho
  /// under the default "fixed" penalty.
  double final_penalty = 0.0;
  AdmgTrace trace;
};

}  // namespace ufc::admm
