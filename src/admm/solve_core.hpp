// The driver-independent solve result types.
//
// AdmgReport, AsyncReport and net::DistributedReport all embed SolveCore, so
// callers read solution, convergence and trace fields the same way regardless
// of driver. The structs live apart from engine.hpp so result consumers —
// most importantly the observability layer in src/obs, which is lint-banned
// from including solver-driver headers — can name them without pulling in the
// iteration engine.
#pragma once

#include <cstdint>
#include <vector>

#include "admm/watchdog.hpp"
#include "model/breakdown.hpp"
#include "model/problem.hpp"

namespace ufc::admm {

/// Per-iteration diagnostics.
struct AdmgTrace {
  std::vector<double> balance_residual;  ///< max_j |alpha+beta*sum a-mu-nu|, MW.
  std::vector<double> copy_residual;     ///< max_ij |a_ij - lambda_ij|, servers.
  std::vector<double> objective;         ///< UFC at (lambda^k, mu^k).
};

/// The shared core of every solve report. AdmgReport, AsyncReport and
/// net::DistributedReport all embed this, so callers read solution,
/// convergence and trace fields the same way regardless of driver.
struct SolveCore {
  UfcSolution solution;
  UfcBreakdown breakdown;       ///< Evaluated at the returned solution.
  int iterations = 0;
  bool converged = false;
  double balance_residual = 0.0;  ///< Final scaled-residual inputs, raw units.
  double copy_residual = 0.0;
  /// Healthy unless the solve was cut short by the watchdog.
  WatchdogVerdict watchdog_verdict = WatchdogVerdict::Healthy;
  /// True when the returned solution came from the centralized fallback.
  bool fallback_centralized = false;
  /// Safeguard fallbacks of the acceleration ingredient (0 under the default
  /// "none" acceleration — it never proposes, so it never falls back).
  std::uint64_t acceleration_fallbacks = 0;
  /// The penalty parameter at the end of the solve; equals AdmgOptions::rho
  /// under the default "fixed" penalty.
  double final_penalty = 0.0;
  AdmgTrace trace;
};

}  // namespace ufc::admm
