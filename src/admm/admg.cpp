#include "admm/admg.hpp"

#include "util/contract.hpp"

namespace ufc::admm {

AdmgReport AdmgSolver::solve() {
  exec_.reset();
  return solve_warm();
}

AdmgReport AdmgSolver::solve_warm() {
  AdmgEngine engine(exec_.options());
  AdmgReport report;
  static_cast<SolveCore&>(report) = engine.solve(exec_);
  return report;
}

AdmgReport AdmgSolver::solve_budgeted(int max_iterations) {
  UFC_EXPECTS(max_iterations > 0);
  // Same engine construction as solve_warm with only the iteration cap
  // overridden; the executor — and with it every per-step quantity — is
  // untouched, which is what makes budgeted resume bit-identical to one
  // long solve under the default composition.
  AdmgOptions budgeted = exec_.options();
  budgeted.max_iterations = max_iterations;
  // Exhausting a deliberate budget is the expected outcome of most ticks;
  // report.status carries it, the solver-health log should stay quiet.
  budgeted.warn_on_unconverged = false;
  AdmgEngine engine(budgeted);
  AdmgReport report;
  static_cast<SolveCore&>(report) = engine.solve(exec_);
  return report;
}

// ufc-lint: allow(expects-guard) — AdmgSolver's constructor validates the
// problem and every option before any work happens.
AdmgReport solve_admg(const UfcProblem& problem, const AdmgOptions& options) {
  AdmgSolver solver(problem, options);
  return solver.solve();
}

}  // namespace ufc::admm
