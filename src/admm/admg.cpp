#include "admm/admg.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"
#include "util/logging.hpp"

namespace ufc::admm {

double natural_workload_scale(const UfcProblem& problem) {
  UFC_EXPECTS(problem.num_front_ends() > 0);
  const double mean_arrival =
      problem.total_arrivals() /
      static_cast<double>(problem.num_front_ends());
  return std::max(1.0, mean_arrival);
}

UfcProblem scale_workload_units(const UfcProblem& problem, double sigma) {
  UFC_EXPECTS(sigma > 0.0);
  UfcProblem scaled = problem;
  scaled.power.idle_watts *= sigma;
  scaled.power.peak_watts *= sigma;
  scaled.latency_weight *= sigma;
  for (auto& dc : scaled.datacenters) {
    dc.servers /= sigma;
    if (dc.power_override) {
      dc.power_override->idle_watts *= sigma;
      dc.power_override->peak_watts *= sigma;
    }
  }
  for (auto& a : scaled.arrivals) a /= sigma;
  return scaled;
}

AdmgSolver::AdmgSolver(const UfcProblem& problem, AdmgOptions options)
    : original_(problem), options_(options) {
  original_.validate();
  UFC_EXPECTS(options_.rho > 0.0);
  UFC_EXPECTS(options_.epsilon > 0.5 && options_.epsilon <= 1.0);
  UFC_EXPECTS(options_.max_iterations > 0);
  UFC_EXPECTS(options_.tolerance > 0.0);

  sigma_ = options_.workload_scale > 0.0 ? options_.workload_scale
                                         : natural_workload_scale(original_);
  problem_ = scale_workload_units(original_, sigma_);

  m_ = problem_.num_front_ends();
  n_ = problem_.num_datacenters();

  if (options_.pinning == BlockPinning::PinNu) {
    // nu = 0 requires fuel cells able to carry the peak demand at every
    // datacenter (the paper's "completely powered by fuel cells" premise).
    for (std::size_t j = 0; j < n_; ++j) {
      const double peak = problem_.demand_mw(j, problem_.datacenters[j].servers);
      UFC_EXPECTS(problem_.datacenters[j].fuel_cell_capacity_mw >=
                  peak - 1e-9);
    }
  }

  // Residual scales: copy residual lives in "servers routed" units, balance
  // residual in MW. Normalize by the largest arrival / peak demand so the
  // convergence test is dimensionless.
  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < n_; ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;

  reset();
}

void AdmgSolver::reset() {
  // The paper's cold start: everything at zero.
  lambda_ = Mat(m_, n_, 0.0);
  a_ = Mat(m_, n_, 0.0);
  varphi_ = Mat(m_, n_, 0.0);
  mu_ = Vec(n_, 0.0);
  nu_ = Vec(n_, 0.0);
  phi_ = Vec(n_, 0.0);
  last_change_ = 0.0;
  stepped_ = false;
}

double AdmgSolver::balance_residual() const {
  double r = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    const double balance = problem_.alpha_mw(j) +
                           problem_.beta_mw(j) * a_.col_sum(j) - mu_[j] -
                           nu_[j];
    r = std::max(r, std::abs(balance));
  }
  return r;
}

double AdmgSolver::copy_residual() const { return max_abs_diff(a_, lambda_); }

bool AdmgSolver::is_converged() const {
  return stepped_ &&
         balance_residual() / balance_scale_ < options_.tolerance &&
         copy_residual() / copy_scale_ < options_.tolerance &&
         last_change_ / copy_scale_ < options_.tolerance;
}

void AdmgSolver::step() {
  const Mat a_before = a_;
  const Vec mu_before = mu_;
  const Vec nu_before = nu_;
  const double rho = options_.rho;
  const bool pin_mu = options_.pinning == BlockPinning::PinMu;
  const bool pin_nu = options_.pinning == BlockPinning::PinNu;

  // ---- Step 1: ADMM prediction pass, forward order. -----------------------

  // 1.1 lambda-minimization, per front-end (uses a^k, varphi^k).
  Mat lambda_tilde(m_, n_);
  for (std::size_t i = 0; i < m_; ++i) {
    LambdaBlockInputs in;
    in.arrival = problem_.arrivals[i];
    in.latency_row = problem_.latency_s.row(i);
    in.a_row = a_.row(i);
    in.varphi_row = varphi_.row(i);
    in.rho = rho;
    in.latency_weight = problem_.latency_weight;
    in.utility = problem_.utility.get();
    lambda_tilde.set_row(
        i, solve_lambda_block(in, lambda_.row(i), options_.inner));
  }

  // 1.2 mu-minimization, per datacenter (uses a^k, nu^k, phi^k).
  Vec mu_tilde(n_, 0.0);
  if (!pin_mu) {
    for (std::size_t j = 0; j < n_; ++j) {
      MuBlockInputs in;
      in.alpha = problem_.alpha_mw(j);
      in.beta = problem_.beta_mw(j);
      in.a_col_sum = a_.col_sum(j);
      in.nu = nu_[j];
      in.phi = phi_[j];
      in.rho = rho;
      in.fuel_cell_price = problem_.fuel_cell_price;
      in.mu_max = problem_.datacenters[j].fuel_cell_capacity_mw;
      mu_tilde[j] = solve_mu_block(in);
    }
  }

  // 1.3 nu-minimization, per datacenter (uses a^k, mu~, phi^k).
  Vec nu_tilde(n_, 0.0);
  if (!pin_nu) {
    for (std::size_t j = 0; j < n_; ++j) {
      NuBlockInputs in;
      in.alpha = problem_.alpha_mw(j);
      in.beta = problem_.beta_mw(j);
      in.a_col_sum = a_.col_sum(j);
      in.mu = mu_tilde[j];
      in.phi = phi_[j];
      in.rho = rho;
      in.grid_price = problem_.datacenters[j].grid_price;
      in.carbon_tons_per_mwh = problem_.datacenters[j].carbon_rate / 1000.0;
      in.emission_cost = problem_.datacenters[j].emission_cost.get();
      nu_tilde[j] = solve_nu_block(in);
    }
  }

  // 1.4 a-minimization, per datacenter (uses lambda~, mu~, nu~, phi^k,
  // varphi^k).
  Mat a_tilde(m_, n_);
  for (std::size_t j = 0; j < n_; ++j) {
    ABlockInputs in;
    in.alpha = problem_.alpha_mw(j);
    in.beta = problem_.beta_mw(j);
    in.mu = mu_tilde[j];
    in.nu = nu_tilde[j];
    in.phi = phi_[j];
    in.varphi_col = varphi_.col(j);
    in.lambda_col = lambda_tilde.col(j);
    in.rho = rho;
    in.capacity = problem_.datacenters[j].servers;
    a_tilde.set_col(j, solve_a_block(in, a_.col(j), options_.inner));
  }

  // 1.5 dual updates (use a~, lambda~, mu~, nu~).
  Vec phi_tilde(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    phi_tilde[j] = update_phi(phi_[j], rho, problem_.alpha_mw(j),
                              problem_.beta_mw(j), a_tilde.col_sum(j),
                              mu_tilde[j], nu_tilde[j]);
  }
  Mat varphi_tilde(m_, n_);
  for (std::size_t i = 0; i < m_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      varphi_tilde(i, j) =
          update_varphi(varphi_(i, j), rho, a_tilde(i, j), lambda_tilde(i, j));

  // ---- Step 2: Gaussian back substitution, backward order. ----------------

  const double eps =
      options_.gaussian_back_substitution ? options_.epsilon : 1.0;

  if (!options_.gaussian_back_substitution) {
    // Plain multi-block ADMM (ablation): accept the prediction unchanged.
    lambda_ = std::move(lambda_tilde);
    mu_ = std::move(mu_tilde);
    nu_ = std::move(nu_tilde);
    a_ = std::move(a_tilde);
    phi_ = std::move(phi_tilde);
    varphi_ = std::move(varphi_tilde);
    last_change_ = std::max({max_abs_diff(a_, a_before),
                             max_abs_diff(mu_, mu_before),
                             max_abs_diff(nu_, nu_before)});
    stepped_ = true;
    return;
  }

  // Duals first (identity row of G).
  for (std::size_t j = 0; j < n_; ++j)
    phi_[j] += eps * (phi_tilde[j] - phi_[j]);
  for (std::size_t i = 0; i < m_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      varphi_(i, j) += eps * (varphi_tilde(i, j) - varphi_(i, j));

  // a (last primal block; identity row of G).
  Vec delta_a_col_sum(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    double delta_sum = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double delta = eps * (a_tilde(i, j) - a_(i, j));
      a_(i, j) += delta;
      delta_sum += delta;
    }
    delta_a_col_sum[j] = delta_sum;
  }

  // nu, then mu, with the cross-block correction terms derived from
  // (K_i^T K_i)^{-1} K_i^T K_j for our constraint matrices (see DESIGN.md).
  for (std::size_t j = 0; j < n_; ++j) {
    const double beta = problem_.beta_mw(j);
    const double nu_old = nu_[j];
    if (!pin_nu) {
      nu_[j] += eps * (nu_tilde[j] - nu_[j]) + beta * delta_a_col_sum[j];
    }
    if (!pin_mu) {
      double correction = eps * (mu_tilde[j] - mu_[j]);
      if (!pin_nu) correction -= (nu_[j] - nu_old);
      correction += beta * delta_a_col_sum[j];
      mu_[j] += correction;
    }
  }

  // lambda is the first block: accepted as predicted.
  lambda_ = std::move(lambda_tilde);

  last_change_ = std::max({max_abs_diff(a_, a_before),
                           max_abs_diff(mu_, mu_before),
                           max_abs_diff(nu_, nu_before)});
  stepped_ = true;
}

void AdmgSolver::set_problem(const UfcProblem& problem) {
  problem.validate();
  UFC_EXPECTS(problem.num_front_ends() == m_);
  UFC_EXPECTS(problem.num_datacenters() == n_);
  original_ = problem;
  problem_ = scale_workload_units(original_, sigma_);
  // Residual scales track the new slot's magnitudes.
  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < n_; ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;
  stepped_ = false;  // convergence must be re-established on the new slot
}

AdmgReport AdmgSolver::solve() {
  reset();
  return solve_warm();
}

AdmgReport AdmgSolver::solve_warm() {
  AdmgReport report;
  for (int k = 0; k < options_.max_iterations; ++k) {
    step();
    report.iterations = k + 1;
    if (options_.record_trace) {
      report.trace.balance_residual.push_back(balance_residual());
      report.trace.copy_residual.push_back(copy_residual());
      report.trace.objective.push_back(ufc_objective(problem_, lambda_, mu_));
    }
    if (is_converged()) {
      report.converged = true;
      break;
    }
  }
  report.balance_residual = balance_residual();
  report.copy_residual = copy_residual();

  // Rescale routing back to server units and evaluate on the original
  // problem (the objective is invariant, but reported latencies/costs should
  // reference the caller's units).
  Mat lambda_servers = lambda_;
  lambda_servers *= sigma_;
  report.solution.lambda = std::move(lambda_servers);
  report.solution.mu = mu_;
  report.solution.nu =
      grid_draw_mw(original_, report.solution.lambda, report.solution.mu);
  report.breakdown = evaluate(original_, report.solution.lambda, mu_);

  if (!report.converged) {
    log::warn("ADM-G did not converge in ", report.iterations,
              " iterations (balance residual ", report.balance_residual,
              ", copy residual ", report.copy_residual, ")");
  }
  return report;
}

// ufc-lint: allow(expects-guard) — AdmgSolver's constructor validates the
// problem and every option before any work happens.
AdmgReport solve_admg(const UfcProblem& problem, const AdmgOptions& options) {
  AdmgSolver solver(problem, options);
  return solver.solve();
}

}  // namespace ufc::admm
