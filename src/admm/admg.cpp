#include "admm/admg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "admm/centralized.hpp"
#include "util/contract.hpp"
#include "util/logging.hpp"
#include "util/wire.hpp"

namespace ufc::admm {

namespace {

// Checkpoint framing (see docs/ROBUSTNESS.md): magic + version guard the
// decoder against foreign byte strings, dimensions + sigma guard against
// restoring into a solver built on a different problem shape.
constexpr std::uint32_t kCheckpointMagic = 0x55464343;  // "UFCC"
constexpr std::uint32_t kCheckpointVersion = 1;

bool all_finite(std::span<const double> values) {
  for (double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

double natural_workload_scale(const UfcProblem& problem) {
  UFC_EXPECTS(problem.num_front_ends() > 0);
  const double mean_arrival =
      problem.total_arrivals() /
      static_cast<double>(problem.num_front_ends());
  return std::max(1.0, mean_arrival);
}

void scale_workload_units_in_place(UfcProblem& problem, double sigma) {
  UFC_EXPECTS(sigma > 0.0);
  problem.power.idle_watts *= sigma;
  problem.power.peak_watts *= sigma;
  problem.latency_weight *= sigma;
  for (auto& dc : problem.datacenters) {
    dc.servers /= sigma;
    if (dc.power_override) {
      dc.power_override->idle_watts *= sigma;
      dc.power_override->peak_watts *= sigma;
    }
  }
  for (auto& a : problem.arrivals) a /= sigma;
}

// ufc-lint: allow(expects-guard) — thin wrapper; the in-place variant above
// guards sigma before any work happens.
UfcProblem scale_workload_units(const UfcProblem& problem, double sigma) {
  UfcProblem scaled = problem;
  scale_workload_units_in_place(scaled, sigma);
  return scaled;
}

AdmgSolver::AdmgSolver(const UfcProblem& problem, AdmgOptions options)
    : original_(problem),
      options_(options),
      pool_(util::resolve_thread_count(options.threads)) {
  original_.validate();
  UFC_EXPECTS(options_.rho > 0.0);
  UFC_EXPECTS(options_.epsilon > 0.5 && options_.epsilon <= 1.0);
  UFC_EXPECTS(options_.max_iterations > 0);
  UFC_EXPECTS(options_.tolerance > 0.0);
  UFC_EXPECTS(options_.threads >= 0);

  sigma_ = options_.workload_scale > 0.0 ? options_.workload_scale
                                         : natural_workload_scale(original_);
  problem_ = scale_workload_units(original_, sigma_);

  m_ = problem_.num_front_ends();
  n_ = problem_.num_datacenters();

  if (options_.pinning == BlockPinning::PinNu) {
    // nu = 0 requires fuel cells able to carry the peak demand at every
    // datacenter (the paper's "completely powered by fuel cells" premise).
    for (std::size_t j = 0; j < n_; ++j) {
      const double peak = problem_.demand_mw(j, problem_.datacenters[j].servers);
      UFC_EXPECTS(problem_.datacenters[j].fuel_cell_capacity_mw >=
                  peak - 1e-9);
    }
  }

  update_residual_scales();
  reset();
}

void AdmgSolver::update_residual_scales() {
  // Residual scales: copy residual lives in "servers routed" units, balance
  // residual in MW. Normalize by the largest arrival / peak demand so the
  // convergence test is dimensionless.
  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < n_; ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;
}

void AdmgSolver::reset() {
  // The paper's cold start: everything at zero.
  lambda_ = Mat(m_, n_, 0.0);
  a_ = Mat(m_, n_, 0.0);
  varphi_ = Mat(m_, n_, 0.0);
  mu_ = Vec(n_, 0.0);
  nu_ = Vec(n_, 0.0);
  phi_ = Vec(n_, 0.0);
  last_change_ = 0.0;
  stepped_ = false;

  // Step workspace, allocated once here so step() itself never allocates:
  // the tilde matrix, the column-sum cache and one scratch set per worker.
  lambda_tilde_ = Mat(m_, n_, 0.0);
  a_col_sum_.resize(n_);
  scratch_.resize(pool_.thread_count());
  for (auto& ws : scratch_) {
    ws.varphi_col.resize(m_);
    ws.lambda_col.resize(m_);
    ws.a_col.resize(m_);
    ws.a_new.resize(m_);
  }
  chunk_change_.assign(pool_.thread_count(), 0.0);
}

double AdmgSolver::balance_residual() const {
  double r = 0.0;
  for (std::size_t j = 0; j < n_; ++j) {
    const double balance = problem_.alpha_mw(j) +
                           problem_.beta_mw(j) * a_.col_sum(j) - mu_[j] -
                           nu_[j];
    r = std::max(r, std::abs(balance));
  }
  return r;
}

double AdmgSolver::copy_residual() const { return max_abs_diff(a_, lambda_); }

bool AdmgSolver::is_converged() const {
  return stepped_ &&
         balance_residual() / balance_scale_ < options_.tolerance &&
         copy_residual() / copy_scale_ < options_.tolerance &&
         last_change_ / copy_scale_ < options_.tolerance;
}

// The step runs two parallel passes over deterministic contiguous chunks:
// one per front-end (lambda predictions) and one per datacenter (mu, nu, a,
// duals and the Gaussian back substitution, fused column-wise exactly like
// net::DatacenterAgent). Every item writes only its own row/column, so the
// iterate sequence is bit-identical for every thread count — and identical
// to the message-passing runtime, which tests pin exactly.
void AdmgSolver::step() {
  const double rho = options_.rho;
  const bool pin_mu = options_.pinning == BlockPinning::PinMu;
  const bool pin_nu = options_.pinning == BlockPinning::PinNu;
  const bool gbs = options_.gaussian_back_substitution;
  const double eps = gbs ? options_.epsilon : 1.0;

  // Cache the column sums of a^k once per step. The row-major pass adds each
  // column's entries in increasing-i order, which is bitwise the same as
  // Mat::col_sum and as the runtime agent's sum(a_).
  a_col_sum_.fill(0.0);
  for (std::size_t i = 0; i < m_; ++i) {
    const auto row = a_.row_span(i);
    for (std::size_t j = 0; j < n_; ++j) a_col_sum_[j] += row[j];
  }

  // ---- Step 1.1: lambda predictions, one independent task per front-end.
  pool_.parallel_for_chunks(
      0, m_, [&](std::size_t begin, std::size_t end, std::size_t c) {
        BlockWorkspace& ws = scratch_[c].blocks;
        for (std::size_t i = begin; i < end; ++i) {
          LambdaBlockInputs in;
          in.arrival = problem_.arrivals[i];
          in.latency_row = problem_.latency_s.row_span(i);
          in.a_row = a_.row_span(i);
          in.varphi_row = varphi_.row_span(i);
          in.rho = rho;
          in.latency_weight = problem_.latency_weight;
          in.utility = problem_.utility.get();
          solve_lambda_block_into(in, lambda_.row_span(i),
                                  lambda_tilde_.row_span(i), ws,
                                  options_.inner);
        }
      });

  // ---- Steps 1.2-1.5 + step 2, fused per datacenter. Each column task
  // reads only iteration-k state of its own column (plus lambda~ and the
  // column-sum cache, both finalized above), so tasks are independent.
  std::fill(chunk_change_.begin(), chunk_change_.end(), 0.0);
  pool_.parallel_for_chunks(
      0, n_, [&](std::size_t begin, std::size_t end, std::size_t c) {
        WorkerScratch& ws = scratch_[c];
        double change = 0.0;
        for (std::size_t j = begin; j < end; ++j) {
          const double alpha = problem_.alpha_mw(j);
          const double beta = problem_.beta_mw(j);
          const double a_col_sum_k = a_col_sum_[j];

          // 1.2 mu-minimization (uses a^k, nu^k, phi^k).
          double mu_tilde = 0.0;
          if (!pin_mu) {
            MuBlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.a_col_sum = a_col_sum_k;
            in.nu = nu_[j];
            in.phi = phi_[j];
            in.rho = rho;
            in.fuel_cell_price = problem_.fuel_cell_price;
            in.mu_max = problem_.datacenters[j].fuel_cell_capacity_mw;
            mu_tilde = solve_mu_block(in);
          }

          // 1.3 nu-minimization (uses a^k, mu~, phi^k).
          double nu_tilde = 0.0;
          if (!pin_nu) {
            NuBlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.a_col_sum = a_col_sum_k;
            in.mu = mu_tilde;
            in.phi = phi_[j];
            in.rho = rho;
            in.grid_price = problem_.datacenters[j].grid_price;
            in.carbon_tons_per_mwh =
                problem_.datacenters[j].carbon_rate / 1000.0;
            in.emission_cost = problem_.datacenters[j].emission_cost.get();
            nu_tilde = solve_nu_block(in);
          }

          // 1.4 a-minimization (uses lambda~, mu~, nu~, phi^k, varphi^k).
          varphi_.col_into(j, ws.varphi_col);
          lambda_tilde_.col_into(j, ws.lambda_col);
          a_.col_into(j, ws.a_col);
          {
            ABlockInputs in;
            in.alpha = alpha;
            in.beta = beta;
            in.mu = mu_tilde;
            in.nu = nu_tilde;
            in.phi = phi_[j];
            in.varphi_col = ws.varphi_col.span();
            in.lambda_col = ws.lambda_col.span();
            in.rho = rho;
            in.capacity = problem_.datacenters[j].servers;
            solve_a_block_into(in, ws.a_col.span(), ws.a_new.span(), ws.blocks,
                               options_.inner);
          }

          // 1.5 dual predictions (use a~, lambda~, mu~, nu~).
          double a_tilde_sum = 0.0;
          for (std::size_t i = 0; i < m_; ++i) a_tilde_sum += ws.a_new[i];
          const double phi_tilde = update_phi(phi_[j], rho, alpha, beta,
                                              a_tilde_sum, mu_tilde, nu_tilde);

          if (!gbs) {
            // Plain multi-block ADMM (ablation): accept the prediction.
            for (std::size_t i = 0; i < m_; ++i) {
              varphi_(i, j) = update_varphi(varphi_(i, j), rho, ws.a_new[i],
                                            lambda_tilde_(i, j));
              change = std::max(change, std::abs(ws.a_new[i] - a_(i, j)));
              a_(i, j) = ws.a_new[i];
            }
            phi_[j] = phi_tilde;
            change = std::max(change, std::abs(nu_tilde - nu_[j]));
            nu_[j] = nu_tilde;
            change = std::max(change, std::abs(mu_tilde - mu_[j]));
            mu_[j] = mu_tilde;
            continue;
          }

          // Step 2: Gaussian back substitution, backward order. Duals first
          // (identity row of G), then a, then nu and mu with the cross-block
          // correction terms derived from (K_i^T K_i)^{-1} K_i^T K_j for our
          // constraint matrices (see DESIGN.md).
          phi_[j] += eps * (phi_tilde - phi_[j]);
          double delta_sum = 0.0;
          for (std::size_t i = 0; i < m_; ++i) {
            const double varphi_tilde = update_varphi(
                varphi_(i, j), rho, ws.a_new[i], lambda_tilde_(i, j));
            varphi_(i, j) += eps * (varphi_tilde - varphi_(i, j));
            const double a_old = a_(i, j);
            const double delta = eps * (ws.a_new[i] - a_old);
            a_(i, j) = a_old + delta;
            delta_sum += delta;
            change = std::max(change, std::abs(a_(i, j) - a_old));
          }
          const double nu_old = nu_[j];
          if (!pin_nu) {
            nu_[j] += eps * (nu_tilde - nu_[j]) + beta * delta_sum;
            change = std::max(change, std::abs(nu_[j] - nu_old));
          }
          if (!pin_mu) {
            const double mu_old = mu_[j];
            double correction = eps * (mu_tilde - mu_[j]);
            if (!pin_nu) correction -= (nu_[j] - nu_old);
            correction += beta * delta_sum;
            mu_[j] = mu_old + correction;
            change = std::max(change, std::abs(mu_[j] - mu_old));
          }
        }
        chunk_change_[c] = change;
      });

  // lambda is the first block: accepted as predicted. Swapping (instead of
  // moving) keeps lambda_tilde_'s storage for the next step; every row is
  // fully rewritten by step 1.1.
  std::swap(lambda_, lambda_tilde_);

  // max is exact and order-insensitive, so the cross-chunk reduction is
  // bit-identical for every chunking.
  double change = 0.0;
  for (double c : chunk_change_) change = std::max(change, c);
  last_change_ = change;
  stepped_ = true;
}

void AdmgSolver::set_problem(const UfcProblem& problem) {
  problem.validate();
  UFC_EXPECTS(problem.num_front_ends() == m_);
  UFC_EXPECTS(problem.num_datacenters() == n_);
  original_ = problem;
  // Rescale into the existing problem_ storage; the previous implementation
  // built a third full copy through scale_workload_units' return value.
  problem_ = problem;
  scale_workload_units_in_place(problem_, sigma_);
  // Residual scales track the new slot's magnitudes.
  update_residual_scales();
  stepped_ = false;  // convergence must be re-established on the new slot
}

bool AdmgSolver::iterate_finite() const {
  return all_finite(lambda_.raw()) && all_finite(a_.raw()) &&
         all_finite(varphi_.raw()) && all_finite(mu_.span()) &&
         all_finite(nu_.span()) && all_finite(phi_.span()) &&
         std::isfinite(last_change_);
}

std::vector<std::byte> AdmgSolver::checkpoint() const {
  std::vector<std::byte> out;
  wire::append(out, kCheckpointMagic);
  wire::append(out, kCheckpointVersion);
  wire::append(out, static_cast<std::uint64_t>(m_));
  wire::append(out, static_cast<std::uint64_t>(n_));
  wire::append(out, sigma_);
  wire::append(out, last_change_);
  wire::append(out, static_cast<std::uint8_t>(stepped_ ? 1 : 0));
  wire::append_f64s(out, lambda_.raw());
  wire::append_f64s(out, a_.raw());
  wire::append_f64s(out, varphi_.raw());
  wire::append_f64s(out, mu_.span());
  wire::append_f64s(out, nu_.span());
  wire::append_f64s(out, phi_.span());
  return out;
}

void AdmgSolver::restore(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) == kCheckpointMagic);
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) == kCheckpointVersion);
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == m_);
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == n_);
  // Iterates are stored in normalized workload units; a different sigma
  // would silently reinterpret them.
  UFC_EXPECTS(wire::read<double>(bytes, offset) == sigma_);
  last_change_ = wire::read<double>(bytes, offset);
  stepped_ = wire::read<std::uint8_t>(bytes, offset) != 0;
  wire::read_f64s(bytes, offset, {lambda_.data(), lambda_.size()});
  wire::read_f64s(bytes, offset, {a_.data(), a_.size()});
  wire::read_f64s(bytes, offset, {varphi_.data(), varphi_.size()});
  wire::read_f64s(bytes, offset, mu_.span());
  wire::read_f64s(bytes, offset, nu_.span());
  wire::read_f64s(bytes, offset, phi_.span());
  UFC_EXPECTS(offset == bytes.size());
}

AdmgReport AdmgSolver::solve() {
  reset();
  return solve_warm();
}

AdmgReport AdmgSolver::solve_warm() {
  AdmgReport report;
  SolverWatchdog watchdog(options_.watchdog);
  double balance = 0.0;
  double copy = 0.0;
  // A poisoned warm start (e.g. a checkpoint whose payload was corrupted
  // after framing) must be caught before step() feeds NaN into the block
  // solvers, whose own contracts would throw instead of degrading.
  if (options_.watchdog.check_finite && !iterate_finite()) {
    watchdog.observe(0.0, 0.0, false);
    report.watchdog_verdict = watchdog.verdict();
  }
  for (int k = 0; !watchdog.tripped() && k < options_.max_iterations; ++k) {
    step();
    report.iterations = k + 1;
    // One residual evaluation per iteration, shared by the trace and the
    // convergence test (each is an O(MN) pass over the iterate).
    balance = balance_residual();
    copy = copy_residual();
    if (options_.record_trace) {
      report.trace.balance_residual.push_back(balance);
      report.trace.copy_residual.push_back(copy);
      report.trace.objective.push_back(ufc_objective(problem_, lambda_, mu_));
    }
    // Convergence is tested first so that reaching tolerance on the same
    // iteration a stall window fills still counts as success. NaN residuals
    // can never pass the comparisons, so NonFinite is not maskable.
    if (balance / balance_scale_ < options_.tolerance &&
        copy / copy_scale_ < options_.tolerance &&
        last_change_ / copy_scale_ < options_.tolerance) {
      report.converged = true;
      break;
    }
    const bool finite = !options_.watchdog.check_finite || iterate_finite();
    if (watchdog.observe(balance / balance_scale_, copy / copy_scale_,
                         finite) != WatchdogVerdict::Healthy) {
      report.watchdog_verdict = watchdog.verdict();
      break;
    }
  }
  report.balance_residual = balance;
  report.copy_residual = copy;

  if (report.watchdog_verdict != WatchdogVerdict::Healthy) {
    log::warn("ADM-G watchdog tripped (",
              report.watchdog_verdict == WatchdogVerdict::NonFinite
                  ? "non-finite iterate"
                  : "residual stall",
              ") after ", report.iterations, " iterations");
    if (options_.fallback_to_centralized) {
      CentralizedOptions fallback;
      fallback.grid_only = options_.pinning == BlockPinning::PinMu;
      fallback.fuel_cell_only = options_.pinning == BlockPinning::PinNu;
      const auto safe = solve_centralized(original_, fallback);
      report.solution = safe.solution;
      report.breakdown = safe.breakdown;
      report.fallback_centralized = true;
      return report;
    }
  }

  // Rescale routing back to server units and evaluate on the original
  // problem (the objective is invariant, but reported latencies/costs should
  // reference the caller's units).
  Mat lambda_servers = lambda_;
  lambda_servers *= sigma_;
  report.solution.lambda = std::move(lambda_servers);
  report.solution.mu = mu_;
  report.solution.nu =
      grid_draw_mw(original_, report.solution.lambda, report.solution.mu);
  report.breakdown = evaluate(original_, report.solution.lambda, mu_);

  if (!report.converged) {
    log::warn("ADM-G did not converge in ", report.iterations,
              " iterations (balance residual ", report.balance_residual,
              ", copy residual ", report.copy_residual, ")");
  }
  return report;
}

// ufc-lint: allow(expects-guard) — AdmgSolver's constructor validates the
// problem and every option before any work happens.
AdmgReport solve_admg(const UfcProblem& problem, const AdmgOptions& options) {
  AdmgSolver solver(problem, options);
  return solver.solve();
}

}  // namespace ufc::admm
