#include "admm/admg.hpp"

namespace ufc::admm {

AdmgReport AdmgSolver::solve() {
  exec_.reset();
  return solve_warm();
}

AdmgReport AdmgSolver::solve_warm() {
  AdmgEngine engine(exec_.options());
  AdmgReport report;
  static_cast<SolveCore&>(report) = engine.solve(exec_);
  return report;
}

// ufc-lint: allow(expects-guard) — AdmgSolver's constructor validates the
// problem and every option before any work happens.
AdmgReport solve_admg(const UfcProblem& problem, const AdmgOptions& options) {
  AdmgSolver solver(problem, options);
  return solver.solve();
}

}  // namespace ufc::admm
