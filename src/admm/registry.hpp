// Name -> factory registry for solver ingredients.
//
// The engine's pluggable pieces — penalty schedule, acceleration, centralized
// backend — are "ingredients" composed at runtime by name (the Uno
// architecture the ROADMAP points at): each seam owns a Registry mapping a
// stable string name to a factory, and every construction of a concrete
// ingredient flows through Registry::create (the registry-confinement
// analyzer rule pins this). The registry is introspectable — names() feeds
// --help text and the rejection message of an unknown name lists every
// registered alternative — and value-built per call by the seam's
// *_registry() function, so there is no mutable namespace-scope state (the
// global-state analyzer rule bans exactly that in solver layers).
//
// Contracts: registering the same name twice throws ufc::ContractViolation
// (a silent overwrite would make composition depend on registration order);
// creating an unknown name throws with the available-name list in the
// message, so a config typo tells the user what it could have said.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/contract.hpp"

namespace ufc::admm {

/// Name -> factory map for one ingredient seam. `Interface` is the abstract
/// ingredient type, `Context` the options struct its factories read their
/// knobs from (AdmgOptions for engine ingredients, CentralizedOptions for
/// centralized backends).
template <typename Interface, typename Context>
class Registry {
 public:
  using Factory = std::function<std::unique_ptr<Interface>(const Context&)>;

  /// `kind` names the seam in contract messages ("penalty", "acceleration",
  /// "centralized method").
  explicit Registry(std::string kind) : kind_(std::move(kind)) {
    UFC_EXPECTS(!kind_.empty());
  }

  /// Registers `factory` under `name`. Duplicate names are a contract
  /// violation, not an overwrite.
  void add(const std::string& name, Factory factory) {
    UFC_EXPECTS(!name.empty());
    UFC_EXPECTS(factory != nullptr);
    if (entries_.find(name) != entries_.end())
      throw ContractViolation("duplicate " + kind_ + " registration: \"" +
                              name + "\"");
    entries_.emplace(name, std::move(factory));
  }

  bool contains(const std::string& name) const {
    return entries_.find(name) != entries_.end();
  }

  /// Registered names in sorted order — the introspection surface for
  /// --help output and config rejection messages.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_) out.push_back(entry.first);
    return out;
  }

  /// names() joined as "a, b, c" for one-line messages.
  std::string names_joined() const {
    std::string out;
    for (const auto& entry : entries_) {
      if (!out.empty()) out += ", ";
      out += entry.first;
    }
    return out;
  }

  /// Builds the ingredient registered under `name` with knobs from
  /// `context`. Unknown names throw ContractViolation whose message lists
  /// every registered name.
  std::unique_ptr<Interface> create(const std::string& name,
                                    const Context& context) const {
    const auto it = entries_.find(name);
    if (it == entries_.end())
      throw ContractViolation("unknown " + kind_ + " \"" + name +
                              "\" (available: " + names_joined() + ")");
    return it->second(context);
  }

 private:
  std::string kind_;
  std::map<std::string, Factory> entries_;
};

}  // namespace ufc::admm
