// In-process message bus with delivery accounting and loss injection.
//
// The bus models the WAN links between front-end proxies and datacenters:
// every send serializes the message (so byte counts are wire-realistic),
// optionally drops it with a configurable probability, and retransmits until
// delivery — the reliable-transport abstraction a synchronous ADMM round
// needs. Per-link and global statistics let benchmarks report the
// communication cost of the distributed algorithm, and tests inject loss to
// show the iterates are unaffected (only retransmission counts grow).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace ufc::net {

struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t retransmissions = 0;
};

class MessageBus {
 public:
  /// loss_rate in [0, 1): probability that any single transmission attempt
  /// is dropped (then retried; `seed` makes drops reproducible).
  explicit MessageBus(double loss_rate = 0.0, std::uint64_t seed = 1);

  /// Reliable send: serializes, simulates per-attempt loss, enqueues at the
  /// destination. Every attempt is counted in bytes; drops are counted as
  /// retransmissions.
  void send(Message message);

  /// Pops the next pending message for `destination`, FIFO per destination.
  std::optional<Message> receive(NodeId destination);

  /// Drains all pending messages for `destination`.
  std::vector<Message> drain(NodeId destination);

  /// Number of messages currently queued for `destination`.
  std::size_t pending(NodeId destination) const;

  const LinkStats& total() const { return total_; }
  /// Stats for the (source, destination) link; zeros if never used.
  LinkStats link(NodeId source, NodeId destination) const;

  void reset_stats();

 private:
  double loss_rate_;
  Rng rng_;
  std::map<NodeId, std::deque<Message>> queues_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> links_;
  LinkStats total_;
};

}  // namespace ufc::net
