// In-process message bus with delivery accounting and fault injection.
//
// The bus models the WAN links between front-end proxies and datacenters:
// every send serializes the message (so byte counts are wire-realistic),
// simulates per-attempt loss and scripted faults from a FaultPlan, and
// enqueues at the destination. Two transport configurations exist:
//
//  * Legacy reliable transport (the default, max_attempts = 0): a lossy
//    link retransmits until delivery — the abstraction a synchronous ADMM
//    round needs. Iterates are unaffected by loss; only traffic grows.
//  * Deadline transport (max_attempts > 0): at most max_attempts
//    transmissions per message with round-based exponential backoff
//    accounting; exhaustion surfaces as SendOutcome::Failed and a
//    delivery_failures count instead of spinning forever. Scripted faults
//    (partitions, crashes, corruption, delay) require this mode — the
//    runtime's degraded protocol absorbs the resulting gaps.
//
// Per-link and global statistics let benchmarks report the communication
// cost of the distributed algorithm under every fault mix.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "net/faults.hpp"
#include "net/link_stats.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace ufc::net {

struct BusConfig {
  std::uint64_t seed = 1;  ///< Drives every random fault draw.
  /// Per-message transmission cap. 0 = legacy unbounded retransmit (only
  /// valid for delivery-preserving plans); >= 1 enables the deadline
  /// transport. Contract-checked against the plan in the constructor.
  int max_attempts = 0;
  FaultPlan faults;
};

class MessageBus final : public Transport {
 public:
  /// Legacy transport: loss_rate in [0, 1) is the probability that any
  /// single transmission attempt is dropped (then retried; `seed` makes
  /// drops reproducible).
  explicit MessageBus(double loss_rate = 0.0, std::uint64_t seed = 1);

  /// Fault-injecting transport configured by `config.faults`.
  explicit MessageBus(BusConfig config);

  /// Advances the bus clock to `round`: releases every delayed message whose
  /// release round has arrived (deterministic order: release round, then
  /// send order) into its destination queue. Scripted fault windows are
  /// evaluated against this clock.
  void begin_round(int round) override;
  int current_round() const override { return round_; }

  /// Sends under the configured transport. Every attempt is counted in
  /// bytes; drops are counted as retransmissions. See SendOutcome.
  SendOutcome send(Message message) override;

  /// Pops the next pending message for `destination`, FIFO per destination.
  /// NON-BLOCKING (Transport contract): returns std::nullopt immediately
  /// when the queue is empty — there is no wait deadline because nothing can
  /// arrive while the caller holds the thread; delivery happens inside
  /// send() and begin_round().
  std::optional<Message> receive(NodeId destination) override;

  /// Drains all pending messages for `destination`. Non-blocking (see
  /// receive()).
  std::vector<Message> drain(NodeId destination) override;

  /// Number of messages currently queued for `destination`.
  std::size_t pending(NodeId destination) const override;

  /// Poll helper documenting the same deadline semantics as the socket
  /// transport: returns pending(destination) immediately, because simulated
  /// time does not pass while the caller waits — every message that can
  /// arrive this round is already queued. The deadline is accepted (and
  /// contract-checked non-negative) so callers are written once against the
  /// Transport contract.
  std::size_t poll_pending(NodeId destination, int deadline_ms) override;

  /// Messages in flight (delayed, not yet released).
  std::size_t delayed_pending() const { return delayed_.size(); }

  /// Drops every queued and delayed message (membership changes flush
  /// in-flight traffic; the degraded protocol absorbs the loss).
  void clear_queues() override;

  const BusConfig& config() const { return config_; }
  const LinkStats& total() const override { return total_; }
  /// Stats for the (source, destination) link; zeros if never used.
  LinkStats link(NodeId source, NodeId destination) const;

  void reset_stats();

 private:
  BusConfig config_;
  Rng rng_;
  int round_ = 0;
  std::uint64_t send_sequence_ = 0;
  std::map<NodeId, std::deque<Message>> queues_;
  /// Keyed by (release round, send sequence) for deterministic release order.
  std::map<std::pair<int, std::uint64_t>, Message> delayed_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> links_;
  LinkStats total_;
};

}  // namespace ufc::net
