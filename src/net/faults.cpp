#include "net/faults.hpp"

#include "util/contract.hpp"

namespace ufc::net {

namespace {

void check_window(const RoundWindow& window) {
  UFC_EXPECTS(window.first >= 0);
  UFC_EXPECTS(window.last > window.first);
}

}  // namespace

FaultPlan& FaultPlan::partition(NodeId a, NodeId b, RoundWindow window) {
  check_window(window);
  UFC_EXPECTS(a != b);
  partitions_.push_back({a, b, window});
  return *this;
}

FaultPlan& FaultPlan::crash(NodeId node, RoundWindow window) {
  check_window(window);
  UFC_EXPECTS(node != kCoordinatorId);
  crashes_.push_back({node, window});
  return *this;
}

FaultPlan& FaultPlan::random_faults(const RandomFaults& faults) {
  UFC_EXPECTS(faults.loss_rate >= 0.0 && faults.loss_rate < 1.0);
  UFC_EXPECTS(faults.corruption_rate >= 0.0 && faults.corruption_rate < 1.0);
  UFC_EXPECTS(faults.delay_rate >= 0.0 && faults.delay_rate < 1.0);
  UFC_EXPECTS(faults.max_delay_rounds >= 1);
  random_ = faults;
  return *this;
}

bool FaultPlan::empty() const {
  return partitions_.empty() && crashes_.empty() && random_.loss_rate <= 0.0 &&
         random_.corruption_rate <= 0.0 && random_.delay_rate <= 0.0;
}

bool FaultPlan::delivery_preserving() const {
  return partitions_.empty() && crashes_.empty() &&
         random_.corruption_rate <= 0.0 && random_.delay_rate <= 0.0;
}

bool FaultPlan::link_blocked(NodeId from, NodeId to, int round) const {
  UFC_EXPECTS(round >= 0);
  for (const auto& p : partitions_) {
    const bool matches =
        (p.a == from && p.b == to) || (p.a == to && p.b == from);
    if (matches && p.window.contains(round)) return true;
  }
  return false;
}

bool FaultPlan::node_down(NodeId node, int round) const {
  UFC_EXPECTS(round >= 0);
  for (const auto& c : crashes_)
    if (c.node == node && c.window.contains(round)) return true;
  return false;
}

}  // namespace ufc::net
