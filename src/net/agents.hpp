// The two node types of the distributed ADM-G protocol (paper Fig. 2).
//
// Each agent owns exactly the paper's per-node state and parameters — a
// front-end i never sees prices, capacities or other front-ends' duals; a
// datacenter j never sees the utility function or arrivals — and all
// coupling flows through RoutingProposal / RoutingAssignment messages on the
// bus. The numerical block solvers are shared with the monolithic solver
// (admm/blocks.hpp), so both produce bit-identical iterates; tests assert
// this.
#pragma once

#include <memory>

#include "admm/blocks.hpp"
#include "net/bus.hpp"

namespace ufc::net {

/// Correction mode shared by both agent kinds.
struct ProtocolConfig {
  double rho = 0.3;
  double epsilon = 1.0;
  bool gaussian_back_substitution = true;
  bool pin_mu = false;  ///< Grid strategy.
  bool pin_nu = false;  ///< FuelCell strategy.
  admm::InnerSolverOptions inner;
};

/// Everything front-end i knows locally.
struct FrontEndLocalConfig {
  std::size_t index = 0;
  double arrival = 0.0;                     ///< A_i.
  Vec latency_row_s;                        ///< L_i1..L_iN.
  double latency_weight = 0.0;              ///< w.
  std::shared_ptr<const UtilityFunction> utility;
  ProtocolConfig protocol;
};

class FrontEndAgent {
 public:
  explicit FrontEndAgent(FrontEndLocalConfig config);

  /// Procedure 1: solve the lambda block from local state and send
  /// (lambda~_ij, varphi_ij^k) to every datacenter.
  void send_proposals(MessageBus& bus, int iteration);

  /// Procedures 4-5 + correction: consume the datacenters' a~_ij replies,
  /// update the local dual, apply the back-substitution corrections, and
  /// report the local copy residual max_j |a_ij - lambda_ij| to the
  /// coordinator.
  void process_assignments(MessageBus& bus, int iteration);

  NodeId id() const { return front_end_id(config_.index); }
  const Vec& lambda() const { return lambda_; }
  const Vec& a_mirror() const { return a_; }
  const Vec& varphi() const { return varphi_; }
  double last_copy_residual() const { return last_copy_residual_; }

 private:
  FrontEndLocalConfig config_;
  std::size_t n_ = 0;   ///< Number of datacenters (from the latency row).
  Vec lambda_;          ///< lambda_i^k (post-correction).
  Vec lambda_tilde_;    ///< This iteration's prediction.
  Vec a_;               ///< Local mirror of a_i^k.
  Vec varphi_;          ///< varphi_i^k (owned here).
  double last_copy_residual_ = 0.0;
};

/// Everything datacenter j knows locally.
struct DatacenterLocalConfig {
  std::size_t index = 0;
  std::size_t num_front_ends = 0;  ///< M (to size local vectors).
  double alpha_mw = 0.0;
  double beta_mw = 0.0;
  double capacity_servers = 0.0;   ///< S_j.
  double fuel_cell_capacity_mw = 0.0;
  double fuel_cell_price = 0.0;    ///< p_0.
  double grid_price = 0.0;         ///< p_j.
  double carbon_tons_per_mwh = 0.0;  ///< kappa_j.
  std::shared_ptr<const EmissionCostFunction> emission_cost;
  ProtocolConfig protocol;
};

class DatacenterAgent {
 public:
  explicit DatacenterAgent(DatacenterLocalConfig config);

  /// Procedures 2-5 + correction: consume this iteration's proposals,
  /// solve the mu, nu and a blocks, reply a~_ij to every front-end, update
  /// the local dual phi_j, apply the back-substitution corrections, and
  /// report the local balance residual to the coordinator.
  void process_proposals(MessageBus& bus, int iteration);

  NodeId id() const { return datacenter_id(config_.index); }
  double mu() const { return mu_; }
  double nu() const { return nu_; }
  double phi() const { return phi_; }
  const Vec& a_col() const { return a_; }
  double last_balance_residual() const { return last_balance_residual_; }

 private:
  DatacenterLocalConfig config_;
  Vec a_;      ///< a_.j^k (owned here).
  double mu_ = 0.0;
  double nu_ = 0.0;
  double phi_ = 0.0;
  double last_balance_residual_ = 0.0;
};

}  // namespace ufc::net
