// The two node types of the distributed ADM-G protocol (paper Fig. 2).
//
// Each agent owns exactly the paper's per-node state and parameters — a
// front-end i never sees prices, capacities or other front-ends' duals; a
// datacenter j never sees the utility function or arrivals — and all
// coupling flows through RoutingProposal / RoutingAssignment messages on the
// bus. The numerical block solvers are shared with the monolithic solver
// (admm/blocks.hpp), so both produce bit-identical iterates; tests assert
// this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "admm/blocks.hpp"
#include "net/transport.hpp"

namespace ufc::net {

/// Correction mode shared by both agent kinds.
struct ProtocolConfig {
  double rho = 0.3;
  double epsilon = 1.0;
  bool gaussian_back_substitution = true;
  bool pin_mu = false;  ///< Grid strategy.
  bool pin_nu = false;  ///< FuelCell strategy.
  /// Degraded mode: a round may proceed on the last value received from a
  /// peer instead of requiring a fresh message every iteration (the
  /// generalization of admm/async.hpp's participation model to message
  /// loss, delay and crashes). false = strict lockstep: every expected
  /// message must arrive with the current iteration number, anything else
  /// is a contract violation.
  bool allow_stale = false;
  admm::InnerSolverOptions inner;
};

/// Everything front-end i knows locally.
struct FrontEndLocalConfig {
  std::size_t index = 0;
  double arrival = 0.0;                     ///< A_i.
  Vec latency_row_s;                        ///< L_i1..L_iN.
  double latency_weight = 0.0;              ///< w.
  std::shared_ptr<const UtilityFunction> utility;
  /// Bus ids of the datacenters this front-end talks to, positional with
  /// latency_row_s. Empty = the identity layout datacenter_id(0..N-1);
  /// graceful degradation passes the surviving original ids instead so
  /// scripted faults keep addressing the same physical nodes.
  std::vector<NodeId> datacenter_ids;
  ProtocolConfig protocol;
};

class FrontEndAgent {
 public:
  explicit FrontEndAgent(FrontEndLocalConfig config);

  /// Procedure 1: solve the lambda block from local state and send
  /// (lambda~_ij, varphi_ij^k) to every datacenter. Runs on any Transport —
  /// in-process bus or socket-backed — unchanged.
  void send_proposals(Transport& bus, int iteration);

  /// Procedures 4-5 + correction: consume the datacenters' a~_ij replies,
  /// update the local dual, apply the back-substitution corrections, and
  /// report the local copy residual max_j |a_ij - lambda_ij| to the
  /// coordinator.
  void process_assignments(Transport& bus, int iteration);

  NodeId id() const { return front_end_id(config_.index); }
  const Vec& lambda() const { return lambda_; }
  const Vec& a_mirror() const { return a_; }
  const Vec& varphi() const { return varphi_; }
  double last_copy_residual() const { return last_copy_residual_; }
  /// Datacenter slots filled from a previous iteration's value instead of a
  /// fresh message, summed over all rounds (always 0 in strict mode).
  std::uint64_t stale_assignments() const { return stale_assignments_; }
  /// Iteration of the oldest input this agent is currently operating on
  /// (-1 = some peer has never been heard from). The runtime bounds
  /// current_round - oldest to declare convergence under staleness.
  std::int32_t oldest_input_round() const;

  /// Serializes the complete per-node state (iterate + staleness caches)
  /// with the shared wire codec.
  void append_state(std::vector<std::byte>& out) const;
  /// Restores append_state() bytes, advancing `offset`; the dimension must
  /// match or this throws ufc::ContractViolation.
  void restore_state(std::span<const std::byte> bytes, std::size_t& offset);
  /// Seeds the iterate directly (graceful degradation rebuilds agents on
  /// the reduced problem from compacted state). Staleness caches restart
  /// from the given values.
  void load_iterate(std::span<const double> lambda, std::span<const double> a,
                    std::span<const double> varphi);

 private:
  /// Positional slot of the datacenter with bus id `source`.
  std::size_t position_of(NodeId source) const;

  FrontEndLocalConfig config_;
  std::size_t n_ = 0;   ///< Number of datacenters (from the latency row).
  Vec lambda_;          ///< lambda_i^k (post-correction).
  Vec lambda_tilde_;    ///< This iteration's prediction.
  Vec a_;               ///< Local mirror of a_i^k.
  Vec varphi_;          ///< varphi_i^k (owned here).
  /// Latest a~_ij received per datacenter and the iteration it came from
  /// (-1 = never). In strict mode every round overwrites every slot; in
  /// degraded mode missing/late messages leave the previous value standing.
  Vec a_tilde_cache_;
  std::vector<std::int32_t> last_assignment_round_;
  double last_copy_residual_ = 0.0;
  std::uint64_t stale_assignments_ = 0;
};

/// Everything datacenter j knows locally.
struct DatacenterLocalConfig {
  std::size_t index = 0;
  std::size_t num_front_ends = 0;  ///< M (to size local vectors).
  double alpha_mw = 0.0;
  double beta_mw = 0.0;
  double capacity_servers = 0.0;   ///< S_j.
  double fuel_cell_capacity_mw = 0.0;
  double fuel_cell_price = 0.0;    ///< p_0.
  double grid_price = 0.0;         ///< p_j.
  double carbon_tons_per_mwh = 0.0;  ///< kappa_j.
  std::shared_ptr<const EmissionCostFunction> emission_cost;
  ProtocolConfig protocol;
};

class DatacenterAgent {
 public:
  explicit DatacenterAgent(DatacenterLocalConfig config);

  /// Procedures 2-5 + correction: consume this iteration's proposals,
  /// solve the mu, nu and a blocks, reply a~_ij to every front-end, update
  /// the local dual phi_j, apply the back-substitution corrections, and
  /// report the local balance residual to the coordinator. Runs on any
  /// Transport — in-process bus or socket-backed — unchanged.
  void process_proposals(Transport& bus, int iteration);

  NodeId id() const { return datacenter_id(config_.index); }
  double mu() const { return mu_; }
  double nu() const { return nu_; }
  double phi() const { return phi_; }
  const Vec& a_col() const { return a_; }
  double last_balance_residual() const { return last_balance_residual_; }
  /// Front-end slots filled from a previous iteration's proposal instead of
  /// a fresh message, summed over all rounds (always 0 in strict mode).
  std::uint64_t stale_proposals() const { return stale_proposals_; }
  /// Iteration of the oldest input this agent is currently operating on
  /// (-1 = some peer has never been heard from); see FrontEndAgent.
  std::int32_t oldest_input_round() const;

  /// Serializes the complete per-node state (iterate + staleness caches).
  void append_state(std::vector<std::byte>& out) const;
  /// Restores append_state() bytes, advancing `offset`.
  void restore_state(std::span<const std::byte> bytes, std::size_t& offset);
  /// Seeds the iterate directly (graceful degradation / warm rebuild). The
  /// proposal caches restart from (a_col, varphi_col) — the near-converged
  /// approximation lambda ~= a.
  void load_iterate(std::span<const double> a_col,
                    std::span<const double> varphi_col, double mu, double nu,
                    double phi);

  /// Multi-process seam (docs/DISTRIBUTION.md): the post-round iterate of
  /// this datacenter as a StateSync message to the coordinator, so the
  /// coordinator-side shadow agent can track a remotely hosted one.
  Message make_state_sync(int iteration) const;
  /// Applies a StateSync produced by make_state_sync() in another process:
  /// adopts the remote iterate bit-for-bit and ages every proposal slot to
  /// the remote's reported oldest input round (shape-checked; malformed
  /// messages throw ufc::ContractViolation).
  void sync_remote(const Message& message);

 private:
  DatacenterLocalConfig config_;
  Vec a_;      ///< a_.j^k (owned here).
  double mu_ = 0.0;
  double nu_ = 0.0;
  double phi_ = 0.0;
  /// Latest (lambda~_ij, varphi_ij) received per front-end and the
  /// iteration it came from (-1 = never); see FrontEndAgent's cache.
  Vec lambda_tilde_cache_;
  Vec varphi_cache_;
  std::vector<std::int32_t> last_proposal_round_;
  double last_balance_residual_ = 0.0;
  std::uint64_t stale_proposals_ = 0;
};

}  // namespace ufc::net
