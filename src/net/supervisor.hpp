// Process supervision for the socket-backed distributed runtime
// (docs/DISTRIBUTION.md).
//
// The Supervisor turns one DistributedAdmgRuntime into a real multi-process
// fleet: it binds the hub socket, forks N worker processes (each hosting a
// share of the datacenter agents), runs the coordinator solve in the parent
// and shuts the fleet down deterministically — Shutdown frame, Metrics
// reply, bounded waitpid, SIGKILL for stragglers.
//
// Robustness machinery under test rides on two seams:
//  * Fault injection: kill_at_round SIGKILLs a chosen worker after that
//    engine iteration (through the IterationObserver seam, so the injection
//    can never touch the iterate). The coordinator sees the EOF, declares
//    the orphaned datacenters dead after one silent round and gracefully
//    degrades — the same membership/warm-restart path the in-process
//    degraded runtime exercises with scripted FaultPlan crashes.
//  * Crash-restart: checkpoint_at_round captures the coordinator's UFCR
//    checkpoint mid-solve; run(checkpoint) restores it before forking, so
//    a brand-new fleet resumes from the image.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/runtime.hpp"
#include "net/socket_bus.hpp"

namespace ufc::net {

struct SupervisorOptions {
  /// Runtime knobs for the coordinator. degraded must be true (a real fleet
  /// can always lose a worker mid-round); the remote field is overwritten
  /// by the supervisor.
  DistributedOptions distributed;
  /// Worker processes to fork; active datacenters are dealt round-robin.
  /// Clamped to the number of datacenters.
  std::size_t processes = 2;
  /// Directory for the hub's Unix socket (ignored with use_tcp).
  std::string socket_dir = "/tmp";
  /// false = Unix-domain socket (default); true = TCP on loopback with an
  /// ephemeral port.
  bool use_tcp = false;
  /// Per-round wait for remote replies (RemoteHosting::round_deadline_ms).
  int round_deadline_ms = 4000;
  /// Deadline for individual socket writes / worker round waits.
  int io_timeout_ms = 2000;
  /// Deadline for worker connect + hub handshake collection.
  int connect_timeout_ms = 4000;
  /// Fault injection: after engine iteration kill_at_round, SIGKILL worker
  /// kill_worker. -1 = never.
  int kill_at_round = -1;
  std::size_t kill_worker = 0;
  /// Capture the coordinator checkpoint after this iteration. -1 = never.
  int checkpoint_at_round = -1;
};

/// DistributedReport plus the process-level outcomes only a real fleet has.
struct SupervisedReport : DistributedReport {
  std::size_t workers_spawned = 0;
  /// Workers reaped with a kill signal (includes the injected SIGKILL and
  /// shutdown stragglers).
  std::size_t workers_killed = 0;
  /// Workers that exited cleanly after the Shutdown frame.
  std::size_t workers_exited = 0;
  /// Per-worker measurement tables (sorted by worker index — deterministic
  /// merge order), shipped in Metrics frames at shutdown.
  std::vector<SocketBus::WorkerMetrics> worker_metrics;
  /// The UFCR image captured at checkpoint_at_round (empty otherwise);
  /// feed it to run(checkpoint) to crash-restart the fleet.
  std::vector<std::byte> checkpoint_image;
};

class Supervisor {
 public:
  /// Validates options (degraded protocol required, >= 1 process). The
  /// problem is copied; nothing is forked until run().
  Supervisor(const UfcProblem& problem, SupervisorOptions options);

  /// Fresh fleet solve.
  SupervisedReport run();
  /// Crash-restart: restores the UFCR image into the coordinator before
  /// forking, so workers inherit the restored iterate.
  SupervisedReport run(std::span<const std::byte> checkpoint);

 private:
  SupervisedReport run_impl(std::span<const std::byte> checkpoint);

  UfcProblem problem_;
  SupervisorOptions options_;
};

}  // namespace ufc::net
