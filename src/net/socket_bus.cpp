#include "net/socket_bus.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/contract.hpp"
#include "util/wire.hpp"

namespace ufc::net {

namespace {

// Backoff before the k-th retry: 2^(k-1) rounds, capped — the same
// accounting formula as the in-process bus (bus.cpp), so LinkStats numbers
// mean the same thing on both transports.
std::uint64_t backoff_rounds_before_retry(int failed_attempts) {
  return std::uint64_t{1} << std::min(failed_attempts - 1, 10);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  // Best-effort: Nagle only affects latency, never correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  UFC_EXPECTS(!path.empty() && path.size() < sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  UFC_EXPECTS(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1);
  return addr;
}

/// One non-blocking connect attempt, poll-bounded by the deadline. Returns
/// the connected fd or -1 (caller retries with backoff).
int dial_endpoint(const SocketEndpoint& endpoint, int deadline_ms) {
  const IoDeadline deadline(deadline_ms);
  const bool is_unix = !endpoint.unix_path.empty();
  const int fd =
      ::socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;

  int rc = 0;
  if (is_unix) {
    const sockaddr_un addr = unix_address(endpoint.unix_path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } else {
    set_tcp_nodelay(fd);
    const sockaddr_in addr =
        tcp_address(endpoint.tcp_host, endpoint.tcp_port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0 && errno != EINPROGRESS) {
    // Includes EAGAIN on a Unix socket whose backlog is full: retryable.
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    while (true) {
      const int prc = ::poll(&pfd, 1, deadline.remaining_ms());
      if (prc < 0 && errno == EINTR && !deadline.expired()) continue;
      if (prc <= 0) {
        ::close(fd);
        return -1;
      }
      break;
    }
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

// --------------------------------------------------------------------------
// Framing

std::vector<std::byte> encode_frame(FrameKind kind,
                                    std::span<const std::byte> body) {
  const auto raw = static_cast<std::uint32_t>(kind);
  UFC_EXPECTS(raw >= 1 && raw <= 4);
  UFC_EXPECTS(body.size() <= kMaxFrameBytes);
  std::vector<std::byte> out;
  out.reserve(2 * sizeof(std::uint32_t) + body.size());
  wire::append(out, raw);
  wire::append(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void FrameReader::feed(std::span<const std::byte> bytes) {
  UFC_EXPECTS(bytes.data() != nullptr || bytes.empty());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameReader::next() {
  constexpr std::size_t kHeader = 2 * sizeof(std::uint32_t);
  if (buffered() < kHeader) return std::nullopt;
  std::size_t offset = consumed_;
  const auto kind = wire::read<std::uint32_t>(buffer_, offset);
  const auto length = wire::read<std::uint32_t>(buffer_, offset);
  // Header validation happens the moment 8 bytes are visible — a hostile
  // declared length is rejected before the body is allocated or awaited.
  UFC_EXPECTS(kind >= 1 && kind <= 4);
  UFC_EXPECTS(length <= kMaxFrameBytes);
  if (buffered() < kHeader + length) return std::nullopt;
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.body.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(offset),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(offset + length));
  consumed_ = offset + length;
  // Compact once the dead prefix dominates, so a long-lived stream does not
  // grow the buffer without bound.
  if (consumed_ >= 65536 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return frame;
}

std::vector<std::byte> encode_hello_body(std::uint32_t worker_index,
                                         std::span<const NodeId> nodes) {
  std::vector<std::byte> out;
  wire::append(out, worker_index);
  wire::append(out, static_cast<std::uint32_t>(nodes.size()));
  for (NodeId node : nodes) wire::append(out, node);
  return out;
}

HelloBody decode_hello_body(std::span<const std::byte> body) {
  std::size_t offset = 0;
  HelloBody hello;
  hello.worker_index = wire::read<std::uint32_t>(body, offset);
  const auto count = wire::read<std::uint32_t>(body, offset);
  // Exact-length check before allocation (mirrors message.cpp::deserialize).
  UFC_EXPECTS(body.size() - offset ==
              static_cast<std::size_t>(count) * sizeof(NodeId));
  hello.nodes.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    hello.nodes.push_back(wire::read<NodeId>(body, offset));
  return hello;
}

std::vector<std::byte> encode_metrics_body(
    const std::map<std::string, std::uint64_t>& counters,
    const std::map<std::string, double>& gauges) {
  std::vector<std::byte> out;
  const auto append_key = [&out](const std::string& key) {
    wire::append(out, static_cast<std::uint32_t>(key.size()));
    for (char c : key) out.push_back(static_cast<std::byte>(c));
  };
  wire::append(out, static_cast<std::uint32_t>(counters.size()));
  for (const auto& [key, value] : counters) {
    append_key(key);
    wire::append(out, value);
  }
  wire::append(out, static_cast<std::uint32_t>(gauges.size()));
  for (const auto& [key, value] : gauges) {
    append_key(key);
    wire::append(out, value);
  }
  return out;
}

MetricsBody decode_metrics_body(std::span<const std::byte> body) {
  std::size_t offset = 0;
  const auto read_key = [&body, &offset]() {
    const auto len = wire::read<std::uint32_t>(body, offset);
    UFC_EXPECTS(body.size() - offset >= len);
    std::string key;
    key.reserve(len);
    for (std::uint32_t k = 0; k < len; ++k)
      key.push_back(static_cast<char>(body[offset + k]));
    offset += len;
    return key;
  };
  MetricsBody tables;
  const auto n_counters = wire::read<std::uint32_t>(body, offset);
  for (std::uint32_t k = 0; k < n_counters; ++k) {
    std::string key = read_key();
    tables.counters[std::move(key)] = wire::read<std::uint64_t>(body, offset);
  }
  const auto n_gauges = wire::read<std::uint32_t>(body, offset);
  for (std::uint32_t k = 0; k < n_gauges; ++k) {
    std::string key = read_key();
    tables.gauges[std::move(key)] = wire::read<double>(body, offset);
  }
  UFC_EXPECTS(offset == body.size());
  return tables;
}

// --------------------------------------------------------------------------
// SocketBus

struct SocketBus::Peer {
  int fd = -1;
  std::uint32_t worker_index = 0;
  bool hello_done = false;
  bool alive = true;
  /// Re-entrancy guard: a blocked write_all drains inbound frames, and a
  /// drained frame may ask to forward onto a peer that is itself mid-frame.
  /// Interleaving bytes into a half-written frame would corrupt the stream,
  /// so a nested write to a busy peer fails instead (a delivery failure the
  /// degraded protocol absorbs).
  bool writing = false;
  FrameReader reader;
  std::vector<NodeId> nodes;
};

SocketBus::SocketBus(SocketBusConfig config) : config_(std::move(config)) {
  // On a real network no fault plan is delivery-preserving, so the
  // unbounded-retry configuration the in-process bus allows is a contract
  // violation here: the attempt cap must be finite.
  UFC_EXPECTS(config_.max_attempts >= 1);
  UFC_EXPECTS(config_.connect_timeout_ms >= 0);
  UFC_EXPECTS(config_.io_timeout_ms >= 0);
  UFC_EXPECTS(!config_.local_nodes.empty());
  const bool is_unix = !config_.endpoint.unix_path.empty();
  if (!is_unix) {
    UFC_EXPECTS(config_.endpoint.tcp_port >= 0 &&
                config_.endpoint.tcp_port <= 65535);
  }
  if (!config_.hub) return;

  if (is_unix) {
    // A stale path from a crashed previous hub would make bind fail.
    (void)::unlink(config_.endpoint.unix_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
    const sockaddr_un addr = unix_address(config_.endpoint.unix_path);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      throw_errno("bind(" + config_.endpoint.unix_path + ")");
    owns_unix_path_ = true;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    sockaddr_in addr =
        tcp_address(config_.endpoint.tcp_host, config_.endpoint.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
      throw_errno("bind(tcp)");
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0)
      throw_errno("getsockname");
    bound_tcp_port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) throw_errno("listen");
}

SocketBus::~SocketBus() {
  for (auto& peer : peers_)
    if (peer->fd >= 0) ::close(peer->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (owns_unix_path_) (void)::unlink(config_.endpoint.unix_path.c_str());
}

void SocketBus::close_for_child() {
  for (auto& peer : peers_)
    if (peer->fd >= 0) ::close(peer->fd);
  peers_.clear();
  node_owner_.clear();
  queues_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // The parent keeps the endpoint; the child must not unlink it on exit.
  owns_unix_path_ = false;
}

bool SocketBus::is_local(NodeId node) const {
  return std::find(config_.local_nodes.begin(), config_.local_nodes.end(),
                   node) != config_.local_nodes.end();
}

void SocketBus::begin_round(int round) {
  UFC_EXPECTS(round >= 0);
  round_ = round;
}

SocketBus::Peer* SocketBus::peer_for(NodeId destination) {
  if (!config_.hub) {
    // Workers have exactly one stream: everything remote goes via the hub.
    return peers_.empty() || !peers_.front()->alive ? nullptr
                                                    : peers_.front().get();
  }
  const auto it = node_owner_.find(destination);
  if (it == node_owner_.end()) return nullptr;
  Peer* peer = peers_[it->second].get();
  return peer->alive ? peer : nullptr;
}

SendOutcome SocketBus::send(Message message) {
  UFC_EXPECTS(message.source >= kCoordinatorId);
  UFC_EXPECTS(message.destination >= kCoordinatorId);
  auto& link = links_[{message.source, message.destination}];

  if (is_local(message.destination)) {
    // Local short-circuit: same codec round-trip and byte accounting as the
    // in-process bus, no socket involved.
    auto wire_bytes = serialize(message);
    link.bytes += wire_bytes.size();
    total_.bytes += wire_bytes.size();
    Message delivered = deserialize(wire_bytes);
    queues_[delivered.destination].push_back(std::move(delivered));
    ++link.messages;
    ++total_.messages;
    return SendOutcome::Delivered;
  }

  if (!config_.hub && (peers_.empty() || !peers_.front()->alive)) {
    if (!connect_to_hub(config_.connect_timeout_ms)) {
      ++link.delivery_failures;
      ++total_.delivery_failures;
      return SendOutcome::Failed;
    }
  }
  Peer* peer = peer_for(message.destination);
  if (peer == nullptr) {
    ++link.delivery_failures;
    ++total_.delivery_failures;
    return SendOutcome::Failed;
  }

  const auto frame = encode_frame(FrameKind::Data, serialize(message));
  link.bytes += frame.size();
  total_.bytes += frame.size();
  if (!write_all(*peer, frame, config_.io_timeout_ms)) {
    ++link.delivery_failures;
    ++total_.delivery_failures;
    return SendOutcome::Failed;
  }
  ++link.messages;
  ++total_.messages;
  return SendOutcome::Delivered;
}

std::optional<Message> SocketBus::receive(NodeId destination) {
  UFC_EXPECTS(destination >= kCoordinatorId);
  auto it = queues_.find(destination);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Message message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

std::vector<Message> SocketBus::drain(NodeId destination) {
  UFC_EXPECTS(destination >= kCoordinatorId);
  std::vector<Message> messages;
  auto it = queues_.find(destination);
  if (it == queues_.end()) return messages;
  messages.assign(std::make_move_iterator(it->second.begin()),
                  std::make_move_iterator(it->second.end()));
  it->second.clear();
  return messages;
}

std::size_t SocketBus::pending(NodeId destination) const {
  UFC_EXPECTS(destination >= kCoordinatorId);
  auto it = queues_.find(destination);
  return it == queues_.end() ? 0 : it->second.size();
}

std::size_t SocketBus::poll_pending(NodeId destination, int deadline_ms) {
  UFC_EXPECTS(deadline_ms >= 0);
  const IoDeadline deadline(deadline_ms);
  while (pending(destination) == 0) {
    pump(deadline.remaining_ms());
    if (deadline.expired()) break;
  }
  return pending(destination);
}

std::int32_t SocketBus::max_pending_iteration(NodeId destination) const {
  UFC_EXPECTS(destination >= kCoordinatorId);
  const auto it = queues_.find(destination);
  std::int32_t newest = -1;
  if (it == queues_.end()) return newest;
  for (const Message& message : it->second)
    newest = std::max(newest, message.iteration);
  return newest;
}

void SocketBus::clear_queues() { queues_.clear(); }

void SocketBus::mark_dead(Peer& peer) {
  if (!peer.alive) return;
  peer.alive = false;
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
  for (NodeId node : peer.nodes) {
    newly_disconnected_.push_back(node);
    node_owner_.erase(node);
  }
}

std::vector<NodeId> SocketBus::take_newly_disconnected() {
  std::vector<NodeId> out;
  out.swap(newly_disconnected_);
  std::sort(out.begin(), out.end());
  return out;
}

bool SocketBus::write_all(Peer& peer, std::span<const std::byte> bytes,
                          int deadline_ms) {
  if (!peer.alive || peer.writing) return false;
  peer.writing = true;
  const IoDeadline deadline(deadline_ms);
  std::size_t written = 0;
  bool ok = true;
  while (written < bytes.size()) {
    const ssize_t n = ::send(peer.fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The send buffer is full. If the peer is itself mid-write toward us
      // (both directions flooded), waiting on POLLOUT alone deadlocks both
      // sides: neither reads, so neither buffer ever drains. Wait for
      // writability OR readability and drain inbound bytes while blocked —
      // the read is what frees the peer's send buffer and unsticks the
      // cycle.
      pollfd pfd{peer.fd, POLLIN | POLLOUT, 0};
      const int rc = ::poll(&pfd, 1, deadline.remaining_ms());
      if (rc < 0 && errno == EINTR && !deadline.expired()) continue;
      if (rc <= 0) {
        // Deadline elapsed. A partially written frame leaves the stream
        // unframeable, so the peer is unusable from here on.
        if (written > 0) mark_dead(peer);
        ok = false;
        break;
      }
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          (pfd.revents & POLLOUT) == 0) {
        (void)drain_fd(peer);
        if (!peer.alive) {
          ok = false;
          break;
        }
      }
      continue;
    }
    // EPIPE / ECONNRESET / anything else: the peer is gone.
    mark_dead(peer);
    ok = false;
    break;
  }
  peer.writing = false;
  return ok;
}

void SocketBus::dispatch(Peer& peer, Frame frame) {
  switch (frame.kind) {
    case FrameKind::Hello: {
      UFC_EXPECTS(config_.hub);
      const HelloBody hello = decode_hello_body(frame.body);
      peer.worker_index = hello.worker_index;
      peer.nodes = hello.nodes;
      peer.hello_done = true;
      const std::size_t index = [&] {
        for (std::size_t k = 0; k < peers_.size(); ++k)
          if (peers_[k].get() == &peer) return k;
        return peers_.size();
      }();
      UFC_EXPECTS(index < peers_.size());
      for (NodeId node : hello.nodes) {
        UFC_EXPECTS(!is_local(node));
        node_owner_[node] = index;
      }
      return;
    }
    case FrameKind::Data: {
      Message message = deserialize(frame.body);
      if (is_local(message.destination)) {
        queues_[message.destination].push_back(std::move(message));
        return;
      }
      // Only the hub routes between peers; a worker getting a frame for a
      // node it does not host means the hub's routing table is broken.
      UFC_EXPECTS(config_.hub);
      Peer* target = peer_for(message.destination);
      if (target == nullptr) {
        ++total_.delivery_failures;
        return;
      }
      const auto forwarded = encode_frame(FrameKind::Data, frame.body);
      total_.bytes += forwarded.size();
      if (write_all(*target, forwarded, config_.io_timeout_ms))
        ++total_.messages;
      else
        ++total_.delivery_failures;
      return;
    }
    case FrameKind::Metrics: {
      UFC_EXPECTS(config_.hub);
      WorkerMetrics metrics;
      metrics.worker_index = peer.worker_index;
      metrics.tables = decode_metrics_body(frame.body);
      worker_metrics_.push_back(std::move(metrics));
      return;
    }
    case FrameKind::Shutdown: {
      UFC_EXPECTS(!config_.hub);
      shutdown_requested_ = true;
      return;
    }
  }
  UFC_EXPECTS(false);  // FrameReader only yields the four known kinds.
}

std::size_t SocketBus::drain_fd(Peer& peer) {
  std::size_t dispatched = 0;
  std::array<std::byte, 16384> chunk;
  while (peer.alive) {
    const ssize_t n = ::recv(peer.fd, chunk.data(), chunk.size(), 0);
    if (n > 0) {
      peer.reader.feed({chunk.data(), static_cast<std::size_t>(n)});
      while (auto frame = peer.reader.next()) {
        dispatch(peer, std::move(*frame));
        ++dispatched;
      }
      if (static_cast<std::size_t>(n) < chunk.size()) break;
      continue;
    }
    if (n == 0) {
      // Orderly EOF: the peer process exited or was killed.
      mark_dead(peer);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // ECONNRESET and friends: the peer crashed mid-stream.
    mark_dead(peer);
    break;
  }
  return dispatched;
}

void SocketBus::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: backlog drained. Anything else: try again next pump.
    }
    if (config_.endpoint.unix_path.empty()) set_tcp_nodelay(fd);
    auto peer = std::make_unique<Peer>();
    peer->fd = fd;
    peers_.push_back(std::move(peer));
  }
}

bool SocketBus::pump(int deadline_ms) {
  UFC_EXPECTS(deadline_ms >= 0);
  const IoDeadline deadline(deadline_ms);
  std::size_t dispatched = 0;
  bool first_wait = true;
  while (true) {
    std::vector<pollfd> fds;
    std::vector<Peer*> fd_peers;
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_peers.push_back(nullptr);
    }
    for (auto& peer : peers_) {
      if (!peer->alive) continue;
      fds.push_back({peer->fd, POLLIN, 0});
      fd_peers.push_back(peer.get());
    }
    if (fds.empty()) {
      // Nothing to read from (worker not yet connected): sleep out the
      // deadline instead of spinning.
      (void)::poll(nullptr, 0, deadline.remaining_ms());
      return false;
    }
    // Wait (at most once) for the first readable fd; afterwards only drain
    // what is already there.
    const int timeout = first_wait ? deadline.remaining_ms() : 0;
    first_wait = false;
    const int rc =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout);
    if (rc < 0) {
      if (errno == EINTR && !deadline.expired()) {
        first_wait = dispatched == 0;
        continue;
      }
      return dispatched > 0;
    }
    if (rc == 0) return dispatched > 0;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (fd_peers[k] == nullptr)
        accept_ready();
      else
        dispatched += drain_fd(*fd_peers[k]);
    }
  }
}

std::size_t SocketBus::connected_workers() const {
  std::size_t count = 0;
  for (const auto& peer : peers_)
    if (peer->alive && peer->hello_done) ++count;
  return count;
}

std::size_t SocketBus::wait_for_workers(std::size_t count, int deadline_ms) {
  UFC_EXPECTS(config_.hub);
  const IoDeadline deadline(deadline_ms);
  while (connected_workers() < count && !deadline.expired())
    pump(deadline.remaining_ms());
  return connected_workers();
}

void SocketBus::send_shutdown(int deadline_ms) {
  UFC_EXPECTS(config_.hub);
  const auto frame = encode_frame(FrameKind::Shutdown, {});
  for (auto& peer : peers_) {
    if (!peer->alive || !peer->hello_done) continue;
    total_.bytes += frame.size();
    (void)write_all(*peer, frame, deadline_ms);
  }
}

std::vector<SocketBus::WorkerMetrics> SocketBus::take_worker_metrics() {
  std::vector<WorkerMetrics> out;
  out.swap(worker_metrics_);
  std::sort(out.begin(), out.end(),
            [](const WorkerMetrics& a, const WorkerMetrics& b) {
              return a.worker_index < b.worker_index;
            });
  return out;
}

int SocketBus::bound_tcp_port() const {
  UFC_EXPECTS(config_.hub && config_.endpoint.unix_path.empty());
  return bound_tcp_port_;
}

bool SocketBus::hub_connected() const {
  return !config_.hub && !peers_.empty() && peers_.front()->alive;
}

bool SocketBus::connect_to_hub(int deadline_ms) {
  UFC_EXPECTS(!config_.hub);
  if (hub_connected()) return true;
  peers_.clear();
  const IoDeadline deadline(deadline_ms);
  for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    const int per_attempt =
        std::min(config_.connect_timeout_ms, deadline.remaining_ms());
    const int fd = dial_endpoint(config_.endpoint, per_attempt);
    if (fd >= 0) {
      auto peer = std::make_unique<Peer>();
      peer->fd = fd;
      peers_.push_back(std::move(peer));
      const auto hello = encode_frame(
          FrameKind::Hello,
          encode_hello_body(config_.worker_index, config_.local_nodes));
      total_.bytes += hello.size();
      if (write_all(*peers_.front(), hello, config_.io_timeout_ms))
        return true;
      peers_.clear();
    }
    ++total_.retransmissions;
    if (attempt == config_.max_attempts || deadline.expired()) break;
    // Same capped exponential accounting as the in-process bus, plus a
    // short real wait so a hub that is still binding gets a chance.
    total_.backoff_rounds += backoff_rounds_before_retry(attempt);
    const int wait_ms = std::min(1 << std::min(attempt - 1, 6),
                                 deadline.remaining_ms());
    (void)::poll(nullptr, 0, wait_ms);
  }
  return false;
}

SendOutcome SocketBus::send_metrics(
    const std::map<std::string, std::uint64_t>& counters,
    const std::map<std::string, double>& gauges, int deadline_ms) {
  UFC_EXPECTS(!config_.hub);
  if (!hub_connected() && !connect_to_hub(config_.connect_timeout_ms))
    return SendOutcome::Failed;
  const auto frame =
      encode_frame(FrameKind::Metrics, encode_metrics_body(counters, gauges));
  total_.bytes += frame.size();
  if (!write_all(*peers_.front(), frame, deadline_ms))
    return SendOutcome::Failed;
  ++total_.messages;
  return SendOutcome::Delivered;
}

}  // namespace ufc::net
