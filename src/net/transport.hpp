// The transport contract shared by every bus the distributed protocol can
// run on: the in-process MessageBus (bus.hpp) and the socket-backed
// SocketBus (socket_bus.hpp).
//
// Both transports document identical semantics (docs/DISTRIBUTION.md):
//
//  * receive()/drain() are NON-BLOCKING: they return whatever is queued
//    locally and never wait for the network. Waiting is explicit and
//    deadline-bounded through poll_pending() — no Transport call may block
//    forever.
//  * send() is synchronous and returns a SendOutcome. Failed means the
//    transport exhausted its per-message attempt budget (loss, partition or
//    a crashed/unreachable peer); the degraded protocol absorbs the gap.
//  * begin_round() advances the transport's protocol clock. The in-process
//    bus uses it to release delayed messages and evaluate fault windows;
//    the socket bus stamps its backoff accounting with it.
//
// Agents (agents.hpp) and the runtime (runtime.hpp) are written against this
// interface only, so the same protocol code runs unchanged in one process or
// across N real OS processes.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/link_stats.hpp"
#include "net/message.hpp"

namespace ufc::net {

/// What became of one send() call.
enum class SendOutcome {
  Delivered,  ///< Enqueued at the destination (or handed to the OS stream).
  Delayed,    ///< In flight; released by a later begin_round().
  Corrupted,  ///< Transmitted but discarded by the receiver integrity check.
  Failed,     ///< Attempt cap exhausted (loss, partition or crashed peer).
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Advances the protocol clock to `round` (monotone non-decreasing).
  virtual void begin_round(int round) = 0;
  virtual int current_round() const = 0;

  /// Sends under the transport's delivery model. Never blocks forever: a
  /// socket transport bounds every connect/write with a deadline and
  /// surfaces exhaustion as SendOutcome::Failed.
  virtual SendOutcome send(Message message) = 0;

  /// Pops the next locally queued message for `destination`, FIFO per
  /// destination. Non-blocking: never waits for the network.
  virtual std::optional<Message> receive(NodeId destination) = 0;

  /// Drains all locally queued messages for `destination`. Non-blocking.
  virtual std::vector<Message> drain(NodeId destination) = 0;

  /// Number of messages currently queued for `destination`. Non-blocking.
  virtual std::size_t pending(NodeId destination) const = 0;

  /// Waits until at least one message is queued for `destination` or
  /// `deadline_ms` elapses, then returns pending(destination). This is the
  /// ONLY Transport call that may wait, and it is always deadline-bounded.
  /// The in-process bus returns immediately (simulated time does not pass
  /// while the caller spins); the socket bus polls the wire.
  virtual std::size_t poll_pending(NodeId destination, int deadline_ms) = 0;

  /// Drops every queued (and in-flight, where the transport can reach it)
  /// message: membership changes flush traffic addressed to the old
  /// topology; the degraded protocol treats the flushed messages as lost.
  virtual void clear_queues() = 0;

  /// Aggregate traffic counters across all links.
  virtual const LinkStats& total() const = 0;
};

}  // namespace ufc::net
