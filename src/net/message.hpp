// Wire messages of the distributed ADM-G exchange (paper Fig. 2).
//
// One iteration needs exactly two message kinds:
//   RoutingProposal   front-end i -> datacenter j : (lambda~_ij, varphi_ij^k)
//   RoutingAssignment datacenter j -> front-end i : (a~_ij)
// plus small ConvergenceReport messages to the coordinator. Everything else
// (mu, nu, phi_j, the Gaussian back substitution) is node-local.
//
// Messages carry a binary payload and are serialized to a length-prefixed
// little-endian wire format so the bus can account bytes realistically and
// tests can round-trip them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ufc::net {

enum class MessageType : std::uint8_t {
  RoutingProposal = 1,    ///< FE -> DC: lambda~_ij and varphi_ij^k.
  RoutingAssignment = 2,  ///< DC -> FE: a~_ij.
  ConvergenceReport = 3,  ///< Agent -> coordinator: local residual.
  /// Remote DC -> coordinator: the complete post-round iterate of a
  /// datacenter hosted in another process, so the coordinator's shadow agent
  /// tracks it (multi-process distribution, docs/DISTRIBUTION.md). Payload
  /// (size 6 + 3m): [mu, nu, phi, balance_residual, oldest_input_round,
  /// stale_proposals, a_col..., lambda_cache..., varphi_cache...]. Never
  /// used by the in-process runtime.
  StateSync = 4,
};

/// Node addressing: front-ends and datacenters get disjoint id ranges; the
/// coordinator is a reserved well-known id.
using NodeId = std::int32_t;
inline constexpr NodeId kCoordinatorId = -1;

NodeId front_end_id(std::size_t i);
NodeId datacenter_id(std::size_t j);
bool is_front_end(NodeId id);
bool is_datacenter(NodeId id);
std::size_t front_end_index(NodeId id);
std::size_t datacenter_index(NodeId id);

struct Message {
  NodeId source = 0;
  NodeId destination = 0;
  MessageType type = MessageType::RoutingProposal;
  std::int32_t iteration = 0;
  std::vector<double> payload;

  bool operator==(const Message&) const = default;
};

/// Serialized size in bytes (header + payload).
std::size_t wire_size(const Message& message);

/// Length-prefixed little-endian encoding.
std::vector<std::byte> serialize(const Message& message);

/// Inverse of serialize. Throws ContractViolation on malformed input.
Message deserialize(std::span<const std::byte> bytes);

}  // namespace ufc::net
