// Fault-injection plan for the distributed ADM-G protocol.
//
// A FaultPlan is a pure, declarative description of what goes wrong on the
// WAN and when: scripted link partitions and node crash windows (in protocol
// rounds), plus seeded-random per-message faults (bounded loss, payload
// corruption, delivery delay). The MessageBus consults the plan on every
// send and the runtime consults it to decide which agents execute a round,
// so a single plan drives both layers consistently.
//
// A default-constructed plan is the zero-fault plan: the bus and runtime
// behave bit-identically to the fault-free protocol (tests pin this).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/message.hpp"

namespace ufc::net {

/// Sentinel for windows that never close (crash-stop, permanent partition).
inline constexpr int kForeverRound = std::numeric_limits<int>::max();

/// Half-open round interval [first, last).
struct RoundWindow {
  int first = 0;
  int last = kForeverRound;
  bool contains(int round) const { return round >= first && round < last; }
};

/// Symmetric link partition: no message passes between `a` and `b` (either
/// direction) while the window is open.
struct PartitionSpec {
  NodeId a = 0;
  NodeId b = 0;
  RoundWindow window;
};

/// Node crash: the node executes nothing and acknowledges nothing while the
/// window is open. last == kForeverRound models crash-stop; a finite window
/// models crash-restart (the node resumes from its local state).
struct CrashSpec {
  NodeId node = 0;
  RoundWindow window;
};

/// Seeded-random per-message faults, applied by the bus.
struct RandomFaults {
  double loss_rate = 0.0;        ///< Per-attempt drop probability, in [0, 1).
  double corruption_rate = 0.0;  ///< Per-delivery wire-byte mutation probability.
  double delay_rate = 0.0;       ///< Per-delivery probability of a round delay.
  int max_delay_rounds = 1;      ///< Delay drawn uniformly from [1, max].
};

class FaultPlan {
 public:
  /// Builder interface; each returns *this so plans read declaratively.
  FaultPlan& partition(NodeId a, NodeId b, RoundWindow window);
  FaultPlan& crash(NodeId node, RoundWindow window);
  FaultPlan& random_faults(const RandomFaults& faults);

  /// True for the zero-fault plan (no scripted events, all rates zero).
  bool empty() const;
  /// True when every sent message is eventually delivered un-tampered within
  /// its own round given unbounded retries: no partitions, no crashes, no
  /// corruption, no delay. Loss alone is delivery-preserving (the legacy
  /// reliable-retransmit model).
  bool delivery_preserving() const;

  bool link_blocked(NodeId from, NodeId to, int round) const;
  bool node_down(NodeId node, int round) const;

  const RandomFaults& random() const { return random_; }
  const std::vector<PartitionSpec>& partitions() const { return partitions_; }
  const std::vector<CrashSpec>& crashes() const { return crashes_; }

 private:
  std::vector<PartitionSpec> partitions_;
  std::vector<CrashSpec> crashes_;
  RandomFaults random_;
};

}  // namespace ufc::net
