#include "net/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "net/socket_bus.hpp"
#include "util/contract.hpp"
#include "util/logging.hpp"
#include "util/wire.hpp"

namespace ufc::net {

namespace {

// Checkpoint framing, mirroring AdmgSolver's (docs/ROBUSTNESS.md).
constexpr std::uint32_t kRuntimeCheckpointMagic = 0x55464352;  // "UFCR"
constexpr std::uint32_t kRuntimeCheckpointVersion = 1;

BusConfig make_bus_config(const DistributedOptions& options) {
  BusConfig config;
  config.seed = options.loss_seed;
  config.max_attempts = options.max_attempts;
  config.faults = options.faults;
  // ufc-lint: allow(float-equal) — exact-zero guard: "knob untouched".
  if (options.loss_rate != 0.0) {
    // The legacy loss knob and a plan-level loss rate are alternatives, not
    // additive; routing the knob through the plan keeps one validation path.
    // ufc-lint: allow(float-equal) — exact-zero guard: "plan untouched".
    UFC_EXPECTS(config.faults.random().loss_rate == 0.0);
    RandomFaults random = config.faults.random();
    random.loss_rate = options.loss_rate;
    config.faults.random_faults(random);
  }
  return config;
}

void remove_datacenter_from_problem(UfcProblem& problem, std::size_t pos) {
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  problem.datacenters.erase(problem.datacenters.begin() +
                            static_cast<std::ptrdiff_t>(pos));
  Mat reduced(m, n - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = problem.latency_s.row_span(i);
    auto out = reduced.row_span(i);
    std::size_t c = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != pos) out[c++] = row[j];
  }
  problem.latency_s = std::move(reduced);
}

bool all_finite(std::span<const double> values) {
  for (double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

DistributedAdmgRuntime::DistributedAdmgRuntime(const UfcProblem& problem,
                                               DistributedOptions options)
    : original_(problem),
      options_(std::move(options)),
      bus_(make_bus_config(options_)) {
  original_.validate();
  const auto& admg = options_.admg;
  UFC_EXPECTS(admg.rho > 0.0);
  UFC_EXPECTS(options_.dead_after_rounds >= 1);
  // Strict lockstep assumes every message arrives within its round; only a
  // delivery-preserving plan on the unbounded-retransmit transport promises
  // that. Every other fault environment needs the degraded protocol.
  UFC_EXPECTS(options_.degraded || (options_.faults.delivery_preserving() &&
                                    options_.max_attempts == 0));
  UFC_EXPECTS(options_.max_stale_rounds >= 0);
  transport_ = options_.remote.socket != nullptr
                   ? static_cast<Transport*>(options_.remote.socket)
                   : &bus_;
  if (options_.remote.socket != nullptr) {
    UFC_EXPECTS(options_.remote.round_deadline_ms >= 0);
    // Remote hosting rides the real network: scripted/random bus faults
    // would be simulated on top of genuine ones, and remote datacenter
    // crashes arrive as EOFs, not FaultPlan windows.
    UFC_EXPECTS(options_.faults.delivery_preserving());
    for (std::size_t original : options_.remote.remote_dcs)
      UFC_EXPECTS(original < problem.num_datacenters());
  }
  // Eventual delivery (loss with retries, bounded delay) keeps input ages
  // bounded; the auto gate admits exactly that envelope.
  const auto& rf = options_.faults.random();
  stale_bound_ = options_.max_stale_rounds > 0
                     ? options_.max_stale_rounds
                     : 1 + (rf.delay_rate > 0.0 ? rf.max_delay_rounds : 0);

  // Same workload normalization as AdmgSolver so iterates are bit-identical.
  sigma_ = admg.workload_scale > 0.0 ? admg.workload_scale
                                     : admm::natural_workload_scale(original_);
  problem_ = admm::scale_workload_units(original_, sigma_);

  protocol_.rho = admg.rho;
  protocol_.epsilon = admg.epsilon;
  protocol_.gaussian_back_substitution = admg.gaussian_back_substitution;
  protocol_.pin_mu = admg.pinning == admm::BlockPinning::PinMu;
  protocol_.pin_nu = admg.pinning == admm::BlockPinning::PinNu;
  protocol_.allow_stale = options_.degraded;
  protocol_.inner = admg.inner;

  active_dcs_.resize(problem_.num_datacenters());
  for (std::size_t j = 0; j < active_dcs_.size(); ++j) active_dcs_[j] = j;

  build_agents();
  update_residual_scales();
}

void DistributedAdmgRuntime::build_agents() {
  const std::size_t m = problem_.num_front_ends();
  const std::size_t n = problem_.num_datacenters();
  UFC_EXPECTS(active_dcs_.size() == n);

  std::vector<NodeId> dc_ids;
  dc_ids.reserve(n);
  for (std::size_t original : active_dcs_)
    dc_ids.push_back(datacenter_id(original));

  front_ends_.clear();
  front_ends_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    FrontEndLocalConfig cfg;
    cfg.index = i;
    cfg.arrival = problem_.arrivals[i];
    cfg.latency_row_s = problem_.latency_s.row(i);
    cfg.latency_weight = problem_.latency_weight;
    cfg.utility = problem_.utility;
    cfg.datacenter_ids = dc_ids;
    cfg.protocol = protocol_;
    front_ends_.emplace_back(std::move(cfg));
  }

  datacenters_.clear();
  datacenters_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& dc = problem_.datacenters[j];
    DatacenterLocalConfig cfg;
    cfg.index = active_dcs_[j];  // keeps the original bus id after removals
    cfg.num_front_ends = m;
    cfg.alpha_mw = problem_.alpha_mw(j);
    cfg.beta_mw = problem_.beta_mw(j);
    cfg.capacity_servers = dc.servers;
    cfg.fuel_cell_capacity_mw = dc.fuel_cell_capacity_mw;
    cfg.fuel_cell_price = problem_.fuel_cell_price;
    cfg.grid_price = dc.grid_price;
    cfg.carbon_tons_per_mwh = dc.carbon_rate / 1000.0;
    cfg.emission_cost = dc.emission_cost;
    cfg.protocol = protocol_;
    datacenters_.emplace_back(std::move(cfg));
  }
}

void DistributedAdmgRuntime::update_residual_scales() {
  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < problem_.num_datacenters(); ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;
}

bool DistributedAdmgRuntime::is_remote(std::size_t pos) const {
  if (options_.remote.socket == nullptr) return false;
  const auto& remote = options_.remote.remote_dcs;
  return std::find(remote.begin(), remote.end(), active_dcs_[pos]) !=
         remote.end();
}

void DistributedAdmgRuntime::absorb_coordinator_message(const Message& message,
                                                        int iteration) {
  // Receipt of any report this round proves the sender was recently alive.
  if (message.type == MessageType::StateSync) {
    for (std::size_t j = 0; j < datacenters_.size(); ++j) {
      if (datacenters_[j].id() != message.source) continue;
      UFC_EXPECTS(is_remote(j));
      datacenters_[j].sync_remote(message);
      last_seen_[message.source] = iteration;
      auto& synced = remote_synced_[message.source];
      synced = std::max(synced, static_cast<int>(message.iteration));
      return;
    }
    return;  // A straggler from a datacenter already removed: ignore.
  }
  UFC_EXPECTS(message.type == MessageType::ConvergenceReport);
  last_seen_[message.source] = iteration;
}

void DistributedAdmgRuntime::pump_remote(int iteration) {
  SocketBus* socket = options_.remote.socket;
  const IoDeadline deadline(options_.remote.round_deadline_ms);
  const auto outstanding = [&]() {
    std::size_t count = 0;
    for (std::size_t j = 0; j < datacenters_.size(); ++j) {
      if (!is_remote(j)) continue;
      const NodeId node = datacenters_[j].id();
      if (eof_nodes_.count(node) > 0) continue;  // Dead stream: don't wait.
      const auto it = remote_synced_.find(node);
      if (it == remote_synced_.end() || it->second < iteration) ++count;
    }
    return count;
  };
  while (outstanding() > 0) {
    socket->pump(deadline.remaining_ms());
    for (auto& msg : socket->drain(kCoordinatorId))
      absorb_coordinator_message(msg, iteration);
    for (NodeId node : socket->take_newly_disconnected())
      eof_nodes_.insert(node);
    if (deadline.expired()) break;
  }
}

void DistributedAdmgRuntime::round(int iteration) {
  transport_->begin_round(iteration);
  const auto& faults = bus_.config().faults;
  for (auto& fe : front_ends_)
    if (!faults.node_down(fe.id(), iteration))
      fe.send_proposals(*transport_, iteration);
  for (std::size_t j = 0; j < datacenters_.size(); ++j) {
    if (is_remote(j)) continue;  // Executed by its worker process.
    auto& dc = datacenters_[j];
    if (!faults.node_down(dc.id(), iteration))
      dc.process_proposals(*transport_, iteration);
  }
  // Remote datacenters run concurrently in their worker processes; wait
  // (deadline-bounded) for their assignments + StateSync before the
  // front-ends consume assignments.
  if (options_.remote.socket != nullptr) pump_remote(iteration);
  for (auto& fe : front_ends_)
    if (!faults.node_down(fe.id(), iteration))
      fe.process_assignments(*transport_, iteration);
  // The coordinator consumes the residual reports (values are also exposed
  // on the agents for tests) and keeps its health table.
  for (auto& msg : transport_->drain(kCoordinatorId))
    absorb_coordinator_message(msg, iteration);
}

bool DistributedAdmgRuntime::remove_dead(int round) {
  bool removed = false;
  for (;;) {
    const std::size_t n = datacenters_.size();
    std::size_t dead = n;
    for (std::size_t j = 0; j < n; ++j) {
      const NodeId node = datacenters_[j].id();
      const auto it = last_seen_.find(node);
      const int last = it == last_seen_.end() ? -1 : it->second;
      // A node whose stream reported EOF/reset is known-dead at the OS
      // level; one silent round confirms it. Without that signal only
      // sustained silence is proof.
      const int threshold =
          eof_nodes_.count(node) > 0 ? 1 : options_.dead_after_rounds;
      if (round - last >= threshold) {
        dead = j;
        break;
      }
    }
    if (dead == n) break;
    if (!remove_datacenter(dead)) break;
    removed = true;
  }
  return removed;
}

bool DistributedAdmgRuntime::remove_datacenter(std::size_t pos) {
  const std::size_t m = front_ends_.size();
  const std::size_t n = datacenters_.size();
  UFC_EXPECTS(pos < n);
  const std::size_t original_index = active_dcs_[pos];
  if (n <= 1) {
    log::warn("cannot remove datacenter ", original_index,
              ": it is the last one standing");
    return false;
  }
  double remaining_capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    if (j != pos) remaining_capacity += original_.datacenters[j].servers;
  if (original_.total_arrivals() > remaining_capacity) {
    log::warn("cannot remove datacenter ", original_index,
              ": reduced problem infeasible (capacity ", remaining_capacity,
              " servers < load ", original_.total_arrivals(), ")");
    return false;
  }
  log::warn("removing datacenter ", original_index, "; warm-restarting on ",
            n - 1, " datacenters");

  // Capture the surviving iterate (normalized units), compacted past `pos`.
  struct FeState {
    std::vector<double> lambda, a, varphi;
  };
  std::vector<FeState> fe_state(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto& st = fe_state[i];
    const Vec& lambda = front_ends_[i].lambda();
    const Vec& a = front_ends_[i].a_mirror();
    const Vec& varphi = front_ends_[i].varphi();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == pos) continue;
      st.lambda.push_back(lambda[j]);
      st.a.push_back(a[j]);
      st.varphi.push_back(varphi[j]);
    }
  }
  struct DcState {
    Vec a_col, varphi_col;
    double mu = 0.0, nu = 0.0, phi = 0.0;
  };
  std::vector<DcState> dc_state;
  dc_state.reserve(n - 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == pos) continue;
    DcState st;
    st.a_col = datacenters_[j].a_col();
    st.varphi_col = Vec(m, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      st.varphi_col[i] = front_ends_[i].varphi()[j];
    st.mu = datacenters_[j].mu();
    st.nu = datacenters_[j].nu();
    st.phi = datacenters_[j].phi();
    dc_state.push_back(std::move(st));
  }

  remove_datacenter_from_problem(original_, pos);
  remove_datacenter_from_problem(problem_, pos);
  active_dcs_.erase(active_dcs_.begin() + static_cast<std::ptrdiff_t>(pos));
  removed_dcs_.push_back(original_index);
  last_seen_.erase(datacenter_id(original_index));
  eof_nodes_.erase(datacenter_id(original_index));
  remote_synced_.erase(datacenter_id(original_index));

  build_agents();
  for (std::size_t i = 0; i < m; ++i)
    front_ends_[i].load_iterate(fe_state[i].lambda, fe_state[i].a,
                                fe_state[i].varphi);
  for (std::size_t j = 0; j + 1 < n; ++j)
    datacenters_[j].load_iterate(dc_state[j].a_col.span(),
                                 dc_state[j].varphi_col.span(), dc_state[j].mu,
                                 dc_state[j].nu, dc_state[j].phi);

  // In-flight traffic addressed the old topology; flush it. The degraded
  // protocol treats the flushed messages as lost.
  transport_->clear_queues();
  update_residual_scales();
  return true;
}

Mat DistributedAdmgRuntime::lambda() const {
  Mat out(front_ends_.size(), datacenters_.size());
  for (std::size_t i = 0; i < front_ends_.size(); ++i)
    out.set_row(i, front_ends_[i].lambda());
  return out;
}

Vec DistributedAdmgRuntime::mu() const {
  Vec out(datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out[j] = datacenters_[j].mu();
  return out;
}

Vec DistributedAdmgRuntime::nu() const {
  Vec out(datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out[j] = datacenters_[j].nu();
  return out;
}

Mat DistributedAdmgRuntime::a() const {
  Mat out(front_ends_.size(), datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out.set_col(j, datacenters_[j].a_col());
  return out;
}

double DistributedAdmgRuntime::balance_residual() const {
  double r = 0.0;
  for (const auto& dc : datacenters_)
    r = std::max(r, dc.last_balance_residual());
  return r;
}

double DistributedAdmgRuntime::copy_residual() const {
  double r = 0.0;
  for (const auto& fe : front_ends_) r = std::max(r, fe.last_copy_residual());
  return r;
}

bool DistributedAdmgRuntime::iterate_finite() const {
  for (const auto& fe : front_ends_) {
    if (!all_finite(fe.lambda().span()) || !all_finite(fe.a_mirror().span()) ||
        !all_finite(fe.varphi().span()))
      return false;
  }
  for (const auto& dc : datacenters_) {
    if (!all_finite(dc.a_col().span()) || !std::isfinite(dc.mu()) ||
        !std::isfinite(dc.nu()) || !std::isfinite(dc.phi()))
      return false;
  }
  return true;
}

std::uint64_t DistributedAdmgRuntime::stale_inputs() const {
  std::uint64_t total = 0;
  for (const auto& fe : front_ends_) total += fe.stale_assignments();
  for (const auto& dc : datacenters_) total += dc.stale_proposals();
  return total;
}

// The message-passing BlockExecutor: one engine step = one protocol round,
// plus the degraded-mode membership hook. Residuals, freshness and scales
// come from the agents' own reports, so the engine gates convergence on
// exactly the quantities the coordinator can observe.
class BusExecutor final : public admm::BlockExecutor {
 public:
  explicit BusExecutor(DistributedAdmgRuntime& runtime) : runtime_(runtime) {}

  void step(int iteration) override {
    const Mat a_before = runtime_.a();
    const Vec mu_before = runtime_.mu();
    const Vec nu_before = runtime_.nu();
    runtime_.round(iteration);
    runtime_.next_round_ = iteration + 1;
    topology_changed_ =
        runtime_.options_.degraded && runtime_.remove_dead(iteration);
    if (topology_changed_) {
      // The before-snapshots address the removed topology; the engine skips
      // this round's convergence test anyway.
      change_ = 0.0;
      return;
    }
    change_ = std::max({max_abs_diff(runtime_.a(), a_before),
                        max_abs_diff(runtime_.mu(), mu_before),
                        max_abs_diff(runtime_.nu(), nu_before)});
  }

  bool topology_changed() override { return topology_changed_; }

  /// A round may declare convergence only when every input it consumed is
  /// recent — oldest cached round within stale_bound_ of the current round.
  /// Under eventual delivery (loss, bounded delay) ages stay within the
  /// bound, so persistent random faults cannot starve convergence; a silent
  /// (crashed or partitioned) peer grows the age without bound and keeps
  /// blocking it until the health tracker removes the node or the watchdog
  /// trips.
  bool inputs_fresh(int iteration) const override {
    std::int32_t oldest = static_cast<std::int32_t>(iteration);
    for (const auto& fe : runtime_.front_ends_)
      oldest = std::min(oldest, fe.oldest_input_round());
    for (const auto& dc : runtime_.datacenters_)
      oldest = std::min(oldest, dc.oldest_input_round());
    return iteration - oldest <= runtime_.stale_bound_;
  }

  double balance_residual() const override {
    return runtime_.balance_residual();
  }
  double copy_residual() const override { return runtime_.copy_residual(); }
  double last_change() const override { return change_; }
  double balance_scale() const override { return runtime_.balance_scale_; }
  double copy_scale() const override { return runtime_.copy_scale_; }
  double objective() const override {
    return ufc_objective(runtime_.problem_, runtime_.lambda(), runtime_.mu());
  }
  bool iterate_finite() const override { return runtime_.iterate_finite(); }
  double workload_scale() const override { return runtime_.sigma_; }
  const UfcProblem& original_problem() const override {
    return runtime_.original_;
  }
  Mat gather_lambda() const override { return runtime_.lambda(); }
  Vec gather_mu() const override { return runtime_.mu(); }

 private:
  DistributedAdmgRuntime& runtime_;
  double change_ = 0.0;
  bool topology_changed_ = false;
};

DistributedReport DistributedAdmgRuntime::run() {
  BusExecutor executor(*this);
  admm::AdmgEngine engine(options_.admg);
  DistributedReport report;
  // The engine owns the iteration skeleton (convergence gate, watchdog,
  // trace, centralized fallback); this driver contributes only message
  // exchange and degraded-mode membership via the executor. Resumability:
  // starting the engine at next_round_ continues a checkpointed run.
  static_cast<admm::SolveCore&>(report) = engine.solve(executor, next_round_);
  report.stale_inputs = stale_inputs();
  report.active_datacenters = active_dcs_;
  report.removed_datacenters = removed_dcs_;
  report.network = transport_->total();
  return report;
}

std::vector<std::byte> DistributedAdmgRuntime::checkpoint() const {
  std::vector<std::byte> out;
  wire::append(out, kRuntimeCheckpointMagic);
  wire::append(out, kRuntimeCheckpointVersion);
  wire::append(out, static_cast<std::uint64_t>(front_ends_.size()));
  wire::append(out, static_cast<std::uint64_t>(datacenters_.size()));
  wire::append(out, sigma_);
  wire::append(out, static_cast<std::int32_t>(next_round_));
  for (std::size_t idx : active_dcs_)
    wire::append(out, static_cast<std::uint64_t>(idx));
  wire::append(out, static_cast<std::uint64_t>(removed_dcs_.size()));
  for (std::size_t idx : removed_dcs_)
    wire::append(out, static_cast<std::uint64_t>(idx));
  wire::append(out, static_cast<std::uint64_t>(last_seen_.size()));
  for (const auto& [node, seen] : last_seen_) {
    wire::append(out, node);
    wire::append(out, static_cast<std::int32_t>(seen));
  }
  for (const auto& fe : front_ends_) fe.append_state(out);
  for (const auto& dc : datacenters_) dc.append_state(out);
  return out;
}

void DistributedAdmgRuntime::restore(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) ==
              kRuntimeCheckpointMagic);
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) ==
              kRuntimeCheckpointVersion);
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == front_ends_.size());
  const auto n =
      static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  UFC_EXPECTS(n >= 1 && n <= datacenters_.size());
  // Iterates are stored in normalized units; a different sigma would
  // silently reinterpret them.
  UFC_EXPECTS(wire::read<double>(bytes, offset) == sigma_);
  const int next_round = wire::read<std::int32_t>(bytes, offset);
  UFC_EXPECTS(next_round >= 0);
  std::vector<std::size_t> active(n);
  for (auto& idx : active)
    idx = static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  const auto removed_count =
      static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  std::vector<std::size_t> removed(removed_count);
  for (auto& idx : removed)
    idx = static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  const auto seen_count =
      static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  std::map<NodeId, int> seen;
  for (std::size_t s = 0; s < seen_count; ++s) {
    const auto node = wire::read<NodeId>(bytes, offset);
    seen[node] = wire::read<std::int32_t>(bytes, offset);
  }

  // Replay the membership reduction so agent shapes match the image.
  for (std::size_t pos = 0; pos < active_dcs_.size();) {
    if (std::find(active.begin(), active.end(), active_dcs_[pos]) ==
        active.end()) {
      UFC_EXPECTS(remove_datacenter(pos));
    } else {
      ++pos;
    }
  }
  UFC_EXPECTS(active_dcs_ == active);

  removed_dcs_ = std::move(removed);
  last_seen_ = std::move(seen);
  next_round_ = next_round;
  for (auto& fe : front_ends_) fe.restore_state(bytes, offset);
  for (auto& dc : datacenters_) dc.restore_state(bytes, offset);
  UFC_EXPECTS(offset == bytes.size());
  // Whatever was in flight when the image was taken is gone; anything
  // queued locally belongs to a different timeline.
  transport_->clear_queues();
}

}  // namespace ufc::net
