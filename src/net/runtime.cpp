#include "net/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "admm/centralized.hpp"
#include "util/contract.hpp"
#include "util/logging.hpp"
#include "util/wire.hpp"

namespace ufc::net {

namespace {

// Checkpoint framing, mirroring AdmgSolver's (docs/ROBUSTNESS.md).
constexpr std::uint32_t kRuntimeCheckpointMagic = 0x55464352;  // "UFCR"
constexpr std::uint32_t kRuntimeCheckpointVersion = 1;

BusConfig make_bus_config(const DistributedOptions& options) {
  BusConfig config;
  config.seed = options.loss_seed;
  config.max_attempts = options.max_attempts;
  config.faults = options.faults;
  // ufc-lint: allow(float-equal) — exact-zero guard: "knob untouched".
  if (options.loss_rate != 0.0) {
    // The legacy loss knob and a plan-level loss rate are alternatives, not
    // additive; routing the knob through the plan keeps one validation path.
    // ufc-lint: allow(float-equal) — exact-zero guard: "plan untouched".
    UFC_EXPECTS(config.faults.random().loss_rate == 0.0);
    RandomFaults random = config.faults.random();
    random.loss_rate = options.loss_rate;
    config.faults.random_faults(random);
  }
  return config;
}

void remove_datacenter_from_problem(UfcProblem& problem, std::size_t pos) {
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  problem.datacenters.erase(problem.datacenters.begin() +
                            static_cast<std::ptrdiff_t>(pos));
  Mat reduced(m, n - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const auto row = problem.latency_s.row_span(i);
    auto out = reduced.row_span(i);
    std::size_t c = 0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != pos) out[c++] = row[j];
  }
  problem.latency_s = std::move(reduced);
}

bool all_finite(std::span<const double> values) {
  for (double v : values)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

DistributedAdmgRuntime::DistributedAdmgRuntime(const UfcProblem& problem,
                                               DistributedOptions options)
    : original_(problem),
      options_(std::move(options)),
      bus_(make_bus_config(options_)) {
  original_.validate();
  const auto& admg = options_.admg;
  UFC_EXPECTS(admg.rho > 0.0);
  UFC_EXPECTS(options_.dead_after_rounds >= 1);
  // Strict lockstep assumes every message arrives within its round; only a
  // delivery-preserving plan on the unbounded-retransmit transport promises
  // that. Every other fault environment needs the degraded protocol.
  UFC_EXPECTS(options_.degraded || (options_.faults.delivery_preserving() &&
                                    options_.max_attempts == 0));
  UFC_EXPECTS(options_.max_stale_rounds >= 0);
  // Eventual delivery (loss with retries, bounded delay) keeps input ages
  // bounded; the auto gate admits exactly that envelope.
  const auto& rf = options_.faults.random();
  stale_bound_ = options_.max_stale_rounds > 0
                     ? options_.max_stale_rounds
                     : 1 + (rf.delay_rate > 0.0 ? rf.max_delay_rounds : 0);

  // Same workload normalization as AdmgSolver so iterates are bit-identical.
  sigma_ = admg.workload_scale > 0.0 ? admg.workload_scale
                                     : admm::natural_workload_scale(original_);
  problem_ = admm::scale_workload_units(original_, sigma_);

  protocol_.rho = admg.rho;
  protocol_.epsilon = admg.epsilon;
  protocol_.gaussian_back_substitution = admg.gaussian_back_substitution;
  protocol_.pin_mu = admg.pinning == admm::BlockPinning::PinMu;
  protocol_.pin_nu = admg.pinning == admm::BlockPinning::PinNu;
  protocol_.allow_stale = options_.degraded;
  protocol_.inner = admg.inner;

  active_dcs_.resize(problem_.num_datacenters());
  for (std::size_t j = 0; j < active_dcs_.size(); ++j) active_dcs_[j] = j;

  build_agents();
  update_residual_scales();
}

void DistributedAdmgRuntime::build_agents() {
  const std::size_t m = problem_.num_front_ends();
  const std::size_t n = problem_.num_datacenters();
  UFC_EXPECTS(active_dcs_.size() == n);

  std::vector<NodeId> dc_ids;
  dc_ids.reserve(n);
  for (std::size_t original : active_dcs_)
    dc_ids.push_back(datacenter_id(original));

  front_ends_.clear();
  front_ends_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    FrontEndLocalConfig cfg;
    cfg.index = i;
    cfg.arrival = problem_.arrivals[i];
    cfg.latency_row_s = problem_.latency_s.row(i);
    cfg.latency_weight = problem_.latency_weight;
    cfg.utility = problem_.utility;
    cfg.datacenter_ids = dc_ids;
    cfg.protocol = protocol_;
    front_ends_.emplace_back(std::move(cfg));
  }

  datacenters_.clear();
  datacenters_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& dc = problem_.datacenters[j];
    DatacenterLocalConfig cfg;
    cfg.index = active_dcs_[j];  // keeps the original bus id after removals
    cfg.num_front_ends = m;
    cfg.alpha_mw = problem_.alpha_mw(j);
    cfg.beta_mw = problem_.beta_mw(j);
    cfg.capacity_servers = dc.servers;
    cfg.fuel_cell_capacity_mw = dc.fuel_cell_capacity_mw;
    cfg.fuel_cell_price = problem_.fuel_cell_price;
    cfg.grid_price = dc.grid_price;
    cfg.carbon_tons_per_mwh = dc.carbon_rate / 1000.0;
    cfg.emission_cost = dc.emission_cost;
    cfg.protocol = protocol_;
    datacenters_.emplace_back(std::move(cfg));
  }
}

void DistributedAdmgRuntime::update_residual_scales() {
  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < problem_.num_datacenters(); ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;
}

void DistributedAdmgRuntime::round(int iteration) {
  bus_.begin_round(iteration);
  const auto& faults = bus_.config().faults;
  for (auto& fe : front_ends_)
    if (!faults.node_down(fe.id(), iteration))
      fe.send_proposals(bus_, iteration);
  for (auto& dc : datacenters_)
    if (!faults.node_down(dc.id(), iteration))
      dc.process_proposals(bus_, iteration);
  for (auto& fe : front_ends_)
    if (!faults.node_down(fe.id(), iteration))
      fe.process_assignments(bus_, iteration);
  // The coordinator consumes the residual reports (values are also exposed
  // on the agents for tests) and keeps its health table: receipt of any
  // report this round proves the sender was recently alive.
  for (auto& msg : bus_.drain(kCoordinatorId)) {
    UFC_EXPECTS(msg.type == MessageType::ConvergenceReport);
    last_seen_[msg.source] = iteration;
  }
}

bool DistributedAdmgRuntime::remove_dead(int round) {
  bool removed = false;
  for (;;) {
    const std::size_t n = datacenters_.size();
    std::size_t dead = n;
    for (std::size_t j = 0; j < n; ++j) {
      const auto it = last_seen_.find(datacenters_[j].id());
      const int last = it == last_seen_.end() ? -1 : it->second;
      if (round - last >= options_.dead_after_rounds) {
        dead = j;
        break;
      }
    }
    if (dead == n) break;
    if (!remove_datacenter(dead)) break;
    removed = true;
  }
  return removed;
}

bool DistributedAdmgRuntime::remove_datacenter(std::size_t pos) {
  const std::size_t m = front_ends_.size();
  const std::size_t n = datacenters_.size();
  UFC_EXPECTS(pos < n);
  const std::size_t original_index = active_dcs_[pos];
  if (n <= 1) {
    log::warn("cannot remove datacenter ", original_index,
              ": it is the last one standing");
    return false;
  }
  double remaining_capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    if (j != pos) remaining_capacity += original_.datacenters[j].servers;
  if (original_.total_arrivals() > remaining_capacity) {
    log::warn("cannot remove datacenter ", original_index,
              ": reduced problem infeasible (capacity ", remaining_capacity,
              " servers < load ", original_.total_arrivals(), ")");
    return false;
  }
  log::warn("removing datacenter ", original_index, "; warm-restarting on ",
            n - 1, " datacenters");

  // Capture the surviving iterate (normalized units), compacted past `pos`.
  struct FeState {
    std::vector<double> lambda, a, varphi;
  };
  std::vector<FeState> fe_state(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto& st = fe_state[i];
    const Vec& lambda = front_ends_[i].lambda();
    const Vec& a = front_ends_[i].a_mirror();
    const Vec& varphi = front_ends_[i].varphi();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == pos) continue;
      st.lambda.push_back(lambda[j]);
      st.a.push_back(a[j]);
      st.varphi.push_back(varphi[j]);
    }
  }
  struct DcState {
    Vec a_col, varphi_col;
    double mu = 0.0, nu = 0.0, phi = 0.0;
  };
  std::vector<DcState> dc_state;
  dc_state.reserve(n - 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == pos) continue;
    DcState st;
    st.a_col = datacenters_[j].a_col();
    st.varphi_col = Vec(m, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      st.varphi_col[i] = front_ends_[i].varphi()[j];
    st.mu = datacenters_[j].mu();
    st.nu = datacenters_[j].nu();
    st.phi = datacenters_[j].phi();
    dc_state.push_back(std::move(st));
  }

  remove_datacenter_from_problem(original_, pos);
  remove_datacenter_from_problem(problem_, pos);
  active_dcs_.erase(active_dcs_.begin() + static_cast<std::ptrdiff_t>(pos));
  removed_dcs_.push_back(original_index);
  last_seen_.erase(datacenter_id(original_index));

  build_agents();
  for (std::size_t i = 0; i < m; ++i)
    front_ends_[i].load_iterate(fe_state[i].lambda, fe_state[i].a,
                                fe_state[i].varphi);
  for (std::size_t j = 0; j + 1 < n; ++j)
    datacenters_[j].load_iterate(dc_state[j].a_col.span(),
                                 dc_state[j].varphi_col.span(), dc_state[j].mu,
                                 dc_state[j].nu, dc_state[j].phi);

  // In-flight traffic addressed the old topology; flush it. The degraded
  // protocol treats the flushed messages as lost.
  bus_.clear_queues();
  update_residual_scales();
  return true;
}

Mat DistributedAdmgRuntime::lambda() const {
  Mat out(front_ends_.size(), datacenters_.size());
  for (std::size_t i = 0; i < front_ends_.size(); ++i)
    out.set_row(i, front_ends_[i].lambda());
  return out;
}

Vec DistributedAdmgRuntime::mu() const {
  Vec out(datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out[j] = datacenters_[j].mu();
  return out;
}

Vec DistributedAdmgRuntime::nu() const {
  Vec out(datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out[j] = datacenters_[j].nu();
  return out;
}

Mat DistributedAdmgRuntime::a() const {
  Mat out(front_ends_.size(), datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out.set_col(j, datacenters_[j].a_col());
  return out;
}

double DistributedAdmgRuntime::balance_residual() const {
  double r = 0.0;
  for (const auto& dc : datacenters_)
    r = std::max(r, dc.last_balance_residual());
  return r;
}

double DistributedAdmgRuntime::copy_residual() const {
  double r = 0.0;
  for (const auto& fe : front_ends_) r = std::max(r, fe.last_copy_residual());
  return r;
}

bool DistributedAdmgRuntime::iterate_finite() const {
  for (const auto& fe : front_ends_) {
    if (!all_finite(fe.lambda().span()) || !all_finite(fe.a_mirror().span()) ||
        !all_finite(fe.varphi().span()))
      return false;
  }
  for (const auto& dc : datacenters_) {
    if (!all_finite(dc.a_col().span()) || !std::isfinite(dc.mu()) ||
        !std::isfinite(dc.nu()) || !std::isfinite(dc.phi()))
      return false;
  }
  return true;
}

std::uint64_t DistributedAdmgRuntime::stale_inputs() const {
  std::uint64_t total = 0;
  for (const auto& fe : front_ends_) total += fe.stale_assignments();
  for (const auto& dc : datacenters_) total += dc.stale_proposals();
  return total;
}

DistributedReport DistributedAdmgRuntime::run() {
  DistributedReport report;
  const auto& admg = options_.admg;
  admm::SolverWatchdog watchdog(admg.watchdog);
  // Mirror AdmgSolver::solve_warm: a poisoned restore must trip the
  // watchdog before round() feeds NaN into the agents' block solvers.
  if (admg.watchdog.check_finite && !iterate_finite()) {
    watchdog.observe(0.0, 0.0, false);
    report.watchdog_verdict = watchdog.verdict();
  }
  const int first = next_round_;
  for (int k = first; !watchdog.tripped() && k < first + admg.max_iterations;
       ++k) {
    const Mat a_before = a();
    const Vec mu_before = mu();
    const Vec nu_before = nu();
    round(k);
    next_round_ = k + 1;
    ++report.iterations;
    if (options_.degraded && remove_dead(k)) {
      // Topology changed under the iterate: the dimensions and residual
      // scales this round's checks would use are gone. Re-baseline the
      // watchdog on the reduced problem and move on.
      watchdog.reset();
      continue;
    }
    // Same three-part criterion as AdmgSolver: primal residuals plus the
    // successive-change (dual residual proxy). A round may declare
    // convergence only when every input it consumed is recent — oldest
    // cached round within stale_bound_ of the current round. Under eventual
    // delivery (loss, bounded delay) ages stay within the bound, so
    // persistent random faults cannot starve convergence; a silent (crashed
    // or partitioned) peer grows the age without bound and keeps blocking
    // it until the health tracker removes the node or the watchdog trips.
    const double change =
        std::max({max_abs_diff(a(), a_before), max_abs_diff(mu(), mu_before),
                  max_abs_diff(nu(), nu_before)});
    std::int32_t oldest = static_cast<std::int32_t>(k);
    for (const auto& fe : front_ends_)
      oldest = std::min(oldest, fe.oldest_input_round());
    for (const auto& dc : datacenters_)
      oldest = std::min(oldest, dc.oldest_input_round());
    const bool fresh = k - oldest <= stale_bound_;
    if (fresh && balance_residual() / balance_scale_ < admg.tolerance &&
        copy_residual() / copy_scale_ < admg.tolerance &&
        change / copy_scale_ < admg.tolerance) {
      report.converged = true;
      break;
    }
    const bool finite = !admg.watchdog.check_finite || iterate_finite();
    if (watchdog.observe(balance_residual() / balance_scale_,
                         copy_residual() / copy_scale_,
                         finite) != admm::WatchdogVerdict::Healthy) {
      report.watchdog_verdict = watchdog.verdict();
      break;
    }
  }
  report.balance_residual = balance_residual();
  report.copy_residual = copy_residual();
  report.stale_inputs = stale_inputs();
  report.active_datacenters = active_dcs_;
  report.removed_datacenters = removed_dcs_;
  report.network = bus_.total();

  if (report.watchdog_verdict != admm::WatchdogVerdict::Healthy) {
    log::warn("distributed ADM-G watchdog tripped (",
              report.watchdog_verdict == admm::WatchdogVerdict::NonFinite
                  ? "non-finite iterate"
                  : "residual stall",
              ") after round ", next_round_ - 1);
    if (admg.fallback_to_centralized) {
      admm::CentralizedOptions fallback;
      fallback.grid_only = admg.pinning == admm::BlockPinning::PinMu;
      fallback.fuel_cell_only = admg.pinning == admm::BlockPinning::PinNu;
      const auto safe = admm::solve_centralized(original_, fallback);
      report.solution = safe.solution;
      report.breakdown = safe.breakdown;
      report.fallback_centralized = true;
      return report;
    }
  }

  Mat lambda_servers = lambda();
  lambda_servers *= sigma_;
  report.solution.lambda = std::move(lambda_servers);
  report.solution.mu = mu();
  report.solution.nu = grid_draw_mw(original_, report.solution.lambda,
                                    report.solution.mu);
  report.breakdown =
      evaluate(original_, report.solution.lambda, report.solution.mu);
  return report;
}

std::vector<std::byte> DistributedAdmgRuntime::checkpoint() const {
  std::vector<std::byte> out;
  wire::append(out, kRuntimeCheckpointMagic);
  wire::append(out, kRuntimeCheckpointVersion);
  wire::append(out, static_cast<std::uint64_t>(front_ends_.size()));
  wire::append(out, static_cast<std::uint64_t>(datacenters_.size()));
  wire::append(out, sigma_);
  wire::append(out, static_cast<std::int32_t>(next_round_));
  for (std::size_t idx : active_dcs_)
    wire::append(out, static_cast<std::uint64_t>(idx));
  wire::append(out, static_cast<std::uint64_t>(removed_dcs_.size()));
  for (std::size_t idx : removed_dcs_)
    wire::append(out, static_cast<std::uint64_t>(idx));
  wire::append(out, static_cast<std::uint64_t>(last_seen_.size()));
  for (const auto& [node, seen] : last_seen_) {
    wire::append(out, node);
    wire::append(out, static_cast<std::int32_t>(seen));
  }
  for (const auto& fe : front_ends_) fe.append_state(out);
  for (const auto& dc : datacenters_) dc.append_state(out);
  return out;
}

void DistributedAdmgRuntime::restore(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) ==
              kRuntimeCheckpointMagic);
  UFC_EXPECTS(wire::read<std::uint32_t>(bytes, offset) ==
              kRuntimeCheckpointVersion);
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == front_ends_.size());
  const auto n =
      static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  UFC_EXPECTS(n >= 1 && n <= datacenters_.size());
  // Iterates are stored in normalized units; a different sigma would
  // silently reinterpret them.
  UFC_EXPECTS(wire::read<double>(bytes, offset) == sigma_);
  const int next_round = wire::read<std::int32_t>(bytes, offset);
  UFC_EXPECTS(next_round >= 0);
  std::vector<std::size_t> active(n);
  for (auto& idx : active)
    idx = static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  const auto removed_count =
      static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  std::vector<std::size_t> removed(removed_count);
  for (auto& idx : removed)
    idx = static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  const auto seen_count =
      static_cast<std::size_t>(wire::read<std::uint64_t>(bytes, offset));
  std::map<NodeId, int> seen;
  for (std::size_t s = 0; s < seen_count; ++s) {
    const auto node = wire::read<NodeId>(bytes, offset);
    seen[node] = wire::read<std::int32_t>(bytes, offset);
  }

  // Replay the membership reduction so agent shapes match the image.
  for (std::size_t pos = 0; pos < active_dcs_.size();) {
    if (std::find(active.begin(), active.end(), active_dcs_[pos]) ==
        active.end()) {
      UFC_EXPECTS(remove_datacenter(pos));
    } else {
      ++pos;
    }
  }
  UFC_EXPECTS(active_dcs_ == active);

  removed_dcs_ = std::move(removed);
  last_seen_ = std::move(seen);
  next_round_ = next_round;
  for (auto& fe : front_ends_) fe.restore_state(bytes, offset);
  for (auto& dc : datacenters_) dc.restore_state(bytes, offset);
  UFC_EXPECTS(offset == bytes.size());
  // Whatever was in flight when the image was taken is gone; anything
  // queued locally belongs to a different timeline.
  bus_.clear_queues();
}

}  // namespace ufc::net
