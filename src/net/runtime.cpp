#include "net/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc::net {

DistributedAdmgRuntime::DistributedAdmgRuntime(const UfcProblem& problem,
                                               DistributedOptions options)
    : original_(problem),
      options_(options),
      bus_(options.loss_rate, options.loss_seed) {
  original_.validate();
  const auto& admg = options_.admg;
  UFC_EXPECTS(admg.rho > 0.0);

  // Same workload normalization as AdmgSolver so iterates are bit-identical.
  sigma_ = admg.workload_scale > 0.0 ? admg.workload_scale
                                     : admm::natural_workload_scale(original_);
  problem_ = admm::scale_workload_units(original_, sigma_);

  ProtocolConfig protocol;
  protocol.rho = admg.rho;
  protocol.epsilon = admg.epsilon;
  protocol.gaussian_back_substitution = admg.gaussian_back_substitution;
  protocol.pin_mu = admg.pinning == admm::BlockPinning::PinMu;
  protocol.pin_nu = admg.pinning == admm::BlockPinning::PinNu;
  protocol.inner = admg.inner;

  const std::size_t m = problem_.num_front_ends();
  const std::size_t n = problem_.num_datacenters();

  front_ends_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    FrontEndLocalConfig cfg;
    cfg.index = i;
    cfg.arrival = problem_.arrivals[i];
    cfg.latency_row_s = problem_.latency_s.row(i);
    cfg.latency_weight = problem_.latency_weight;
    cfg.utility = problem_.utility;
    cfg.protocol = protocol;
    front_ends_.emplace_back(std::move(cfg));
  }

  datacenters_.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto& dc = problem_.datacenters[j];
    DatacenterLocalConfig cfg;
    cfg.index = j;
    cfg.num_front_ends = m;
    cfg.alpha_mw = problem_.alpha_mw(j);
    cfg.beta_mw = problem_.beta_mw(j);
    cfg.capacity_servers = dc.servers;
    cfg.fuel_cell_capacity_mw = dc.fuel_cell_capacity_mw;
    cfg.fuel_cell_price = problem_.fuel_cell_price;
    cfg.grid_price = dc.grid_price;
    cfg.carbon_tons_per_mwh = dc.carbon_rate / 1000.0;
    cfg.emission_cost = dc.emission_cost;
    cfg.protocol = protocol;
    datacenters_.emplace_back(std::move(cfg));
  }

  double max_arrival = 1.0;
  for (double a : problem_.arrivals) max_arrival = std::max(max_arrival, a);
  copy_scale_ = max_arrival;
  double max_demand = 1.0;
  for (std::size_t j = 0; j < n; ++j)
    max_demand = std::max(
        max_demand, problem_.demand_mw(j, problem_.datacenters[j].servers));
  balance_scale_ = max_demand;
}

void DistributedAdmgRuntime::round(int iteration) {
  for (auto& fe : front_ends_) fe.send_proposals(bus_, iteration);
  for (auto& dc : datacenters_) dc.process_proposals(bus_, iteration);
  for (auto& fe : front_ends_) fe.process_assignments(bus_, iteration);
  // The coordinator consumes the residual reports (values are also exposed
  // on the agents for tests).
  for (auto& msg : bus_.drain(kCoordinatorId)) {
    UFC_EXPECTS(msg.type == MessageType::ConvergenceReport);
  }
}

Mat DistributedAdmgRuntime::lambda() const {
  Mat out(front_ends_.size(), datacenters_.size());
  for (std::size_t i = 0; i < front_ends_.size(); ++i)
    out.set_row(i, front_ends_[i].lambda());
  return out;
}

Vec DistributedAdmgRuntime::mu() const {
  Vec out(datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out[j] = datacenters_[j].mu();
  return out;
}

Vec DistributedAdmgRuntime::nu() const {
  Vec out(datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out[j] = datacenters_[j].nu();
  return out;
}

Mat DistributedAdmgRuntime::a() const {
  Mat out(front_ends_.size(), datacenters_.size());
  for (std::size_t j = 0; j < datacenters_.size(); ++j)
    out.set_col(j, datacenters_[j].a_col());
  return out;
}

double DistributedAdmgRuntime::balance_residual() const {
  double r = 0.0;
  for (const auto& dc : datacenters_)
    r = std::max(r, dc.last_balance_residual());
  return r;
}

double DistributedAdmgRuntime::copy_residual() const {
  double r = 0.0;
  for (const auto& fe : front_ends_) r = std::max(r, fe.last_copy_residual());
  return r;
}

DistributedReport DistributedAdmgRuntime::run() {
  DistributedReport report;
  const auto& admg = options_.admg;
  for (int k = 0; k < admg.max_iterations; ++k) {
    const Mat a_before = a();
    const Vec mu_before = mu();
    const Vec nu_before = nu();
    round(k);
    report.iterations = k + 1;
    // Same three-part criterion as AdmgSolver: primal residuals plus the
    // successive-change (dual residual proxy).
    const double change =
        std::max({max_abs_diff(a(), a_before), max_abs_diff(mu(), mu_before),
                  max_abs_diff(nu(), nu_before)});
    if (balance_residual() / balance_scale_ < admg.tolerance &&
        copy_residual() / copy_scale_ < admg.tolerance &&
        change / copy_scale_ < admg.tolerance) {
      report.converged = true;
      break;
    }
  }
  report.balance_residual = balance_residual();
  report.copy_residual = copy_residual();
  Mat lambda_servers = lambda();
  lambda_servers *= sigma_;
  report.solution.lambda = std::move(lambda_servers);
  report.solution.mu = mu();
  report.solution.nu = grid_draw_mw(original_, report.solution.lambda,
                                    report.solution.mu);
  report.breakdown =
      evaluate(original_, report.solution.lambda, report.solution.mu);
  report.network = bus_.total();
  return report;
}

}  // namespace ufc::net
