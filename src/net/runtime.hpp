// DistributedAdmgRuntime: drives the full message-passing protocol —
// M front-end agents, N datacenter agents and a convergence coordinator on
// one MessageBus — and produces the same AdmgReport as the monolithic
// solver. This is the executable demonstration that the paper's algorithm
// is *fully distributed*: strip away the bus and each node touches only its
// Fig. 2 tuple.
#pragma once

#include <vector>

#include "admm/admg.hpp"
#include "net/agents.hpp"
#include "net/bus.hpp"

namespace ufc::net {

struct DistributedOptions {
  admm::AdmgOptions admg;     ///< Same knobs as the monolithic solver.
  double loss_rate = 0.0;     ///< Per-attempt message-loss probability.
  std::uint64_t loss_seed = 1;
};

struct DistributedReport {
  UfcSolution solution;
  UfcBreakdown breakdown;
  int iterations = 0;
  bool converged = false;
  double balance_residual = 0.0;
  double copy_residual = 0.0;
  LinkStats network;   ///< Total traffic including retransmissions.
};

class DistributedAdmgRuntime {
 public:
  DistributedAdmgRuntime(const UfcProblem& problem,
                         DistributedOptions options = {});

  /// Runs rounds until the coordinator sees both scaled residuals below
  /// tolerance, or max_iterations.
  DistributedReport run();

  /// One synchronous protocol round. Exposed so tests can compare against
  /// AdmgSolver::step() iterate-by-iterate.
  void round(int iteration);

  /// Assembles the current global iterate from the agents' local state,
  /// in normalized workload units (matching AdmgSolver's accessors).
  Mat lambda() const;
  Vec mu() const;
  Vec nu() const;
  Mat a() const;

  double balance_residual() const;  ///< Max over datacenter reports.
  double copy_residual() const;     ///< Max over front-end reports.
  const MessageBus& bus() const { return bus_; }

 private:
  UfcProblem original_;  ///< As given.
  UfcProblem problem_;   ///< Workload-normalized (agents see this).
  DistributedOptions options_;
  double sigma_ = 1.0;
  MessageBus bus_;
  std::vector<FrontEndAgent> front_ends_;
  std::vector<DatacenterAgent> datacenters_;
  double balance_scale_ = 1.0;
  double copy_scale_ = 1.0;
};

}  // namespace ufc::net
