// DistributedAdmgRuntime: drives the full message-passing protocol —
// M front-end agents, N datacenter agents and a convergence coordinator on
// one MessageBus — and produces the same AdmgReport as the monolithic
// solver. This is the executable demonstration that the paper's algorithm
// is *fully distributed*: strip away the bus and each node touches only its
// Fig. 2 tuple.
//
// Two operating modes (docs/ROBUSTNESS.md):
//
//  * Strict lockstep (default): every message arrives within its round
//    (legacy reliable transport) and rounds are bit-identical to
//    AdmgSolver::step(). Requires a delivery-preserving fault plan.
//  * Degraded (options.degraded): rounds proceed on the latest value
//    received from each peer — the generalization of admm/async.hpp's
//    stale-bounded participation model to message loss, delay, partitions
//    and crashes. The coordinator declares a datacenter dead after
//    dead_after_rounds silent rounds and gracefully degrades: the dead
//    datacenter's capacity is removed and the surviving agents warm-restart
//    on the reduced problem. A solver watchdog (shared with AdmgSolver)
//    catches non-finite iterates and residual stalls and can fall back to
//    the centralized reference solver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "admm/admg.hpp"
#include "net/agents.hpp"
#include "net/bus.hpp"
#include "net/faults.hpp"

namespace ufc::net {

class SocketBus;

/// Multi-process seam (docs/DISTRIBUTION.md): when `socket` is set, the
/// runtime is the coordinator process of a supervised fleet. The listed
/// datacenters are hosted in worker processes: the runtime keeps shadow
/// agents for them (fed by StateSync messages) instead of executing their
/// procedures locally, and every protocol message travels the socket.
struct RemoteHosting {
  SocketBus* socket = nullptr;      ///< Not owned; null = fully in-process.
  /// ORIGINAL datacenter indices hosted remotely.
  std::vector<std::size_t> remote_dcs;
  /// Per-round wait for the remote datacenters' replies. A worker that
  /// misses the deadline contributes stale inputs that round (degraded
  /// mode) and is eventually declared dead via the health table.
  int round_deadline_ms = 2000;
};

struct DistributedOptions {
  admm::AdmgOptions admg;     ///< Same knobs as the monolithic solver; the
                              ///< watchdog / fallback fields govern the
                              ///< runtime's watchdog too.
  double loss_rate = 0.0;     ///< Per-attempt message-loss probability.
  std::uint64_t loss_seed = 1;
  /// Scripted + seeded-random fault environment for the bus.
  FaultPlan faults;
  /// Per-message transmission cap (see BusConfig). Must stay 0 in strict
  /// mode; must be >= 1 when the plan is not delivery-preserving.
  int max_attempts = 0;
  /// Enables the degraded (stale-tolerant) protocol described above.
  bool degraded = false;
  /// Silent rounds after which the coordinator declares a datacenter dead
  /// (degraded mode only).
  int dead_after_rounds = 5;
  /// Degraded-mode convergence gate: a round may declare convergence only
  /// when every agent input is at most this many rounds old — the bounded
  /// input-age criterion, the message-level analog of admm/async.hpp's
  /// stale-bounded participation model (docs/ROBUSTNESS.md). Silence from a
  /// crashed or partitioned peer grows the age without bound and keeps
  /// blocking convergence until the health tracker or the watchdog acts.
  /// 0 = auto: 1 + max_delay_rounds when random delay is active, else 1.
  int max_stale_rounds = 0;
  /// Multi-process hosting (see RemoteHosting). Default: everything local.
  RemoteHosting remote;
};

/// Report of a distributed solve: the shared SolveCore plus the network- and
/// membership-level outcomes only this driver produces.
struct DistributedReport : admm::SolveCore {
  /// Agent inputs served from a previous iteration's value (0 in strict mode).
  std::uint64_t stale_inputs = 0;
  /// Original datacenter indices still participating / removed by
  /// graceful degradation (removal order preserved).
  std::vector<std::size_t> active_datacenters;
  std::vector<std::size_t> removed_datacenters;
  LinkStats network;   ///< Total traffic including retransmissions.
};

class BusExecutor;

class DistributedAdmgRuntime {
 public:
  DistributedAdmgRuntime(const UfcProblem& problem,
                         DistributedOptions options = {});

  /// Runs rounds until the coordinator sees both scaled residuals below
  /// tolerance, or max_iterations. Resumable: a second call (or a call
  /// after restore()) continues from the next round.
  DistributedReport run();

  /// One protocol round. Exposed so tests can compare against
  /// AdmgSolver::step() iterate-by-iterate. Crashed nodes skip their
  /// procedures; the coordinator records who reported.
  void round(int iteration);

  /// Assembles the current global iterate from the agents' local state,
  /// in normalized workload units (matching AdmgSolver's accessors).
  /// Columns are positional over the *active* datacenters.
  Mat lambda() const;
  Vec mu() const;
  Vec nu() const;
  Mat a() const;

  double balance_residual() const;  ///< Max over datacenter reports.
  double copy_residual() const;     ///< Max over front-end reports.
  const MessageBus& bus() const { return bus_; }
  /// The transport every protocol message travels: the in-process bus by
  /// default, the socket bus when remote hosting is configured.
  const Transport& transport() const { return *transport_; }

  /// True iff every agent's local state is finite.
  bool iterate_finite() const;
  /// Total stale-input count across all agents (see DistributedReport).
  std::uint64_t stale_inputs() const;
  /// Original indices of the datacenters still participating.
  const std::vector<std::size_t>& active_datacenters() const {
    return active_dcs_;
  }
  const std::vector<std::size_t>& removed_datacenters() const {
    return removed_dcs_;
  }
  /// The (possibly reduced) problem the runtime currently optimizes, in the
  /// caller's original units.
  const UfcProblem& current_problem() const { return original_; }
  int next_round() const { return next_round_; }

  /// The datacenter agents, positional with active_datacenters(). A forked
  /// worker process copies the ones it hosts out of the inherited runtime —
  /// after a checkpoint restore they carry the restored iterate, so the
  /// whole fleet resumes from one consistent image.
  std::span<const DatacenterAgent> datacenter_agents() const {
    return datacenters_;
  }

  /// Serializes the complete solver-relevant state: active membership,
  /// every agent's iterate and caches, coordinator health table and round
  /// counter — via the shared wire codec. In-flight bus messages are part
  /// of the fault environment, not solver state, and are NOT captured
  /// (after restore they count as lost; the degraded protocol absorbs
  /// that, and zero-fault checkpoints are taken at round boundaries where
  /// nothing is in flight).
  std::vector<std::byte> checkpoint() const;
  /// Restores a checkpoint() image into a runtime constructed with the same
  /// problem and options. The image's active set must be reachable from
  /// this runtime's (a subset); anything malformed throws
  /// ufc::ContractViolation.
  void restore(std::span<const std::byte> bytes);

 private:
  /// The message-passing BlockExecutor (runtime.cpp) drives round() and the
  /// degraded-mode membership hooks on the engine's behalf.
  friend class BusExecutor;

  void update_residual_scales();
  /// (Re)creates all agents for the current problem_/active_dcs_, with
  /// cold-start state.
  void build_agents();
  /// Declares and removes every datacenter silent for dead_after_rounds as
  /// of `round` — or, once its hosting peer's stream reported EOF/reset,
  /// silent for just one round; returns true if the topology changed.
  bool remove_dead(int round);
  /// True iff active position `pos` is hosted in a worker process.
  bool is_remote(std::size_t pos) const;
  /// Coordinator inbox handler: ConvergenceReport updates the health table;
  /// StateSync additionally refreshes the remote datacenter's shadow agent.
  void absorb_coordinator_message(const Message& message, int iteration);
  /// Remote phase of round(): pumps the socket until every live remote
  /// datacenter has delivered this round's StateSync (stream order
  /// guarantees its assignments arrived first) or the round deadline
  /// elapses, folding EOF'd peers into the health machinery.
  void pump_remote(int iteration);
  /// Removes the datacenter at active position `pos`, warm-restarting the
  /// survivors on the reduced problem. Returns false (and keeps the
  /// datacenter) when removal would make the problem infeasible or empty.
  bool remove_datacenter(std::size_t pos);

  UfcProblem original_;  ///< As given, minus removed datacenters.
  UfcProblem problem_;   ///< Workload-normalized (agents see this).
  DistributedOptions options_;
  ProtocolConfig protocol_;
  double sigma_ = 1.0;
  MessageBus bus_;
  /// Every protocol send/receive goes through this; &bus_ unless remote
  /// hosting routed it to the socket bus.
  Transport* transport_ = nullptr;
  std::vector<FrontEndAgent> front_ends_;
  std::vector<DatacenterAgent> datacenters_;
  /// Original index of each active datacenter, positional with
  /// datacenters_; removal order of the dead ones.
  std::vector<std::size_t> active_dcs_;
  std::vector<std::size_t> removed_dcs_;
  /// Coordinator health table: last round a ConvergenceReport from this
  /// node was received (absent = never).
  std::map<NodeId, int> last_seen_;
  /// Nodes whose hosting stream died (EOF/ECONNRESET). Real liveness signal:
  /// remove_dead() gives these a one-round grace instead of
  /// dead_after_rounds.
  std::set<NodeId> eof_nodes_;
  /// Newest StateSync round received per remote datacenter.
  std::map<NodeId, int> remote_synced_;
  int stale_bound_ = 1;  ///< Resolved max_stale_rounds (see DistributedOptions).
  int next_round_ = 0;
  double balance_scale_ = 1.0;
  double copy_scale_ = 1.0;
};

}  // namespace ufc::net
