#include "net/supervisor.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

#include "admm/telemetry.hpp"
#include "util/clock.hpp"
#include "util/contract.hpp"
#include "util/logging.hpp"

namespace ufc::net {

namespace {

/// Fault/checkpoint injection through the engine's telemetry seam: fires
/// after iteration `kill_at_round` / `checkpoint_at_round`, so the injected
/// SIGKILL lands between rounds — equivalent to an in-process FaultPlan
/// crash window starting at round kill_at_round + 1. Forwards every sample
/// to the caller's own observer, if any.
class SupervisorObserver final : public admm::IterationObserver {
 public:
  SupervisorObserver(admm::IterationObserver* inner, int kill_at_round,
                     int checkpoint_at_round)
      : inner_(inner),
        kill_at_round_(kill_at_round),
        checkpoint_at_round_(checkpoint_at_round) {}

  void arm(pid_t victim, DistributedAdmgRuntime* runtime) {
    victim_ = victim;
    runtime_ = runtime;
  }

  void on_iteration(const admm::IterationSample& sample) override {
    if (sample.iteration == kill_at_round_ && victim_ > 0 && !killed_) {
      log::warn("supervisor: SIGKILL worker pid ", victim_,
                " after iteration ", sample.iteration);
      (void)::kill(victim_, SIGKILL);
      killed_ = true;
    }
    if (sample.iteration == checkpoint_at_round_ && runtime_ != nullptr &&
        checkpoint_.empty()) {
      checkpoint_ = runtime_->checkpoint();
    }
    if (inner_ != nullptr) inner_->on_iteration(sample);
  }

  void on_solve_end(const admm::SolveCore& core) override {
    if (inner_ != nullptr) inner_->on_solve_end(core);
  }

  bool killed() const { return killed_; }
  std::vector<std::byte> take_checkpoint() { return std::move(checkpoint_); }

 private:
  admm::IterationObserver* inner_ = nullptr;
  int kill_at_round_ = -1;
  int checkpoint_at_round_ = -1;
  pid_t victim_ = -1;
  DistributedAdmgRuntime* runtime_ = nullptr;
  bool killed_ = false;
  std::vector<std::byte> checkpoint_;
};

/// The worker process body: round-driven datacenter hosting. Never returns.
[[noreturn]] void worker_main(const SupervisorOptions& options,
                              const SocketEndpoint& endpoint,
                              std::uint32_t worker_index,
                              std::vector<DatacenterAgent> agents,
                              std::size_t num_front_ends) {
  std::vector<NodeId> local_nodes;
  local_nodes.reserve(agents.size());
  for (const auto& agent : agents) local_nodes.push_back(agent.id());

  SocketBusConfig config;
  config.endpoint = endpoint;
  config.hub = false;
  config.worker_index = worker_index;
  config.local_nodes = local_nodes;
  config.max_attempts = 8;
  config.connect_timeout_ms = options.connect_timeout_ms;
  config.io_timeout_ms = options.io_timeout_ms;
  SocketBus socket(std::move(config));
  if (!socket.connect_to_hub(options.connect_timeout_ms)) _exit(2);

  const util::MonotonicTimer uptime;
  std::uint64_t rounds_processed = 0;
  std::vector<int> last_round(agents.size(), -1);
  while (!socket.shutdown_requested() && socket.hub_connected()) {
    socket.pump(50);
    for (std::size_t k = 0; k < agents.size(); ++k) {
      const NodeId node = agents[k].id();
      if (socket.max_pending_iteration(node) <= last_round[k]) continue;
      // The hub writes a round's proposals back-to-back; wait briefly for
      // the full complement so a chunk boundary cannot make inputs stale.
      const IoDeadline deadline(options.io_timeout_ms);
      while (socket.pending(node) < num_front_ends && !deadline.expired())
        socket.pump(deadline.remaining_ms());
      const std::int32_t round = socket.max_pending_iteration(node);
      socket.begin_round(round);
      agents[k].process_proposals(socket, round);
      // StateSync LAST: stream FIFO order then guarantees the coordinator
      // has this round's assignments once it sees the sync.
      (void)socket.send(agents[k].make_state_sync(round));
      last_round[k] = round;
      ++rounds_processed;
    }
  }

  if (socket.shutdown_requested()) {
    // Plain tables, not MetricsRegistry: the net layer cannot depend on
    // src/obs, so workers ship raw unprefixed names and the caller merges
    // them under a per-worker prefix (obs::record_counter_table).
    std::map<std::string, std::uint64_t> counters;
    counters["rounds_processed"] = rounds_processed;
    counters["net.bytes"] = socket.total().bytes;
    counters["net.messages"] = socket.total().messages;
    counters["net.delivery_failures"] = socket.total().delivery_failures;
    counters["net.retransmissions"] = socket.total().retransmissions;
    std::map<std::string, double> gauges;
    gauges["uptime_seconds"] = uptime.elapsed_seconds();
    (void)socket.send_metrics(counters, gauges, options.io_timeout_ms);
  }
  // _exit: never run the parent's inherited atexit/static teardown in the
  // child.
  _exit(0);
}

/// Reaps every child within the deadline; SIGKILLs and reaps stragglers.
/// Returns (clean exits, killed).
std::pair<std::size_t, std::size_t> reap_children(std::vector<pid_t> pids,
                                                  int deadline_ms) {
  const IoDeadline deadline(deadline_ms);
  std::size_t exited = 0;
  std::size_t killed = 0;
  std::vector<bool> reaped(pids.size(), false);
  std::size_t remaining = pids.size();
  while (remaining > 0) {
    for (std::size_t k = 0; k < pids.size(); ++k) {
      if (reaped[k]) continue;
      int status = 0;
      const pid_t rc = ::waitpid(pids[k], &status, WNOHANG);
      if (rc == pids[k]) {
        reaped[k] = true;
        --remaining;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
          ++exited;
        else
          ++killed;
      } else if (rc < 0 && errno != EINTR) {
        // Already reaped elsewhere or invalid: stop tracking it.
        reaped[k] = true;
        --remaining;
      }
    }
    if (remaining == 0) break;
    if (deadline.expired()) {
      // Stragglers get SIGKILL and one final (near-instant) reap pass.
      for (std::size_t k = 0; k < pids.size(); ++k) {
        if (reaped[k]) continue;
        (void)::kill(pids[k], SIGKILL);
        int status = 0;
        (void)::waitpid(pids[k], &status, 0);
        reaped[k] = true;
        --remaining;
        ++killed;
      }
      break;
    }
    (void)::poll(nullptr, 0, 10);  // Brief sleep between reap passes.
  }
  return {exited, killed};
}

}  // namespace

Supervisor::Supervisor(const UfcProblem& problem, SupervisorOptions options)
    : problem_(problem), options_(std::move(options)) {
  problem_.validate();
  // A real fleet can always lose a worker mid-round, so the strict-lockstep
  // protocol (which treats any gap as a contract violation) is not an
  // option here.
  UFC_EXPECTS(options_.distributed.degraded);
  UFC_EXPECTS(options_.processes >= 1);
  UFC_EXPECTS(options_.round_deadline_ms >= 0);
  UFC_EXPECTS(options_.io_timeout_ms >= 0);
  UFC_EXPECTS(options_.connect_timeout_ms >= 0);
  UFC_EXPECTS(options_.kill_at_round >= -1);
  UFC_EXPECTS(options_.checkpoint_at_round >= -1);
  if (options_.kill_at_round >= 0)
    UFC_EXPECTS(options_.kill_worker < options_.processes);
}

SupervisedReport Supervisor::run() { return run_impl({}); }

SupervisedReport Supervisor::run(std::span<const std::byte> checkpoint) {
  UFC_EXPECTS(!checkpoint.empty());
  return run_impl(checkpoint);
}

SupervisedReport Supervisor::run_impl(std::span<const std::byte> checkpoint) {
  SocketEndpoint endpoint;
  if (options_.use_tcp) {
    endpoint.unix_path.clear();
    endpoint.tcp_port = 0;  // Ephemeral; resolved after bind.
  } else {
    endpoint.unix_path = options_.socket_dir + "/ufc_hub_" +
                         std::to_string(::getpid()) + ".sock";
  }

  const std::size_t m = problem_.num_front_ends();
  const std::size_t n = problem_.num_datacenters();

  // Hub socket: coordinator + every front-end live in this process.
  SocketBusConfig hub_config;
  hub_config.endpoint = endpoint;
  hub_config.hub = true;
  hub_config.local_nodes.push_back(kCoordinatorId);
  for (std::size_t i = 0; i < m; ++i)
    hub_config.local_nodes.push_back(front_end_id(i));
  hub_config.max_attempts = 8;
  hub_config.connect_timeout_ms = options_.connect_timeout_ms;
  hub_config.io_timeout_ms = options_.io_timeout_ms;
  SocketBus hub(std::move(hub_config));
  if (options_.use_tcp) endpoint.tcp_port = hub.bound_tcp_port();

  // Coordinator runtime, with every datacenter hosted remotely. Observer
  // chain: the kill/checkpoint injector wraps whatever the caller set, and
  // must be installed before construction (the runtime copies its options).
  SupervisorObserver observer(options_.distributed.admg.observer,
                              options_.kill_at_round,
                              options_.checkpoint_at_round);
  DistributedOptions dist = options_.distributed;
  dist.admg.observer = &observer;
  dist.remote.socket = &hub;
  dist.remote.round_deadline_ms = options_.round_deadline_ms;
  dist.remote.remote_dcs.resize(n);
  for (std::size_t j = 0; j < n; ++j) dist.remote.remote_dcs[j] = j;
  DistributedAdmgRuntime runtime(problem_, std::move(dist));
  if (!checkpoint.empty()) runtime.restore(checkpoint);

  // Deal the ACTIVE datacenters (a restored image may have fewer) round-
  // robin across workers, then fork the whole fleet before any child
  // connects — children close the listen fd first, so no worker can ever
  // inherit (and hold open) a sibling's accepted stream.
  const auto& active = runtime.active_datacenters();
  const std::size_t workers = std::min(options_.processes, active.size());
  const auto agents = runtime.datacenter_agents();
  std::vector<std::vector<DatacenterAgent>> hosted(workers);
  for (std::size_t pos = 0; pos < active.size(); ++pos)
    hosted[pos % workers].push_back(agents[pos]);

  std::vector<pid_t> pids;
  pids.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t child : pids) (void)::kill(child, SIGKILL);
      reap_children(pids, options_.io_timeout_ms);
      throw std::runtime_error("supervisor: fork failed");
    }
    if (pid == 0) {
      hub.close_for_child();
      worker_main(options_, endpoint, static_cast<std::uint32_t>(w),
                  std::move(hosted[w]), m);
    }
    pids.push_back(pid);
  }

  const std::size_t connected =
      hub.wait_for_workers(workers, options_.connect_timeout_ms);
  if (connected < workers)
    log::warn("supervisor: only ", connected, " of ", workers,
              " workers connected; the health table will remove the rest");
  if (options_.kill_at_round >= 0 && options_.kill_worker < pids.size())
    observer.arm(pids[options_.kill_worker], &runtime);
  else
    observer.arm(-1, &runtime);

  SupervisedReport report;
  static_cast<DistributedReport&>(report) = runtime.run();

  // Deterministic shutdown: Shutdown frame -> Metrics replies -> bounded
  // reap. Live workers answer with their measurement tables; the killed one
  // obviously cannot.
  hub.send_shutdown(options_.io_timeout_ms);
  const IoDeadline metrics_deadline(options_.io_timeout_ms);
  while (hub.connected_workers() > 0 && !metrics_deadline.expired())
    hub.pump(metrics_deadline.remaining_ms());
  const auto [exited, killed] =
      reap_children(pids, options_.connect_timeout_ms);

  report.workers_spawned = workers;
  report.workers_exited = exited;
  report.workers_killed = killed;
  report.worker_metrics = hub.take_worker_metrics();
  report.checkpoint_image = observer.take_checkpoint();
  return report;
}

}  // namespace ufc::net
