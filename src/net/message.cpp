#include "net/message.hpp"

#include "util/contract.hpp"
#include "util/wire.hpp"

namespace ufc::net {

namespace {

// Node-id layout: front-end i -> i, datacenter j -> kDatacenterBase + j.
constexpr NodeId kDatacenterBase = 1 << 20;

// Fixed-size message header: source, destination, type, iteration, count.
constexpr std::size_t kHeaderBytes = sizeof(NodeId) * 2 +
                                     sizeof(std::uint8_t) +
                                     sizeof(std::int32_t) +
                                     sizeof(std::uint32_t);

}  // namespace

NodeId front_end_id(std::size_t i) {
  UFC_EXPECTS(i < static_cast<std::size_t>(kDatacenterBase));
  return static_cast<NodeId>(i);
}

NodeId datacenter_id(std::size_t j) {
  UFC_EXPECTS(j < static_cast<std::size_t>(kDatacenterBase));
  return kDatacenterBase + static_cast<NodeId>(j);
}

bool is_front_end(NodeId id) { return id >= 0 && id < kDatacenterBase; }

bool is_datacenter(NodeId id) { return id >= kDatacenterBase; }

std::size_t front_end_index(NodeId id) {
  UFC_EXPECTS(is_front_end(id));
  return static_cast<std::size_t>(id);
}

std::size_t datacenter_index(NodeId id) {
  UFC_EXPECTS(is_datacenter(id));
  return static_cast<std::size_t>(id - kDatacenterBase);
}

std::size_t wire_size(const Message& message) {
  return kHeaderBytes + message.payload.size() * sizeof(double);
}

std::vector<std::byte> serialize(const Message& message) {
  std::vector<std::byte> out;
  out.reserve(wire_size(message));
  wire::append(out, message.source);
  wire::append(out, message.destination);
  wire::append(out, static_cast<std::uint8_t>(message.type));
  wire::append(out, message.iteration);
  wire::append(out, static_cast<std::uint32_t>(message.payload.size()));
  wire::append_f64s(out, message.payload);
  return out;
}

// Hardened against arbitrary (truncated, mutated, adversarial) byte strings:
// every branch either throws ContractViolation or produces a well-formed
// Message. The fuzz tests feed random mutations of valid frames through here
// under ASan/UBSan to keep this promise honest.
Message deserialize(std::span<const std::byte> bytes) {
  UFC_EXPECTS(bytes.size() >= kHeaderBytes);
  std::size_t offset = 0;
  Message message;
  message.source = wire::read<NodeId>(bytes, offset);
  message.destination = wire::read<NodeId>(bytes, offset);
  const auto type = wire::read<std::uint8_t>(bytes, offset);
  UFC_EXPECTS(type >= 1 && type <= 4);
  message.type = static_cast<MessageType>(type);
  message.iteration = wire::read<std::int32_t>(bytes, offset);
  const auto count = wire::read<std::uint32_t>(bytes, offset);
  // Exact-length check before any allocation, phrased so a garbage `count`
  // cannot overflow the arithmetic (count <= 2^32 - 1, so count * 8 fits in
  // 64 bits) or trigger a multi-gigabyte reserve.
  UFC_EXPECTS(bytes.size() - offset ==
              static_cast<std::size_t>(count) * sizeof(double));
  message.payload.resize(count);
  wire::read_f64s(bytes, offset, message.payload);
  return message;
}

}  // namespace ufc::net
