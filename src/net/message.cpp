#include "net/message.hpp"

#include <cstring>

#include "util/contract.hpp"

namespace ufc::net {

namespace {

// Node-id layout: front-end i -> i, datacenter j -> kDatacenterBase + j.
constexpr NodeId kDatacenterBase = 1 << 20;

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
T read(std::span<const std::byte> bytes, std::size_t& offset) {
  UFC_EXPECTS(offset + sizeof(T) <= bytes.size());
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

NodeId front_end_id(std::size_t i) {
  UFC_EXPECTS(i < static_cast<std::size_t>(kDatacenterBase));
  return static_cast<NodeId>(i);
}

NodeId datacenter_id(std::size_t j) {
  UFC_EXPECTS(j < static_cast<std::size_t>(kDatacenterBase));
  return kDatacenterBase + static_cast<NodeId>(j);
}

bool is_front_end(NodeId id) { return id >= 0 && id < kDatacenterBase; }

bool is_datacenter(NodeId id) { return id >= kDatacenterBase; }

std::size_t front_end_index(NodeId id) {
  UFC_EXPECTS(is_front_end(id));
  return static_cast<std::size_t>(id);
}

std::size_t datacenter_index(NodeId id) {
  UFC_EXPECTS(is_datacenter(id));
  return static_cast<std::size_t>(id - kDatacenterBase);
}

std::size_t wire_size(const Message& message) {
  return sizeof(NodeId) * 2 + sizeof(std::uint8_t) + sizeof(std::int32_t) +
         sizeof(std::uint32_t) + message.payload.size() * sizeof(double);
}

std::vector<std::byte> serialize(const Message& message) {
  std::vector<std::byte> out;
  out.reserve(wire_size(message));
  append(out, message.source);
  append(out, message.destination);
  append(out, static_cast<std::uint8_t>(message.type));
  append(out, message.iteration);
  append(out, static_cast<std::uint32_t>(message.payload.size()));
  for (double v : message.payload) append(out, v);
  return out;
}

Message deserialize(std::span<const std::byte> bytes) {
  std::size_t offset = 0;
  Message message;
  message.source = read<NodeId>(bytes, offset);
  message.destination = read<NodeId>(bytes, offset);
  const auto type = read<std::uint8_t>(bytes, offset);
  UFC_EXPECTS(type >= 1 && type <= 3);
  message.type = static_cast<MessageType>(type);
  message.iteration = read<std::int32_t>(bytes, offset);
  const auto count = read<std::uint32_t>(bytes, offset);
  UFC_EXPECTS(offset + count * sizeof(double) == bytes.size());
  message.payload.reserve(count);
  for (std::uint32_t k = 0; k < count; ++k)
    message.payload.push_back(read<double>(bytes, offset));
  return message;
}

}  // namespace ufc::net
