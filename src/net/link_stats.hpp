// Per-link delivery accounting, shared by the message bus (which fills it)
// and the observability layer (which reads it). Lives apart from bus.hpp so
// src/obs can consume traffic counters without including the bus machinery.
#pragma once

#include <cstdint>

namespace ufc::net {

struct LinkStats {
  std::uint64_t messages = 0;           ///< Successful transmissions.
  std::uint64_t bytes = 0;              ///< All attempts, including drops.
  std::uint64_t retransmissions = 0;    ///< Failed attempts (loss/partition).
  std::uint64_t delivery_failures = 0;  ///< Attempt cap exhausted.
  std::uint64_t corrupted = 0;          ///< Frames discarded by integrity check.
  std::uint64_t delayed = 0;            ///< Deliveries deferred >= 1 round.
  std::uint64_t backoff_rounds = 0;     ///< Sum of exponential retry backoffs.
};

}  // namespace ufc::net
