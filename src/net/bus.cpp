#include "net/bus.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace ufc::net {

namespace {

BusConfig legacy_config(double loss_rate, std::uint64_t seed) {
  BusConfig config;
  config.seed = seed;
  RandomFaults faults;
  faults.loss_rate = loss_rate;
  config.faults.random_faults(faults);
  return config;
}

// Backoff before the k-th retry: 2^(k-1) rounds, capped so pathological
// attempt caps cannot overflow the accounting.
std::uint64_t backoff_rounds_before_retry(int failed_attempts) {
  return std::uint64_t{1} << std::min(failed_attempts - 1, 10);
}

}  // namespace

MessageBus::MessageBus(double loss_rate, std::uint64_t seed)
    : MessageBus(legacy_config(loss_rate, seed)) {}

MessageBus::MessageBus(BusConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  UFC_EXPECTS(config_.max_attempts >= 0);
  // Scripted partitions/crashes and random corruption/delay make individual
  // messages undeliverable; an unbounded retransmit loop would spin forever.
  // Contract-check the cap against the plan up front.
  UFC_EXPECTS(config_.max_attempts >= 1 ||
              config_.faults.delivery_preserving());
}

void MessageBus::begin_round(int round) {
  UFC_EXPECTS(round >= 0);
  round_ = round;
  while (!delayed_.empty() && delayed_.begin()->first.first <= round) {
    auto node = delayed_.extract(delayed_.begin());
    Message& msg = node.mapped();
    queues_[msg.destination].push_back(std::move(msg));
  }
}

SendOutcome MessageBus::send(Message message) {
  UFC_EXPECTS(message.source >= kCoordinatorId);
  UFC_EXPECTS(message.destination >= kCoordinatorId);
  const std::size_t size = wire_size(message);
  auto& link = links_[{message.source, message.destination}];
  const auto& rf = config_.faults.random();
  const bool blocked =
      config_.faults.link_blocked(message.source, message.destination,
                                  round_) ||
      config_.faults.node_down(message.source, round_) ||
      config_.faults.node_down(message.destination, round_);

  // Transmission attempts. Every attempt is counted in bytes; a blocked
  // link never consults the loss draw (the partition decides, not chance),
  // so zero-fault and loss-only runs keep the legacy RNG sequence exactly.
  int attempt = 0;
  while (true) {
    ++attempt;
    link.bytes += size;
    total_.bytes += size;
    const bool dropped =
        blocked || (rf.loss_rate > 0.0 && rng_.bernoulli(rf.loss_rate));
    if (!dropped) break;
    ++link.retransmissions;
    ++total_.retransmissions;
    if (config_.max_attempts > 0 && attempt >= config_.max_attempts) {
      ++link.delivery_failures;
      ++total_.delivery_failures;
      return SendOutcome::Failed;
    }
    // Round-based exponential backoff before the retry (accounting only:
    // the simulated clock advances per protocol round, not per retry).
    const std::uint64_t backoff = backoff_rounds_before_retry(attempt);
    link.backoff_rounds += backoff;
    total_.backoff_rounds += backoff;
  }
  ++link.messages;
  ++total_.messages;

  // Serialization + deserialization exercises the wire codec on every
  // delivery.
  auto wire = serialize(message);
  if (rf.corruption_rate > 0.0 && rng_.bernoulli(rf.corruption_rate)) {
    // Mutate 1-4 wire bytes. The receiver's integrity check discards the
    // frame whether or not it still parses; decoding is attempted anyway so
    // sanitizer builds exercise deserialize on hostile bytes continuously.
    const auto flips = rng_.uniform_int(1, 4);
    for (std::int64_t f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      const auto mask =
          static_cast<unsigned char>(rng_.uniform_int(1, 255));
      wire[pos] ^= static_cast<std::byte>(mask);
    }
    try {
      (void)deserialize(wire);
    } catch (const ContractViolation&) {
      // Expected for most mutations; the frame is discarded either way.
    }
    ++link.corrupted;
    ++total_.corrupted;
    return SendOutcome::Corrupted;
  }

  Message delivered = deserialize(wire);
  if (rf.delay_rate > 0.0 && rng_.bernoulli(rf.delay_rate)) {
    const auto delay = static_cast<int>(
        rng_.uniform_int(1, rf.max_delay_rounds));
    ++link.delayed;
    ++total_.delayed;
    delayed_.emplace(std::pair{round_ + delay, send_sequence_++},
                     std::move(delivered));
    return SendOutcome::Delayed;
  }
  queues_[delivered.destination].push_back(std::move(delivered));
  return SendOutcome::Delivered;
}

std::optional<Message> MessageBus::receive(NodeId destination) {
  UFC_EXPECTS(destination >= kCoordinatorId);
  auto it = queues_.find(destination);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Message message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

std::vector<Message> MessageBus::drain(NodeId destination) {
  UFC_EXPECTS(destination >= kCoordinatorId);
  std::vector<Message> messages;
  auto it = queues_.find(destination);
  if (it == queues_.end()) return messages;
  messages.assign(std::make_move_iterator(it->second.begin()),
                  std::make_move_iterator(it->second.end()));
  it->second.clear();
  return messages;
}

std::size_t MessageBus::pending(NodeId destination) const {
  UFC_EXPECTS(destination >= kCoordinatorId);
  auto it = queues_.find(destination);
  return it == queues_.end() ? 0 : it->second.size();
}

std::size_t MessageBus::poll_pending(NodeId destination, int deadline_ms) {
  // In-process, waiting cannot make anything arrive: delivery happens inside
  // send() and begin_round(), both of which run on the caller's own thread.
  // The deadline is therefore accepted but never waited out.
  UFC_EXPECTS(deadline_ms >= 0);
  return pending(destination);
}

void MessageBus::clear_queues() {
  queues_.clear();
  delayed_.clear();
}

LinkStats MessageBus::link(NodeId source, NodeId destination) const {
  UFC_EXPECTS(source >= kCoordinatorId);
  UFC_EXPECTS(destination >= kCoordinatorId);
  auto it = links_.find({source, destination});
  return it == links_.end() ? LinkStats{} : it->second;
}

void MessageBus::reset_stats() {
  links_.clear();
  total_ = LinkStats{};
}

}  // namespace ufc::net
