#include "net/bus.hpp"

#include "util/contract.hpp"

namespace ufc::net {

MessageBus::MessageBus(double loss_rate, std::uint64_t seed)
    : loss_rate_(loss_rate), rng_(seed) {
  UFC_EXPECTS(loss_rate >= 0.0 && loss_rate < 1.0);
}

void MessageBus::send(Message message) {
  const std::size_t size = wire_size(message);
  auto& link = links_[{message.source, message.destination}];

  // Simulate transmission attempts until one gets through. Serialization +
  // deserialization exercises the wire codec on every delivery.
  while (true) {
    link.bytes += size;
    total_.bytes += size;
    if (loss_rate_ > 0.0 && rng_.bernoulli(loss_rate_)) {
      ++link.retransmissions;
      ++total_.retransmissions;
      continue;
    }
    break;
  }
  ++link.messages;
  ++total_.messages;

  const auto wire = serialize(message);
  Message delivered = deserialize(wire);
  queues_[delivered.destination].push_back(std::move(delivered));
}

std::optional<Message> MessageBus::receive(NodeId destination) {
  auto it = queues_.find(destination);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Message message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

std::vector<Message> MessageBus::drain(NodeId destination) {
  std::vector<Message> messages;
  auto it = queues_.find(destination);
  if (it == queues_.end()) return messages;
  messages.assign(std::make_move_iterator(it->second.begin()),
                  std::make_move_iterator(it->second.end()));
  it->second.clear();
  return messages;
}

std::size_t MessageBus::pending(NodeId destination) const {
  auto it = queues_.find(destination);
  return it == queues_.end() ? 0 : it->second.size();
}

LinkStats MessageBus::link(NodeId source, NodeId destination) const {
  auto it = links_.find({source, destination});
  return it == links_.end() ? LinkStats{} : it->second;
}

void MessageBus::reset_stats() {
  links_.clear();
  total_ = LinkStats{};
}

}  // namespace ufc::net
