// Socket-backed Transport: the distributed ADM-G protocol over N real OS
// processes (docs/DISTRIBUTION.md).
//
// Topology is hub-and-spoke. The coordinator process is the hub: it binds a
// Unix-domain (default) or TCP-loopback listening socket, accepts one stream
// per worker, and routes frames by destination node. Worker processes
// connect, announce the nodes they host with a Hello frame, and then
// exchange Data frames carrying the existing wire codec (message.hpp) —
// the inner message format is byte-identical to the in-process bus, wrapped
// in an outer length-prefixed frame so a stream can carry many messages.
//
// Robustness contract (the reason this file exists):
//  * No call may block forever. Every fd is non-blocking; every wait is a
//    poll() bounded by an explicit deadline threaded through the call.
//  * A declared frame length above kMaxFrameBytes is rejected (throws
//    ContractViolation) as soon as the 8-byte header is visible — before
//    any body byte arrives and before any allocation.
//  * Connect failures retry with the bus's capped exponential backoff
//    accounting (2^min(k-1, 10) rounds per retry); exhausting max_attempts
//    surfaces as SendOutcome::Failed, never as a hang.
//  * Peer death (EOF, ECONNRESET) is detected on the next pump and reported
//    through take_newly_disconnected(), feeding the coordinator's health
//    table and the graceful-degradation path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/link_stats.hpp"
#include "net/message.hpp"
#include "net/transport.hpp"
#include "util/clock.hpp"

namespace ufc::net {

/// Monotonic deadline for socket waits, on the repo's sanctioned clock seam
/// (util/clock.hpp). remaining_ms() counts down from the budget and clamps
/// at 0; a budget of 0 means "check once, never wait".
class IoDeadline {
 public:
  explicit IoDeadline(int budget_ms)
      : start_(util::monotonic_now()), budget_ms_(budget_ms < 0 ? 0 : budget_ms) {}

  int remaining_ms() const {
    const double elapsed_ms =
        util::seconds_between(start_, util::monotonic_now()) * 1000.0;
    const double left = static_cast<double>(budget_ms_) - elapsed_ms;
    return left <= 0.0 ? 0 : static_cast<int>(left);
  }
  bool expired() const { return remaining_ms() == 0; }

 private:
  util::MonotonicTick start_;
  int budget_ms_;
};

// --------------------------------------------------------------------------
// Stream framing. Exposed here (not buried in the .cpp) so the fuzz tests
// can hammer the parser with truncated, oversized and interleaved inputs
// without opening a single socket.

/// Outer frame kinds. Data wraps one serialized Message; the rest are
/// control frames between hub and workers.
enum class FrameKind : std::uint32_t {
  Hello = 1,     ///< Worker -> hub: worker index + hosted node ids.
  Data = 2,      ///< One serialized Message (message.hpp codec).
  Metrics = 3,   ///< Worker -> hub: counter/gauge tables (shutdown reply).
  Shutdown = 4,  ///< Hub -> worker: finish the current round and exit.
};

/// Upper bound on a frame body. A hostile or corrupt length prefix above
/// this is rejected before any allocation; the largest legitimate frame (a
/// StateSync for thousands of front-ends) stays far below it.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

struct Frame {
  FrameKind kind = FrameKind::Data;
  std::vector<std::byte> body;
};

/// [u32 kind][u32 body length][body]. Contract-checks the body size.
std::vector<std::byte> encode_frame(FrameKind kind,
                                    std::span<const std::byte> body);

/// Incremental frame parser over an arbitrary chunking of the stream: bytes
/// may arrive one at a time or many frames at once; next() yields complete
/// frames in order. Malformed headers (unknown kind, body length above
/// kMaxFrameBytes) throw ContractViolation from next() as soon as the
/// header's 8 bytes are buffered — before the declared body is allocated or
/// waited for.
class FrameReader {
 public:
  /// Appends raw stream bytes (contract-checks the span: null data with a
  /// nonzero size is rejected). Never parses, so valid input never throws.
  void feed(std::span<const std::byte> bytes);

  /// Returns the next complete frame, or std::nullopt if the buffered bytes
  /// end mid-frame. Throws ContractViolation on a malformed header.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t consumed_ = 0;
};

/// Hello body codec: worker index + the node ids hosted by that worker.
std::vector<std::byte> encode_hello_body(std::uint32_t worker_index,
                                         std::span<const NodeId> nodes);
struct HelloBody {
  std::uint32_t worker_index = 0;
  std::vector<NodeId> nodes;
};
/// Throws ContractViolation on malformed input (hardened like deserialize).
HelloBody decode_hello_body(std::span<const std::byte> body);

/// Metrics body codec: plain counter/gauge tables, so the net layer can
/// ship per-worker measurements to the hub without depending on src/obs
/// (the layer DAG forbids net -> obs).
std::vector<std::byte> encode_metrics_body(
    const std::map<std::string, std::uint64_t>& counters,
    const std::map<std::string, double>& gauges);
struct MetricsBody {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
};
/// Throws ContractViolation on malformed input.
MetricsBody decode_metrics_body(std::span<const std::byte> body);

// --------------------------------------------------------------------------
// The transport.

/// Where the hub listens / the workers connect.
struct SocketEndpoint {
  /// Non-empty = Unix-domain socket at this filesystem path (the default
  /// transport: no ports, no firewalls, removed on close).
  std::string unix_path;
  /// Used when unix_path is empty: TCP on loopback. Port 0 lets the hub
  /// bind an ephemeral port; read it back with bound_tcp_port() and pass it
  /// to the workers.
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;
};

struct SocketBusConfig {
  SocketEndpoint endpoint;
  /// true = this process is the hub (binds + listens + routes); false = a
  /// worker (connects to the hub).
  bool hub = false;
  /// Worker-only: this worker's index, announced in the Hello frame so the
  /// hub reports health and metrics deterministically by index.
  std::uint32_t worker_index = 0;
  /// Nodes hosted in THIS process. Sends between two local nodes
  /// short-circuit to the local queues and never touch a socket.
  std::vector<NodeId> local_nodes;
  /// Per-send connect attempt cap. Unlike the in-process bus there is no
  /// delivery-preserving configuration on a real network, so 0 (unbounded)
  /// is a contract violation: the constructor requires >= 1.
  int max_attempts = 4;
  /// Deadline for one connect attempt (workers) / handshake wait (hub).
  int connect_timeout_ms = 2000;
  /// Deadline for one blocking write when the stream is congested.
  int io_timeout_ms = 2000;
};

/// Transport over real OS sockets. Single-threaded by design: all calls on
/// one SocketBus must come from one thread (each process owns exactly one
/// bus); concurrency happens between processes, not within.
class SocketBus final : public Transport {
 public:
  /// Hub: binds and listens. Worker: prepares lazily — the first send() or
  /// connect_to_hub() dials the hub. Throws ContractViolation on config
  /// errors, std::runtime_error when the OS refuses the endpoint.
  explicit SocketBus(SocketBusConfig config);
  ~SocketBus() override;

  SocketBus(const SocketBus&) = delete;
  SocketBus& operator=(const SocketBus&) = delete;

  // Transport contract -----------------------------------------------------
  void begin_round(int round) override;
  int current_round() const override { return round_; }
  /// Local destination: enqueues directly. Remote: frames and writes to the
  /// peer stream, connecting first if needed. Deadline-bounded; exhaustion
  /// of max_attempts (connect) or io_timeout_ms (write) returns Failed.
  SendOutcome send(Message message) override;
  std::optional<Message> receive(NodeId destination) override;
  std::vector<Message> drain(NodeId destination) override;
  std::size_t pending(NodeId destination) const override;
  /// Pumps the wire until a message for `destination` is queued or the
  /// deadline elapses, then returns pending(destination).
  std::size_t poll_pending(NodeId destination, int deadline_ms) override;
  void clear_queues() override;
  const LinkStats& total() const override { return total_; }

  // Wire pumping -----------------------------------------------------------
  /// Reads everything available on every stream (accepting new connections
  /// on the hub), waiting at most `deadline_ms` for the FIRST readable fd;
  /// once bytes flow it drains without further waiting. Returns true if at
  /// least one frame was dispatched. This is the single place where the OS
  /// is read; receive()/drain() only look at local queues.
  bool pump(int deadline_ms);

  /// Highest message iteration currently queued for `destination`
  /// (-1 = queue empty). Workers use it to detect that a new round's inputs
  /// have fully arrived.
  std::int32_t max_pending_iteration(NodeId destination) const;

  /// Nodes whose hosting peer died (EOF/reset) since the last call; cleared
  /// on return. The runtime folds these into its health table.
  std::vector<NodeId> take_newly_disconnected();

  // Hub-side control -------------------------------------------------------
  /// Pumps until `count` workers have completed their Hello handshake or
  /// the deadline elapses; returns the number connected.
  std::size_t wait_for_workers(std::size_t count, int deadline_ms);
  std::size_t connected_workers() const;
  /// Broadcasts a Shutdown frame to every live worker.
  void send_shutdown(int deadline_ms);
  struct WorkerMetrics {
    std::uint32_t worker_index = 0;
    MetricsBody tables;
  };
  /// Metrics frames received so far, sorted by worker index (deterministic
  /// merge order); cleared on return.
  std::vector<WorkerMetrics> take_worker_metrics();
  /// TCP hub only: the ephemeral port the listen socket bound.
  int bound_tcp_port() const;

  // Worker-side control ----------------------------------------------------
  /// Dials the hub now (instead of lazily on first send). Returns false if
  /// every attempt failed within the deadline.
  bool connect_to_hub(int deadline_ms);
  /// true once a Shutdown frame has been received.
  bool shutdown_requested() const { return shutdown_requested_; }
  /// true while the stream to the hub is up (a worker whose hub vanished
  /// has nothing left to do but exit).
  bool hub_connected() const;
  /// Sends a Metrics frame to the hub (the worker's shutdown reply).
  SendOutcome send_metrics(const std::map<std::string, std::uint64_t>& counters,
                           const std::map<std::string, double>& gauges,
                           int deadline_ms);

  /// Fork hygiene: a child that inherited this (hub) bus closes the listen
  /// socket and every accepted stream so it cannot steal the parent's
  /// connections, without unlinking the parent's Unix socket path.
  void close_for_child();

 private:
  struct Peer;  // One accepted worker stream (hub) or the hub stream (worker).

  bool is_local(NodeId node) const;
  /// Routes one decoded frame from `peer`; queues or forwards Data frames.
  void dispatch(Peer& peer, Frame frame);
  /// Marks the peer dead and records its nodes as newly disconnected.
  void mark_dead(Peer& peer);
  /// Reads until EAGAIN on one stream; returns frames dispatched.
  std::size_t drain_fd(Peer& peer);
  /// Deadline-bounded blocking write of a fully framed buffer.
  bool write_all(Peer& peer, std::span<const std::byte> bytes,
                 int deadline_ms);
  Peer* peer_for(NodeId destination);
  void accept_ready();

  SocketBusConfig config_;
  int round_ = 0;
  int listen_fd_ = -1;
  int bound_tcp_port_ = 0;
  bool shutdown_requested_ = false;
  /// Hub only: whether this process should unlink the Unix socket path on
  /// destruction (cleared by close_for_child so a forked child cannot tear
  /// down the parent's endpoint).
  bool owns_unix_path_ = false;
  std::vector<std::unique_ptr<Peer>> peers_;
  std::map<NodeId, std::deque<Message>> queues_;
  std::map<NodeId, std::size_t> node_owner_;  ///< NodeId -> peers_ index.
  std::vector<NodeId> newly_disconnected_;
  std::vector<WorkerMetrics> worker_metrics_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> links_;
  LinkStats total_;
};

}  // namespace ufc::net
