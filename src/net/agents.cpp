#include "net/agents.hpp"

#include <algorithm>
#include <cmath>

#include "admm/engine.hpp"
#include "util/contract.hpp"
#include "util/wire.hpp"

namespace ufc::net {

// --------------------------------------------------------------------------
// FrontEndAgent

FrontEndAgent::FrontEndAgent(FrontEndLocalConfig config)
    : config_(std::move(config)) {
  UFC_EXPECTS(config_.utility != nullptr);
  UFC_EXPECTS(!config_.latency_row_s.empty());
  n_ = config_.latency_row_s.size();
  if (config_.datacenter_ids.empty()) {
    config_.datacenter_ids.reserve(n_);
    for (std::size_t j = 0; j < n_; ++j)
      config_.datacenter_ids.push_back(datacenter_id(j));
  }
  UFC_EXPECTS(config_.datacenter_ids.size() == n_);
  lambda_ = Vec(n_, 0.0);
  lambda_tilde_ = Vec(n_, 0.0);
  a_ = Vec(n_, 0.0);
  varphi_ = Vec(n_, 0.0);
  a_tilde_cache_ = Vec(n_, 0.0);
  last_assignment_round_.assign(n_, -1);
}

std::size_t FrontEndAgent::position_of(NodeId source) const {
  const auto& ids = config_.datacenter_ids;
  const auto it = std::find(ids.begin(), ids.end(), source);
  UFC_EXPECTS(it != ids.end());
  return static_cast<std::size_t>(it - ids.begin());
}

void FrontEndAgent::send_proposals(Transport& bus, int iteration) {
  UFC_EXPECTS(iteration >= 0);
  admm::LambdaBlockInputs in;
  in.arrival = config_.arrival;
  in.latency_row = config_.latency_row_s;
  in.a_row = a_;
  in.varphi_row = varphi_;
  in.rho = config_.protocol.rho;
  in.latency_weight = config_.latency_weight;
  in.utility = config_.utility.get();
  lambda_tilde_ = admm::solve_lambda_block(in, lambda_, config_.protocol.inner);

  for (std::size_t j = 0; j < n_; ++j) {
    Message msg;
    msg.source = id();
    msg.destination = config_.datacenter_ids[j];
    msg.type = MessageType::RoutingProposal;
    msg.iteration = iteration;
    msg.payload = {lambda_tilde_[j], varphi_[j]};
    bus.send(std::move(msg));
  }
}

void FrontEndAgent::process_assignments(Transport& bus, int iteration) {
  const bool stale_ok = config_.protocol.allow_stale;
  std::size_t received = 0;
  for (auto& msg : bus.drain(id())) {
    UFC_EXPECTS(msg.type == MessageType::RoutingAssignment);
    UFC_EXPECTS(msg.payload.size() == 1);
    const std::size_t j = position_of(msg.source);
    if (stale_ok) {
      // Delayed deliveries can put several iterations of one link into a
      // single drain; keep only the newest assignment per datacenter.
      if (msg.iteration > last_assignment_round_[j]) {
        last_assignment_round_[j] = msg.iteration;
        a_tilde_cache_[j] = msg.payload[0];
      }
    } else {
      UFC_EXPECTS(msg.iteration == iteration);
      last_assignment_round_[j] = msg.iteration;
      a_tilde_cache_[j] = msg.payload[0];
      ++received;
    }
  }
  if (!stale_ok) UFC_EXPECTS(received == n_);
  for (std::size_t j = 0; j < n_; ++j)
    if (last_assignment_round_[j] < iteration) ++stale_assignments_;

  const Vec& a_tilde = a_tilde_cache_;
  const double rho = config_.protocol.rho;
  const bool gbs = config_.protocol.gaussian_back_substitution;
  const double eps = gbs ? config_.protocol.epsilon : 1.0;

  // Shared GBS correction helpers (admm/engine.cpp) — the same arithmetic
  // the in-process executor runs, applied to this front-end's row.
  admm::correct_varphi_block(varphi_.span(), a_tilde.span(),
                             lambda_tilde_.span(), rho, eps, gbs);
  admm::correct_a_block(a_.span(), a_tilde.span(), eps, gbs);
  lambda_ = lambda_tilde_;

  last_copy_residual_ = 0.0;
  for (std::size_t j = 0; j < n_; ++j)
    last_copy_residual_ =
        std::max(last_copy_residual_, std::abs(a_[j] - lambda_[j]));

  Message report;
  report.source = id();
  report.destination = kCoordinatorId;
  report.type = MessageType::ConvergenceReport;
  report.iteration = iteration;
  report.payload = {last_copy_residual_};
  bus.send(std::move(report));
}

std::int32_t FrontEndAgent::oldest_input_round() const {
  return *std::min_element(last_assignment_round_.begin(),
                           last_assignment_round_.end());
}

// Serializer into a caller-owned buffer: any `out` state is appendable, so
// there is no precondition to guard — restore_state carries the format
// contract for the pair.
// ufc-analyze: allow(expects-reach)
void FrontEndAgent::append_state(std::vector<std::byte>& out) const {
  wire::append(out, static_cast<std::uint64_t>(n_));
  wire::append_f64s(out, lambda_.span());
  wire::append_f64s(out, lambda_tilde_.span());
  wire::append_f64s(out, a_.span());
  wire::append_f64s(out, varphi_.span());
  wire::append_f64s(out, a_tilde_cache_.span());
  for (std::int32_t r : last_assignment_round_) wire::append(out, r);
  wire::append(out, last_copy_residual_);
  wire::append(out, stale_assignments_);
}

void FrontEndAgent::restore_state(std::span<const std::byte> bytes,
                                  std::size_t& offset) {
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) == n_);
  wire::read_f64s(bytes, offset, lambda_.span());
  wire::read_f64s(bytes, offset, lambda_tilde_.span());
  wire::read_f64s(bytes, offset, a_.span());
  wire::read_f64s(bytes, offset, varphi_.span());
  wire::read_f64s(bytes, offset, a_tilde_cache_.span());
  for (auto& r : last_assignment_round_)
    r = wire::read<std::int32_t>(bytes, offset);
  last_copy_residual_ = wire::read<double>(bytes, offset);
  stale_assignments_ = wire::read<std::uint64_t>(bytes, offset);
}

void FrontEndAgent::load_iterate(std::span<const double> lambda,
                                 std::span<const double> a,
                                 std::span<const double> varphi) {
  UFC_EXPECTS(lambda.size() == n_);
  UFC_EXPECTS(a.size() == n_);
  UFC_EXPECTS(varphi.size() == n_);
  lambda_.assign(lambda);
  lambda_tilde_.assign(lambda);
  a_.assign(a);
  varphi_.assign(varphi);
  a_tilde_cache_.assign(a);
  std::fill(last_assignment_round_.begin(), last_assignment_round_.end(), -1);
}

// --------------------------------------------------------------------------
// DatacenterAgent

DatacenterAgent::DatacenterAgent(DatacenterLocalConfig config)
    : config_(std::move(config)) {
  UFC_EXPECTS(config_.num_front_ends > 0);
  UFC_EXPECTS(config_.emission_cost != nullptr);
  UFC_EXPECTS(!(config_.protocol.pin_mu && config_.protocol.pin_nu));
  a_ = Vec(config_.num_front_ends, 0.0);
  lambda_tilde_cache_ = Vec(config_.num_front_ends, 0.0);
  varphi_cache_ = Vec(config_.num_front_ends, 0.0);
  last_proposal_round_.assign(config_.num_front_ends, -1);
}

void DatacenterAgent::process_proposals(Transport& bus, int iteration) {
  const std::size_t m = config_.num_front_ends;
  const bool stale_ok = config_.protocol.allow_stale;
  std::size_t received = 0;
  for (auto& msg : bus.drain(id())) {
    UFC_EXPECTS(msg.type == MessageType::RoutingProposal);
    UFC_EXPECTS(msg.payload.size() == 2);
    const std::size_t i = front_end_index(msg.source);
    UFC_EXPECTS(i < m);
    if (stale_ok) {
      if (msg.iteration > last_proposal_round_[i]) {
        last_proposal_round_[i] = msg.iteration;
        lambda_tilde_cache_[i] = msg.payload[0];
        varphi_cache_[i] = msg.payload[1];
      }
    } else {
      UFC_EXPECTS(msg.iteration == iteration);
      last_proposal_round_[i] = msg.iteration;
      lambda_tilde_cache_[i] = msg.payload[0];
      varphi_cache_[i] = msg.payload[1];
      ++received;
    }
  }
  if (!stale_ok) UFC_EXPECTS(received == m);
  for (std::size_t i = 0; i < m; ++i)
    if (last_proposal_round_[i] < iteration) ++stale_proposals_;
  const Vec& lambda_tilde = lambda_tilde_cache_;
  const Vec& varphi = varphi_cache_;

  const auto& protocol = config_.protocol;
  const double rho = protocol.rho;
  const double a_col_sum_k = sum(a_);

  // Procedure 2: mu block (uses a^k, nu^k, phi^k).
  double mu_tilde = 0.0;
  if (!protocol.pin_mu) {
    admm::MuBlockInputs in;
    in.alpha = config_.alpha_mw;
    in.beta = config_.beta_mw;
    in.a_col_sum = a_col_sum_k;
    in.nu = nu_;
    in.phi = phi_;
    in.rho = rho;
    in.fuel_cell_price = config_.fuel_cell_price;
    in.mu_max = config_.fuel_cell_capacity_mw;
    mu_tilde = admm::solve_mu_block(in);
  }

  // Procedure 3: nu block (uses a^k, mu~, phi^k).
  double nu_tilde = 0.0;
  if (!protocol.pin_nu) {
    admm::NuBlockInputs in;
    in.alpha = config_.alpha_mw;
    in.beta = config_.beta_mw;
    in.a_col_sum = a_col_sum_k;
    in.mu = mu_tilde;
    in.phi = phi_;
    in.rho = rho;
    in.grid_price = config_.grid_price;
    in.carbon_tons_per_mwh = config_.carbon_tons_per_mwh;
    in.emission_cost = config_.emission_cost.get();
    nu_tilde = admm::solve_nu_block(in);
  }

  // Procedure 4: a block (uses lambda~, mu~, nu~, phi^k, varphi^k).
  admm::ABlockInputs a_in;
  a_in.alpha = config_.alpha_mw;
  a_in.beta = config_.beta_mw;
  a_in.mu = mu_tilde;
  a_in.nu = nu_tilde;
  a_in.phi = phi_;
  a_in.varphi_col = varphi;
  a_in.lambda_col = lambda_tilde;
  a_in.rho = rho;
  a_in.capacity = config_.capacity_servers;
  const Vec a_tilde = admm::solve_a_block(a_in, a_, protocol.inner);

  // Reply the assignments (procedure 4's second half).
  for (std::size_t i = 0; i < m; ++i) {
    Message msg;
    msg.source = id();
    msg.destination = front_end_id(i);
    msg.type = MessageType::RoutingAssignment;
    msg.iteration = iteration;
    msg.payload = {a_tilde[i]};
    bus.send(std::move(msg));
  }

  // Procedure 5: local dual update.
  const double phi_tilde =
      admm::update_phi(phi_, rho, config_.alpha_mw, config_.beta_mw,
                       sum(a_tilde), mu_tilde, nu_tilde);

  // Correction step via the shared GBS helpers (admm/engine.cpp), backward
  // order — the same arithmetic the in-process executor runs on this column.
  const bool gbs = protocol.gaussian_back_substitution;
  const double eps = gbs ? protocol.epsilon : 1.0;
  const admm::ABlockCorrection corr =
      admm::correct_a_block(a_.span(), a_tilde.span(), eps, gbs);
  admm::correct_sources(phi_, nu_, mu_, phi_tilde, nu_tilde, mu_tilde,
                        config_.beta_mw, corr.delta_sum, eps, gbs,
                        protocol.pin_mu, protocol.pin_nu);

  last_balance_residual_ = std::abs(config_.alpha_mw +
                                    config_.beta_mw * sum(a_) - mu_ - nu_);

  Message report;
  report.source = id();
  report.destination = kCoordinatorId;
  report.type = MessageType::ConvergenceReport;
  report.iteration = iteration;
  report.payload = {last_balance_residual_};
  bus.send(std::move(report));
}

std::int32_t DatacenterAgent::oldest_input_round() const {
  return *std::min_element(last_proposal_round_.begin(),
                           last_proposal_round_.end());
}

// Serializer into a caller-owned buffer: no precondition to guard (see
// FrontEndAgent::append_state).
// ufc-analyze: allow(expects-reach)
void DatacenterAgent::append_state(std::vector<std::byte>& out) const {
  wire::append(out, static_cast<std::uint64_t>(config_.num_front_ends));
  wire::append_f64s(out, a_.span());
  wire::append(out, mu_);
  wire::append(out, nu_);
  wire::append(out, phi_);
  wire::append_f64s(out, lambda_tilde_cache_.span());
  wire::append_f64s(out, varphi_cache_.span());
  for (std::int32_t r : last_proposal_round_) wire::append(out, r);
  wire::append(out, last_balance_residual_);
  wire::append(out, stale_proposals_);
}

void DatacenterAgent::restore_state(std::span<const std::byte> bytes,
                                    std::size_t& offset) {
  UFC_EXPECTS(wire::read<std::uint64_t>(bytes, offset) ==
              config_.num_front_ends);
  wire::read_f64s(bytes, offset, a_.span());
  mu_ = wire::read<double>(bytes, offset);
  nu_ = wire::read<double>(bytes, offset);
  phi_ = wire::read<double>(bytes, offset);
  wire::read_f64s(bytes, offset, lambda_tilde_cache_.span());
  wire::read_f64s(bytes, offset, varphi_cache_.span());
  for (auto& r : last_proposal_round_)
    r = wire::read<std::int32_t>(bytes, offset);
  last_balance_residual_ = wire::read<double>(bytes, offset);
  stale_proposals_ = wire::read<std::uint64_t>(bytes, offset);
}

Message DatacenterAgent::make_state_sync(int iteration) const {
  UFC_EXPECTS(iteration >= 0);
  const std::size_t m = config_.num_front_ends;
  Message msg;
  msg.source = id();
  msg.destination = kCoordinatorId;
  msg.type = MessageType::StateSync;
  msg.iteration = iteration;
  msg.payload.reserve(6 + 3 * m);
  msg.payload = {mu_,
                 nu_,
                 phi_,
                 last_balance_residual_,
                 static_cast<double>(oldest_input_round()),
                 static_cast<double>(stale_proposals_)};
  msg.payload.insert(msg.payload.end(), a_.begin(), a_.end());
  msg.payload.insert(msg.payload.end(), lambda_tilde_cache_.begin(),
                     lambda_tilde_cache_.end());
  msg.payload.insert(msg.payload.end(), varphi_cache_.begin(),
                     varphi_cache_.end());
  return msg;
}

void DatacenterAgent::sync_remote(const Message& message) {
  const std::size_t m = config_.num_front_ends;
  UFC_EXPECTS(message.type == MessageType::StateSync);
  UFC_EXPECTS(message.source == id());
  UFC_EXPECTS(message.payload.size() == 6 + 3 * m);
  mu_ = message.payload[0];
  nu_ = message.payload[1];
  phi_ = message.payload[2];
  last_balance_residual_ = message.payload[3];
  // The remote tracks per-front-end input ages; the shadow only needs the
  // aggregate the coordinator reads (oldest round for the convergence bound,
  // stale count for the report).
  const auto oldest = static_cast<std::int32_t>(message.payload[4]);
  std::fill(last_proposal_round_.begin(), last_proposal_round_.end(), oldest);
  stale_proposals_ = static_cast<std::uint64_t>(message.payload[5]);
  for (std::size_t i = 0; i < m; ++i) {
    a_[i] = message.payload[6 + i];
    lambda_tilde_cache_[i] = message.payload[6 + m + i];
    varphi_cache_[i] = message.payload[6 + 2 * m + i];
  }
}

void DatacenterAgent::load_iterate(std::span<const double> a_col,
                                   std::span<const double> varphi_col,
                                   double mu, double nu, double phi) {
  UFC_EXPECTS(a_col.size() == config_.num_front_ends);
  UFC_EXPECTS(varphi_col.size() == config_.num_front_ends);
  a_.assign(a_col);
  mu_ = mu;
  nu_ = nu;
  phi_ = phi;
  // Seed the proposal caches with the near-converged approximation
  // lambda~ ~= a so a front-end that stays silent after a rebuild still
  // leaves this datacenter with a sane stale input.
  lambda_tilde_cache_.assign(a_col);
  varphi_cache_.assign(varphi_col);
  std::fill(last_proposal_round_.begin(), last_proposal_round_.end(), -1);
}

}  // namespace ufc::net
