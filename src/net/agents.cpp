#include "net/agents.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc::net {

// --------------------------------------------------------------------------
// FrontEndAgent

FrontEndAgent::FrontEndAgent(FrontEndLocalConfig config)
    : config_(std::move(config)) {
  UFC_EXPECTS(config_.utility != nullptr);
  UFC_EXPECTS(!config_.latency_row_s.empty());
  n_ = config_.latency_row_s.size();
  lambda_ = Vec(n_, 0.0);
  lambda_tilde_ = Vec(n_, 0.0);
  a_ = Vec(n_, 0.0);
  varphi_ = Vec(n_, 0.0);
}

void FrontEndAgent::send_proposals(MessageBus& bus, int iteration) {
  admm::LambdaBlockInputs in;
  in.arrival = config_.arrival;
  in.latency_row = config_.latency_row_s;
  in.a_row = a_;
  in.varphi_row = varphi_;
  in.rho = config_.protocol.rho;
  in.latency_weight = config_.latency_weight;
  in.utility = config_.utility.get();
  lambda_tilde_ = admm::solve_lambda_block(in, lambda_, config_.protocol.inner);

  for (std::size_t j = 0; j < n_; ++j) {
    Message msg;
    msg.source = id();
    msg.destination = datacenter_id(j);
    msg.type = MessageType::RoutingProposal;
    msg.iteration = iteration;
    msg.payload = {lambda_tilde_[j], varphi_[j]};
    bus.send(std::move(msg));
  }
}

void FrontEndAgent::process_assignments(MessageBus& bus, int iteration) {
  Vec a_tilde(n_, 0.0);
  std::size_t received = 0;
  for (auto& msg : bus.drain(id())) {
    UFC_EXPECTS(msg.type == MessageType::RoutingAssignment);
    UFC_EXPECTS(msg.iteration == iteration);
    UFC_EXPECTS(msg.payload.size() == 1);
    a_tilde[datacenter_index(msg.source)] = msg.payload[0];
    ++received;
  }
  UFC_EXPECTS(received == n_);

  const double rho = config_.protocol.rho;
  const bool gbs = config_.protocol.gaussian_back_substitution;
  const double eps = gbs ? config_.protocol.epsilon : 1.0;

  for (std::size_t j = 0; j < n_; ++j) {
    const double varphi_tilde =
        admm::update_varphi(varphi_[j], rho, a_tilde[j], lambda_tilde_[j]);
    if (gbs) {
      varphi_[j] += eps * (varphi_tilde - varphi_[j]);
      a_[j] += eps * (a_tilde[j] - a_[j]);
    } else {
      varphi_[j] = varphi_tilde;
      a_[j] = a_tilde[j];
    }
  }
  lambda_ = lambda_tilde_;

  last_copy_residual_ = 0.0;
  for (std::size_t j = 0; j < n_; ++j)
    last_copy_residual_ =
        std::max(last_copy_residual_, std::abs(a_[j] - lambda_[j]));

  Message report;
  report.source = id();
  report.destination = kCoordinatorId;
  report.type = MessageType::ConvergenceReport;
  report.iteration = iteration;
  report.payload = {last_copy_residual_};
  bus.send(std::move(report));
}

// --------------------------------------------------------------------------
// DatacenterAgent

DatacenterAgent::DatacenterAgent(DatacenterLocalConfig config)
    : config_(std::move(config)) {
  UFC_EXPECTS(config_.num_front_ends > 0);
  UFC_EXPECTS(config_.emission_cost != nullptr);
  UFC_EXPECTS(!(config_.protocol.pin_mu && config_.protocol.pin_nu));
  a_ = Vec(config_.num_front_ends, 0.0);
}

void DatacenterAgent::process_proposals(MessageBus& bus, int iteration) {
  const std::size_t m = config_.num_front_ends;
  Vec lambda_tilde(m, 0.0);
  Vec varphi(m, 0.0);
  std::size_t received = 0;
  for (auto& msg : bus.drain(id())) {
    UFC_EXPECTS(msg.type == MessageType::RoutingProposal);
    UFC_EXPECTS(msg.iteration == iteration);
    UFC_EXPECTS(msg.payload.size() == 2);
    const std::size_t i = front_end_index(msg.source);
    lambda_tilde[i] = msg.payload[0];
    varphi[i] = msg.payload[1];
    ++received;
  }
  UFC_EXPECTS(received == m);

  const auto& protocol = config_.protocol;
  const double rho = protocol.rho;
  const double a_col_sum_k = sum(a_);

  // Procedure 2: mu block (uses a^k, nu^k, phi^k).
  double mu_tilde = 0.0;
  if (!protocol.pin_mu) {
    admm::MuBlockInputs in;
    in.alpha = config_.alpha_mw;
    in.beta = config_.beta_mw;
    in.a_col_sum = a_col_sum_k;
    in.nu = nu_;
    in.phi = phi_;
    in.rho = rho;
    in.fuel_cell_price = config_.fuel_cell_price;
    in.mu_max = config_.fuel_cell_capacity_mw;
    mu_tilde = admm::solve_mu_block(in);
  }

  // Procedure 3: nu block (uses a^k, mu~, phi^k).
  double nu_tilde = 0.0;
  if (!protocol.pin_nu) {
    admm::NuBlockInputs in;
    in.alpha = config_.alpha_mw;
    in.beta = config_.beta_mw;
    in.a_col_sum = a_col_sum_k;
    in.mu = mu_tilde;
    in.phi = phi_;
    in.rho = rho;
    in.grid_price = config_.grid_price;
    in.carbon_tons_per_mwh = config_.carbon_tons_per_mwh;
    in.emission_cost = config_.emission_cost.get();
    nu_tilde = admm::solve_nu_block(in);
  }

  // Procedure 4: a block (uses lambda~, mu~, nu~, phi^k, varphi^k).
  admm::ABlockInputs a_in;
  a_in.alpha = config_.alpha_mw;
  a_in.beta = config_.beta_mw;
  a_in.mu = mu_tilde;
  a_in.nu = nu_tilde;
  a_in.phi = phi_;
  a_in.varphi_col = varphi;
  a_in.lambda_col = lambda_tilde;
  a_in.rho = rho;
  a_in.capacity = config_.capacity_servers;
  const Vec a_tilde = admm::solve_a_block(a_in, a_, protocol.inner);

  // Reply the assignments (procedure 4's second half).
  for (std::size_t i = 0; i < m; ++i) {
    Message msg;
    msg.source = id();
    msg.destination = front_end_id(i);
    msg.type = MessageType::RoutingAssignment;
    msg.iteration = iteration;
    msg.payload = {a_tilde[i]};
    bus.send(std::move(msg));
  }

  // Procedure 5: local dual update.
  const double phi_tilde =
      admm::update_phi(phi_, rho, config_.alpha_mw, config_.beta_mw,
                       sum(a_tilde), mu_tilde, nu_tilde);

  // Correction step (Gaussian back substitution), backward order.
  const bool gbs = protocol.gaussian_back_substitution;
  const double eps = gbs ? protocol.epsilon : 1.0;
  if (gbs) {
    phi_ += eps * (phi_tilde - phi_);
    double delta_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double delta = eps * (a_tilde[i] - a_[i]);
      a_[i] += delta;
      delta_sum += delta;
    }
    const double nu_old = nu_;
    if (!protocol.pin_nu)
      nu_ += eps * (nu_tilde - nu_) + config_.beta_mw * delta_sum;
    if (!protocol.pin_mu) {
      double correction = eps * (mu_tilde - mu_);
      if (!protocol.pin_nu) correction -= (nu_ - nu_old);
      correction += config_.beta_mw * delta_sum;
      mu_ += correction;
    }
  } else {
    phi_ = phi_tilde;
    a_ = a_tilde;
    nu_ = nu_tilde;
    mu_ = mu_tilde;
  }

  last_balance_residual_ = std::abs(config_.alpha_mw +
                                    config_.beta_mw * sum(a_) - mu_ - nu_);

  Message report;
  report.source = id();
  report.destination = kCoordinatorId;
  report.type = MessageType::ConvergenceReport;
  report.iteration = iteration;
  report.payload = {last_balance_residual_};
  bus.send(std::move(report));
}

}  // namespace ufc::net
