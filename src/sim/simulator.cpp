#include "sim/simulator.hpp"

#include <algorithm>

#include "admm/options.hpp"
#include "sim/session.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::sim {

namespace {

template <typename Extract>
std::vector<double> series(const std::vector<SlotResult>& slots,
                           Extract&& extract) {
  std::vector<double> out;
  out.reserve(slots.size());
  for (const auto& s : slots) out.push_back(extract(s));
  return out;
}

}  // namespace

double WeekResult::total_energy_cost() const {
  double total = 0.0;
  for (const auto& s : slots) total += s.breakdown.energy_cost;
  return total;
}

double WeekResult::total_carbon_cost() const {
  double total = 0.0;
  for (const auto& s : slots) total += s.breakdown.carbon_cost;
  return total;
}

double WeekResult::total_carbon_tons() const {
  double total = 0.0;
  for (const auto& s : slots) total += s.breakdown.carbon_tons;
  return total;
}

double WeekResult::total_ufc() const {
  double total = 0.0;
  for (const auto& s : slots) total += s.breakdown.ufc;
  return total;
}

double WeekResult::average_latency_ms() const {
  UFC_EXPECTS(!slots.empty());
  const auto xs = latency_ms_series();
  return mean(xs);
}

double WeekResult::average_utilization() const {
  UFC_EXPECTS(!slots.empty());
  const auto xs = utilization_series();
  return mean(xs);
}

std::vector<double> WeekResult::ufc_series() const {
  return series(slots, [](const SlotResult& s) { return s.breakdown.ufc; });
}

std::vector<double> WeekResult::energy_cost_series() const {
  return series(slots,
                [](const SlotResult& s) { return s.breakdown.energy_cost; });
}

std::vector<double> WeekResult::carbon_cost_series() const {
  return series(slots,
                [](const SlotResult& s) { return s.breakdown.carbon_cost; });
}

std::vector<double> WeekResult::latency_ms_series() const {
  return series(slots,
                [](const SlotResult& s) { return s.breakdown.avg_latency_ms; });
}

std::vector<double> WeekResult::utilization_series() const {
  return series(slots,
                [](const SlotResult& s) { return s.breakdown.utilization; });
}

std::vector<double> WeekResult::iteration_series() const {
  return series(slots, [](const SlotResult& s) {
    return static_cast<double>(s.iterations);
  });
}

SimulatorOptions simulator_options_from(const Config& config) {
  SimulatorOptions options;
  options.admg = admm::options_from_config(config, options.admg);
  options.stride = config.get_int("simulate.stride", options.stride);
  return options;
}

WeekResult run_strategy_week(const traces::Scenario& scenario,
                             admm::Strategy strategy,
                             const SimulatorOptions& options) {
  WeekResult result;
  result.strategy = strategy;

  std::vector<int> slots_run;
  const auto reports = solve_all_slots(scenario, strategy, options, &slots_run);
  for (std::size_t k = 0; k < reports.size(); ++k) {
    SlotResult slot;
    slot.slot = slots_run[k];
    slot.breakdown = reports[k].breakdown;
    slot.iterations = reports[k].iterations;
    slot.converged = reports[k].converged;
    result.slots.push_back(std::move(slot));
  }
  return result;
}

StrategyComparison compare_strategies(const traces::Scenario& scenario,
                                      const SimulatorOptions& options) {
  StrategyComparison cmp;
  cmp.grid = run_strategy_week(scenario, admm::Strategy::Grid, options);
  cmp.fuel_cell =
      run_strategy_week(scenario, admm::Strategy::FuelCell, options);
  cmp.hybrid = run_strategy_week(scenario, admm::Strategy::Hybrid, options);

  const std::size_t slots = cmp.grid.slots.size();
  UFC_EXPECTS(cmp.fuel_cell.slots.size() == slots &&
              cmp.hybrid.slots.size() == slots);
  for (std::size_t s = 0; s < slots; ++s) {
    const double g = cmp.grid.slots[s].breakdown.ufc;
    const double f = cmp.fuel_cell.slots[s].breakdown.ufc;
    const double h = cmp.hybrid.slots[s].breakdown.ufc;
    cmp.improvement_hg.push_back(improvement_percent(h, g));
    cmp.improvement_hf.push_back(improvement_percent(h, f));
    cmp.improvement_fg.push_back(improvement_percent(f, g));
  }
  return cmp;
}

double StrategyComparison::average_improvement_hg() const {
  return mean(improvement_hg);
}

double StrategyComparison::average_improvement_hf() const {
  return mean(improvement_hf);
}

double StrategyComparison::average_improvement_fg() const {
  return mean(improvement_fg);
}

SingleSiteCosts single_site_strategy_costs(std::span<const double> demand_mw,
                                           std::span<const double> price,
                                           double fuel_cell_price) {
  UFC_EXPECTS(demand_mw.size() == price.size());
  UFC_EXPECTS(fuel_cell_price >= 0.0);
  SingleSiteCosts costs;
  for (std::size_t t = 0; t < demand_mw.size(); ++t) {
    UFC_EXPECTS(demand_mw[t] >= 0.0);
    costs.grid += price[t] * demand_mw[t];
    costs.fuel_cell += fuel_cell_price * demand_mw[t];
    costs.hybrid += std::min(price[t], fuel_cell_price) * demand_mw[t];
  }
  return costs;
}

}  // namespace ufc::sim
