#include "sim/manifest.hpp"

#include <cstdint>

#include "util/contract.hpp"

namespace ufc::sim {

namespace {

const char* inner_method_name(admm::InnerMethod method) {
  switch (method) {
    case admm::InnerMethod::Fista: return "fista";
    case admm::InnerMethod::ProjectedGradient: return "projected_gradient";
    case admm::InnerMethod::Exact: return "exact";
  }
  UFC_ENSURES(false);  // Unreachable: all enumerators handled.
}

const char* pinning_name(admm::BlockPinning pinning) {
  switch (pinning) {
    case admm::BlockPinning::None: return "none";
    case admm::BlockPinning::PinMu: return "pin_mu";
    case admm::BlockPinning::PinNu: return "pin_nu";
  }
  UFC_ENSURES(false);  // Unreachable: all enumerators handled.
}

}  // namespace

obs::JsonValue admg_options_json(const admm::AdmgOptions& options) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("rho", obs::JsonValue(options.rho));
  out.set("epsilon", obs::JsonValue(options.epsilon));
  out.set("max_iterations", obs::JsonValue(options.max_iterations));
  out.set("tolerance", obs::JsonValue(options.tolerance));
  out.set("workload_scale", obs::JsonValue(options.workload_scale));
  out.set("gaussian_back_substitution",
          obs::JsonValue(options.gaussian_back_substitution));
  out.set("inner_method",
          obs::JsonValue(inner_method_name(options.inner.method)));
  out.set("pinning", obs::JsonValue(pinning_name(options.pinning)));
  out.set("record_trace", obs::JsonValue(options.record_trace));
  out.set("threads", obs::JsonValue(options.threads));
  out.set("profile_phases", obs::JsonValue(options.profile_phases));
  out.set("fallback_to_centralized",
          obs::JsonValue(options.fallback_to_centralized));
  obs::JsonValue watchdog = obs::JsonValue::object();
  watchdog.set("check_finite", obs::JsonValue(options.watchdog.check_finite));
  watchdog.set("stall_window", obs::JsonValue(options.watchdog.stall_window));
  watchdog.set("min_decrease", obs::JsonValue(options.watchdog.min_decrease));
  out.set("watchdog", std::move(watchdog));
  return out;
}

obs::JsonValue scenario_config_json(const traces::ScenarioConfig& config) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("seed", obs::JsonValue(config.seed));
  out.set("hours", obs::JsonValue(config.hours));
  out.set("front_ends", obs::JsonValue(config.front_ends));
  out.set("pue", obs::JsonValue(config.pue));
  out.set("idle_watts", obs::JsonValue(config.power.idle_watts));
  out.set("peak_watts", obs::JsonValue(config.power.peak_watts));
  out.set("server_capacity_low", obs::JsonValue(config.server_capacity_low));
  out.set("server_capacity_high", obs::JsonValue(config.server_capacity_high));
  out.set("peak_workload_fraction",
          obs::JsonValue(config.peak_workload_fraction));
  out.set("fuel_cell_price", obs::JsonValue(config.fuel_cell_price));
  out.set("carbon_tax", obs::JsonValue(config.carbon_tax));
  out.set("latency_weight", obs::JsonValue(config.latency_weight));
  return out;
}

obs::JsonValue simulator_options_json(const SimulatorOptions& options) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("solver", admg_options_json(options.admg));
  out.set("stride", obs::JsonValue(options.stride));
  out.set("warm_start", obs::JsonValue(options.warm_start));
  out.set("outages",
          obs::JsonValue(static_cast<std::int64_t>(options.outages.size())));
  return out;
}

obs::JsonValue week_result_json(const WeekResult& week) {
  obs::JsonValue out = obs::JsonValue::object();
  out.set("strategy", obs::JsonValue(admm::to_string(week.strategy)));
  out.set("slots",
          obs::JsonValue(static_cast<std::int64_t>(week.slots.size())));
  std::int64_t iterations = 0;
  std::int64_t converged = 0;
  for (const SlotResult& slot : week.slots) {
    iterations += slot.iterations;
    if (slot.converged) ++converged;
  }
  out.set("iterations", obs::JsonValue(iterations));
  out.set("converged_slots", obs::JsonValue(converged));
  out.set("total_ufc", obs::JsonValue(week.total_ufc()));
  out.set("total_energy_cost", obs::JsonValue(week.total_energy_cost()));
  out.set("total_carbon_cost", obs::JsonValue(week.total_carbon_cost()));
  out.set("total_carbon_tons", obs::JsonValue(week.total_carbon_tons()));
  out.set("average_latency_ms", obs::JsonValue(week.average_latency_ms()));
  out.set("average_utilization", obs::JsonValue(week.average_utilization()));
  return out;
}

obs::JsonValue sweep_points_json(std::span<const SweepPoint> points) {
  obs::JsonValue out = obs::JsonValue::array();
  for (const SweepPoint& point : points) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry.set("parameter", obs::JsonValue(point.parameter));
    entry.set("avg_improvement_pct",
              obs::JsonValue(point.avg_improvement_pct));
    entry.set("avg_utilization", obs::JsonValue(point.avg_utilization));
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace ufc::sim
