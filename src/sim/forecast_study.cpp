#include "sim/forecast_study.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::sim {

namespace {

/// One-step-ahead forecasts for each front-end's arrival series.
Mat forecast_arrivals(const traces::Scenario& scenario,
                      const ForecastStudyOptions& options) {
  const auto hours = static_cast<std::size_t>(scenario.hours());
  const std::size_t m = scenario.num_front_ends();
  Mat forecasts(hours, m);
  for (std::size_t i = 0; i < m; ++i) {
    const Vec history = scenario.arrivals().col(i);
    std::vector<double> predicted;
    if (options.method == ForecastMethod::SeasonalNaive) {
      predicted = traces::seasonal_naive_forecast(history.raw(), 24);
    } else {
      predicted =
          traces::holt_winters_forecast(history.raw(), options.holt_winters);
    }
    for (std::size_t t = 0; t < hours; ++t)
      forecasts(t, i) = std::max(predicted[t], 1e-6);
  }
  return forecasts;
}

}  // namespace

ForecastStudyResult run_forecast_study(const traces::Scenario& scenario,
                                       const ForecastStudyOptions& options) {
  UFC_EXPECTS(options.skip_slots >= 0);
  UFC_EXPECTS(options.skip_slots < scenario.hours());

  const Mat forecasts = forecast_arrivals(scenario, options);

  ForecastStudyResult result;

  // Forecast quality on the total workload.
  std::vector<double> actual_total(static_cast<std::size_t>(scenario.hours()));
  std::vector<double> forecast_total(actual_total.size());
  for (std::size_t t = 0; t < actual_total.size(); ++t) {
    actual_total[t] = scenario.arrivals().row_sum(t);
    forecast_total[t] = forecasts.row_sum(t);
  }
  result.workload_mape =
      traces::mape(actual_total, forecast_total,
                   static_cast<std::size_t>(options.skip_slots));

  for (int t = options.skip_slots; t < scenario.hours(); ++t) {
    const auto slot = static_cast<std::size_t>(t);
    const UfcProblem actual_problem = scenario.problem_at(t);

    // Plan on the forecast.
    UfcProblem planned_problem = actual_problem;
    for (std::size_t i = 0; i < planned_problem.arrivals.size(); ++i)
      planned_problem.arrivals[i] = forecasts(slot, i);
    const auto planned =
        admm::solve_strategy(planned_problem, admm::Strategy::Hybrid,
                             options.admg);

    // Execute on the actuals: keep the planned routing proportions per
    // front-end, keep the planned fuel-cell dispatch.
    Mat realized_lambda = planned.solution.lambda;
    for (std::size_t i = 0; i < actual_problem.arrivals.size(); ++i) {
      const double planned_arrival = planned_problem.arrivals[i];
      const double scale = planned_arrival > 0.0
                               ? actual_problem.arrivals[i] / planned_arrival
                               : 0.0;
      for (std::size_t j = 0; j < actual_problem.num_datacenters(); ++j)
        realized_lambda(i, j) *= scale;
    }
    const double realized =
        ufc_objective(actual_problem, realized_lambda, planned.solution.mu);

    // Clairvoyant benchmark.
    const auto oracle = admm::solve_strategy(
        actual_problem, admm::Strategy::Hybrid, options.admg);
    const double clairvoyant = oracle.breakdown.ufc;

    const double gap =
        100.0 * (clairvoyant - realized) / std::max(1.0, std::abs(clairvoyant));
    result.ufc_gap_pct.push_back(gap);
    result.realized_ufc.push_back(realized);
    result.clairvoyant_ufc.push_back(clairvoyant);
  }

  result.avg_ufc_gap_pct = mean(result.ufc_gap_pct);
  result.max_ufc_gap_pct = max_value(result.ufc_gap_pct);
  return result;
}

}  // namespace ufc::sim
