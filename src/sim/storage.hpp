// Temporal peak-shaving extension: per-datacenter batteries layered on top
// of the per-slot UFC optimization.
//
// Each slot is first solved exactly as in the paper (routing + fuel-cell
// dispatch); a price-threshold battery policy then reshapes the *grid* side:
// charge when the site's effective grid price (LMP + marginal carbon cost)
// is below its low quantile, discharge against the grid draw when above its
// high quantile. Thresholds come from the site's own price history, the
// natural deployment of the paper's "predictable diurnal prices"
// observation.
#pragma once

#include "model/battery.hpp"
#include "sim/simulator.hpp"

namespace ufc::sim {

struct StoragePolicyOptions {
  BatterySpec battery;            ///< Same battery at every datacenter.
  double charge_quantile = 0.3;   ///< Charge below this price quantile.
  double discharge_quantile = 0.75;  ///< Discharge above this one.
};

struct StorageSlotResult {
  int slot = 0;
  double grid_cost_base = 0.0;  ///< Energy cost (grid + fuel cell) without storage, $.
  double grid_cost_with = 0.0;  ///< With storage (incl. charging energy), $.
  double carbon_tons_base = 0.0;
  double carbon_tons_with = 0.0;
  double discharged_mwh = 0.0;
  double charged_grid_mwh = 0.0;   ///< Grid energy spent charging.
  double peak_grid_mw_base = 0.0;  ///< Max per-site grid draw, no storage.
  double peak_grid_mw_with = 0.0;
};

struct StorageWeekResult {
  std::vector<StorageSlotResult> slots;
  double total_saving = 0.0;          ///< Base minus with-storage grid cost, $.
  double saving_pct = 0.0;            ///< Relative to the base grid cost.
  double peak_reduction_pct = 0.0;    ///< Reduction of the weekly peak draw.
  double carbon_delta_tons = 0.0;     ///< With-storage minus base (can be +/-).
};

/// Runs the Hybrid strategy over the scenario with batteries at every
/// datacenter and reports the grid-side savings and peak shaving.
StorageWeekResult run_storage_week(const traces::Scenario& scenario,
                                   const StoragePolicyOptions& policy,
                                   const SimulatorOptions& options = {});

/// Clairvoyant upper bound: per-site dynamic program over a discretized
/// state of charge, using the week's actual prices and the solved hybrid
/// dispatch (the paper argues prices and workloads are predictable, so this
/// bound is near-achievable). Same peak guard as the threshold policy.
struct OptimalStorageOptions {
  BatterySpec battery;
  int soc_levels = 40;  ///< State-of-charge discretization.
};

StorageWeekResult run_storage_week_optimal(
    const traces::Scenario& scenario, const OptimalStorageOptions& options,
    const SimulatorOptions& sim_options = {});

}  // namespace ufc::sim
