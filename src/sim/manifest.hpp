// Domain adapters between the simulation/solver layers and the generic run
// manifest (obs/manifest.hpp).
//
// src/obs is deliberately ignorant of solver options and scenario configs —
// the lint rule obs-no-solver-include enforces that — so the JSON snapshots
// of those types live here, where both sides are visible. Everything emitted
// is a plain value snapshot: writing a manifest never influences a solve.
#pragma once

#include <span>

#include "admm/engine.hpp"
#include "obs/json.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "traces/scenario.hpp"

namespace ufc::sim {

/// AdmgOptions snapshot: every numeric/boolean knob (observer pointers and
/// watchdog wiring are runtime state, not configuration, and are omitted).
obs::JsonValue admg_options_json(const admm::AdmgOptions& options);

/// ScenarioConfig snapshot, including the seed that fixes every trace.
obs::JsonValue scenario_config_json(const traces::ScenarioConfig& config);

/// SimulatorOptions snapshot (embeds the solver snapshot).
obs::JsonValue simulator_options_json(const SimulatorOptions& options);

/// Week totals plus per-slot convergence/iteration statistics.
obs::JsonValue week_result_json(const WeekResult& week);

/// Sweep curve as an array of {parameter, avg_improvement_pct,
/// avg_utilization} points.
obs::JsonValue sweep_points_json(std::span<const SweepPoint> points);

}  // namespace ufc::sim
