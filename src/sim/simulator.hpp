// Time-slotted simulation driver (paper §IV).
//
// Runs a strategy over every hourly slot of a Scenario, solving one UFC
// program per slot with ADM-G (decisions are per-slot independent because
// the paper's workloads are interactive and non-deferrable), and collects
// the per-slot breakdowns and convergence statistics every figure reports.
#pragma once

#include <span>
#include <vector>

#include "admm/strategy.hpp"
#include "traces/scenario.hpp"
#include "util/config.hpp"

namespace ufc::sim {

struct SlotResult {
  int slot = 0;
  UfcBreakdown breakdown;
  int iterations = 0;
  bool converged = false;
};

/// One strategy's full-week outcome.
struct WeekResult {
  admm::Strategy strategy = admm::Strategy::Hybrid;
  std::vector<SlotResult> slots;

  double total_energy_cost() const;
  double total_carbon_cost() const;
  double total_carbon_tons() const;
  double total_ufc() const;
  double average_latency_ms() const;   ///< Mean of per-slot averages.
  double average_utilization() const;  ///< Mean fuel-cell utilization.

  std::vector<double> ufc_series() const;
  std::vector<double> energy_cost_series() const;
  std::vector<double> carbon_cost_series() const;
  std::vector<double> latency_ms_series() const;
  std::vector<double> utilization_series() const;
  std::vector<double> iteration_series() const;
};

/// Scenario-level fault event: the fuel cells at one datacenter produce
/// nothing over hours [first_hour, last_hour) — mu_max_j = 0 — modeling a
/// generation outage. Quantifies the UFC degradation of losing on-site
/// generation (docs/ROBUSTNESS.md). Not meaningful under the FuelCell
/// strategy, which requires full fuel-cell capacity by construction.
struct FuelCellOutage {
  std::size_t datacenter = 0;
  int first_hour = 0;  ///< Inclusive.
  int last_hour = 0;   ///< Exclusive.
  bool covers(int hour) const {
    return hour >= first_hour && hour < last_hour;
  }
};

struct SimulatorOptions {
  SimulatorOptions() {
    // Simulation default: the paper-scale stopping accuracy (UFC changes by
    // < 0.03% versus a 10x tighter tolerance) with per-slot traces off.
    admg.tolerance = 3e-3;
    admg.max_iterations = 800;
    admg.record_trace = false;
    // The exact rank-one QP inner solver is ~2x faster than FISTA at paper
    // scale and bit-compatible on quadratic-utility problems.
    admg.inner.method = admm::InnerMethod::Exact;
  }
  admm::AdmgOptions admg;
  /// Simulate every `stride`-th hour (1 = all 168; sweeps use larger
  /// strides to trade resolution for speed).
  int stride = 1;
  /// Reuse the previous slot's iterate (primal + dual) as the next slot's
  /// starting point. Adjacent hours are similar, so this typically cuts
  /// iterations severalfold. Off by default: the paper cold-starts each run
  /// (its Fig. 11 counts cold-start iterations).
  bool warm_start = false;
  /// Fuel-cell outage windows applied to the per-slot problems.
  std::vector<FuelCellOutage> outages;
};

/// Builds SimulatorOptions from INI [solver]/[simulate] sections (missing
/// keys keep the defaults). Recognized: solver.rho, solver.epsilon,
/// solver.tolerance, solver.max_iterations,
/// solver.gaussian_back_substitution, simulate.stride.
SimulatorOptions simulator_options_from(const Config& config);

/// Runs `strategy` over the scenario's hours.
WeekResult run_strategy_week(const traces::Scenario& scenario,
                             admm::Strategy strategy,
                             const SimulatorOptions& options = {});

/// All three strategies plus the paper's improvement indexes
/// I_hg, I_hf, I_fg (per-slot, percent).
struct StrategyComparison {
  WeekResult grid;
  WeekResult fuel_cell;
  WeekResult hybrid;
  std::vector<double> improvement_hg;  ///< Hybrid over Grid.
  std::vector<double> improvement_hf;  ///< Hybrid over FuelCell.
  std::vector<double> improvement_fg;  ///< FuelCell over Grid.

  double average_improvement_hg() const;
  double average_improvement_hf() const;
  double average_improvement_fg() const;
};

StrategyComparison compare_strategies(const traces::Scenario& scenario,
                                      const SimulatorOptions& options = {});

// ---------------------------------------------------------------------------
// Table I: single-site, demand-following cost comparison.

struct SingleSiteCosts {
  double grid = 0.0;       ///< Sum p(t) * demand(t).
  double fuel_cell = 0.0;  ///< Sum p0 * demand(t).
  double hybrid = 0.0;     ///< Sum min(p(t), p0) * demand(t).
};

/// Energy costs of the three strategies for a single datacenter whose
/// demand must be met hour by hour (the paper's Table I experiment).
SingleSiteCosts single_site_strategy_costs(std::span<const double> demand_mw,
                                           std::span<const double> price,
                                           double fuel_cell_price);

}  // namespace ufc::sim
